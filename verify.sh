#!/bin/sh
# Repo gate: tier-1 build+test, lint, formatting, and the probe-off
# configuration. Run from the repo root; exits nonzero on any failure.
set -eux

# tier-1 (ROADMAP.md)
cargo build --release
cargo test -q

# the whole workspace, with and without the flight recorder
cargo test -q --workspace
cargo test -q --workspace --no-default-features

# lint + formatting
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --no-default-features -- -D warnings
cargo fmt --check

echo "verify: all checks passed"
