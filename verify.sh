#!/bin/sh
# Repo gate: tier-1 build+test, lint, formatting, and the probe-off
# configuration. Run from the repo root; exits nonzero on any failure.
set -eux

# tier-1 (ROADMAP.md)
cargo build --release
cargo test -q

# the whole workspace, with and without the flight recorder
cargo test -q --workspace
cargo test -q --workspace --no-default-features

# lint + formatting
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --no-default-features -- -D warnings
cargo fmt --check

# solver-service smoke: run the mixed two-pattern workload through the
# batch driver and keep the BENCH_solver.json summary (cache hit/miss
# counters, per-request outcomes, solve throughput).
mkdir -p results
cargo run --release -q --bin splu -- serve examples/serve_workload.txt \
    --workers 3 --queue-cap 8 --stats-json results/BENCH_solver.json
grep -q '"bench": "solver_serve"' results/BENCH_solver.json
grep -q '"deadline_expired": 1' results/BENCH_solver.json
grep -q '"factorization_failed": 1' results/BENCH_solver.json

echo "verify: all checks passed"
