#!/bin/sh
# Repo gate: tier-1 build+test, lint, formatting, and the probe-off
# configuration. Run from the repo root; exits nonzero on any failure.
set -eux

# tier-1 (ROADMAP.md)
cargo build --release
cargo test -q

# the whole workspace, with and without the flight recorder
cargo test -q --workspace
cargo test -q --workspace --no-default-features

# the bitwise-identity suites (every grid × sync mode × lookahead
# window, plus adversarial delivery jitter) in both feature configs
cargo test -q -p splu-core --test stacked_update --test delivery_jitter
cargo test -q -p splu-core --test stacked_update --test delivery_jitter \
    --no-default-features

# lint + formatting
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --no-default-features -- -D warnings
cargo fmt --check

# solver-service smoke: run the mixed two-pattern workload through the
# batch driver and keep the BENCH_solver.json summary (cache hit/miss
# counters, per-request outcomes, solve throughput).
mkdir -p results
cargo run --release -q --bin splu -- serve examples/serve_workload.txt \
    --workers 3 --queue-cap 8 --stats-json results/BENCH_solver.json
grep -q '"bench": "solver_serve"' results/BENCH_solver.json
grep -q '"deadline_expired": 1' results/BENCH_solver.json
grep -q '"factorization_failed": 1' results/BENCH_solver.json

# perf record: factor the synthetic suite with the seq/par1d/par2d
# drivers. The fresh run is gated against the committed record — a
# GFLOP/s drop beyond SPLU_BENCH_TOL_PCT percent (default 15) on any
# driver/matrix fails — and on being well-formed: every driver of every
# matrix reports a positive GFLOP/s with its update-stage breakdown,
# and the warmed sequential arena grew zero buffers (the
# allocation-free hot-path proof).
cp results/BENCH_lu.json /tmp/BENCH_lu.baseline.json
if ! cargo run --release -q --bin splu -- bench-lu \
    --out results/BENCH_lu.json --baseline /tmp/BENCH_lu.baseline.json; then
    echo "verify: bench gate tripped; offending BENCH_lu.json diff:" >&2
    diff -u /tmp/BENCH_lu.baseline.json results/BENCH_lu.json >&2 || true
    exit 1
fi
grep -q '"bench": "lu_factor"' results/BENCH_lu.json
# 3 matrices × (seq + par1d + par2d + 4 lookahead-sweep points)
test "$(grep -c '"gflops": ' results/BENCH_lu.json)" -eq 21
if grep -E '"gflops": (0\.0*[,}]|-)' results/BENCH_lu.json; then
    echo "verify: nonpositive GFLOP/s in BENCH_lu.json" >&2
    exit 1
fi
test "$(grep -c '"warmed_grow_events": 0' results/BENCH_lu.json)" -eq 3
test "$(grep -c '"update": ' results/BENCH_lu.json)" -eq 9
test "$(grep -c '"panel_wait_secs": ' results/BENCH_lu.json)" -eq 21
test "$(grep -c '"par2d_lookahead_sweep": ' results/BENCH_lu.json)" -eq 3
test "$(grep -c '"speedup_vs_prev": ' results/BENCH_lu.json)" -eq 3

echo "verify: all checks passed"
