#!/bin/sh
# Repo gate: tier-1 build+test, lint, formatting, and the probe-off
# configuration. Run from the repo root; exits nonzero on any failure.
set -eux

# tier-1 (ROADMAP.md)
cargo build --release
cargo test -q

# the whole workspace, with and without the flight recorder
cargo test -q --workspace
cargo test -q --workspace --no-default-features

# the bitwise-identity suites (every grid × sync mode × lookahead
# window, plus adversarial delivery jitter) in both feature configs
cargo test -q -p splu-core --test stacked_update --test delivery_jitter
cargo test -q -p splu-core --test stacked_update --test delivery_jitter \
    --no-default-features

# lint + formatting
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --no-default-features -- -D warnings
cargo fmt --check

# solver-service smoke: run the mixed two-pattern workload through the
# batch driver and keep the BENCH_serve.json summary (cache hit/miss
# counters, per-request outcomes, solve throughput, request-latency
# percentiles). The fresh run is gated against the committed record —
# p95 e2e latency and cache hit rate, same SPLU_BENCH_TOL_PCT knob as
# the factorization gate — and the metrics-registry snapshot must show
# the latency histograms populated (counts are deterministic for this
# workload: 8 completed requests, 7 solves).
mkdir -p results
cp results/BENCH_serve.json /tmp/BENCH_serve.baseline.json
cargo run --release -q --bin splu -- serve examples/serve_workload.txt \
    --workers 3 --queue-cap 8 --stats-json results/BENCH_serve.json \
    --metrics-out results/METRICS_serve.json \
    --baseline /tmp/BENCH_serve.baseline.json
grep -q '"bench": "solver_serve"' results/BENCH_serve.json
grep -q '"deadline_expired": 1' results/BENCH_serve.json
grep -q '"factorization_failed": 1' results/BENCH_serve.json
grep -q '"latency_us"' results/BENCH_serve.json
grep -qF '"e2e": {"count": 8, "p50": ' results/BENCH_serve.json
grep -qF '"solve": {"count": 7, "p50": ' results/BENCH_serve.json
grep -q '"p95": ' results/BENCH_serve.json
grep -q '"p99": ' results/BENCH_serve.json
grep -q '"cache_hit_rate": 0.777778' results/BENCH_serve.json
grep -qF '"splu_request_us": {"count": 8' results/METRICS_serve.json
grep -qF '"splu_solve_us": {"count": 7' results/METRICS_serve.json
grep -qF '"splu_worker_busy_us{worker=' results/METRICS_serve.json

# production-load benchmark: replay the seeded 100k-request
# multi-tenant workload (cold-start / value-churn / pattern-reuse mix,
# 1000 req/s offered — about 2× the single-core service capacity)
# against the concurrent solver service, plus the same schedule against
# a single-factor-worker configuration. The fresh record is gated
# against the committed one (p95 e2e latency, cache hit rate, goodput —
# same SPLU_BENCH_TOL_PCT knob), and the goodput speedup of the
# concurrent configuration over the single-worker replay must hold the
# ≥ 2× acceptance bar. Takes a few minutes: the schedule spans 100 s
# and both replays drain ~900 cold factorizations.
cp results/BENCH_solver.json /tmp/BENCH_loadgen.baseline.json || true
cargo run --release -q --bin splu -- loadgen \
    --factor-workers 12 --compare-single \
    --stats-json results/BENCH_solver.json \
    --metrics-out results/METRICS_loadgen.json \
    --baseline /tmp/BENCH_loadgen.baseline.json
grep -q '"bench": "solver_serve"' results/BENCH_solver.json
grep -q '"mode": "loadgen"' results/BENCH_solver.json
grep -qE '"requests": 10[0-9]{4}' results/BENCH_solver.json
grep -q '"req_per_sec": ' results/BENCH_solver.json
grep -q '"refactor_ahead": ' results/BENCH_solver.json
grep -q '"single_worker": ' results/BENCH_solver.json
test "$(grep -c '"shard": ' results/BENCH_solver.json)" -eq 4
grep -qF '"splu_factor_worker_busy_us{worker=' results/METRICS_loadgen.json
awk -F': ' '/"speedup_vs_single_worker"/ { ok = ($2 + 0 >= 2.0) }
    END { exit !ok }' results/BENCH_solver.json

# critical-path attribution: trace sherman5 on the 2×2 grid and write
# the example analyze report (JSON + ASCII). The sustained pipeline
# depth must respect the Theorem 2 p_c + W bound.
cargo run --release -q --bin splu -- analyze sherman5 --procs 4 \
    --out results/ANALYZE_sherman5_2x2.json \
    >results/ANALYZE_sherman5_2x2.txt
grep -q '"report": "splu_analyze"' results/ANALYZE_sherman5_2x2.json
grep -q '"pipeline_depth_ok": true' results/ANALYZE_sherman5_2x2.json
grep -q 'bound p_c + W = 3' results/ANALYZE_sherman5_2x2.txt
# the task-DAG attribution block: subtree-local vs separator task split
grep -q '"taskdag": ' results/ANALYZE_sherman5_2x2.json
grep -q '"subtree_task_share": ' results/ANALYZE_sherman5_2x2.json
grep -q 'task-DAG: ' results/ANALYZE_sherman5_2x2.txt

# perf record: factor the synthetic suite with the seq/par1d/par2d
# drivers. The fresh run is gated against the committed record — a
# GFLOP/s drop beyond the tolerance on any driver/matrix fails — and on
# being well-formed: every driver of every matrix reports a positive
# GFLOP/s with its update-stage breakdown, and the warmed sequential
# arena grew zero buffers (the allocation-free hot-path proof). The
# default tolerance here is 40 (not the gate's built-in 15): the
# parallel drivers oversubscribe one core with thread-simulated
# processors, and their GFLOP/s swings ±30-50 % run to run with OS
# scheduling on an otherwise idle 1-core host (the suite matrices
# factor in tens of ms, so a single preemption moves the number).
# Export SPLU_BENCH_TOL_PCT to tighten or loosen.
cp results/BENCH_lu.json /tmp/BENCH_lu.baseline.json
if ! SPLU_BENCH_TOL_PCT="${SPLU_BENCH_TOL_PCT:-40}" \
    cargo run --release -q --bin splu -- bench-lu \
    --out results/BENCH_lu.json --baseline /tmp/BENCH_lu.baseline.json; then
    echo "verify: bench gate tripped; offending BENCH_lu.json diff:" >&2
    diff -u /tmp/BENCH_lu.baseline.json results/BENCH_lu.json >&2 || true
    exit 1
fi
grep -q '"bench": "lu_factor"' results/BENCH_lu.json
# 3 matrices × (seq + par1d + par2d + 4 lookahead-sweep points)
test "$(grep -c '"gflops": ' results/BENCH_lu.json)" -eq 21
if grep -E '"gflops": (0\.0*[,}]|-)' results/BENCH_lu.json; then
    echo "verify: nonpositive GFLOP/s in BENCH_lu.json" >&2
    exit 1
fi
test "$(grep -c '"warmed_grow_events": 0' results/BENCH_lu.json)" -eq 3
test "$(grep -c '"update": ' results/BENCH_lu.json)" -eq 9
test "$(grep -c '"panel_wait_secs": ' results/BENCH_lu.json)" -eq 21
test "$(grep -c '"par2d_lookahead_sweep": ' results/BENCH_lu.json)" -eq 3
test "$(grep -c '"speedup_vs_prev": ' results/BENCH_lu.json)" -eq 3
test "$(grep -c '"pivot_wait_share": ' results/BENCH_lu.json)" -eq 3

# modeled large-matrix tier (hier50k / hiergrid50k / hier200k /
# hier500k): the task-DAG engine against the block-cyclic baseline
# under the deterministic T3E discrete-event model — no wall-clock
# noise, so the gate (per-matrix regression vs the record, plus the
# geomean speedup_vs_seq > 1.0 acceptance floor) is exact. The run
# carries the small-suite record forward from the file written above,
# keeping results/BENCH_lu.json one complete document. ~70 s: the
# hier500k symbolic analysis dominates.
if ! SPLU_BENCH_TOL_PCT="${SPLU_BENCH_TOL_PCT:-40}" \
    cargo run --release -q --bin splu -- bench-lu --suite large \
    --out results/BENCH_lu.json; then
    echo "verify: large-suite gate tripped; offending BENCH_lu.json diff:" >&2
    diff -u /tmp/BENCH_lu.baseline.json results/BENCH_lu.json >&2 || true
    exit 1
fi
grep -q '"large_suite": ' results/BENCH_lu.json
# 4 matrices × (model_secs + speedup_vs_seq) + the geomean block
test "$(grep -c '"par2d_taskdag": ' results/BENCH_lu.json)" -eq 9
test "$(grep -c '"nsubtrees": ' results/BENCH_lu.json)" -eq 4
# headline (small) + large_suite
test "$(grep -c '"geomean_speedup_vs_seq": ' results/BENCH_lu.json)" -eq 2
# the carry-forward preserved the freshly measured small record
test "$(grep -c '"gflops": ' results/BENCH_lu.json)" -eq 21
test "$(grep -c '"panel_wait_secs": ' results/BENCH_lu.json)" -eq 21

echo "verify: all checks passed"
