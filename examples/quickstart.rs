//! Quickstart: factor a nonsymmetric sparse matrix with partial pivoting
//! and solve a linear system, using the full S\* pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};

fn main() {
    // A nonsymmetric convection–diffusion operator on a 40×40 grid
    // (the structural class of the paper's oil-reservoir matrices).
    let a = gen::grid2d(40, 40, 0.6, ValueModel::default());
    let n = a.ncols();
    println!("matrix: {} × {}, {} nonzeros", n, n, a.nnz());

    // 1. Analyze: Duff transversal → minimum degree on AᵀA → static
    //    symbolic factorization → 2D L/U supernode partition → amalgamation.
    let t = std::time::Instant::now();
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    println!(
        "analyze:  {:>9.3?}  (static factor entries: {}, {} blocks, avg supernode {:.1})",
        t.elapsed(),
        solver.static_factor_nnz(),
        solver.pattern.nblocks(),
        solver.pattern.part.avg_width(),
    );

    // 2. Numeric factorization with partial pivoting (BLAS-3 dominated).
    let t = std::time::Instant::now();
    let lu = solver.factor().expect("matrix is nonsingular");
    println!(
        "factor:   {:>9.3?}  (BLAS-3 fraction: {:.1} %, {} row interchanges)",
        t.elapsed(),
        100.0 * lu.stats.blas3_fraction(),
        lu.stats.row_interchanges,
    );

    // 3. Solve A x = b for a known solution.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) * 0.25 - 2.0).collect();
    let b = a.matvec(&x_true);
    let t = std::time::Instant::now();
    let x = lu.solve(&b);
    let err = x
        .iter()
        .zip(&x_true)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
    println!("solve:    {:>9.3?}  (max error {err:.3e})", t.elapsed());

    // 4. Residual check against the original matrix.
    let ax = a.matvec(&x);
    let r = ax
        .iter()
        .zip(&b)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
    println!("residual: ‖Ax − b‖∞ = {r:.3e}");
    // forward error depends on conditioning; the backward residual is the
    // stability guarantee of partial pivoting
    assert!(err < 1e-5, "solution should be accurate");
    assert!(r < 1e-10 * a.norm_inf(), "solve should be backward stable");
}
