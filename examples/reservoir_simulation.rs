//! Implicit oil-reservoir simulation — the workload class behind the
//! paper's `orsreg1` / `saylr4` / `sherman*` matrices.
//!
//! A 3D convection–diffusion operator is time-stepped implicitly:
//! `(I + Δt·A) uⁿ⁺¹ = uⁿ`. The system matrix pattern is fixed across
//! steps, so the S\* pipeline analyzes once (transversal, ordering,
//! static symbolic factorization, partitioning) and only refactors
//! numerically when the Jacobian changes; every intermediate step reuses
//! the factors for a triangular solve. The same run is repeated with the
//! Gilbert–Peierls baseline for comparison.
//!
//! ```sh
//! cargo run --release --example reservoir_simulation
//! ```

use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};
use sstar::sparse::{CooMatrix, CscMatrix};

/// Build `I + dt·A` on the pattern of `a` (diagonal is present in `a`).
fn implicit_operator(a: &CscMatrix, dt: f64) -> CscMatrix {
    let n = a.ncols();
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for (i, j, v) in a.iter() {
        let val = if i == j { 1.0 + dt * v } else { dt * v };
        coo.push(i, j, val);
    }
    coo.to_csc()
}

fn main() {
    // 21×21×5 reservoir grid = order 2205, the paper's orsreg1 shape.
    let a = gen::grid3d(21, 21, 5, 0.5, ValueModel::default());
    let n = a.ncols();
    let dt = 0.05;
    let sys = implicit_operator(&a, dt);
    println!(
        "reservoir operator: n = {n}, nnz = {} (orsreg1-class 3D stencil)",
        sys.nnz()
    );

    // initial condition: injection well in one corner
    let mut u = vec![0.0f64; n];
    u[0] = 1.0;

    // ---- S* pipeline: analyze once, factor once, solve every step ----
    let t0 = std::time::Instant::now();
    let solver = SparseLuSolver::analyze(&sys, FactorOptions::default());
    let analyze_t = t0.elapsed();
    let t0 = std::time::Instant::now();
    let lu = solver.factor().expect("nonsingular");
    let factor_t = t0.elapsed();

    let nsteps = 50;
    let t0 = std::time::Instant::now();
    let mut us = u.clone();
    for _ in 0..nsteps {
        us = lu.solve(&us);
    }
    let solve_t = t0.elapsed();
    println!(
        "S*:        analyze {analyze_t:>9.3?}  factor {factor_t:>9.3?}  {nsteps} solves {solve_t:>9.3?} \
         (BLAS-3 {:.0} %)",
        100.0 * lu.stats.blas3_fraction()
    );

    // ---- Gilbert–Peierls baseline ----
    let t0 = std::time::Instant::now();
    let gp = sstar::superlu::gp_factor(&sys, 1.0).expect("nonsingular");
    let gp_factor_t = t0.elapsed();
    let t0 = std::time::Instant::now();
    let mut ug = u.clone();
    for _ in 0..nsteps {
        ug = sstar::superlu::gp_solve(&gp, &ug);
    }
    let gp_solve_t = t0.elapsed();
    println!(
        "baseline:  factor  {gp_factor_t:>9.3?}  {nsteps} solves {solve_t_gp:>9.3?}  ({} flops)",
        gp.flops,
        solve_t_gp = gp_solve_t,
    );

    // both time-steppers must agree
    let diff = us
        .iter()
        .zip(&ug)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
    println!("S* vs baseline trajectory difference: {diff:.3e}");
    assert!(diff < 1e-6, "solvers diverged");

    // mass should spread but stay bounded (diffusion-dominated stability)
    let mass: f64 = us.iter().map(|v| v.abs()).sum();
    println!("final |mass| = {mass:.4}");
}
