//! Newton-style circuit solving — the workload class behind the paper's
//! `jpwh991` matrix (circuit physics modeling).
//!
//! A nonlinear device model is linearized repeatedly: the Jacobian's
//! *pattern* never changes (the netlist is fixed) while its *values* do.
//! The S\* pipeline exploits exactly this split: symbolic analysis runs
//! once, and each Newton iteration only pays the numeric factorization —
//! with partial pivoting for stability, since device Jacobians are
//! nonsymmetric and far from diagonally dominant.
//!
//! ```sh
//! cargo run --release --example circuit_solve
//! ```

use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};
use sstar::sparse::{CooMatrix, CscMatrix};

/// "Re-extract" the Jacobian: same pattern as `base`, values perturbed by
/// the current operating point `x` (a stand-in for device linearization).
fn jacobian(base: &CscMatrix, x: &[f64], iter: usize) -> CscMatrix {
    let n = base.ncols();
    let mut coo = CooMatrix::with_capacity(n, n, base.nnz());
    for (i, j, v) in base.iter() {
        // mild nonlinearity: conductances drift with the local voltage
        let g = v * (1.0 + 0.1 * (x[j] * (1.0 + iter as f64 * 0.01)).tanh());
        coo.push(i, j, if i == j { g + 0.5 } else { g });
    }
    coo.to_csc()
}

fn main() {
    // jpwh991-shaped random circuit matrix
    let base = gen::random_sparse(991, 5, 0.9, ValueModel::default());
    let n = base.ncols();
    println!(
        "netlist Jacobian: n = {n}, nnz = {} (jpwh991-class)",
        base.nnz()
    );

    // Symbolic analysis once — the pattern is fixed for all iterations.
    let t0 = std::time::Instant::now();
    let solver = SparseLuSolver::analyze(&base, FactorOptions::default());
    println!(
        "one-time analysis: {:?} ({} supernodes after amalgamation)",
        t0.elapsed(),
        solver.pattern.nblocks()
    );

    // "Newton" loop: refactor values on the fixed structure, solve.
    let b: Vec<f64> = (0..n)
        .map(|i| if i % 97 == 0 { 1.0 } else { 0.0 })
        .collect();
    let mut x = vec![0.0f64; n];
    let mut factor_total = std::time::Duration::ZERO;
    let mut solve_total = std::time::Duration::ZERO;
    for iter in 0..6 {
        let j = jacobian(&base, &x, iter);
        // numeric phase only: scatter new values into the same block
        // pattern and refactor (permutations from the analysis are reused)
        let jp = j.permute(&solver.row_perm, &solver.col_perm);
        let t0 = std::time::Instant::now();
        let mut blocks = sstar::core::BlockMatrix::from_csc(&jp, solver.pattern.clone());
        let (pivots, stats) =
            sstar::core::factor_sequential(&mut blocks).expect("nonsingular Jacobian");
        factor_total += t0.elapsed();

        let t0 = std::time::Instant::now();
        let pb: Vec<f64> = (0..n).map(|i| b[solver.row_perm.old_of_new(i)]).collect();
        let z = sstar::core::solve::solve_factored(&blocks, &pivots, &pb);
        let xn: Vec<f64> = (0..n).map(|jj| z[solver.col_perm.new_of_old(jj)]).collect();
        solve_total += t0.elapsed();

        let step = xn
            .iter()
            .zip(&x)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        // verify the residual of this linear solve
        let r = j
            .matvec(&xn)
            .iter()
            .zip(&b)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        println!(
            "iter {iter}: |Δx|∞ = {step:.3e}, linear residual = {r:.2e}, \
             pivoting interchanged {} rows",
            stats.row_interchanges
        );
        assert!(r < 1e-8, "linear solve must be accurate");
        x = xn;
    }
    println!("totals: numeric factorization {factor_total:?}, solves {solve_total:?}");
}
