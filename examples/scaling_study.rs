//! Parallel scaling study: 1D vs 2D codes on the thread machine, plus
//! projected Cray T3E times from the discrete-event schedule simulator —
//! a miniature of the paper's §6 experiments.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use sstar::prelude::*;
use sstar::sched::{ca_schedule, graph_schedule, simulate, TaskGraph};
use sstar::sparse::gen::{self, ValueModel};
use std::time::Instant;

fn main() {
    // goodwin-class block fluid-flow matrix, scaled to run quickly
    let a = gen::block_fluid(420, 10, 18, 0.3, ValueModel::default());
    println!("matrix: n = {}, nnz = {}", a.ncols(), a.nnz());

    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let ap = &solver.permuted;
    let pattern = solver.pattern.clone();

    // sequential reference
    let t0 = Instant::now();
    let lu = solver.factor().expect("nonsingular");
    let t_seq = t0.elapsed().as_secs_f64();
    println!(
        "sequential: {:.3} s (BLAS-3 {:.0} %)\n",
        t_seq,
        100.0 * lu.stats.blas3_fraction()
    );

    // The thread backend validates the distributed protocols (its wall
    // clock is meaningless on hosts with fewer cores than processors —
    // this build machine has one core); speedups come from the machine
    // model below.
    println!("-- thread backend (protocol validation) -------------------------");
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>12}",
        "P", "1D-CA (s)", "msgs", "2D-async (s)", "msgs"
    );
    for p in [2usize, 4] {
        let t0 = Instant::now();
        let r1 = factor_par1d(ap, pattern.clone(), p, Strategy1d::ComputeAhead);
        let t1d = t0.elapsed().as_secs_f64();
        let grid = Grid::for_procs(p);
        let t0 = Instant::now();
        let r2 = factor_par2d(ap, pattern.clone(), grid, Sync2d::Async);
        let t2d = t0.elapsed().as_secs_f64();
        // confirm identical pivots across all variants
        assert_eq!(r1.pivots, r2.pivots);
        println!(
            "{p:>5} {t1d:>12.3} {:>12} {t2d:>14.3} {:>12}",
            r1.comm.0, r2.comm.0
        );
    }
    println!("(all variants produced bitwise-identical factors)");

    println!("\n-- projected Cray T3E (discrete-event model) -------------------");
    let graph = TaskGraph::build(&pattern);
    println!(
        "{:>5} {:>12} {:>12} {:>12}",
        "P", "CA (s)", "RAPID (s)", "RAPID gain"
    );
    for p in [2usize, 4, 8, 16, 32, 64] {
        let ca = simulate(&graph, &ca_schedule(&graph, p), &T3E).makespan;
        let gs = simulate(&graph, &graph_schedule(&graph, p, &T3E), &T3E).makespan;
        println!(
            "{p:>5} {ca:>12.4} {gs:>12.4} {:>11.1}%",
            100.0 * (1.0 - gs / ca)
        );
    }
}
