//! # S\* — sparse LU factorization with partial pivoting on distributed memory machines
//!
//! A from-scratch Rust reproduction of
//! *Efficient Sparse LU Factorization with Partial Pivoting on Distributed
//! Memory Architectures* (Fu, Jiao & Yang; SC'96 / IEEE TPDS 9(2), 1998),
//! including every substrate the paper depends on: sparse formats and
//! orderings, the George–Ng static symbolic factorization, 2D L/U
//! supernode partitioning with amalgamation, dense BLAS kernels, a
//! SuperLU-like sequential baseline, a thread-based distributed-memory
//! machine with a T3D/T3E cost model, task-graph scheduling (compute-ahead
//! and RAPID-style graph scheduling), and the 1D and 2D parallel
//! factorization codes.
//!
//! ## Quick start
//!
//! ```
//! use sstar::prelude::*;
//!
//! // a nonsymmetric convection–diffusion operator on a 30×30 grid
//! let a = sstar::sparse::gen::grid2d(30, 30, 0.5, Default::default());
//! let n = a.ncols();
//!
//! // analyze (transversal → min-degree(AᵀA) → static symbolic →
//! // supernodes → amalgamation) and factor with partial pivoting
//! let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
//! let lu = solver.factor().expect("nonsingular");
//!
//! // solve A x = b
//! let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
//! let b = a.matvec(&x_true);
//! let x = lu.solve(&b);
//! let err = x.iter().zip(&x_true).fold(0.0_f64, |m, (p, q)| m.max((p - q).abs()));
//! assert!(err < 1e-8);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`kernels`] | `splu-kernels` | dense BLAS-1/2/3, dense GEPP oracle, flop accounting |
//! | [`sparse`] | `splu-sparse` | CSC/COO formats, Matrix-Market I/O, pattern algebra, generators, the benchmark suite |
//! | [`order`] | `splu-order` | Duff transversal, minimum degree on `AᵀA`, RCM, etree utilities |
//! | [`symbolic`] | `splu-symbolic` | static symbolic factorization, supernodes, amalgamation, 2D block pattern |
//! | [`superlu`] | `splu-superlu` | Gilbert–Peierls GEPP baseline (op counts, nnz, supernode stats) |
//! | [`machine`] | `splu-machine` | thread message-passing runtime, processor grid, T3D/T3E cost model |
//! | [`probe`] | `splu-probe` | flight-recorder tracing: spans/counters, Chrome-trace & summary-JSON export |
//! | [`sched`] | `splu-sched` | task DAG, CA & graph schedules, discrete-event simulator, Gantt, load balance |
//! | [`core`] | `splu-core` | S\* numeric factorization: sequential, 1D (CA / RAPID-style), 2D (async / barrier), solvers |
//! | [`solver`] | `splu-solver` | analyze/factorize/solve service: staged handles, pattern-keyed factorization cache, bounded solve work queue, concurrent serving layer (factor pool, sharded cache, refactor-ahead), batch driver |
//! | [`load`] | `splu-load` | seeded multi-tenant workload generator and open-loop load driver (`splu loadgen`) |
//!
//! See `DESIGN.md` for the paper↔module inventory and `EXPERIMENTS.md` for
//! the reproduced tables and figures.

pub use splu_core as core;
pub use splu_kernels as kernels;
pub use splu_load as load;
pub use splu_machine as machine;
pub use splu_order as order;
pub use splu_probe as probe;
pub use splu_sched as sched;
pub use splu_solver as solver;
pub use splu_sparse as sparse;
pub use splu_superlu as superlu;
pub use splu_symbolic as symbolic;

/// The most commonly used items in one import.
pub mod prelude {
    pub use splu_core::par1d::{factor_par1d, Strategy1d};
    pub use splu_core::par2d::{factor_par2d, Sync2d};
    pub use splu_core::pipeline::lu_solve;
    pub use splu_core::{FactorOptions, FactorizedLu, SolverError, SparseLuSolver};
    pub use splu_machine::{Grid, MachineModel, T3D, T3E};
    pub use splu_order::ColumnOrdering;
    pub use splu_solver::{Analysis, Factorization, SolverService};
    pub use splu_sparse::{CooMatrix, CscMatrix, Perm};
}
