//! `splu` — command-line driver for the S\* sparse LU solver.
//!
//! ```text
//! splu info   <matrix.mtx>              print structure statistics
//! splu factor <matrix.mtx> [opts]       analyze + factor, report stats
//! splu solve  <matrix.mtx> [rhs.txt]    factor and solve (default rhs: A·1)
//! splu project <matrix.mtx> [opts]      projected T3D/T3E parallel times
//!
//! options:
//!   --block-size N     max supernode width        (default 25)
//!   --amalgamate R     amalgamation factor        (default 4)
//!   --ordering X       natural | mmd | atpa | rcm (default mmd)
//!   --refine N         iterative refinement steps (default 1, solve only)
//!   --procs P          processor count            (default 16, project only)
//! ```

use sstar::prelude::*;
use sstar::sparse::hb::read_harwell_boeing_file;
use sstar::sparse::io::read_matrix_market_file;
use sstar::sparse::pattern::structural_symmetry;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: splu <info|factor|solve|project> <matrix.mtx> \
         [--block-size N] [--amalgamate R] [--ordering natural|mmd|atpa|rcm] \
         [--refine N] [--procs P] [--rhs file]"
    );
    ExitCode::from(2)
}

struct Cli {
    cmd: String,
    matrix: String,
    options: FactorOptions,
    refine_steps: usize,
    procs: usize,
    rhs: Option<String>,
}

fn parse_args(mut args: std::env::Args) -> Option<Cli> {
    args.next(); // program name
    let cmd = args.next()?;
    let matrix = args.next()?;
    let mut options = FactorOptions::default();
    let mut refine_steps = 1usize;
    let mut procs = 16usize;
    let mut rhs = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--block-size" => options.block_size = args.next()?.parse().ok()?,
            "--amalgamate" => options.amalgamation = args.next()?.parse().ok()?,
            "--ordering" => {
                options.ordering = match args.next()?.as_str() {
                    "natural" => ColumnOrdering::Natural,
                    "mmd" => ColumnOrdering::MinDegreeAtA,
                    "atpa" => ColumnOrdering::MinDegreeAtPlusA,
                    "rcm" => ColumnOrdering::ReverseCuthillMcKee,
                    other => {
                        eprintln!("unknown ordering `{other}`");
                        return None;
                    }
                }
            }
            "--refine" => refine_steps = args.next()?.parse().ok()?,
            "--procs" => procs = args.next()?.parse().ok()?,
            "--rhs" => rhs = Some(args.next()?),
            other => {
                eprintln!("unknown flag `{other}`");
                return None;
            }
        }
    }
    Some(Cli {
        cmd,
        matrix,
        options,
        refine_steps,
        procs,
        rhs,
    })
}

fn main() -> ExitCode {
    let Some(cli) = parse_args(std::env::args()) else {
        return usage();
    };
    // pick the reader by extension: .mtx = Matrix Market, .rua/.rsa/.pua/
    // .psa/.hb = Harwell–Boeing
    let lower = cli.matrix.to_lowercase();
    let is_hb = [".rua", ".rsa", ".pua", ".psa", ".hb"]
        .iter()
        .any(|ext| lower.ends_with(ext));
    let a = if is_hb {
        match read_harwell_boeing_file(&cli.matrix) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("splu: cannot read {}: {e}", cli.matrix);
                return ExitCode::FAILURE;
            }
        }
    } else {
        match read_matrix_market_file(&cli.matrix) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("splu: cannot read {}: {e}", cli.matrix);
                return ExitCode::FAILURE;
            }
        }
    };
    if a.nrows() != a.ncols() {
        eprintln!("splu: matrix must be square ({}×{})", a.nrows(), a.ncols());
        return ExitCode::FAILURE;
    }
    println!(
        "matrix: {} ({}×{}, {} nonzeros, symmetry {:.2})",
        cli.matrix,
        a.nrows(),
        a.ncols(),
        a.nnz(),
        structural_symmetry(&a)
    );

    match cli.cmd.as_str() {
        "info" => {
            let solver = SparseLuSolver::analyze(&a, cli.options);
            println!("zero-free diagonal after transversal: yes");
            println!("static factor entries: {}", solver.static_factor_nnz());
            println!(
                "fill ratio: {:.1}× nnz(A)",
                solver.static_factor_nnz() as f64 / a.nnz() as f64
            );
            println!(
                "supernodes: {} (avg width {:.2})",
                solver.pattern.nblocks(),
                solver.pattern.part.avg_width()
            );
            println!(
                "block storage (padding incl.): {} entries",
                solver.pattern.storage_entries()
            );
            println!(
                "full-block DGEMM share of update flops: {:.1} %",
                100.0 * solver.pattern.dense_update_fraction()
            );
            ExitCode::SUCCESS
        }
        "factor" => {
            let t0 = std::time::Instant::now();
            let solver = SparseLuSolver::analyze(&a, cli.options);
            let t_an = t0.elapsed();
            let t0 = std::time::Instant::now();
            match solver.factor() {
                Ok(lu) => {
                    println!("analyze: {t_an:?}");
                    println!("factor:  {:?}", t0.elapsed());
                    println!(
                        "BLAS-3 fraction: {:.1} %, row interchanges: {}",
                        100.0 * lu.stats.blas3_fraction(),
                        lu.stats.row_interchanges
                    );
                    println!(
                        "pivot growth: {:.3e}",
                        sstar::core::pivot_growth(&lu, &a)
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("splu: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "solve" => {
            let n = a.ncols();
            let b: Vec<f64> = match &cli.rhs {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(text) => {
                        let vals: Result<Vec<f64>, _> = text
                            .split_whitespace()
                            .map(|t| t.parse::<f64>())
                            .collect();
                        match vals {
                            Ok(v) if v.len() == n => v,
                            Ok(v) => {
                                eprintln!("splu: rhs has {} values, need {n}", v.len());
                                return ExitCode::FAILURE;
                            }
                            Err(e) => {
                                eprintln!("splu: bad rhs: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("splu: cannot read rhs: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => a.matvec(&vec![1.0; n]),
            };
            let solver = SparseLuSolver::analyze(&a, cli.options);
            match solver.factor() {
                Ok(lu) => {
                    let (x, q) = sstar::core::refine(&lu, &a, &b, cli.refine_steps);
                    println!(
                        "solved: residual∞ {:.3e}, backward error {:.3e}, {} refinement step(s)",
                        q.residual_inf, q.backward_error, q.steps
                    );
                    // print a compact solution summary
                    let nshow = x.len().min(5);
                    println!("x[0..{nshow}] = {:?}", &x[..nshow]);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("splu: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "project" => {
            use sstar::sched::{build_2d_model, graph_schedule, simulate, Mode2d, TaskGraph};
            let solver = SparseLuSolver::analyze(&a, cli.options);
            let g = TaskGraph::build(&solver.pattern);
            println!("projected parallel factorization times (P = {}):", cli.procs);
            for machine in [&T3D, &T3E] {
                let t1 = simulate(&g, &graph_schedule(&g, cli.procs, machine), machine).makespan;
                let grid = Grid::for_procs(cli.procs);
                let m2 = build_2d_model(&solver.pattern, grid, machine, Mode2d::Async);
                let t2 = simulate(&m2.graph, &m2.schedule, machine).makespan;
                println!(
                    "  {:<9}  1D graph-scheduled: {:.3e} s   2D async ({}x{}): {:.3e} s",
                    machine.name, t1, grid.pr, grid.pc, t2
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
