//! `splu` — command-line driver for the S\* sparse LU solver.
//!
//! ```text
//! splu info   <matrix.mtx>              print structure statistics
//! splu factor <matrix.mtx> [opts]       analyze + factor, report stats
//! splu solve  <matrix.mtx> [opts]       analyze → factorize → solve via the
//!                                       solver-service lifecycle handles
//!                                       (default rhs: A·1)
//! splu serve  <requests.txt> [opts]     batch solver service: run a workload
//!                                       file through the factorization cache
//!                                       and bounded solve work queue
//! splu project <matrix.mtx> [opts]      projected T3D/T3E parallel times
//! splu trace  <matrix.mtx> [opts]       factor on P thread-processors with
//!                                       the flight recorder on; write a
//!                                       Perfetto-loadable Chrome trace
//! splu analyze <matrix|suite> [opts]    factor in-process (or load a
//!                                       recorded trace with --from-trace)
//!                                       and attribute wall time per rank
//!                                       into panel/trsm/gemm/swap/
//!                                       pivot-wait/idle; report the
//!                                       critical path, pipeline depth vs
//!                                       the Theorem 2 bound, and message
//!                                       volume vs the 2D cost model
//! splu bench-lu [opts]                  factor the synthetic suite with the
//!                                       seq/par1d/par2d drivers; write the
//!                                       GFLOP/s + scratch-footprint record
//!                                       (default results/BENCH_lu.json)
//! splu loadgen [opts]                   multi-tenant load benchmark: generate
//!                                       a seeded open-loop schedule (cold-
//!                                       start / value-churn / pattern-reuse
//!                                       traffic) and replay it against the
//!                                       concurrent solver service; write the
//!                                       goodput + latency record (default
//!                                       results/BENCH_solver.json)
//!
//! options (each subcommand accepts its own subset; an unknown flag
//! error names the flag and lists the valid ones):
//!   --block-size N     max supernode width        (default 25)
//!   --amalgamate R     amalgamation factor        (default 4)
//!   --ordering X       natural | mmd | atpa | rcm (default mmd)
//!   --refine N         iterative refinement steps (default 1, solve only)
//!   --lookahead W      2D executor lookahead window (default 1; 0 = the
//!                                                 strictly in-order schedule)
//!   --procs P          processor count    (default 16 project, 4
//!                                          trace/analyze; factor: run the
//!                                          2D driver)
//!   --out FILE         Chrome trace-event JSON    (default trace.json;
//!                                                 analyze: report JSON,
//!                                                 default analyze.json)
//!   --stats-json FILE  run-summary JSON           (trace/serve)
//!   --gantt-width N    ASCII Gantt width, 0 = off (default 64, trace only)
//!   --from-trace FILE  analyze a recorded Chrome trace instead of
//!                                                 running in-process
//!   --requests X       serve: workload file (alias for the positional);
//!                      loadgen: solve-request count  (default 100000)
//!   --workers N        solve worker threads       (default 2 serve,
//!                                                 4 loadgen)
//!   --queue-cap N      work-queue capacity        (default 8 serve,
//!                                                 256 loadgen)
//!   --cache-bytes N    factorization-cache budget (serve/loadgen)
//!   --metrics-out FILE metrics snapshot           (serve/loadgen; `.json`
//!                                                 = JSON snapshot, anything
//!                                                 else Prometheus text)
//!   --tenants N        tenant population           (default 48, loadgen)
//!   --seed N           workload seed               (loadgen only)
//!   --span-ms MS       open-loop arrival window    (default 1 ms per
//!                                                 request, loadgen only)
//!   --factor-workers N factorization worker threads (default 4, loadgen)
//!   --shards N         cache + solve-queue shards  (default 4, loadgen)
//!   --compare-single   replay the same schedule with one factor worker
//!                      first and record the goodput speedup (loadgen)
//!   --min-secs S       per-driver measurement time (default 0.2,
//!                                                 bench-lu only)
//!   --suite X          bench-lu suite: small (measured seq/par1d/par2d,
//!                      default) | large (the n = 50k-500k hierarchical
//!                      tier through the T3E machine model) | large-smoke
//!                      (one shrunk large-tier instance for CI)
//!   --baseline FILE    previous record to gate against (bench-lu/serve;
//!                                                 bench-lu default: the
//!                                                 --out file; tolerance
//!                                                 from SPLU_BENCH_TOL_PCT,
//!                                                 %)
//! ```

use sstar::prelude::*;
use sstar::sparse::hb::read_harwell_boeing_file;
use sstar::sparse::io::read_matrix_market_file;
use sstar::sparse::pattern::structural_symmetry;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: splu <info|factor|solve|serve|project|trace|analyze|bench-lu|loadgen> \
         <matrix.mtx|requests.txt|suite-name> \
         [--block-size N] [--amalgamate R] [--ordering natural|mmd|atpa|rcm] \
         [--refine N] [--lookahead W] [--procs P] [--rhs file] [--out file] \
         [--stats-json file] [--gantt-width N] [--from-trace file] \
         [--requests file|N] [--workers N] [--queue-cap N] [--cache-bytes N] \
         [--metrics-out file] [--min-secs S] [--baseline file] [--tenants N] \
         [--seed N] [--span-ms MS] [--factor-workers N] [--shards N] \
         [--compare-single]"
    );
    ExitCode::from(2)
}

/// The named flags each subcommand accepts — the shared parser rejects
/// anything outside the subcommand's set, naming the flag and listing
/// the valid ones.
fn allowed_flags(cmd: &str) -> Option<&'static [&'static str]> {
    const OPTS: [&str; 3] = ["--block-size", "--amalgamate", "--ordering"];
    macro_rules! flags {
        ($($extra:literal),*) => {{
            const F: &[&str] = &[OPTS[0], OPTS[1], OPTS[2] $(, $extra)*];
            Some(F)
        }};
    }
    match cmd {
        "info" => flags!(),
        "factor" => flags!("--procs", "--lookahead"),
        "solve" => flags!("--refine", "--rhs"),
        "serve" => flags!(
            "--requests",
            "--workers",
            "--queue-cap",
            "--cache-bytes",
            "--stats-json",
            "--metrics-out",
            "--baseline"
        ),
        "project" => flags!("--procs"),
        "trace" => flags!(
            "--procs",
            "--lookahead",
            "--out",
            "--stats-json",
            "--gantt-width"
        ),
        "analyze" => flags!("--procs", "--lookahead", "--out", "--from-trace"),
        "bench-lu" => Some(&[
            "--out",
            "--min-secs",
            "--baseline",
            "--lookahead",
            "--suite",
        ]),
        "loadgen" => flags!(
            "--requests",
            "--tenants",
            "--seed",
            "--span-ms",
            "--factor-workers",
            "--workers",
            "--shards",
            "--queue-cap",
            "--cache-bytes",
            "--stats-json",
            "--metrics-out",
            "--baseline",
            "--compare-single"
        ),
        _ => None,
    }
}

struct Cli {
    cmd: String,
    /// Matrix file — or, for `serve`, the workload/requests file.
    matrix: String,
    options: FactorOptions,
    refine_steps: usize,
    procs: Option<usize>,
    rhs: Option<String>,
    out: String,
    stats_json: Option<String>,
    gantt_width: usize,
    /// Solve worker threads; the default depends on the subcommand
    /// (2 for `serve`, 4 for `loadgen`).
    workers: Option<usize>,
    /// Work-queue capacity; default 8 for `serve`, 256 for `loadgen`.
    queue_cap: Option<usize>,
    cache_bytes: Option<usize>,
    min_secs: f64,
    baseline: Option<String>,
    metrics_out: Option<String>,
    from_trace: Option<String>,
    /// bench-lu suite selection (small | large | large-smoke).
    suite: splu_bench::bench_lu::SuiteSel,
    // loadgen-only knobs
    load_requests: usize,
    tenants: usize,
    seed: Option<u64>,
    span_ms: Option<u64>,
    factor_workers: usize,
    shards: usize,
    compare_single: bool,
}

/// The value following `flag`, or an error naming the flag.
fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag}: missing value"))
}

/// Parse the value following `flag`, or an error naming flag and value.
fn flag_parse<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let v = flag_value(args, flag)?;
    v.parse()
        .map_err(|_| format!("{flag}: invalid value `{v}`"))
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut args = args.peekable();
    args.next(); // program name
    let cmd = args.next().ok_or("missing <command>")?;
    // The positional input may be omitted when `--requests` is used.
    let matrix = match args.peek() {
        Some(s) if !s.starts_with("--") => args.next().unwrap(),
        _ => String::new(),
    };
    let mut cli = Cli {
        cmd,
        matrix,
        options: FactorOptions::default(),
        refine_steps: 1,
        procs: None,
        rhs: None,
        out: "trace.json".to_string(),
        stats_json: None,
        gantt_width: 64,
        workers: None,
        queue_cap: None,
        cache_bytes: None,
        min_secs: 0.2,
        baseline: None,
        metrics_out: None,
        from_trace: None,
        suite: splu_bench::bench_lu::SuiteSel::Small,
        load_requests: 100_000,
        tenants: 48,
        seed: None,
        span_ms: None,
        factor_workers: 4,
        shards: 4,
        compare_single: false,
    };
    let valid = allowed_flags(&cli.cmd).ok_or_else(|| {
        format!(
            "unknown command `{}` (expected \
             info|factor|solve|serve|project|trace|analyze|bench-lu|loadgen)",
            cli.cmd
        )
    })?;
    while let Some(flag) = args.next() {
        if !valid.contains(&flag.as_str()) {
            return Err(format!(
                "unknown flag `{flag}` for `splu {}` (valid flags: {})",
                cli.cmd,
                valid.join(", ")
            ));
        }
        match flag.as_str() {
            "--block-size" => cli.options.block_size = flag_parse(&mut args, "--block-size")?,
            "--amalgamate" => cli.options.amalgamation = flag_parse(&mut args, "--amalgamate")?,
            "--ordering" => {
                let v = flag_value(&mut args, "--ordering")?;
                cli.options.ordering = match v.as_str() {
                    "natural" => ColumnOrdering::Natural,
                    "mmd" => ColumnOrdering::MinDegreeAtA,
                    "atpa" => ColumnOrdering::MinDegreeAtPlusA,
                    "rcm" => ColumnOrdering::ReverseCuthillMcKee,
                    other => {
                        return Err(format!(
                            "--ordering: unknown value `{other}` \
                             (expected natural|mmd|atpa|rcm)"
                        ))
                    }
                }
            }
            "--refine" => cli.refine_steps = flag_parse(&mut args, "--refine")?,
            "--lookahead" => cli.options.lookahead = flag_parse(&mut args, "--lookahead")?,
            "--procs" => {
                let p: usize = flag_parse(&mut args, "--procs")?;
                if p == 0 {
                    return Err("--procs: invalid value `0` (must be ≥ 1)".to_string());
                }
                cli.procs = Some(p);
            }
            "--rhs" => cli.rhs = Some(flag_value(&mut args, "--rhs")?),
            "--out" => cli.out = flag_value(&mut args, "--out")?,
            "--stats-json" => cli.stats_json = Some(flag_value(&mut args, "--stats-json")?),
            "--gantt-width" => cli.gantt_width = flag_parse(&mut args, "--gantt-width")?,
            // `--requests` is a workload file for `serve`, a request
            // count for `loadgen`.
            "--requests" if cli.cmd == "loadgen" => {
                cli.load_requests = flag_parse(&mut args, "--requests")?;
                if cli.load_requests == 0 {
                    return Err("--requests: invalid value `0` (must be ≥ 1)".to_string());
                }
            }
            "--requests" => cli.matrix = flag_value(&mut args, "--requests")?,
            "--workers" => {
                let w: usize = flag_parse(&mut args, "--workers")?;
                if w == 0 {
                    return Err("--workers: invalid value `0` (must be ≥ 1)".to_string());
                }
                cli.workers = Some(w);
            }
            "--queue-cap" => {
                let c: usize = flag_parse(&mut args, "--queue-cap")?;
                if c == 0 {
                    return Err("--queue-cap: invalid value `0` (must be ≥ 1)".to_string());
                }
                cli.queue_cap = Some(c);
            }
            "--cache-bytes" => cli.cache_bytes = Some(flag_parse(&mut args, "--cache-bytes")?),
            "--min-secs" => cli.min_secs = flag_parse(&mut args, "--min-secs")?,
            "--baseline" => cli.baseline = Some(flag_value(&mut args, "--baseline")?),
            "--metrics-out" => cli.metrics_out = Some(flag_value(&mut args, "--metrics-out")?),
            "--from-trace" => cli.from_trace = Some(flag_value(&mut args, "--from-trace")?),
            "--suite" => {
                let v = flag_value(&mut args, "--suite")?;
                cli.suite = splu_bench::bench_lu::SuiteSel::parse(&v)?;
            }
            "--tenants" => {
                cli.tenants = flag_parse(&mut args, "--tenants")?;
                if cli.tenants == 0 {
                    return Err("--tenants: invalid value `0` (must be ≥ 1)".to_string());
                }
            }
            "--seed" => cli.seed = Some(flag_parse(&mut args, "--seed")?),
            "--span-ms" => cli.span_ms = Some(flag_parse(&mut args, "--span-ms")?),
            "--factor-workers" => {
                cli.factor_workers = flag_parse(&mut args, "--factor-workers")?;
                if cli.factor_workers == 0 {
                    return Err("--factor-workers: invalid value `0` (must be ≥ 1)".to_string());
                }
            }
            "--shards" => {
                cli.shards = flag_parse(&mut args, "--shards")?;
                if cli.shards == 0 {
                    return Err("--shards: invalid value `0` (must be ≥ 1)".to_string());
                }
            }
            "--compare-single" => cli.compare_single = true,
            other => unreachable!("flag `{other}` passed the allow-list but has no handler"),
        }
    }
    // `bench-lu` and `loadgen` run built-in workloads and take no input
    // file; `analyze --from-trace` reads a recorded trace instead of a
    // matrix.
    if cli.cmd == "loadgen" && !cli.matrix.is_empty() {
        return Err(format!(
            "`splu loadgen` takes no positional input (got `{}`); the \
             workload is synthesized from --requests/--tenants/--seed",
            cli.matrix
        ));
    }
    let input_optional = cli.cmd == "bench-lu"
        || cli.cmd == "loadgen"
        || (cli.cmd == "analyze" && cli.from_trace.is_some());
    if cli.matrix.is_empty() && !input_optional {
        return Err(if cli.cmd == "serve" {
            "missing <requests> argument (positional or --requests)".to_string()
        } else {
            "missing <matrix> argument".to_string()
        });
    }
    Ok(cli)
}

/// `splu serve`: run a workload file through the solver service.
fn cmd_serve(cli: &Cli) -> ExitCode {
    use sstar::solver::{run_batch, BatchConfig, CacheConfig, Workload};
    let text = match std::fs::read_to_string(&cli.matrix) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("splu: cannot read {}: {e}", cli.matrix);
            return ExitCode::FAILURE;
        }
    };
    let workload = match Workload::parse(&text) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("splu: {}: {e}", cli.matrix);
            return ExitCode::FAILURE;
        }
    };
    let config = BatchConfig {
        workers: cli.workers.unwrap_or(2),
        queue_cap: cli.queue_cap.unwrap_or(8),
        cache_bytes: cli
            .cache_bytes
            .unwrap_or(CacheConfig::default().capacity_bytes),
        options: cli.options,
    };
    println!(
        "serve: {} request(s) from {}, {} worker(s), queue capacity {}",
        workload.requests.len(),
        cli.matrix,
        config.workers,
        config.queue_cap
    );
    let report = run_batch(&workload, &config);
    for o in &report.outcomes {
        let detail = match (&o.max_err, &o.error) {
            (Some(e), _) => format!(
                "max_err {e:.3e}, wait {} µs, solve {} µs",
                o.wait_us, o.solve_us
            ),
            (None, Some(err)) => err.clone(),
            (None, None) => format!("wait {} µs", o.wait_us),
        };
        println!(
            "  #{:<3} {:<10} nrhs={:<2} reuse={:<8} {:<20} {detail}",
            o.id,
            o.matrix,
            o.nrhs,
            o.reuse.map_or("-", |r| r.label()),
            o.status,
        );
    }
    let c = &report.cache;
    println!(
        "cache: {} analysis hit(s), {} miss(es), {} factor hit(s), {} refactor(s), \
         {} eviction(s), {} resident byte(s)",
        c.analysis_hits,
        c.analysis_misses,
        c.factor_hits,
        c.refactors,
        c.evictions,
        report.cache_resident_bytes
    );
    let q = &report.queue;
    println!(
        "queue: {} accepted, {} rejected (full), {} expired, {} solved, {} failed",
        q.accepted, q.rejected_full, q.expired, q.solved, q.failed
    );
    if let Some(path) = &cli.stats_json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("splu: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &cli.metrics_out {
        // `.json` gets the JSON snapshot; anything else the Prometheus
        // text exposition.
        let body = if path.ends_with(".json") {
            report.metrics.json_snapshot()
        } else {
            report.metrics.prometheus_text()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("splu: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(base) = &cli.baseline {
        use sstar::solver::gate::{gate_against, tolerance_pct, SolverRecord};
        let current = match SolverRecord::parse(&report.to_json()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("splu: fresh solver record unparseable: {e}");
                return ExitCode::FAILURE;
            }
        };
        // A missing or pre-percentile baseline records nothing to gate
        // against (mirrors the bench-lu gate's behaviour on first runs).
        let baseline = std::fs::read_to_string(base)
            .ok()
            .and_then(|t| SolverRecord::parse(&t).ok());
        match baseline {
            None => println!("gate: no usable baseline at {base}; skipping"),
            Some(b) => {
                let tol = tolerance_pct();
                if let Err(e) = gate_against(&current, &b, tol) {
                    eprintln!("splu: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "gate: ok vs {base} (p95 e2e {} us vs {} us, hit rate {:.3} vs {:.3}, \
                     tolerance {tol}%)",
                    current.p95_e2e_us, b.p95_e2e_us, current.cache_hit_rate, b.cache_hit_rate
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// `splu loadgen`: synthesize a multi-tenant open-loop workload and
/// replay it against the concurrent solver service.
fn cmd_loadgen(cli: &Cli) -> ExitCode {
    use sstar::load::{generate, run_schedule, LoadConfig};
    use sstar::solver::ConcurrentConfig;
    let base_load = LoadConfig::default();
    let load_cfg = LoadConfig {
        requests: cli.load_requests,
        tenants: cli.tenants,
        seed: cli.seed.unwrap_or(base_load.seed),
        // default pacing: 1 ms per request (1000 offered req/s — about
        // 2× the single-core service capacity, the overload regime
        // where factor-pool head-of-line blocking shows)
        span_us: cli
            .span_ms
            .map_or(cli.load_requests as u64 * 1_000, |ms| ms * 1_000),
        ..base_load
    };
    let mut service_cfg = ConcurrentConfig {
        factor_workers: cli.factor_workers,
        solve_workers: cli.workers.unwrap_or(4),
        shards: cli.shards,
        options: cli.options,
        ..ConcurrentConfig::default()
    };
    if let Some(cap) = cli.queue_cap {
        service_cfg.factor_queue_cap = cap;
        service_cfg.solve_queue_cap = cap;
    }
    if let Some(bytes) = cli.cache_bytes {
        service_cfg.cache_bytes = bytes;
    }
    let schedule = generate(&load_cfg);
    println!(
        "loadgen: {} solve request(s) over {} tenant(s), span {} ms, seed {:#x}",
        schedule.solve_count,
        load_cfg.tenants,
        load_cfg.span_us / 1_000,
        load_cfg.seed
    );
    println!(
        "loadgen: {} factor worker(s), {} solve worker(s), {} shard(s), \
         queue capacity {}",
        service_cfg.factor_workers,
        service_cfg.solve_workers,
        service_cfg.shards,
        service_cfg.solve_queue_cap
    );
    let single = if cli.compare_single {
        println!("loadgen: single-factor-worker comparison run …");
        let s = run_schedule(
            &load_cfg,
            &schedule,
            ConcurrentConfig {
                factor_workers: 1,
                ..service_cfg
            },
        );
        println!(
            "  single: goodput {:.1} req/s ({} solved, {} expired, {} failed)",
            s.req_per_sec, s.solved, s.expired, s.failed
        );
        Some(s)
    } else {
        None
    };
    let report = run_schedule(&load_cfg, &schedule, service_cfg);
    let e2e = report.metrics.histogram_summary("splu_request_us");
    let solve = report.metrics.histogram_summary("splu_solve_us");
    println!(
        "replayed {} request(s) in {:.3} s (offered {:.1} req/s, max lag {} µs)",
        report.requests,
        report.wall_us as f64 / 1e6,
        report.offered_per_sec,
        report.sched_lag_max_us
    );
    println!(
        "goodput: {:.1} req/s ({} solved, {} expired, {} failed)",
        report.req_per_sec, report.solved, report.expired, report.failed
    );
    println!(
        "latency: e2e p50/p95/p99 {}/{}/{} µs, solve p95 {} µs",
        e2e.p50, e2e.p95, e2e.p99, solve.p95
    );
    println!(
        "cache: hit rate {:.3}, {} refactor(s), {} eviction(s); \
         refactor-ahead hit rate {:.3} ({} ready, {} in-flight, {} demand)",
        report.cache.hit_rate(),
        report.cache.refactors,
        report.cache.evictions,
        report.ahead.hit_rate(),
        report.ahead.hits_ready,
        report.ahead.hits_inflight,
        report.ahead.demand_flights
    );
    println!(
        "accuracy: max forward error {:.3e} over {} sampled solve(s)",
        report.max_err, report.samples_checked
    );
    if let Some(s) = &single {
        let speedup = if s.req_per_sec > 0.0 {
            report.req_per_sec / s.req_per_sec
        } else {
            f64::INFINITY
        };
        println!("speedup vs single factor worker: {speedup:.2}×");
    }
    let json = report.to_json(single.as_ref());
    let path = cli
        .stats_json
        .clone()
        .unwrap_or_else(|| "results/BENCH_solver.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("splu: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    if let Some(path) = &cli.metrics_out {
        let body = if path.ends_with(".json") {
            report.metrics.json_snapshot()
        } else {
            report.metrics.prometheus_text()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("splu: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(base) = &cli.baseline {
        use sstar::solver::gate::{gate_against, tolerance_pct, SolverRecord};
        let current = match SolverRecord::parse(&json) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("splu: fresh loadgen record unparseable: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = std::fs::read_to_string(base)
            .ok()
            .and_then(|t| SolverRecord::parse(&t).ok());
        match baseline {
            None => println!("gate: no usable baseline at {base}; skipping"),
            Some(b) => {
                let tol = tolerance_pct();
                if let Err(e) = gate_against(&current, &b, tol) {
                    eprintln!("splu: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "gate: ok vs {base} (p95 e2e {} us vs {} us, goodput {:.1} vs {:.1} req/s, \
                     tolerance {tol}%)",
                    current.p95_e2e_us,
                    b.p95_e2e_us,
                    current.req_per_sec.unwrap_or(0.0),
                    b.req_per_sec.unwrap_or(0.0)
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// Read a matrix by extension: `.mtx` = Matrix Market, `.rua`/`.rsa`/
/// `.pua`/`.psa`/`.hb` = Harwell–Boeing.
fn load_matrix(path: &str) -> Result<CscMatrix, String> {
    let lower = path.to_lowercase();
    let is_hb = [".rua", ".rsa", ".pua", ".psa", ".hb"]
        .iter()
        .any(|ext| lower.ends_with(ext));
    let a = if is_hb {
        read_harwell_boeing_file(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        read_matrix_market_file(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    if a.nrows() != a.ncols() {
        return Err(format!(
            "matrix must be square ({}×{})",
            a.nrows(),
            a.ncols()
        ));
    }
    Ok(a)
}

/// `splu analyze`: attribute wall time from a recorded trace, or from an
/// in-process traced 2D factorization of a matrix file / suite matrix.
fn cmd_analyze(cli: &Cli) -> ExitCode {
    use sstar::core::par2d::{factor_par2d_traced, Sync2d};
    use sstar::probe::analyze::{
        attribute, report_json, report_text, trace_from_chrome_json, CommModel, ReportExtras,
    };
    use sstar::probe::Collector;

    let out = if cli.out == "trace.json" {
        "analyze.json"
    } else {
        cli.out.as_str()
    };

    let (trace, extras) = if let Some(path) = &cli.from_trace {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("splu: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = match trace_from_chrome_json(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("splu: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let grid = Grid::for_procs(cli.procs.unwrap_or_else(|| trace.procs.len().max(1)));
        let extras = ReportExtras {
            matrix: if cli.matrix.is_empty() {
                path.clone()
            } else {
                cli.matrix.clone()
            },
            pr: grid.pr,
            pc: grid.pc,
            lookahead: cli.options.lookahead,
            executor_depth_p95: None,
            model: None,
            taskdag: None,
        };
        (trace, extras)
    } else {
        if !sstar::probe::ENABLED {
            eprintln!(
                "splu: this binary was built without the `probe` feature; \
                 `splu analyze` can only consume recorded traces \
                 (--from-trace) in such a build (rebuild with default \
                 features)"
            );
            return ExitCode::FAILURE;
        }
        // the input is a suite matrix name (sherman5, …) or a file
        let a = match sstar::sparse::suite::by_name(&cli.matrix) {
            Some(spec) => spec.build(),
            None => match load_matrix(&cli.matrix) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("splu: {e}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let grid = Grid::for_procs(cli.procs.unwrap_or(4));
        let solver = SparseLuSolver::analyze(&a, cli.options);
        let collector = Collector::new();
        let r = factor_par2d_traced(
            &solver.permuted,
            solver.pattern.clone(),
            grid,
            Sync2d::Async,
            cli.options.pivot_threshold,
            cli.options.lookahead,
            &collector,
        );
        let trace = collector.finish();
        // attribute subtree-local vs separator work under the task-DAG
        // schedule (an untraced run; the traced one above stays the
        // wall-clock source so the attribution is not skewed by tracing)
        let td = {
            use sstar::core::par2d::{factor_par2d_sched, Sched2d};
            use sstar::probe::analyze::TaskDagSummary;
            let plan = sstar::sched::plan_taskdag(
                &sstar::sched::TaskGraph::build(&solver.pattern),
                &sstar::symbolic::block_etree(&solver.pattern),
                grid.nprocs(),
            );
            let dag = factor_par2d_sched(
                &solver.permuted,
                solver.pattern.clone(),
                grid,
                Sync2d::Async,
                cli.options.pivot_threshold,
                Sched2d::TaskDag,
            );
            TaskDagSummary {
                subtree_local_tasks: dag.stats.subtree_local_tasks,
                total_tasks: (dag.stats.factor_tasks + dag.stats.update_tasks) as u64,
                nsubtrees: plan.nsubtrees as u64,
                steal_attempts: dag.stats.steal_attempts,
                steal_hits: dag.stats.steal_hits,
            }
        };
        let extras = ReportExtras {
            matrix: cli.matrix.clone(),
            pr: grid.pr,
            pc: grid.pc,
            lookahead: cli.options.lookahead,
            executor_depth_p95: Some(r.sustained_depth_p95()),
            model: Some(CommModel {
                pr: grid.pr,
                pc: grid.pc,
                stages: solver.pattern.nblocks(),
                factor_entries: solver.static_factor_nnz() as u64,
            }),
            taskdag: Some(td),
        };
        (trace, extras)
    };

    let attribution = attribute(&trace);
    print!("{}", report_text(&attribution, &extras));
    if let Err(e) = std::fs::write(out, report_json(&attribution, &extras)) {
        eprintln!("splu: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args()) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("splu: {e}");
            return usage();
        }
    };
    // `serve` takes a workload file, not a matrix.
    if cli.cmd == "serve" {
        return cmd_serve(&cli);
    }
    // `loadgen` synthesizes its workload, no input file.
    if cli.cmd == "loadgen" {
        return cmd_loadgen(&cli);
    }
    // `bench-lu` runs the built-in synthetic suite, no input file.
    if cli.cmd == "bench-lu" {
        let out = if cli.out == "trace.json" {
            splu_bench::bench_lu::DEFAULT_OUT
        } else {
            cli.out.as_str()
        };
        return match splu_bench::bench_lu::run_suite(
            out,
            cli.min_secs,
            cli.baseline.as_deref(),
            cli.options.lookahead,
            cli.suite,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("splu: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // `analyze` takes a matrix file, a suite-matrix name, or a recorded
    // trace (--from-trace).
    if cli.cmd == "analyze" {
        return cmd_analyze(&cli);
    }
    let a = match load_matrix(&cli.matrix) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("splu: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "matrix: {} ({}×{}, {} nonzeros, symmetry {:.2})",
        cli.matrix,
        a.nrows(),
        a.ncols(),
        a.nnz(),
        structural_symmetry(&a)
    );

    match cli.cmd.as_str() {
        "info" => {
            let solver = SparseLuSolver::analyze(&a, cli.options);
            println!("zero-free diagonal after transversal: yes");
            println!("static factor entries: {}", solver.static_factor_nnz());
            println!(
                "fill ratio: {:.1}× nnz(A)",
                solver.static_factor_nnz() as f64 / a.nnz() as f64
            );
            println!(
                "supernodes: {} (avg width {:.2})",
                solver.pattern.nblocks(),
                solver.pattern.part.avg_width()
            );
            println!(
                "block storage (padding incl.): {} entries",
                solver.pattern.storage_entries()
            );
            println!(
                "precomputed scatter maps: {} positions ({} bytes)",
                solver.pattern.scatter_map_entries(),
                solver.pattern.scatter_map_bytes()
            );
            println!(
                "full-block DGEMM share of update flops: {:.1} %",
                100.0 * solver.pattern.dense_update_fraction()
            );
            ExitCode::SUCCESS
        }
        "factor" => {
            let t0 = std::time::Instant::now();
            let solver = SparseLuSolver::analyze(&a, cli.options);
            let t_an = t0.elapsed();
            // with --procs the numeric phase runs on the 2D grid driver
            // (lookahead executor); without it, sequentially.
            if let Some(p) = cli.procs {
                use sstar::core::par2d::{factor_par2d_checked, Sync2d};
                let grid = Grid::for_procs(p);
                let t0 = std::time::Instant::now();
                return match factor_par2d_checked(
                    &solver.permuted,
                    solver.pattern.clone(),
                    grid,
                    Sync2d::Async,
                    cli.options.pivot_threshold,
                    cli.options.lookahead,
                ) {
                    Ok(r) => {
                        println!("analyze: {t_an:?}");
                        println!(
                            "factor:  {:?} ({}×{} grid, lookahead {})",
                            t0.elapsed(),
                            grid.pr,
                            grid.pc,
                            cli.options.lookahead
                        );
                        println!(
                            "BLAS-3 fraction: {:.1} %, row interchanges: {}",
                            100.0 * r.stats.blas3_fraction(),
                            r.stats.row_interchanges
                        );
                        println!(
                            "overlap degree: {} (sustained p95 {})",
                            r.overlap_degree(),
                            r.sustained_depth_p95()
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("splu: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            let t0 = std::time::Instant::now();
            match solver.factor() {
                Ok(lu) => {
                    println!("analyze: {t_an:?}");
                    println!("factor:  {:?}", t0.elapsed());
                    println!(
                        "BLAS-3 fraction: {:.1} %, row interchanges: {}",
                        100.0 * lu.stats.blas3_fraction(),
                        lu.stats.row_interchanges
                    );
                    println!("pivot growth: {:.3e}", sstar::core::pivot_growth(&lu, &a));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("splu: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "solve" => {
            let n = a.ncols();
            let b: Vec<f64> = match &cli.rhs {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(text) => {
                        let vals: Result<Vec<f64>, _> =
                            text.split_whitespace().map(|t| t.parse::<f64>()).collect();
                        match vals {
                            Ok(v) if v.len() == n => v,
                            Ok(v) => {
                                eprintln!("splu: rhs has {} values, need {n}", v.len());
                                return ExitCode::FAILURE;
                            }
                            Err(e) => {
                                eprintln!("splu: bad rhs: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("splu: cannot read rhs: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => a.matvec(&vec![1.0; n]),
            };
            // The staged service lifecycle: symbolic analysis once, then
            // numeric factorization against it (reusable for any later
            // matrix with the same pattern fingerprint).
            let analysis = sstar::solver::Analysis::of(&a, cli.options);
            match analysis.factorize(&a) {
                Ok(f) => {
                    let (x, q) = sstar::core::refine(f.lu(), &a, &b, cli.refine_steps);
                    println!(
                        "solved: residual∞ {:.3e}, backward error {:.3e}, {} refinement step(s)",
                        q.residual_inf, q.backward_error, q.steps
                    );
                    println!(
                        "pattern fingerprint {:016x} (reusable for same-pattern refactorization)",
                        analysis.fingerprint()
                    );
                    // print a compact solution summary
                    let nshow = x.len().min(5);
                    println!("x[0..{nshow}] = {:?}", &x[..nshow]);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("splu: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "project" => {
            use sstar::sched::{build_2d_model, graph_schedule, simulate, Mode2d, TaskGraph};
            let procs = cli.procs.unwrap_or(16);
            let solver = SparseLuSolver::analyze(&a, cli.options);
            let g = TaskGraph::build(&solver.pattern);
            println!("projected parallel factorization times (P = {procs}):");
            for machine in [&T3D, &T3E] {
                let t1 = simulate(&g, &graph_schedule(&g, procs, machine), machine).makespan;
                let grid = Grid::for_procs(procs);
                let m2 = build_2d_model(&solver.pattern, grid, machine, Mode2d::Async);
                let t2 = simulate(&m2.graph, &m2.schedule, machine).makespan;
                println!(
                    "  {:<9}  1D graph-scheduled: {:.3e} s   2D async ({}x{}): {:.3e} s",
                    machine.name, t1, grid.pr, grid.pc, t2
                );
            }
            ExitCode::SUCCESS
        }
        "trace" => {
            use sstar::core::par2d::{factor_par2d_traced, Sync2d};
            use sstar::probe::export::{
                ascii_gantt, chrome_trace_json, run_summary_json, SummaryExtras,
            };
            use sstar::probe::Collector;
            if !sstar::probe::ENABLED {
                eprintln!(
                    "splu: this binary was built without the `probe` feature; \
                     `splu trace` would record nothing (rebuild with default \
                     features)"
                );
                return ExitCode::FAILURE;
            }
            let procs = cli.procs.unwrap_or(4);
            let solver = SparseLuSolver::analyze(&a, cli.options);
            let grid = Grid::for_procs(procs);
            let collector = Collector::new();
            let r = factor_par2d_traced(
                &solver.permuted,
                solver.pattern.clone(),
                grid,
                Sync2d::Async,
                cli.options.pivot_threshold,
                cli.options.lookahead,
                &collector,
            );
            let trace = collector.finish();
            let extras = SummaryExtras {
                matrix: cli.matrix.clone(),
                n: a.ncols(),
                nnz: a.nnz(),
                procs: grid.nprocs(),
                wall_secs: r.elapsed,
                messages: r.comm.0,
                bytes: r.comm.1,
                peak_buffer_bytes: r.peak_buffer_bytes.iter().copied().max().unwrap_or(0),
                pipeline_depth_p95: r.sustained_depth_p95(),
            };
            println!(
                "factored on {}×{} grid in {:.3} ms ({} messages, {} bytes, \
                 overlap degree {}, sustained depth p95 {})",
                grid.pr,
                grid.pc,
                1e3 * r.elapsed,
                r.comm.0,
                r.comm.1,
                r.overlap_degree(),
                r.sustained_depth_p95(),
            );
            if let Err(e) = std::fs::write(&cli.out, chrome_trace_json(&trace)) {
                eprintln!("splu: cannot write {}: {e}", cli.out);
                return ExitCode::FAILURE;
            }
            println!("wrote {} (load in Perfetto / chrome://tracing)", cli.out);
            if let Some(path) = &cli.stats_json {
                if let Err(e) = std::fs::write(path, run_summary_json(&trace, &extras)) {
                    eprintln!("splu: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            if cli.gantt_width > 0 {
                print!("{}", ascii_gantt(&trace, cli.gantt_width));
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("splu: unknown command `{other}`");
            usage()
        }
    }
}
