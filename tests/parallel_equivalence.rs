//! Cross-backend equivalence: the sequential code, the 1D parallel codes
//! (compute-ahead and graph-scheduled) and the 2D codes (async and
//! barrier) must produce **bitwise-identical** factors and pivot
//! sequences — the strongest possible check that the distributed
//! protocols (delayed pivoting, structure-safe interchanges, pipelined
//! updates) implement exactly the same arithmetic as the specification.

use sstar::core::par1d::{factor_par1d, Strategy1d};
use sstar::core::par2d::{factor_par2d, factor_par2d_opts, Sync2d};
use sstar::core::seq::factor_sequential;
use sstar::core::BlockMatrix;
use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};
use sstar::symbolic::BlockPattern;
use std::sync::Arc;

fn setup(a: &sstar::sparse::CscMatrix) -> (Arc<BlockPattern>, BlockMatrix, Vec<Vec<u32>>) {
    let solver = SparseLuSolver::analyze(a, FactorOptions::default());
    let mut seq = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
    let (pivots, _) = factor_sequential(&mut seq).unwrap();
    (solver.pattern.clone(), seq, pivots)
}

fn assert_identical(
    tag: &str,
    n: usize,
    seq: &BlockMatrix,
    seq_piv: &[Vec<u32>],
    got: &BlockMatrix,
    got_piv: &[Vec<u32>],
) {
    assert_eq!(seq_piv, got_piv, "{tag}: pivot sequences differ");
    for i in 0..n {
        for j in 0..n {
            let a = seq.get_entry(i, j);
            let b = got.get_entry(i, j);
            assert!(a == b, "{tag}: entry ({i},{j}) differs: {a} vs {b}");
        }
    }
}

#[test]
fn one_d_strategies_bitwise_match() {
    let a = gen::grid2d(9, 9, 0.5, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let ap = &solver.permuted;
    let (pattern, seq, piv) = setup(&a);
    for p in [1usize, 3, 6] {
        let r = factor_par1d(ap, pattern.clone(), p, Strategy1d::ComputeAhead);
        assert_identical("1D-CA", a.ncols(), &seq, &piv, &r.blocks, &r.pivots);
    }
    let r = factor_par1d(ap, pattern, 4, Strategy1d::GraphScheduled(T3E));
    assert_identical("1D-RAPID", a.ncols(), &seq, &piv, &r.blocks, &r.pivots);
}

#[test]
fn two_d_grids_bitwise_match() {
    let a = gen::random_sparse(120, 4, 0.5, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let ap = &solver.permuted;
    let (pattern, seq, piv) = setup(&a);
    for (pr, pc) in [(1usize, 2usize), (2, 2), (3, 2), (2, 4)] {
        let r = factor_par2d(ap, pattern.clone(), Grid::new(pr, pc), Sync2d::Async);
        assert_identical(
            &format!("2D-{pr}x{pc}"),
            a.ncols(),
            &seq,
            &piv,
            &r.blocks,
            &r.pivots,
        );
    }
    let r = factor_par2d(ap, pattern, Grid::new(2, 2), Sync2d::Barrier);
    assert_identical("2D-barrier", a.ncols(), &seq, &piv, &r.blocks, &r.pivots);
}

#[test]
fn parallel_factors_solve_correctly() {
    let a = gen::block_fluid(15, 5, 9, 0.3, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let n = a.ncols();
    let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
    let b = a.matvec(&xt);
    // permuted rhs path (solve_factored works in permuted coordinates)
    let pb: Vec<f64> = (0..n).map(|i| b[solver.row_perm.old_of_new(i)]).collect();

    let r = factor_par2d(
        &solver.permuted,
        solver.pattern.clone(),
        Grid::new(2, 3),
        Sync2d::Async,
    );
    let z = sstar::core::solve::solve_factored(&r.blocks, &r.pivots, &pb);
    let x: Vec<f64> = (0..n).map(|j| z[solver.col_perm.new_of_old(j)]).collect();
    let err = x
        .iter()
        .zip(&xt)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
    assert!(err < 1e-7, "2D-factored solve error {err}");
}

#[test]
fn theorem2_overlap_bounds_hold_on_thread_backend() {
    // the paper's bounds apply to the in-order schedule (lookahead 0)
    let a = gen::grid2d(10, 10, 0.4, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    for (pr, pc) in [(2usize, 2usize), (2, 3), (3, 2)] {
        let r = factor_par2d_opts(
            &solver.permuted,
            solver.pattern.clone(),
            Grid::new(pr, pc),
            Sync2d::Async,
            1.0,
            0,
        );
        assert!(
            r.overlap_degree() as usize <= pc,
            "overlap {} > p_c {} on {pr}x{pc}",
            r.overlap_degree(),
            pc
        );
        for c in 0..pc as u32 {
            assert!(
                r.overlap_degree_within_col(c) as usize <= (pr - 1).min(pc),
                "in-column overlap bound violated on {pr}x{pc}"
            );
        }
    }
}

#[test]
fn window_generalized_overlap_bounds_hold_with_lookahead() {
    // a window of W admits at most W extra unretired stages, relaxing
    // Theorem 2's bounds to p_c + W machine-wide and
    // min(p_r − 1, p_c) + W within a grid column
    let a = gen::grid2d(10, 10, 0.4, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    for (pr, pc) in [(2usize, 2usize), (2, 3), (3, 2)] {
        for w in [1usize, 2, 4] {
            let r = factor_par2d_opts(
                &solver.permuted,
                solver.pattern.clone(),
                Grid::new(pr, pc),
                Sync2d::Async,
                1.0,
                w,
            );
            assert!(
                r.overlap_degree() as usize <= pc + w,
                "overlap {} > p_c + W = {} on {pr}x{pc}",
                r.overlap_degree(),
                pc + w
            );
            for c in 0..pc as u32 {
                assert!(
                    r.overlap_degree_within_col(c) as usize <= (pr - 1).min(pc) + w,
                    "in-column generalized overlap bound violated on {pr}x{pc} W={w}"
                );
            }
        }
    }
}
