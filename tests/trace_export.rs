//! Flight-recorder integration: factor with the recorder on, export the
//! Chrome trace, parse it back, and cross-check against the runtime's
//! own communication accounting.
#![cfg(feature = "probe")]

use sstar::core::par2d::{factor_par2d_traced, Sync2d};
use sstar::machine::Grid;
use sstar::prelude::*;
use sstar::probe::export::{chrome_trace_json, run_summary_json, SummaryExtras};
use sstar::probe::json::{parse, Value};
use sstar::probe::Collector;
use sstar::sparse::gen::{self, ValueModel};

fn traced_run(grid: Grid) -> (sstar::core::par2d::Par2dResult, sstar::probe::Trace) {
    let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let collector = Collector::new();
    let r = factor_par2d_traced(
        &solver.permuted,
        solver.pattern.clone(),
        grid,
        Sync2d::Async,
        1.0,
        1,
        &collector,
    );
    (r, collector.finish())
}

#[test]
fn chrome_trace_has_a_track_per_proc_and_matches_comm_stats() {
    let grid = Grid::new(2, 2);
    let (r, trace) = traced_run(grid);
    let text = chrome_trace_json(&trace);
    let doc = parse(&text).expect("exporter must emit valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(Value::items)
        .expect("traceEvents array");

    // one thread-name metadata record and at least one track per processor
    let mut meta_tids = std::collections::BTreeSet::new();
    let mut span_tids = std::collections::BTreeSet::new();
    let mut send_marks = 0u64;
    let mut recv_marks = 0u64;
    let mut spans = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap();
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap();
        match ph {
            "M" => {
                meta_tids.insert(tid);
                let name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .unwrap();
                assert_eq!(name, format!("proc {tid}"));
            }
            "X" => {
                span_tids.insert(tid);
                spans += 1;
                // complete events carry non-negative duration
                assert!(ev.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
            }
            "i" => match ev.get("name").and_then(Value::as_str).unwrap() {
                "send" => send_marks += 1,
                "recv" => recv_marks += 1,
                _ => {}
            },
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    let all: std::collections::BTreeSet<u64> = (0..grid.nprocs() as u64).collect();
    assert_eq!(meta_tids, all, "one thread_name record per processor");
    assert_eq!(span_tids, all, "every processor recorded stage spans");

    // one send mark per message the runtime counted; receives can fall
    // short only by messages still parked when the machine shut down
    assert_eq!(send_marks, r.comm.0, "send marks vs CommStats messages");
    assert!(recv_marks <= send_marks);
    assert!(recv_marks > 0);

    // exported span count equals the in-memory trace's
    let in_mem: u64 = trace.procs.iter().map(|p| p.spans.len() as u64).sum();
    assert_eq!(spans, in_mem);
}

#[test]
fn run_summary_reports_comm_and_stage_totals() {
    let grid = Grid::new(2, 2);
    let (r, trace) = traced_run(grid);
    let extras = SummaryExtras {
        matrix: "grid9".into(),
        n: 81,
        nnz: 0,
        procs: grid.nprocs(),
        wall_secs: r.elapsed,
        messages: r.comm.0,
        bytes: r.comm.1,
        peak_buffer_bytes: r.peak_buffer_bytes.iter().copied().max().unwrap_or(0),
        pipeline_depth_p95: r.sustained_depth_p95(),
    };
    let doc = parse(&run_summary_json(&trace, &extras)).unwrap();
    assert_eq!(
        doc.get("pipeline_depth_p95").and_then(Value::as_u64),
        Some(r.sustained_depth_p95() as u64)
    );
    assert_eq!(doc.get("messages").and_then(Value::as_u64), Some(r.comm.0));
    assert_eq!(doc.get("bytes").and_then(Value::as_u64), Some(r.comm.1));
    assert_eq!(doc.get("procs").and_then(Value::as_u64), Some(4));

    // the probe's own counters agree with the runtime's accounting
    let counters = doc.get("counters").unwrap();
    assert_eq!(
        counters.get("sends").and_then(Value::as_u64),
        Some(r.comm.0)
    );
    assert_eq!(
        counters.get("send_bytes").and_then(Value::as_u64),
        Some(r.comm.1)
    );

    // every paper stage shows up with a positive total
    let stages = doc.get("stages").unwrap();
    for name in ["panel-factor", "scale-swap", "row-swap", "update"] {
        let st = stages.get(name).unwrap_or_else(|| panic!("stage {name}"));
        assert!(st.get("count").and_then(Value::as_u64).unwrap() > 0);
        assert!(st.get("total_secs").and_then(Value::as_f64).unwrap() >= 0.0);
    }

    // flop counters present (the 2D update path is BLAS-3)
    assert!(counters.get("flops_blas3").and_then(Value::as_u64).unwrap() > 0);
}

#[test]
fn sequential_factor_traced_records_single_proc_timeline() {
    let a = gen::grid2d(8, 8, 0.3, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let collector = Collector::new();
    let lu = solver.factor_traced(&collector).expect("nonsingular");
    let trace = collector.finish();
    assert_eq!(trace.procs.len(), 1);
    let tl = &trace.procs[0];
    let panels = tl.spans.iter().filter(|s| s.name == "panel-factor").count();
    let updates = tl.spans.iter().filter(|s| s.name == "update").count();
    assert_eq!(panels, lu.stats.factor_tasks);
    assert_eq!(updates, lu.stats.update_tasks);
    assert!(tl.counters["pivot_search_rows"] > 0);
    assert!(tl.counters.contains_key("fill_entries"));
}
