//! Observability must be close to free: the flight recorder's span
//! accounting may not slow the factorization by more than 3 %, and the
//! always-on metrics registry's hot path (counter bumps, histogram
//! records) must stay lock-cheap. Timing comparisons use the min over
//! interleaved repetitions — the minimum is the noise-robust estimator
//! of a deterministic workload's cost.
#![cfg(feature = "probe")]

use sstar::prelude::*;
use sstar::probe::metrics::Registry;
use sstar::probe::Collector;
use sstar::sparse::gen::{self, ValueModel};
use std::time::{Duration, Instant};

/// Tolerated probe overhead on the warmed sequential factorization.
const MAX_OVERHEAD: f64 = 0.03;
const REPS: usize = 7;

#[test]
fn probe_overhead_on_warmed_factorization_is_under_3_percent() {
    // The span count is fixed by the symbolic structure while compute
    // scales with the profile, so each build needs a problem where the
    // numeric work dominates: the full sherman5 in release (~170 ms a
    // run), a 50×50 grid operator in debug (~100 ms a run).
    let a = if cfg!(debug_assertions) {
        gen::grid2d(50, 50, 0.4, ValueModel::default())
    } else {
        sstar::sparse::suite::by_name("sherman5")
            .expect("sherman5 in the suite")
            .build()
    };
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());

    // warm allocator, caches, and the symbolic scratch before timing
    solver.factor().expect("nonsingular");
    let collector = Collector::new();
    solver.factor_traced(&collector).expect("nonsingular");
    drop(collector.finish());

    // interleave untraced/traced so drift (thermal, scheduler) hits both
    let mut untraced = Duration::MAX;
    let mut traced = Duration::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        solver.factor().expect("nonsingular");
        untraced = untraced.min(t.elapsed());

        let collector = Collector::new();
        let t = Instant::now();
        solver.factor_traced(&collector).expect("nonsingular");
        traced = traced.min(t.elapsed());
        // a traced run must actually have recorded the timeline
        let trace = collector.finish();
        assert!(!trace.procs.is_empty() && !trace.procs[0].spans.is_empty());
    }

    let overhead = traced.as_secs_f64() / untraced.as_secs_f64() - 1.0;
    eprintln!(
        "probe overhead: untraced {untraced:?}, traced {traced:?}, {:+.2}%",
        100.0 * overhead
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "probe overhead {:.2}% exceeds {:.0}% (untraced {untraced:?}, traced {traced:?})",
        100.0 * overhead,
        100.0 * MAX_OVERHEAD
    );
}

#[test]
fn metrics_hot_path_is_lock_cheap() {
    let reg = Registry::new();
    let counter = reg.counter("splu_test_ops_total");
    let hist = reg.histogram("splu_test_us");

    // handles are resolved once; afterwards every op is a couple of
    // atomic adds. 1M ops in well under a second leaves a 50×+ margin
    // even on a loaded debug-build CI runner (~1 µs/op budget).
    const OPS: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..OPS {
        counter.inc();
        hist.record(i & 0xFFFF);
    }
    let elapsed = t.elapsed();
    eprintln!(
        "metrics hot path: {OPS} counter+histogram ops in {elapsed:?} ({:.0} ns/op)",
        elapsed.as_nanos() as f64 / OPS as f64
    );
    assert_eq!(counter.get(), OPS);
    assert_eq!(hist.count(), OPS);
    assert!(
        elapsed < Duration::from_secs(1),
        "1M metric ops took {elapsed:?} — hot path is not lock-cheap"
    );

    // concurrent writers on the same family must not lose updates
    let reg = std::sync::Arc::new(Registry::new());
    let mut threads = Vec::new();
    for w in 0..4u64 {
        let reg = reg.clone();
        threads.push(std::thread::spawn(move || {
            let c = reg.counter("splu_test_shared_total");
            let h = reg.histogram("splu_test_shared_us");
            for i in 0..10_000u64 {
                c.inc();
                h.record(w * 10_000 + i);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(reg.counter_value("splu_test_shared_total"), 40_000);
    assert_eq!(reg.histogram_summary("splu_test_shared_us").count, 40_000);
}
