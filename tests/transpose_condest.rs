//! Transpose solves and the 1-norm condition estimator.

use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()))
}

#[test]
fn transpose_solve_matches_dense_oracle() {
    for (i, a) in [
        gen::grid2d(9, 8, 0.5, ValueModel::default()),
        gen::random_sparse(120, 4, 0.5, ValueModel::default()),
        gen::block_fluid(10, 5, 8, 0.3, ValueModel::default()),
    ]
    .iter()
    .enumerate()
    {
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|j| ((j % 13) as f64) * 0.3 - 1.8).collect();
        let b = a.matvec_transpose(&xt); // b = Aᵀ x
        let solver = SparseLuSolver::analyze(a, FactorOptions::default());
        let lu = solver.factor().unwrap();
        let x = lu.solve_transpose(&b);
        let err = max_err(&x, &xt);
        assert!(err < 1e-7, "case {i}: transpose solve error {err}");
        // oracle: dense solve of the transposed system
        let xd = sstar::kernels::dense_solve(&a.to_dense().transpose(), &b).unwrap();
        assert!(max_err(&x, &xd) < 1e-7, "case {i}: oracle disagrees");
    }
}

#[test]
fn transpose_solve_with_equilibration_and_threshold() {
    let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
    let n = a.ncols();
    let xt: Vec<f64> = (0..n).map(|j| (j as f64 * 0.23).sin()).collect();
    let b = a.matvec_transpose(&xt);
    let solver = SparseLuSolver::analyze(
        &a,
        FactorOptions {
            equilibrate: true,
            pivot_threshold: 0.3,
            ..FactorOptions::default()
        },
    );
    let lu = solver.factor().unwrap();
    let x = lu.solve_transpose(&b);
    assert!(max_err(&x, &xt) < 1e-7);
}

#[test]
fn condest_identity_is_one() {
    let a = sstar::sparse::CscMatrix::identity(30);
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let lu = solver.factor().unwrap();
    let k = lu.condest(&a);
    assert!((k - 1.0).abs() < 1e-12, "κ(I) = {k}");
}

#[test]
fn condest_tracks_diagonal_scaling() {
    // diag(1, 1, ..., 1, 1e6): κ₁ = 1e6 exactly
    use sstar::sparse::CooMatrix;
    let n = 20;
    let mut c = CooMatrix::new(n, n);
    for i in 0..n {
        c.push(i, i, if i == n - 1 { 1e6 } else { 1.0 });
    }
    let a = c.to_csc();
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let lu = solver.factor().unwrap();
    let k = lu.condest(&a);
    assert!((k / 1e6 - 1.0).abs() < 1e-9, "κ = {k}, want 1e6");
}

#[test]
fn condest_lower_bounds_true_condition_on_random() {
    let a = gen::random_sparse(60, 4, 0.5, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let lu = solver.factor().unwrap();
    let est = lu.condest(&a);
    // the estimator never exceeds the true κ₁ and is ≥ 1 by definition
    assert!(est >= 1.0, "κ estimate {est} < 1");
    // true κ₁ via dense inverse columns
    let n = a.ncols();
    let d = a.to_dense();
    let f = sstar::kernels::dense_lu(&d).unwrap();
    let mut inv_norm = 0.0f64;
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = f.solve(&e);
        inv_norm = inv_norm.max(col.iter().map(|v| v.abs()).sum());
    }
    let mut colsum = vec![0.0f64; n];
    for (_, j, v) in a.iter() {
        colsum[j] += v.abs();
    }
    let norm_a = colsum.iter().fold(0.0f64, |m, &v| m.max(v));
    let true_k = norm_a * inv_norm;
    assert!(
        est <= true_k * (1.0 + 1e-9),
        "estimate {est} exceeds true κ₁ {true_k}"
    );
    // Higham's estimator is almost always within a small factor
    assert!(est >= true_k / 10.0, "estimate {est} far below κ₁ {true_k}");
}
