//! End-to-end tests of the `splu-solver` service layer: the staged
//! analyze → factorize → solve lifecycle, factorization-cache semantics,
//! the bounded work queue, the batch driver, and the probe export of the
//! cache counters.

use sstar::prelude::*;
use sstar::solver::{
    run_batch, BatchConfig, CacheConfig, Reuse, ServiceConfig, SolveJob, WorkerPool, Workload,
};
use sstar::sparse::gen::{self, ValueModel};

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()))
}

#[test]
fn lifecycle_handles_solve_and_transpose() {
    let a = gen::grid2d(11, 10, 0.4, ValueModel::default());
    let n = a.ncols();
    let analysis = Analysis::of(&a, FactorOptions::default());
    let f = analysis.factorize(&a).unwrap();

    let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() + 0.5).collect();
    let x = f.solve(&a.matvec(&xt)).unwrap();
    assert!(max_err(&x, &xt) < 1e-7);

    let y = f.solve_transpose(&a.matvec_transpose(&xt)).unwrap();
    assert!(max_err(&y, &xt) < 1e-7);
}

#[test]
fn same_pattern_refactorization_skips_symbolic_analysis() {
    // The acceptance demonstration: a sequence of same-pattern matrices
    // runs symbolic analysis exactly once, and the cache-hit counters
    // prove it.
    let svc = SolverService::new(ServiceConfig::default());
    let a = gen::grid2d(12, 12, 0.4, ValueModel::default());
    let (_, r0) = svc.factorization(&a).unwrap();
    assert_eq!(r0, Reuse::None);
    for seed in 1..=4u64 {
        let ak = gen::perturb_values(&a, seed);
        let (fk, rk) = svc.factorization(&ak).unwrap();
        assert_eq!(rk, Reuse::Analysis, "seed {seed} should reuse the analysis");
        let n = ak.ncols();
        let xt: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let x = fk.solve(&ak.matvec(&xt)).unwrap();
        assert!(max_err(&x, &xt) < 1e-7, "seed {seed}");
    }
    let s = svc.cache_stats();
    assert_eq!(s.analysis_misses, 1, "symbolic analysis ran exactly once");
    assert_eq!(
        s.refactors, 4,
        "each new-value matrix refactored numerically"
    );
    assert_eq!(s.analysis_hits, 4);
}

#[test]
fn cache_counters_are_visible_through_the_probe() {
    let svc = SolverService::new(ServiceConfig::default());
    let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
    svc.factorization(&a).unwrap();
    svc.factorization(&a).unwrap(); // full hit

    let collector = sstar::probe::Collector::new();
    {
        let probe = collector.probe(0);
        svc.export_stats(&probe);
        // probe drops here, flushing its counters into the collector
    }
    let trace = collector.finish();
    if sstar::probe::ENABLED {
        let counters = &trace.procs[0].counters;
        assert_eq!(counters.get("solver_cache_analysis_miss"), Some(&1));
        assert_eq!(counters.get("solver_cache_factor_hit"), Some(&1));
    } else {
        assert!(trace.procs.is_empty());
    }
}

#[test]
fn queue_admission_limit_rejects_when_full() {
    let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
    let analysis = Analysis::of(&a, FactorOptions::default());
    let f = analysis.factorize(&a).unwrap();
    let n = a.ncols();

    // One job parked on a zero-worker-progress window is impossible to
    // arrange deterministically with live workers, so test the admission
    // limit on the raw queue (no consumers), then drain it with a pool.
    let q: sstar::solver::queue::BoundedQueue<usize> = sstar::solver::queue::BoundedQueue::new(3);
    for i in 0..3 {
        assert!(q.try_push(i).is_ok());
    }
    assert!(q.try_push(99).is_err(), "fourth push must be rejected");

    // And the pool path end-to-end with blocking submits.
    let pool = WorkerPool::new(2, 2);
    for id in 0..5 {
        let xt: Vec<f64> = (0..n).map(|i| ((i + id) % 7) as f64 - 3.0).collect();
        pool.submit(SolveJob::new(id, f.clone(), a.matvec(&xt), 1, None))
            .unwrap();
    }
    let (reports, stats) = pool.finish();
    assert_eq!(reports.len(), 5);
    assert_eq!(stats.solved, 5);
}

#[test]
fn batch_driver_handles_mixed_workload() {
    // ≥ 2 patterns, ≥ 8 requests, multi-RHS, one deadline rejection, one
    // singular request — the acceptance workload, via the public API.
    let text = "\
matrix g   grid2d 10 10
matrix gp  perturb g 3
matrix r   random 90 4
matrix bad singular g
solve g nrhs=3
solve g
solve gp
solve r
solve bad
solve g deadline_us=0
solve r nrhs=2
solve gp
solve r
";
    let w = Workload::parse(text).unwrap();
    let report = run_batch(
        &w,
        &BatchConfig {
            workers: 3,
            queue_cap: 4,
            cache_bytes: CacheConfig::default().capacity_bytes,
            options: FactorOptions::default(),
        },
    );
    assert_eq!(report.outcomes.len(), 9);
    assert_eq!(report.count("factorization_failed"), 1, "singular request");
    assert_eq!(report.count("deadline_expired"), 1, "deadline rejection");
    assert_eq!(report.count("solved"), 7);
    assert!(report.max_err() < 1e-7, "max_err={:.3e}", report.max_err());
    // Two distinct patterns → exactly two symbolic analyses.
    assert_eq!(report.cache.analysis_misses, 2);
    assert!(report.cache.factor_hits >= 2);
    assert!(report.cache.refactors >= 1);
    // Every request has a terminal status; ids are the request order.
    for (i, o) in report.outcomes.iter().enumerate() {
        assert_eq!(o.id, i);
        assert_ne!(o.status, "pending");
    }
    // The JSON summary round-trips the headline numbers.
    let json = report.to_json();
    assert!(json.contains("\"requests\": 9"));
    assert!(json.contains("\"solved\": 7"));
    assert!(json.contains("\"deadline_expired\": 1"));
    assert!(json.contains("\"factorization_failed\": 1"));
}

#[test]
fn cache_eviction_under_tight_budget_still_solves() {
    // A budget that fits roughly one pattern forces evictions between
    // alternating patterns; results must stay correct throughout.
    let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
    let b = gen::grid2d(9, 8, 0.4, ValueModel::default());
    let probe_an = Analysis::of(&a, FactorOptions::default());
    let one_entry = probe_an.approx_bytes() + probe_an.factorize(&a).unwrap().storage_bytes();
    let svc = SolverService::new(ServiceConfig {
        cache: CacheConfig {
            capacity_bytes: one_entry + one_entry / 4,
        },
        options: FactorOptions::default(),
    });
    for round in 0..3 {
        for m in [&a, &b] {
            let n = m.ncols();
            let xt: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) * 0.5).collect();
            let x = svc.solve(m, &m.matvec(&xt)).unwrap();
            assert!(max_err(&x, &xt) < 1e-7, "round {round}");
        }
    }
    let s = svc.cache_stats();
    assert!(s.evictions >= 4, "alternating patterns evict: {s:?}");
    assert!(
        svc.cache_resident_bytes() <= one_entry + one_entry / 4,
        "budget respected at rest"
    );
}
