//! Threshold pivoting: structural safety and cross-backend equivalence.
//!
//! The static prediction covers *every* pivot sequence drawn from the
//! candidate sets, so threshold pivoting (keep the diagonal when it is
//! within factor `t` of the column maximum) is structurally safe by
//! construction. These tests verify:
//! * the solver stays backward-stable across thresholds,
//! * row movement decreases monotonically as the threshold loosens,
//! * sequential, 1D and 2D executions stay **bitwise identical** at any
//!   threshold (the distributed pivot rule matches the sequential one).

use sstar::core::par1d::{factor_par1d_opts, Strategy1d};
use sstar::core::par2d::{factor_par2d_opts, Sync2d};
use sstar::core::seq::factor_sequential_opts;
use sstar::core::BlockMatrix;
use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};

#[test]
fn solver_stable_across_thresholds() {
    let a = gen::grid2d(10, 10, 0.5, ValueModel::default());
    let n = a.ncols();
    let xt: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.3 - 1.4).collect();
    let b = a.matvec(&xt);
    for threshold in [1.0, 0.5, 0.1, 0.001] {
        let solver = SparseLuSolver::analyze(
            &a,
            FactorOptions {
                pivot_threshold: threshold,
                ..FactorOptions::default()
            },
        );
        let lu = solver.factor().unwrap();
        let x = lu.solve(&b);
        let r = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(
            r < 1e-7 * a.norm_inf(),
            "threshold {threshold}: residual {r}"
        );
    }
}

#[test]
fn looser_threshold_moves_fewer_rows() {
    let a = gen::random_sparse(200, 4, 0.5, ValueModel::default());
    let mut prev = usize::MAX;
    for threshold in [1.0, 0.5, 0.1, 0.01] {
        let solver = SparseLuSolver::analyze(
            &a,
            FactorOptions {
                pivot_threshold: threshold,
                ..FactorOptions::default()
            },
        );
        let lu = solver.factor().unwrap();
        assert!(
            lu.stats.row_interchanges <= prev,
            "threshold {threshold}: {} interchanges, previous {prev}",
            lu.stats.row_interchanges
        );
        prev = lu.stats.row_interchanges;
    }
    assert!(prev < usize::MAX);
}

#[test]
fn backends_bitwise_identical_at_threshold() {
    let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
    let threshold = 0.2;
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let mut seq = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
    let (piv, _) = factor_sequential_opts(&mut seq, threshold).unwrap();

    let r1 = factor_par1d_opts(
        &solver.permuted,
        solver.pattern.clone(),
        3,
        Strategy1d::ComputeAhead,
        threshold,
    );
    assert_eq!(r1.pivots, piv, "1D pivot sequences differ");

    let r2 = factor_par2d_opts(
        &solver.permuted,
        solver.pattern.clone(),
        Grid::new(2, 2),
        Sync2d::Async,
        threshold,
        1,
    );
    assert_eq!(r2.pivots, piv, "2D pivot sequences differ");

    let n = a.ncols();
    for i in 0..n {
        for j in 0..n {
            let s = seq.get_entry(i, j);
            assert!(s == r1.blocks.get_entry(i, j), "1D entry ({i},{j})");
            assert!(s == r2.blocks.get_entry(i, j), "2D entry ({i},{j})");
        }
    }
}

#[test]
fn threshold_one_equals_classic() {
    let a = gen::random_sparse(100, 4, 0.6, ValueModel::default());
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let mut m1 = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
    let mut m2 = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
    let (p1, _) = sstar::core::factor_sequential(&mut m1).unwrap();
    let (p2, _) = factor_sequential_opts(&mut m2, 1.0).unwrap();
    assert_eq!(p1, p2);
}
