//! End-to-end integration tests: the full S\* pipeline against independent
//! oracles (dense GEPP, the Gilbert–Peierls baseline) across matrix
//! classes, orderings and partitioning options.

use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};
use sstar::sparse::CscMatrix;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()))
}

fn solve_and_check(a: &CscMatrix, options: FactorOptions, tol: f64) {
    let n = a.ncols();
    let xt: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) * 0.5 - 3.0).collect();
    let b = a.matvec(&xt);
    let solver = SparseLuSolver::analyze(a, options);
    let lu = solver.factor().expect("nonsingular");
    let x = lu.solve(&b);
    // forward error
    assert!(max_err(&x, &xt) < tol, "forward error too large");
    // backward residual
    let r = max_err(&a.matvec(&x), &b);
    assert!(r < 1e-9 * a.norm_inf().max(1.0), "residual {r} too large");
}

#[test]
fn all_matrix_classes_solve() {
    let vm = ValueModel::default();
    let cases: Vec<(&str, CscMatrix)> = vec![
        ("grid2d", gen::grid2d(12, 11, 0.5, vm)),
        ("grid3d", gen::grid3d(6, 5, 4, 0.4, vm)),
        ("random", gen::random_sparse(200, 4, 0.5, vm)),
        ("block_fluid", gen::block_fluid(20, 5, 9, 0.3, vm)),
        ("banded", gen::banded(150, 8, 0.5, vm)),
        ("dense", gen::dense_random(60, vm)),
    ];
    for (name, a) in cases {
        solve_and_check(&a, FactorOptions::default(), 1e-5);
        println!("{name} ok");
    }
}

#[test]
fn all_orderings_solve() {
    let a = gen::grid2d(10, 10, 0.4, ValueModel::default());
    for ordering in [
        ColumnOrdering::Natural,
        ColumnOrdering::MinDegreeAtA,
        ColumnOrdering::ReverseCuthillMcKee,
    ] {
        solve_and_check(
            &a,
            FactorOptions {
                ordering,
                ..FactorOptions::default()
            },
            1e-6,
        );
    }
}

#[test]
fn partitioning_options_solve() {
    let a = gen::random_sparse(150, 4, 0.6, ValueModel::default());
    for (block_size, amalgamation) in [(1, 0), (4, 0), (8, 2), (25, 4), (25, 10), (64, 6)] {
        solve_and_check(
            &a,
            FactorOptions {
                block_size,
                amalgamation,
                ordering: ColumnOrdering::MinDegreeAtA,
                ..FactorOptions::default()
            },
            1e-5,
        );
    }
}

#[test]
fn agrees_with_gp_baseline_solution() {
    let a = gen::grid3d(5, 5, 4, 0.5, ValueModel::default());
    let n = a.ncols();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
    let x1 = sstar::core::pipeline::lu_solve(&a, &b, FactorOptions::default()).unwrap();
    let gp = sstar::superlu::gp_factor(&a, 1.0).unwrap();
    let x2 = sstar::superlu::gp_solve(&gp, &b);
    assert!(max_err(&x1, &x2) < 1e-8, "pipelines disagree");
}

#[test]
fn agrees_with_dense_oracle() {
    let a = gen::random_sparse(80, 4, 0.5, ValueModel::default());
    let n = a.ncols();
    let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
    let x1 = sstar::core::pipeline::lu_solve(&a, &b, FactorOptions::default()).unwrap();
    let x2 = sstar::kernels::dense_solve(&a.to_dense(), &b).unwrap();
    assert!(max_err(&x1, &x2) < 1e-8, "dense oracle disagrees");
}

#[test]
fn shifted_diagonal_handled_by_transversal() {
    let a = gen::shift_rows(&gen::grid2d(9, 9, 0.4, ValueModel::default()), 17);
    assert!(!a.has_zero_free_diagonal());
    solve_and_check(&a, FactorOptions::default(), 1e-6);
}

#[test]
fn singular_matrix_rejected() {
    use sstar::sparse::CooMatrix;
    let mut c = CooMatrix::new(3, 3);
    for i in 0..3 {
        for j in 0..3 {
            c.push(i, j, 1.0);
        }
    }
    let a = c.to_csc();
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    assert!(solver.factor().is_err());
}

#[test]
fn matrix_market_roundtrip_through_pipeline() {
    let a = gen::random_sparse(60, 3, 0.5, ValueModel::default());
    let mut buf = Vec::new();
    sstar::sparse::io::write_matrix_market(&mut buf, &a).unwrap();
    let a2 = sstar::sparse::io::read_matrix_market(&buf[..]).unwrap();
    assert_eq!(a, a2);
    solve_and_check(&a2, FactorOptions::default(), 1e-6);
}
