//! Suite smoke tests: every benchmark matrix (scaled down) goes through
//! the full pipeline, solves accurately, and satisfies the paper's
//! structural claims (static bound ⊇ baseline factors on the same
//! ordering; BLAS-3 dominance).

use sstar::prelude::*;
use sstar::sparse::suite;

fn check_suite_matrix(name: &str, scale: f64) {
    let spec = suite::by_name(name).unwrap();
    let a = spec.build_scaled(scale);
    let n = a.ncols();
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let lu = solver.factor().unwrap_or_else(|e| panic!("{name}: {e}"));

    // solve accuracy (backward)
    let xt: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) * 0.3 - 2.0).collect();
    let b = a.matvec(&xt);
    let x = lu.solve(&b);
    let r = a
        .matvec(&x)
        .iter()
        .zip(&b)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
    assert!(
        r < 1e-8 * a.norm_inf().max(1.0),
        "{name}: residual {r} too large"
    );

    // the static bound must cover the baseline's actual factors
    // (same preprocessed matrix, so slot coordinates comparable for U;
    // we verify the nnz relation the paper tabulates)
    let gp = sstar::superlu::gp_factor(&solver.permuted, 1.0).unwrap();
    assert!(
        solver.static_factor_nnz() >= gp.factor_nnz() * 9 / 10,
        "{name}: static bound implausibly small"
    );

    // BLAS-3 share — the design goal is "more than 64 percent" at paper
    // scale; heavily scaled-down narrow-band matrices have tiny
    // supernodes, so the smoke threshold is lower
    assert!(
        lu.stats.blas3_fraction() > 0.3,
        "{name}: BLAS-3 fraction only {:.2}",
        lu.stats.blas3_fraction()
    );
}

#[test]
fn small_suite_matrices() {
    for name in ["sherman5", "jpwh991", "orsreg1", "saylr4"] {
        check_suite_matrix(name, 0.5);
    }
}

#[test]
fn random_pattern_suite_matrices() {
    for name in ["lnsp3937", "lns3937"] {
        check_suite_matrix(name, 0.35);
    }
}

#[test]
fn large_suite_matrices_scaled() {
    for name in ["goodwin", "e40r0100", "af23560", "b33_5600"] {
        check_suite_matrix(name, 0.08);
    }
}

#[test]
fn very_large_suite_matrices_scaled() {
    for name in ["ex11", "raefsky4", "inaccura", "vavasis3"] {
        check_suite_matrix(name, 0.05);
    }
}

#[test]
fn dense_suite_matrix() {
    check_suite_matrix("dense1000", 0.3);
}

#[test]
fn suite_statistics_sane() {
    for spec in suite::all() {
        let a = spec.build_scaled(if spec.paper_n > 6000 { 0.05 } else { 0.25 });
        assert!(a.has_zero_free_diagonal(), "{}", spec.name);
        let sym = sstar::sparse::pattern::structural_symmetry(&a);
        assert!((1.0..2.0).contains(&sym), "{}: symmetry {sym}", spec.name);
    }
}
