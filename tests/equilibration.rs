//! Equilibration: badly scaled systems are solved accurately once rows
//! and columns are scaled to unit maximum before factorization.

use sstar::core::pipeline::equilibrate;
use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};
use sstar::sparse::{CooMatrix, CscMatrix};

/// A grid operator with rows/columns scaled by wildly varying powers.
fn badly_scaled(n_side: usize) -> CscMatrix {
    let a = gen::grid2d(n_side, n_side, 0.4, ValueModel::default());
    let n = a.ncols();
    let mut c = CooMatrix::new(n, n);
    for (i, j, v) in a.iter() {
        let ri = 10f64.powi((i % 13) as i32 - 6);
        let cj = 10f64.powi((j % 11) as i32 - 5);
        c.push(i, j, v * ri * cj);
    }
    c.to_csc()
}

#[test]
fn equilibrate_produces_unit_row_and_col_maxima() {
    let a = badly_scaled(8);
    let (b, r, c) = equilibrate(&a);
    assert_eq!(r.len(), a.nrows());
    assert_eq!(c.len(), a.ncols());
    let n = b.ncols();
    let mut rmax = vec![0.0f64; n];
    let mut cmax = vec![0.0f64; n];
    for (i, j, v) in b.iter() {
        rmax[i] = rmax[i].max(v.abs());
        cmax[j] = cmax[j].max(v.abs());
    }
    for j in 0..n {
        assert!((cmax[j] - 1.0).abs() < 1e-12, "col {j}: {}", cmax[j]);
        // row maxima end up ≤ 1 after the column pass and stay positive
        assert!(
            rmax[j] > 0.0 && rmax[j] <= 1.0 + 1e-12,
            "row {j}: {}",
            rmax[j]
        );
    }
}

#[test]
fn equilibrated_solve_beats_or_matches_raw_on_bad_scaling() {
    let a = badly_scaled(10);
    let n = a.ncols();
    let xt: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) * 0.4 - 1.2).collect();
    let b = a.matvec(&xt);

    let solve = |equilibrate: bool| {
        let solver = SparseLuSolver::analyze(
            &a,
            FactorOptions {
                equilibrate,
                ..FactorOptions::default()
            },
        );
        let lu = solver.factor().unwrap();
        let x = lu.solve(&b);
        x.iter()
            .zip(&xt)
            .map(|(p, q)| ((p - q) / q.abs().max(1.0)).abs())
            .fold(0.0f64, f64::max)
    };
    let err_eq = solve(true);
    let err_raw = solve(false);
    assert!(err_eq < 1e-4, "equilibrated error {err_eq}");
    assert!(
        err_eq <= err_raw * 10.0,
        "equilibration should not hurt: {err_eq} vs {err_raw}"
    );
}

#[test]
fn equilibration_is_identity_safe_on_well_scaled_input() {
    let a = gen::random_sparse(100, 4, 0.5, ValueModel::default());
    let n = a.ncols();
    let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
    let b = a.matvec(&xt);
    for eq in [false, true] {
        let x = sstar::core::pipeline::lu_solve(
            &a,
            &b,
            FactorOptions {
                equilibrate: eq,
                ..FactorOptions::default()
            },
        )
        .unwrap();
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-6, "eq={eq}: error {err}");
    }
}
