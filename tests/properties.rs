//! Property-based tests (proptest) on the core invariants:
//!
//! * the static symbolic factorization covers the actual fill of GEPP
//!   with trailing interchanges for arbitrary patterns and values,
//! * Theorem 1: U blocks contain only structurally dense subcolumns,
//! * the full pipeline is a backward-stable solver on random inputs,
//! * permutation/pattern algebra round-trips.

use proptest::prelude::*;
use sstar::prelude::*;
use sstar::sparse::pattern::{at_plus_a_pattern, structural_symmetry};
use sstar::sparse::{CooMatrix, CscMatrix};
use sstar::symbolic::{
    partition_supernodes, static_symbolic_factorization,
};

/// Random sparse nonsingular-ish matrix with a zero-free diagonal.
fn sparse_matrix(max_n: usize) -> impl Strategy<Value = CscMatrix> {
    (2..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let d = 1.5 + (next() % 100) as f64 / 50.0;
            coo.push(i, i, if next() % 2 == 0 { d } else { -d });
            // 0-3 off-diagonals per row
            for _ in 0..(next() % 4) {
                let j = (next() as usize) % n;
                if j != i {
                    let v = ((next() % 200) as f64 - 100.0) / 60.0;
                    if v != 0.0 {
                        coo.push(i, j, v);
                    }
                }
            }
        }
        coo.to_csc()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_is_backward_stable(a in sparse_matrix(60)) {
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) * 0.4 - 1.7).collect();
        let b = a.matvec(&xt);
        let solver = SparseLuSolver::analyze(&a, FactorOptions {
            block_size: 8,
            amalgamation: 3,
            ordering: ColumnOrdering::MinDegreeAtA,
            ..FactorOptions::default()
        });
        if let Ok(lu) = solver.factor() {
            let x = lu.solve(&b);
            let r = a.matvec(&x).iter().zip(&b)
                .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
            prop_assert!(r < 1e-8 * a.norm_inf().max(1.0), "residual {r}");
        }
    }

    #[test]
    fn static_structure_covers_trailing_swap_gepp(a in sparse_matrix(40)) {
        let n = a.ncols();
        let s = static_symbolic_factorization(&a);
        // dense GEPP with trailing-only interchanges in slot coordinates
        let mut w = a.to_dense();
        let mut ok = true;
        for k in 0..n {
            let mut piv = k;
            for i in (k + 1)..n {
                if w[(i, k)].abs() > w[(piv, k)].abs() { piv = i; }
            }
            if w[(piv, k)] == 0.0 { ok = false; break; }
            if piv != k {
                for j in k..n {
                    let t = w[(k, j)]; w[(k, j)] = w[(piv, j)]; w[(piv, j)] = t;
                }
            }
            let d = w[(k, k)];
            for i in (k + 1)..n { w[(i, k)] /= d; }
            for j in (k + 1)..n {
                let u = w[(k, j)];
                if u != 0.0 {
                    for i in (k + 1)..n {
                        let l = w[(i, k)];
                        w[(i, j)] -= l * u;
                    }
                }
            }
        }
        if ok {
            for i in 0..n {
                for j in 0..n {
                    if w[(i, j)].abs() > 1e-12 {
                        prop_assert!(
                            s.contains(i, j) || a.is_stored(i, j),
                            "fill at ({i},{j}) not predicted"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn theorem1_dense_subcolumns(a in sparse_matrix(50)) {
        let s = static_symbolic_factorization(&a);
        let part = partition_supernodes(&s, 25);
        // pre-amalgamation: every U block subcolumn present in every row
        // of its supernode
        let bp = sstar::symbolic::BlockPattern::build(&s, &part);
        for k in 0..bp.nblocks() {
            let lo = bp.part.start(k);
            let hi = bp.part.starts[k + 1];
            for u in &bp.u_blocks[k] {
                for &c in &u.cols {
                    for row in lo..hi {
                        prop_assert!(
                            s.urows[row].binary_search(&c).is_ok(),
                            "Theorem 1 violated at row {row}, col {c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn perm_roundtrip(perm in prop::collection::vec(any::<u32>(), 1..50)) {
        // build a permutation from random priorities
        let n = perm.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (perm[i], i));
        let p = Perm::from_old_of_new(idx);
        prop_assert!(p.then(&p.inverse()).is_identity());
        for i in 0..n {
            prop_assert_eq!(p.old_of_new(p.new_of_old(i)), i);
        }
    }

    #[test]
    fn symmetry_score_bounds(a in sparse_matrix(40)) {
        let s = structural_symmetry(&a);
        prop_assert!((1.0..=2.0 + 1e-9).contains(&s), "symmetry {s} out of range");
        // Aᵀ+A pattern must contain A's pattern
        let u = at_plus_a_pattern(&a);
        for (i, j, _) in a.iter() {
            prop_assert!(u.contains(i, j));
        }
    }

    #[test]
    fn transversal_after_random_row_shuffle(a in sparse_matrix(40), shift in 1usize..20) {
        let b = sstar::sparse::gen::shift_rows(&a, shift % a.ncols());
        let p = sstar::order::zero_free_row_perm(&b);
        // A had a zero-free diagonal, so a full transversal must exist
        prop_assert!(p.is_some());
        prop_assert!(b.permute_rows(&p.unwrap()).has_zero_free_diagonal());
    }
}
