//! Randomized tests on the core invariants:
//!
//! * the static symbolic factorization covers the actual fill of GEPP
//!   with trailing interchanges for arbitrary patterns and values,
//! * Theorem 1: U blocks contain only structurally dense subcolumns,
//! * the full pipeline is a backward-stable solver on random inputs,
//! * permutation/pattern algebra round-trips.
//!
//! Case generation is seeded and fully deterministic (no proptest — the
//! build environment is offline), so any failure reproduces exactly.

use sstar::prelude::*;
use sstar::sparse::pattern::{at_plus_a_pattern, structural_symmetry};
use sstar::sparse::rng::SmallRng;
use sstar::sparse::{CooMatrix, CscMatrix};
use sstar::symbolic::{partition_supernodes, static_symbolic_factorization};

/// Random sparse nonsingular-ish matrix with a zero-free diagonal.
fn sparse_matrix(seed: u64, max_n: usize) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(2..max_n);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let d = 1.5 + (rng.next_u64() % 100) as f64 / 50.0;
        coo.push(i, i, if rng.gen_bool(0.5) { d } else { -d });
        // 0-3 off-diagonals per row
        for _ in 0..(rng.next_u64() % 4) {
            let j = rng.gen_range(0..n);
            if j != i {
                let v = ((rng.next_u64() % 200) as f64 - 100.0) / 60.0;
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
    }
    coo.to_csc()
}

const CASES: u64 = 24;

#[test]
fn pipeline_is_backward_stable() {
    for seed in 0..CASES {
        let a = sparse_matrix(0x5001 + seed, 60);
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) * 0.4 - 1.7).collect();
        let b = a.matvec(&xt);
        let solver = SparseLuSolver::analyze(
            &a,
            FactorOptions {
                block_size: 8,
                amalgamation: 3,
                ordering: ColumnOrdering::MinDegreeAtA,
                ..FactorOptions::default()
            },
        );
        if let Ok(lu) = solver.factor() {
            let x = lu.solve(&b);
            let r = a
                .matvec(&x)
                .iter()
                .zip(&b)
                .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
            assert!(
                r < 1e-8 * a.norm_inf().max(1.0),
                "seed {seed}: residual {r}"
            );
        }
    }
}

#[test]
fn static_structure_covers_trailing_swap_gepp() {
    for seed in 0..CASES {
        let a = sparse_matrix(0x5101 + seed, 40);
        let n = a.ncols();
        let s = static_symbolic_factorization(&a);
        // dense GEPP with trailing-only interchanges in slot coordinates
        let mut w = a.to_dense();
        let mut ok = true;
        for k in 0..n {
            let mut piv = k;
            for i in (k + 1)..n {
                if w[(i, k)].abs() > w[(piv, k)].abs() {
                    piv = i;
                }
            }
            if w[(piv, k)] == 0.0 {
                ok = false;
                break;
            }
            if piv != k {
                for j in k..n {
                    let t = w[(k, j)];
                    w[(k, j)] = w[(piv, j)];
                    w[(piv, j)] = t;
                }
            }
            let d = w[(k, k)];
            for i in (k + 1)..n {
                w[(i, k)] /= d;
            }
            for j in (k + 1)..n {
                let u = w[(k, j)];
                if u != 0.0 {
                    for i in (k + 1)..n {
                        let l = w[(i, k)];
                        w[(i, j)] -= l * u;
                    }
                }
            }
        }
        if ok {
            for i in 0..n {
                for j in 0..n {
                    if w[(i, j)].abs() > 1e-12 {
                        assert!(
                            s.contains(i, j) || a.is_stored(i, j),
                            "seed {seed}: fill at ({i},{j}) not predicted"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn theorem1_dense_subcolumns() {
    for seed in 0..CASES {
        let a = sparse_matrix(0x5201 + seed, 50);
        let s = static_symbolic_factorization(&a);
        let part = partition_supernodes(&s, 25);
        // pre-amalgamation: every U block subcolumn present in every row
        // of its supernode
        let bp = sstar::symbolic::BlockPattern::build(&s, &part);
        for k in 0..bp.nblocks() {
            let lo = bp.part.start(k);
            let hi = bp.part.starts[k + 1];
            for u in &bp.u_blocks[k] {
                for &c in &u.cols {
                    for row in lo..hi {
                        assert!(
                            s.urows[row].binary_search(&c).is_ok(),
                            "seed {seed}: Theorem 1 violated at row {row}, col {c}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn perm_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x5301);
    for _case in 0..CASES {
        // build a permutation from random priorities
        let n = rng.gen_range(1..50);
        let prio: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (prio[i], i));
        let p = Perm::from_old_of_new(idx);
        assert!(p.then(&p.inverse()).is_identity());
        for i in 0..n {
            assert_eq!(p.old_of_new(p.new_of_old(i)), i);
        }
    }
}

#[test]
fn symmetry_score_bounds() {
    for seed in 0..CASES {
        let a = sparse_matrix(0x5401 + seed, 40);
        let s = structural_symmetry(&a);
        assert!(
            (1.0..=2.0 + 1e-9).contains(&s),
            "seed {seed}: symmetry {s} out of range"
        );
        // Aᵀ+A pattern must contain A's pattern
        let u = at_plus_a_pattern(&a);
        for (i, j, _) in a.iter() {
            assert!(u.contains(i, j));
        }
    }
}

#[test]
fn transversal_after_random_row_shuffle() {
    let mut rng = SmallRng::seed_from_u64(0x5501);
    for seed in 0..CASES {
        let a = sparse_matrix(0x5601 + seed, 40);
        let shift = rng.gen_range(1..20);
        let b = sstar::sparse::gen::shift_rows(&a, shift % a.ncols());
        let p = sstar::order::zero_free_row_perm(&b);
        // A had a zero-free diagonal, so a full transversal must exist
        assert!(p.is_some(), "seed {seed}");
        assert!(b.permute_rows(&p.unwrap()).has_zero_free_diagonal());
    }
}
