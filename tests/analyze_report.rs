//! End-to-end attribution: factor sherman5 on a 2×2 grid with the
//! flight recorder on, run the critical-path attribution engine over
//! the trace, and check the ISSUE acceptance criteria — per-rank
//! categories cover ≥95 % of wall time, the sustained pipeline depth
//! respects the Theorem 2 `p_c + W` bound, and the `splu analyze` JSON
//! report is schema-stable.
#![cfg(feature = "probe")]

use sstar::core::par2d::{factor_par2d_sched, factor_par2d_traced, Sched2d, Sync2d};
use sstar::machine::Grid;
use sstar::prelude::*;
use sstar::probe::analyze::{
    attribute, report_json, report_text, CommModel, ReportExtras, TaskDagSummary, CATEGORIES,
};
use sstar::probe::json::{parse, Value};
use sstar::probe::Collector;

struct Analyzed {
    attribution: sstar::probe::analyze::Attribution,
    extras: ReportExtras,
    depth: u32,
}

fn analyze_sherman5_2x2() -> Analyzed {
    let spec = sstar::sparse::suite::by_name("sherman5").expect("sherman5 in the suite");
    let a = spec.build();
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let grid = Grid::new(2, 2);
    let lookahead = 1usize;
    let collector = Collector::new();
    let r = factor_par2d_traced(
        &solver.permuted,
        solver.pattern.clone(),
        grid,
        Sync2d::Async,
        1.0,
        lookahead,
        &collector,
    );
    let trace = collector.finish();
    let attribution = attribute(&trace);
    let plan = sstar::sched::plan_taskdag(
        &sstar::sched::TaskGraph::build(&solver.pattern),
        &sstar::symbolic::block_etree(&solver.pattern),
        grid.nprocs(),
    );
    let dag = factor_par2d_sched(
        &solver.permuted,
        solver.pattern.clone(),
        grid,
        Sync2d::Async,
        1.0,
        Sched2d::TaskDag,
    );
    let extras = ReportExtras {
        matrix: "sherman5".into(),
        pr: grid.pr,
        pc: grid.pc,
        lookahead,
        executor_depth_p95: Some(r.sustained_depth_p95()),
        model: Some(CommModel {
            pr: grid.pr,
            pc: grid.pc,
            stages: solver.pattern.nblocks(),
            factor_entries: solver.static_factor_nnz() as u64,
        }),
        taskdag: Some(TaskDagSummary {
            subtree_local_tasks: dag.stats.subtree_local_tasks,
            total_tasks: (dag.stats.factor_tasks + dag.stats.update_tasks) as u64,
            nsubtrees: plan.nsubtrees as u64,
            steal_attempts: dag.stats.steal_attempts,
            steal_hits: dag.stats.steal_hits,
        }),
    };
    Analyzed {
        attribution,
        extras,
        depth: r.sustained_depth_p95(),
    }
}

#[test]
fn sherman5_2x2_attribution_meets_acceptance_criteria() {
    let run = analyze_sherman5_2x2();
    let a = &run.attribution;

    // every grid rank shows up, and each rank's categories partition its
    // wall time — the sweep is exact, so demand the full 100 %, which
    // trivially dominates the ≥95 % acceptance bar
    assert_eq!(a.ranks.len(), 4, "one attribution row per rank");
    assert!(a.wall_ns > 0);
    for r in &a.ranks {
        let sum: u64 = r.category_ns.iter().sum();
        assert_eq!(r.wall_ns, a.wall_ns, "ranks share the trace extent");
        assert_eq!(
            sum, r.wall_ns,
            "rank {}: categories must partition wall time exactly",
            r.rank
        );
        assert!(
            sum as f64 >= 0.95 * r.wall_ns as f64,
            "rank {}: acceptance requires ≥95 % coverage",
            r.rank
        );
    }

    // real work happened in every compute category
    for (i, name) in CATEGORIES.iter().enumerate().take(4) {
        assert!(a.total_ns[i] > 0, "category {name} saw no time");
    }

    // critical path: positive, no longer than the total work, and the
    // ceiling it implies is at least 1×
    assert!(a.critical_path_ns > 0 && a.critical_path_ns <= a.total_work_ns);
    assert!(a.critical_path_spans > 0);
    assert!(a.speedup_ceiling >= 1.0);

    // Theorem 2: sustained pipeline depth within p_c + W
    let bound = run.extras.depth_bound();
    assert!(
        run.depth <= bound,
        "sustained depth {} exceeds p_c + W = {bound}",
        run.depth
    );
}

#[test]
fn sherman5_2x2_report_json_is_schema_stable() {
    let run = analyze_sherman5_2x2();
    let j = report_json(&run.attribution, &run.extras);
    let v = parse(&j).expect("report must be valid JSON");

    assert_eq!(
        v.get("report").and_then(Value::as_str),
        Some("splu_analyze")
    );
    assert_eq!(v.get("matrix").and_then(Value::as_str), Some("sherman5"));
    assert_eq!(v.get("pr").and_then(Value::as_u64), Some(2));
    assert_eq!(v.get("pc").and_then(Value::as_u64), Some(2));
    for key in [
        "lookahead",
        "wall_secs",
        "total_work_secs",
        "critical_path_secs",
        "critical_path_spans",
        "speedup_ceiling",
        "pipeline_depth_p95",
        "pipeline_depth_bound",
        "pipeline_depth_ok",
        "messages",
        "bytes",
        "model_messages",
        "model_bytes",
        "taskdag",
        "attribution",
        "ranks",
    ] {
        assert!(v.get(key).is_some(), "missing key {key}");
    }

    // the task-DAG attribution block is coherent: local + separator tasks
    // partition the run, the rendered share matches, and the cut found at
    // least one subtree
    let td = v.get("taskdag").unwrap();
    let local = td
        .get("subtree_local_tasks")
        .and_then(Value::as_u64)
        .unwrap();
    let sep = td.get("separator_tasks").and_then(Value::as_u64).unwrap();
    let share = td
        .get("subtree_task_share")
        .and_then(Value::as_f64)
        .unwrap();
    assert!(local + sep > 0, "task-DAG run executed no tasks");
    assert!((0.0..=1.0).contains(&share));
    assert!(
        (share - local as f64 / (local + sep) as f64).abs() < 1e-3,
        "share {share} inconsistent with {local}/{}",
        local + sep
    );
    assert!(td.get("nsubtrees").and_then(Value::as_u64).unwrap() >= 1);
    assert!(matches!(
        v.get("pipeline_depth_ok"),
        Some(Value::Bool(true))
    ));

    // the totals block and every rank row carry all six categories
    let attr = v.get("attribution").unwrap();
    for c in CATEGORIES {
        assert!(attr.get(&format!("{c}_secs")).is_some(), "missing {c}");
    }
    let ranks = v.get("ranks").and_then(Value::items).unwrap();
    assert_eq!(ranks.len(), 4);
    let wall = v.get("wall_secs").and_then(Value::as_f64).unwrap();
    for r in ranks {
        assert!(r.get("rank").and_then(Value::as_u64).is_some());
        let mut sum = 0.0;
        for c in CATEGORIES {
            sum += r
                .get(&format!("{c}_secs"))
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("rank missing {c}_secs"));
        }
        // serialized at µs resolution; the rendered categories must
        // still cover ≥95 % of the rendered wall time
        assert!(
            sum >= 0.95 * wall,
            "rank categories sum {sum} vs wall {wall}"
        );
    }

    // measured message volume is in the same regime as the cost model:
    // the model is per-stage exact on the grid term, so the measured
    // count may exceed it (retries, pivot traffic) but not vanish
    let messages = v.get("messages").and_then(Value::as_u64).unwrap();
    let model_messages = v.get("model_messages").and_then(Value::as_u64).unwrap();
    assert!(messages > 0 && model_messages > 0);

    // the ASCII report prints a row per rank and the depth verdict
    let txt = report_text(&run.attribution, &run.extras);
    for p in 0..4 {
        assert!(txt.contains(&format!("P{p}")), "missing rank {p} row");
    }
    assert!(txt.contains("bound p_c + W = 3"));
    assert!(txt.contains("task-DAG:"), "missing task-DAG report line");
    assert!(!txt.contains("EXCEEDS"));
}
