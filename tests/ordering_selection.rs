//! Ordering selection (§3.1's `memplus` observation, §7's future work):
//! the static overestimation depends strongly on which pattern the
//! minimum-degree ordering targets (`AᵀA` vs `Aᵀ+A`), and neither choice
//! dominates. `analyze_auto` runs the (cheap, output-linear) symbolic
//! pipeline under both and keeps the smaller prediction.

use sstar::core::SparseLuSolver;
use sstar::prelude::*;
use sstar::sparse::gen::{self, ValueModel};
use sstar::sparse::{CooMatrix, CscMatrix};

/// A memplus-flavored matrix: a sparse band plus one nearly dense row.
fn dense_row_matrix(n: usize) -> CscMatrix {
    let mut c = CooMatrix::new(n, n);
    for i in 0..n {
        c.push(i, i, 3.0 + (i % 5) as f64);
        if i + 1 < n {
            c.push(i + 1, i, -1.0);
        }
        if i + 7 < n {
            c.push(i, i + 7, 0.5);
        }
    }
    for j in (1..n).step_by(2) {
        c.push(0, j, 0.25);
    }
    c.to_csc()
}

fn static_nnz(a: &CscMatrix, ordering: ColumnOrdering) -> usize {
    SparseLuSolver::analyze(
        a,
        FactorOptions {
            ordering,
            ..FactorOptions::default()
        },
    )
    .static_factor_nnz()
}

#[test]
fn the_two_targets_predict_differently() {
    // the choice matters: on the memplus-flavored matrix the two
    // orderings differ by > 50 % in predicted fill
    let a = dense_row_matrix(160);
    let ata = static_nnz(&a, ColumnOrdering::MinDegreeAtA);
    let atpa = static_nnz(&a, ColumnOrdering::MinDegreeAtPlusA);
    let ratio = ata.max(atpa) as f64 / ata.min(atpa) as f64;
    assert!(ratio > 1.5, "AᵀA {ata} vs Aᵀ+A {atpa}: ratio {ratio}");
}

#[test]
fn auto_selection_picks_the_minimum() {
    let cases: Vec<CscMatrix> = vec![
        dense_row_matrix(160),
        gen::grid2d(12, 12, 0.3, ValueModel::default()),
        gen::random_sparse(150, 4, 0.3, ValueModel::default()),
        gen::block_fluid(12, 5, 9, 0.3, ValueModel::default()),
    ];
    for (i, a) in cases.iter().enumerate() {
        let auto = SparseLuSolver::analyze_auto(a, FactorOptions::default());
        let ata = static_nnz(a, ColumnOrdering::MinDegreeAtA);
        let atpa = static_nnz(a, ColumnOrdering::MinDegreeAtPlusA);
        assert_eq!(
            auto.static_factor_nnz(),
            ata.min(atpa),
            "case {i}: auto must take the smaller prediction ({ata} vs {atpa})"
        );
    }
}

#[test]
fn auto_selected_pipeline_solves_correctly() {
    for a in [
        dense_row_matrix(120),
        gen::random_sparse(130, 4, 0.6, ValueModel::default()),
    ] {
        let n = a.ncols();
        let auto = SparseLuSolver::analyze_auto(&a, FactorOptions::default());
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let b = a.matvec(&xt);
        let lu = auto.factor().unwrap();
        let x = lu.solve(&b);
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-7, "error {err}");
    }
}

#[test]
fn at_plus_a_ordering_solves_correctly() {
    let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
    let n = a.ncols();
    let xt: Vec<f64> = (0..n).map(|i| ((i % 6) as f64) - 2.5).collect();
    let b = a.matvec(&xt);
    let x = sstar::core::pipeline::lu_solve(
        &a,
        &b,
        FactorOptions {
            ordering: ColumnOrdering::MinDegreeAtPlusA,
            ..FactorOptions::default()
        },
    )
    .unwrap();
    let err = x
        .iter()
        .zip(&xt)
        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
    assert!(err < 1e-7);
}
