//! Graph scheduling (the RAPID/PYRROS line, §5.1 of the paper).
//!
//! A communication-aware list scheduler: tasks are prioritized by bottom
//! level (critical path to exit, message costs included) and assigned to
//! the processor that can start them earliest, under the owner-computes
//! constraint that all tasks of one column block co-locate (so the column
//! block mapping itself is *derived from the schedule*, as in the paper:
//! "uses sophisticated graph scheduling technique to guide the mapping of
//! column blocks and ordering of tasks").
//!
//! The per-processor task orders produced here are what the RAPID-style
//! executor in `splu-core::par1d` replays with asynchronous zero-copy
//! messages.

use crate::sim::Schedule;
use crate::taskgraph::TaskGraph;
use splu_machine::MachineModel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Prio(f64, u32);

impl Eq for Prio {}

impl PartialOrd for Prio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Prio {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap by priority, tie-break by smaller task id (determinism)
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

/// How column blocks are bound to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingPolicy {
    /// First-touch earliest-start binding (classic ETF clustering).
    EarliestStart,
    /// Cyclic block→processor binding (like CA); the schedule then only
    /// decides the per-processor *ordering* by critical-path priority —
    /// the lookahead freedom the paper's Fig. 11 illustrates.
    Cyclic,
    /// Balance total block work greedily (longest-processing-time first)
    /// before ordering by critical path.
    WorkBalanced,
}

/// Build a graph schedule for `g` on `nprocs` processors under `model`,
/// using the default mapping policy (cyclic binding + critical-path
/// ordering — see [`graph_schedule_with`] to choose another).
pub fn graph_schedule(g: &TaskGraph, nprocs: usize, model: &MachineModel) -> Schedule {
    graph_schedule_with(g, nprocs, model, MappingPolicy::Cyclic)
}

/// Build a graph schedule with an explicit mapping policy.
pub fn graph_schedule_with(
    g: &TaskGraph,
    nprocs: usize,
    model: &MachineModel,
    policy: MappingPolicy,
) -> Schedule {
    assert!(nprocs >= 1);
    let n = g.len();
    // Priorities use computation-only bottom levels (HLFET): with the
    // one-sided overlap model, comm-inflated levels systematically
    // misprioritize wide fan-out tasks.
    let bl = {
        let mut zero_comm = *model;
        zero_comm.alpha = 0.0;
        zero_comm.beta = 0.0;
        g.bottom_levels(&zero_comm)
    };

    let mut indeg: Vec<u32> = g.preds.iter().map(|p| p.len() as u32).collect();
    let mut heap: BinaryHeap<Prio> = (0..n as u32)
        .filter(|&t| indeg[t as usize] == 0)
        .map(|t| Prio(bl[t as usize], t))
        .collect();

    let mut proc_of = vec![u32::MAX; n];
    let mut order: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    let mut proc_time = vec![0.0f64; nprocs];
    let mut est_finish = vec![0.0f64; n];
    let mut block_proc: Vec<u32> = vec![u32::MAX; g.nblocks];

    match policy {
        MappingPolicy::Cyclic => {
            for b in 0..g.nblocks {
                block_proc[b] = (b % nprocs) as u32;
            }
        }
        MappingPolicy::WorkBalanced => {
            // total work per block, then LPT greedy onto least-loaded proc
            let mut work = vec![0.0f64; g.nblocks];
            for t in 0..n {
                work[g.owner_block[t] as usize] += g.cost(t, model);
            }
            let mut blocks: Vec<usize> = (0..g.nblocks).collect();
            blocks.sort_by(|&a, &b| work[b].partial_cmp(&work[a]).unwrap());
            let mut load = vec![0.0f64; nprocs];
            for b in blocks {
                let p = (0..nprocs)
                    .min_by(|&x, &y| load[x].partial_cmp(&load[y]).unwrap())
                    .unwrap();
                block_proc[b] = p as u32;
                load[p] += work[b];
            }
        }
        MappingPolicy::EarliestStart => {}
    }

    while let Some(Prio(_, t)) = heap.pop() {
        let tu = t as usize;
        let block = g.owner_block[tu] as usize;

        // candidate processors: the block's processor if already bound,
        // otherwise all
        let choose = |p: usize| -> f64 {
            let mut data_ready = 0.0f64;
            for &pr in &g.preds[tu] {
                let pf = est_finish[pr as usize];
                let arrive = if proc_of[pr as usize] == p as u32 {
                    pf
                } else {
                    pf + model.message_time(g.msg_words[pr as usize])
                };
                data_ready = data_ready.max(arrive);
            }
            proc_time[p].max(data_ready)
        };

        let p = if block_proc[block] != u32::MAX {
            block_proc[block] as usize
        } else {
            let mut best = 0usize;
            let mut best_start = f64::INFINITY;
            for cand in 0..nprocs {
                let s = choose(cand);
                if s < best_start {
                    best_start = s;
                    best = cand;
                }
            }
            block_proc[block] = best as u32;
            best
        };

        let start = choose(p);
        let finish = start + g.cost(tu, model);
        proc_of[tu] = p as u32;
        est_finish[tu] = finish;
        proc_time[p] = finish;
        order[p].push(t);

        for &s in &g.succs[tu] {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                heap.push(Prio(bl[s as usize], s));
            }
        }
    }

    let sched = Schedule { proc_of, order };
    sched.validate(g);
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::ca_schedule;
    use crate::sim::simulate;
    use crate::taskgraph::TaskKind;
    use splu_machine::{MachineModel, T3D};
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    fn graph_for(n: usize) -> TaskGraph {
        let a = gen::grid2d(n, n, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 8);
        let part = amalgamate(&s, &base, 4, 8);
        TaskGraph::build(&Arc::new(BlockPattern::build(&s, &part)))
    }

    #[test]
    fn valid_schedule_all_proc_counts() {
        let g = graph_for(8);
        for p in [1usize, 2, 3, 8] {
            let s = graph_schedule(&g, p, &T3D);
            let r = simulate(&g, &s, &T3D);
            assert!(r.makespan > 0.0);
        }
    }

    #[test]
    fn beats_or_matches_ca_on_moderate_procs() {
        // The paper (Fig. 16): for more than four processors the RAPID
        // (graph-scheduled) code runs 10–40 % faster than compute-ahead.
        let g = graph_for(12);
        for p in [8usize, 16] {
            let ca = simulate(&g, &ca_schedule(&g, p), &T3D).makespan;
            let gs = simulate(&g, &graph_schedule(&g, p, &T3D), &T3D).makespan;
            assert!(
                gs <= ca * 1.02,
                "P={p}: graph {gs} vs CA {ca} — graph scheduling should win"
            );
        }
    }

    #[test]
    fn single_proc_equals_total_work() {
        let g = graph_for(6);
        let r = simulate(&g, &graph_schedule(&g, 1, &T3D), &T3D);
        assert!((r.makespan - g.total_work(&T3D)).abs() < 1e-9);
    }

    #[test]
    fn fig11_style_example_graph_beats_ca() {
        // A hand-built instance in the spirit of Figs. 9/11: unit model
        // with task weight 2 and edge weight 1. Graph scheduling may
        // reorder independent Factor tasks ahead of less-critical updates.
        // We verify on a pattern from a small sparse matrix.
        let model = MachineModel {
            name: "fig11",
            w1: 1.0,
            w2: 1.0,
            w3: 1.0,
            alpha: 1.0,
            beta: 0.0,
        };
        // normalize all task costs to weight 2 by building a graph and
        // overriding flops
        let mut g = graph_for(7);
        for f in g.flops.iter_mut() {
            *f = (2, 0);
        }
        for w in g.msg_words.iter_mut() {
            *w = 0; // edge cost = alpha = 1
        }
        let ca = simulate(&g, &ca_schedule(&g, 2), &model).makespan;
        let gs = simulate(&g, &graph_schedule(&g, 2, &model), &model).makespan;
        assert!(gs <= ca, "graph {gs} vs CA {ca}");
    }

    #[test]
    fn block_clustering_respected() {
        let g = graph_for(9);
        let s = graph_schedule(&g, 4, &T3D);
        // all tasks of one column block on one processor
        let mut block_proc = vec![u32::MAX; g.nblocks];
        for (t, kind) in g.tasks.iter().enumerate() {
            let b = match kind {
                TaskKind::Factor(k) => *k as usize,
                TaskKind::Update(_, j) => *j as usize,
            };
            if block_proc[b] == u32::MAX {
                block_proc[b] = s.proc_of[t];
            } else {
                assert_eq!(block_proc[b], s.proc_of[t], "block {b} split");
            }
        }
    }
}
