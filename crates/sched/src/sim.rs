//! Discrete-event simulation of a schedule on a machine model.
//!
//! Given a task graph, a task→processor mapping, and a per-processor task
//! order, the simulator computes start/finish times under the model:
//! a task starts when (a) its processor has finished every earlier task in
//! its local order, and (b) every predecessor's output has arrived —
//! immediately for co-located predecessors, after `α + words·β` for remote
//! ones (the one-sided RMA model: the sender does not block, transfers
//! overlap computation). This is the instrument used for every projected
//! (T3D/T3E) parallel-time experiment and the Fig. 11 Gantt comparison.

use crate::taskgraph::TaskGraph;
use splu_machine::MachineModel;

/// A complete schedule: mapping + per-processor orders.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// `proc_of[t]` = processor of task `t`.
    pub proc_of: Vec<u32>,
    /// `order[p]` = task ids in execution order on processor `p`.
    pub order: Vec<Vec<u32>>,
}

impl Schedule {
    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.order.len()
    }

    /// Validate internal consistency against a graph.
    pub fn validate(&self, g: &TaskGraph) {
        assert_eq!(self.proc_of.len(), g.len());
        let mut seen = vec![false; g.len()];
        for (p, ord) in self.order.iter().enumerate() {
            for &t in ord {
                assert_eq!(self.proc_of[t as usize] as usize, p, "mapping mismatch");
                assert!(!seen[t as usize], "task {t} scheduled twice");
                seen[t as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some task never scheduled");
    }
}

/// One simulated task execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTask {
    /// Task id.
    pub task: u32,
    /// Processor.
    pub proc: u32,
    /// Start time (seconds).
    pub start: f64,
    /// Finish time (seconds).
    pub finish: f64,
}

/// Result of a schedule simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Parallel time (makespan) in seconds.
    pub makespan: f64,
    /// Per-task execution records (task id order).
    pub records: Vec<SimTask>,
    /// Per-processor busy time.
    pub busy: Vec<f64>,
}

impl SimResult {
    /// Efficiency = total work / (P × makespan).
    pub fn efficiency(&self) -> f64 {
        let total: f64 = self.busy.iter().sum();
        if self.makespan <= 0.0 {
            0.0
        } else {
            total / (self.busy.len() as f64 * self.makespan)
        }
    }
}

/// Extra simulation knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Per-word CPU time the *receiving* processor spends copying an
    /// incoming message out of a system buffer before it can be used
    /// (seconds/word). Zero models one-sided RMA transports (RAPID's
    /// `shmem_put` path: "no copying/buffering during a data transfer");
    /// a nonzero value models conventional buffered receives, which is
    /// how the paper's compute-ahead code consumes messages. Each remote
    /// message is copied at most once per receiving processor.
    pub recv_copy_per_word: f64,
}

/// Simulate `schedule` for `g` under `model` (one-sided zero-copy
/// receive model; see [`simulate_opts`]).
///
/// # Panics
/// Panics if the per-processor orders deadlock (an order inconsistent with
/// the dependences, e.g. two processors each waiting on the other's later
/// task).
pub fn simulate(g: &TaskGraph, schedule: &Schedule, model: &MachineModel) -> SimResult {
    simulate_opts(g, schedule, model, SimOptions::default())
}

/// Simulate with explicit options.
pub fn simulate_opts(
    g: &TaskGraph,
    schedule: &Schedule,
    model: &MachineModel,
    opts: SimOptions,
) -> SimResult {
    schedule.validate(g);
    let n = g.len();
    let nprocs = schedule.nprocs();
    let mut finish = vec![f64::NAN; n];
    let mut records = vec![
        SimTask {
            task: 0,
            proc: 0,
            start: 0.0,
            finish: 0.0
        };
        n
    ];
    let mut busy = vec![0.0f64; nprocs];
    let mut cursor = vec![0usize; nprocs]; // next position in each order
    let mut proc_time = vec![0.0f64; nprocs];
    let mut done = 0usize;
    // (pred, proc) pairs whose message has already been copied in
    let mut copied: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();

    // round-robin over processors, executing the next local task whenever
    // its predecessors are all finished; a full pass with no progress is a
    // deadlock.
    while done < n {
        let mut progressed = false;
        for p in 0..nprocs {
            while let Some(&t) = schedule.order[p].get(cursor[p]) {
                let tu = t as usize;
                // all preds finished?
                let mut data_ready = 0.0f64;
                let mut ready = true;
                for &pr in &g.preds[tu] {
                    let pf = finish[pr as usize];
                    if pf.is_nan() {
                        ready = false;
                        break;
                    }
                    let arrive = if schedule.proc_of[pr as usize] == p as u32 {
                        pf
                    } else {
                        pf + model.message_time(g.msg_words[pr as usize])
                    };
                    data_ready = data_ready.max(arrive);
                }
                if !ready {
                    break;
                }
                // buffered-receive copy cost (once per remote message per proc)
                let mut copy_cost = 0.0f64;
                if opts.recv_copy_per_word > 0.0 {
                    for &pr in &g.preds[tu] {
                        if schedule.proc_of[pr as usize] != p as u32
                            && copied.insert((pr, p as u32))
                        {
                            copy_cost += opts.recv_copy_per_word * g.msg_words[pr as usize] as f64;
                        }
                    }
                }
                let start = proc_time[p].max(data_ready);
                let dur = g.cost(tu, model) + copy_cost;
                let end = start + dur;
                finish[tu] = end;
                records[tu] = SimTask {
                    task: t,
                    proc: p as u32,
                    start,
                    finish: end,
                };
                proc_time[p] = end;
                busy[p] += dur;
                cursor[p] += 1;
                done += 1;
                progressed = true;
            }
        }
        assert!(
            progressed,
            "schedule deadlocked (order violates dependences)"
        );
    }

    let makespan = proc_time.iter().fold(0.0f64, |m, &t| m.max(t));
    SimResult {
        makespan,
        records,
        busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::TaskKind;

    /// Tiny hand-built graph: F0 → U01 → F1, F0 and F1 on different procs.
    fn toy_graph() -> TaskGraph {
        TaskGraph {
            tasks: vec![
                TaskKind::Factor(0),
                TaskKind::Update(0, 1),
                TaskKind::Factor(1),
            ],
            succs: vec![vec![1], vec![2], vec![]],
            preds: vec![vec![], vec![0], vec![1]],
            flops: vec![(100, 0), (0, 100), (100, 0)],
            owner_block: vec![0, 1, 1],
            msg_words: vec![10, 10, 10],
            nblocks: 2,
            factor_task: vec![0, 2],
        }
    }

    fn unit_model() -> splu_machine::MachineModel {
        splu_machine::MachineModel {
            name: "unit",
            w1: 1.0,
            w2: 1.0,
            w3: 1.0,
            alpha: 0.5,
            beta: 0.1,
        }
    }

    #[test]
    fn single_proc_is_serial_sum() {
        let g = toy_graph();
        let s = Schedule {
            proc_of: vec![0, 0, 0],
            order: vec![vec![0, 1, 2]],
        };
        let r = simulate(&g, &s, &unit_model());
        assert!((r.makespan - 300.0).abs() < 1e-9);
        assert!((r.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_proc_pays_message_cost() {
        let g = toy_graph();
        let s = Schedule {
            proc_of: vec![0, 1, 1],
            order: vec![vec![0], vec![1, 2]],
        };
        let m = unit_model();
        let r = simulate(&g, &s, &m);
        // F0: 0..100; message 0.5 + 10*0.1 = 1.5; U01: 101.5..201.5;
        // F1: 201.5..301.5
        assert!((r.makespan - 301.5).abs() < 1e-9);
        assert_eq!(r.records[1].proc, 1);
        assert!((r.records[1].start - 101.5).abs() < 1e-9);
    }

    #[test]
    fn colocated_successor_is_free() {
        let g = toy_graph();
        let s = Schedule {
            proc_of: vec![0, 0, 1],
            order: vec![vec![0, 1], vec![2]],
        };
        let r = simulate(&g, &s, &unit_model());
        // U01 starts at 100 (no message), F1 at 201.5
        assert!((r.records[1].start - 100.0).abs() < 1e-9);
        assert!((r.records[2].start - 201.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn bad_order_detected() {
        let g = toy_graph();
        // order F1 before U01 on proc 0 while U01 waits on... F1 precedes
        // its own predecessor → deadlock
        let s = Schedule {
            proc_of: vec![0, 0, 0],
            order: vec![vec![2, 0, 1]],
        };
        simulate(&g, &s, &unit_model());
    }

    #[test]
    #[should_panic]
    fn missing_task_detected() {
        let g = toy_graph();
        let s = Schedule {
            proc_of: vec![0, 0, 0],
            order: vec![vec![0, 1]],
        };
        simulate(&g, &s, &unit_model());
    }
}
