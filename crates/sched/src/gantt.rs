//! Text Gantt charts (Fig. 11 of the paper).
//!
//! Rendering itself lives in `splu_probe::gantt` so the same chart
//! style serves both simulated schedules and recorded traces; this
//! module only flattens a [`SimResult`] into bars.

use crate::sim::SimResult;
use crate::taskgraph::TaskGraph;
use splu_probe::gantt::{render_bars, Bar};
use std::fmt::Write as _;

/// Render a simulation result as a text Gantt chart, one line per
/// processor, `width` character cells across the makespan.
pub fn render_gantt(g: &TaskGraph, r: &SimResult, width: usize) -> String {
    let nprocs = r.busy.len();
    let bars: Vec<Bar> = r
        .records
        .iter()
        .map(|rec| Bar {
            proc: rec.proc as usize,
            start: rec.start,
            finish: rec.finish,
            label: format!("{}", g.tasks[rec.task as usize]),
        })
        .collect();
    let header = format!("makespan: {:.3e} s", r.makespan);
    render_bars(&bars, nprocs, width, Some(r.makespan), Some(&header))
}

/// Render the per-processor task sequences only (compact Fig.-11 form).
pub fn render_sequences(g: &TaskGraph, r: &SimResult) -> String {
    let nprocs = r.busy.len();
    let mut out = String::new();
    for p in 0..nprocs {
        let mut recs: Vec<_> = r
            .records
            .iter()
            .filter(|rec| rec.proc as usize == p)
            .collect();
        recs.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        let seq = recs
            .iter()
            .map(|rec| {
                format!(
                    "{}[{:.1}-{:.1}]",
                    g.tasks[rec.task as usize], rec.start, rec.finish
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "P{p}: {seq}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::ca_schedule;
    use crate::sim::simulate;
    use crate::taskgraph::TaskGraph;
    use splu_machine::T3D;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    #[test]
    fn renders_all_processors_and_tasks() {
        let a = gen::grid2d(5, 5, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 8);
        let part = amalgamate(&s, &base, 4, 8);
        let g = TaskGraph::build(&Arc::new(BlockPattern::build(&s, &part)));
        let r = simulate(&g, &ca_schedule(&g, 3), &T3D);
        let chart = render_gantt(&g, &r, 60);
        assert_eq!(chart.lines().count(), 4); // header + 3 procs
        assert!(chart.contains("P0"));
        assert!(chart.contains("F(1)"));
        let seqs = render_sequences(&g, &r);
        assert_eq!(seqs.lines().count(), 3);
    }
}
