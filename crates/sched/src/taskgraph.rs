//! The sparse LU task dependence graph (§4.1 of the paper).
//!
//! Tasks:
//! * `Factor(k)` for every column block `k`,
//! * `Update(k, j)` for every `k < j` with `U_kj ≠ 0`.
//!
//! Dependences (the four necessary properties plus the serialization
//! property the paper adds for implementation simplicity):
//! 1. `Factor(k) → Update(k, j)` for every `U_kj ≠ 0`;
//! 2. `Update(k', k) → Factor(k)` where `k'` is the **last** update stage
//!    of column block `k` (`k' < k`, `U_{k'k} ≠ 0`, no `Update(t, k)` with
//!    `k' < t < k`);
//! 3. `Update(k, j) → Update(k', j)` where `k'` is the **next** update
//!    stage of column `j` (no commutativity exploited; the paper measures
//!    the loss at ~6 %).
//!
//! Task costs are derived from the block pattern (panel sizes), split into
//! BLAS-2 (panel factorization) and BLAS-3 (TRSM + GEMM) flops so a
//! [`splu_machine::MachineModel`] can price them; each task also carries
//! the message volume its output must travel with (the delayed-pivoting
//! aggregated message: factored column block + pivot sequence).

use splu_symbolic::BlockPattern;
use std::sync::Arc;

/// Block width at which DGEMM reaches its nameplate rate (the paper's
/// kernel measurements use 25×25 blocks); narrower updates run partly at
/// the BLAS-2 rate.
pub const BLAS3_REF_WIDTH: f64 = 25.0;

/// A task in the sparse LU DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Factorize column block `k`.
    Factor(u32),
    /// Apply column block `k` to column block `j`.
    Update(u32, u32),
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Factor(k) => write!(f, "F({})", k + 1),
            TaskKind::Update(k, j) => write!(f, "U({},{})", k + 1, j + 1),
        }
    }
}

/// The task graph with costs.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    /// Task table.
    pub tasks: Vec<TaskKind>,
    /// Successor adjacency.
    pub succs: Vec<Vec<u32>>,
    /// Predecessor adjacency.
    pub preds: Vec<Vec<u32>>,
    /// Per-task (BLAS-2 flops, BLAS-3 flops).
    pub flops: Vec<(u64, u64)>,
    /// Column block each task belongs to under owner-computes (`j` for
    /// `Update(k, j)`, `k` for `Factor(k)`).
    pub owner_block: Vec<u32>,
    /// Words (8-byte) the task's output message carries to successors on
    /// other processors.
    pub msg_words: Vec<u64>,
    /// Number of column blocks.
    pub nblocks: usize,
    /// `factor_task[k]` = task id of `Factor(k)`.
    pub factor_task: Vec<u32>,
}

impl TaskGraph {
    /// Build the DAG from a block pattern.
    pub fn build(pattern: &Arc<BlockPattern>) -> Self {
        let nb = pattern.nblocks();
        let part = &pattern.part;

        let mut tasks: Vec<TaskKind> = Vec::new();
        let mut flops: Vec<(u64, u64)> = Vec::new();
        let mut owner_block: Vec<u32> = Vec::new();
        let mut msg_words: Vec<u64> = Vec::new();
        let mut factor_task: Vec<u32> = vec![0; nb];

        // L panel heights per block
        let lheights: Vec<u64> = (0..nb)
            .map(|k| {
                pattern.l_blocks[k]
                    .iter()
                    .map(|l| l.rows.len() as u64)
                    .sum()
            })
            .collect();

        // Factor tasks
        for k in 0..nb {
            let w = part.width(k) as u64;
            let nl = lheights[k];
            factor_task[k] = tasks.len() as u32;
            tasks.push(TaskKind::Factor(k as u32));
            // per step t: pivot search + scale (w - t + nl) + rank-1
            // 2·(w-t-1)·(w-t-1+nl); approximate with the closed form
            let b2 = (0..w).map(|t| {
                let below = w - t - 1 + nl;
                below + 2 * (w - t - 1) * below
            });
            flops.push((b2.sum(), 0));
            owner_block.push(k as u32);
            // output message: diag + L panel + pivots
            msg_words.push(w * w + nl * w + w);
        }

        // Update tasks (per source block, ordered by j)
        let mut update_ids: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nb]; // per j: (k, id)
        for k in 0..nb {
            let wk = part.width(k) as u64;
            let nl = lheights[k];
            for u in &pattern.u_blocks[k] {
                let j = u.j as usize;
                let nuc = u.cols.len() as u64;
                let id = tasks.len() as u32;
                tasks.push(TaskKind::Update(k as u32, u.j));
                // TRSM (w_k² · nuc) + GEMM (2 · nl · w_k · nuc).
                // BLAS-3 efficiency grows with the inner dimension (the
                // supernode width): below the reference block size the
                // kernel runs partly at the BLAS-2 rate — this is the
                // granularity effect that makes amalgamation pay off.
                let total = wk * wk * nuc + 2 * nl * wk * nuc;
                let b3 = (total as f64 * (wk as f64 / BLAS3_REF_WIDTH).min(1.0)) as u64;
                flops.push((total - b3, b3));
                owner_block.push(u.j);
                // an Update's output stays in its column block; its own
                // result is consumed by same-column tasks (zero words if
                // co-located; the modified panel otherwise)
                let wj = part.width(j) as u64;
                msg_words.push(wj * nuc.max(1));
                update_ids[j].push((k as u32, id));
            }
        }

        let ntasks = tasks.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); ntasks];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); ntasks];
        let add_edge = |succs: &mut Vec<Vec<u32>>, preds: &mut Vec<Vec<u32>>, a: u32, b: u32| {
            succs[a as usize].push(b);
            preds[b as usize].push(a);
        };

        for k in 0..nb {
            // property 1: Factor(k) → Update(k, j)
            for u in &pattern.u_blocks[k] {
                let j = u.j as usize;
                let id = update_ids[j]
                    .iter()
                    .find(|(kk, _)| *kk == k as u32)
                    .unwrap()
                    .1;
                add_edge(&mut succs, &mut preds, factor_task[k], id);
            }
            // properties 2 & 3: chain the updates of column block k, then
            // the last one feeds Factor(k). update_ids[k] is in increasing
            // k-stage order because source blocks were visited in order.
            let chain = &update_ids[k];
            for w in chain.windows(2) {
                add_edge(&mut succs, &mut preds, w[0].1, w[1].1);
            }
            if let Some(&(_, last)) = chain.last() {
                add_edge(&mut succs, &mut preds, last, factor_task[k]);
            }
        }

        Self {
            tasks,
            succs,
            preds,
            flops,
            owner_block,
            msg_words,
            nblocks: nb,
            factor_task,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task cost in seconds under a machine model.
    pub fn cost(&self, t: usize, model: &splu_machine::MachineModel) -> f64 {
        let (b2, b3) = self.flops[t];
        model.compute_time(0, b2, b3)
    }

    /// A topological order (tasks are constructed respecting block order,
    /// but this derives one explicitly by Kahn's algorithm).
    pub fn topo_order(&self) -> Vec<u32> {
        let n = self.len();
        let mut indeg: Vec<u32> = self.preds.iter().map(|p| p.len() as u32).collect();
        let mut queue: std::collections::VecDeque<u32> =
            (0..n as u32).filter(|&t| indeg[t as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            order.push(t);
            for &s in &self.succs[t as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push_back(s);
                }
            }
        }
        assert_eq!(order.len(), n, "task graph has a cycle");
        order
    }

    /// Bottom levels (critical-path-to-exit lengths) under a machine
    /// model, counting cross-processor message costs on every edge
    /// (the standard pessimistic b-level used for list scheduling).
    pub fn bottom_levels(&self, model: &splu_machine::MachineModel) -> Vec<f64> {
        let order = self.topo_order();
        let mut bl = vec![0.0f64; self.len()];
        for &t in order.iter().rev() {
            let tu = t as usize;
            let mut best = 0.0f64;
            for &s in &self.succs[tu] {
                let edge = model.message_time(self.msg_words[tu]);
                best = best.max(bl[s as usize] + edge);
            }
            bl[tu] = self.cost(tu, model) + best;
        }
        bl
    }

    /// Total work in seconds under a model (lower bound: work / P).
    pub fn total_work(&self, model: &splu_machine::MachineModel) -> f64 {
        (0..self.len()).map(|t| self.cost(t, model)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_machine::T3D;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };

    pub(crate) fn pattern_for(
        a: &splu_sparse::CscMatrix,
        r: usize,
        bsize: usize,
    ) -> Arc<BlockPattern> {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, bsize);
        let part = amalgamate(&s, &base, r, bsize);
        Arc::new(BlockPattern::build(&s, &part))
    }

    #[test]
    fn dense_matrix_task_counts() {
        // dense: N factor tasks + N(N-1)/2 update tasks
        let a = gen::dense_random(20, ValueModel::default());
        let p = pattern_for(&a, 0, 5);
        let g = TaskGraph::build(&p);
        let nb = p.nblocks();
        assert_eq!(nb, 4);
        assert_eq!(g.len(), nb + nb * (nb - 1) / 2);
    }

    #[test]
    fn dependence_properties_hold() {
        let a = gen::random_sparse(80, 4, 0.5, ValueModel::default());
        let p = pattern_for(&a, 4, 10);
        let g = TaskGraph::build(&p);
        for (t, kind) in g.tasks.iter().enumerate() {
            match *kind {
                TaskKind::Factor(k) => {
                    // successors of Factor(k) are exactly Update(k, *)
                    for &s in &g.succs[t] {
                        match g.tasks[s as usize] {
                            TaskKind::Update(kk, _) => assert_eq!(kk, k),
                            other => panic!("Factor({k}) → {other:?}"),
                        }
                    }
                }
                TaskKind::Update(k, j) => {
                    assert!(k < j);
                    // preds include Factor(k)
                    assert!(
                        g.preds[t].contains(&g.factor_task[k as usize]),
                        "U({k},{j}) missing Factor({k}) pred"
                    );
                }
            }
        }
    }

    #[test]
    fn chains_serialize_same_column_updates() {
        let a = gen::grid2d(8, 8, 0.3, ValueModel::default());
        let p = pattern_for(&a, 4, 8);
        let g = TaskGraph::build(&p);
        // For each column j, updates must form a path in k order.
        for j in 0..g.nblocks {
            let mut stages: Vec<(u32, usize)> = g
                .tasks
                .iter()
                .enumerate()
                .filter_map(|(t, k)| match *k {
                    TaskKind::Update(kk, jj) if jj as usize == j => Some((kk, t)),
                    _ => None,
                })
                .collect();
            stages.sort();
            for w in stages.windows(2) {
                let (_, t1) = w[0];
                let (_, t2) = w[1];
                assert!(
                    g.succs[t1].contains(&(t2 as u32)),
                    "updates of column {j} not chained"
                );
            }
            // last update feeds Factor(j)
            if let Some(&(_, last)) = stages.last() {
                assert!(g.succs[last].contains(&g.factor_task[j]));
            }
        }
    }

    #[test]
    fn graph_is_acyclic_and_costed() {
        let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
        let p = pattern_for(&a, 4, 8);
        let g = TaskGraph::build(&p);
        let order = g.topo_order();
        assert_eq!(order.len(), g.len());
        let bl = g.bottom_levels(&T3D);
        // entry tasks have the largest bottom levels on a path-connected DAG;
        // every bottom level is at least the task's own cost
        for t in 0..g.len() {
            assert!(bl[t] >= g.cost(t, &T3D));
        }
        assert!(g.total_work(&T3D) > 0.0);
    }

    #[test]
    fn update_flops_split_by_width() {
        // width-4 blocks: only 4/25 of update flops run at the BLAS-3 rate
        let a = gen::dense_random(16, ValueModel::default());
        let p = pattern_for(&a, 0, 4);
        let g = TaskGraph::build(&p);
        for (t, kind) in g.tasks.iter().enumerate() {
            match kind {
                TaskKind::Factor(_) => assert_eq!(g.flops[t].1, 0),
                TaskKind::Update(..) => {
                    let (b2, b3) = g.flops[t];
                    assert!(b3 > 0);
                    let frac = b3 as f64 / (b2 + b3) as f64;
                    assert!((frac - 4.0 / 25.0).abs() < 0.01, "frac {frac}");
                }
            }
        }
        // width-25 blocks: everything at the BLAS-3 rate
        let a = gen::dense_random(50, ValueModel::default());
        let p = pattern_for(&a, 0, 25);
        let g = TaskGraph::build(&p);
        for (t, kind) in g.tasks.iter().enumerate() {
            if matches!(kind, TaskKind::Update(..)) {
                assert_eq!(g.flops[t].0, 0, "width-25 update must be pure BLAS-3");
            }
        }
    }
}
