//! Elimination-tree task-DAG schedule for the 2D driver.
//!
//! The stage-sequential and lookahead schedules ([`crate::lookahead`])
//! factor block columns in index order, so two columns in *disjoint
//! elimination subtrees* — with no dependency path between them — still
//! serialize behind one another. This module generalizes the op-schedule
//! machinery into a tree-aware plan:
//!
//! 1. **Cut** ([`plan_taskdag`]): the block elimination tree
//!    ([`splu_symbolic::block_etree`]) is split by the Geist–Ng
//!    proportional rule — expand every subtree heavier than
//!    `total/nprocs` into its children — yielding independent *subtree
//!    tasks* below an upward-closed *separator*.
//! 2. **Map**: subtrees get a contiguous proportional initial mapping,
//!    then a deterministic work-stealing pass (per-processor deques,
//!    idle processors steal from the back of the most-loaded victim)
//!    rebalances them; the attempt/hit counts are recorded in the plan
//!    so the runtime can report them.
//! 3. **Schedule** ([`taskdag_schedule`]): one [`Op2d`] list per grid
//!    column, emitted *destination-driven* in elimination-tree postorder
//!    — every column's `Swap → Trsm → Update` chains run in ascending
//!    source order immediately before its `Factor`, which keeps the
//!    factors bitwise identical to the in-order schedule (each block
//!    still absorbs its contributions in sequential stage order) while
//!    letting disjoint subtrees interleave. A column wholly inside a
//!    proportional-mapped subtree is owned by a single rank and executes
//!    with **zero messages**; separator columns stay block-cyclic and
//!    fall back to the batched-multicast protocol.
//!
//! Deadlock freedom: postorder is a linear extension of the dependency
//! DAG (every `U`/`L` edge points to an etree ancestor, i.e. later in
//! postorder), all grid columns emit `Retire` in one global order, and
//! every blocking receive waits only on a message generated strictly
//! earlier in that order — induction over (stage position, op index)
//! gives progress. [`taskdag_sim_schedule`] replays the same plan on the
//! discrete-event simulator, whose deadlock check re-verifies this for
//! every concrete graph.

use crate::lookahead::Op2d;
use crate::sim::Schedule;
use crate::taskgraph::{TaskGraph, TaskKind};
use splu_symbolic::etree::{postorder, NO_PARENT};
use std::collections::VecDeque;

/// A tree-aware execution plan for one factorization.
#[derive(Debug, Clone)]
pub struct TaskDagPlan {
    /// Flat processor count the plan was built for (`p_r · p_c`).
    pub nprocs: usize,
    /// Per block column: owning rank for subtree columns, `u32::MAX` for
    /// block-cyclic separator columns.
    pub col_owner: Vec<u32>,
    /// Per block column: subtree id, `u32::MAX` on the separator.
    pub subtree_of: Vec<u32>,
    /// Stage execution order (elimination-tree postorder): a linear
    /// extension of the update DAG shared by every grid column.
    pub stage_order: Vec<usize>,
    /// Number of independent subtree tasks below the separator.
    pub nsubtrees: usize,
    /// Steal attempts made by the deterministic balancing pass.
    pub steal_attempts: u64,
    /// Attempts that found a victim with spare subtrees.
    pub steal_hits: u64,
    /// Fraction of modeled flops inside proportional-mapped subtrees
    /// (parts per million, so the plan stays `Eq`-friendly).
    pub subtree_work_ppm: u32,
}

impl TaskDagPlan {
    /// All-cyclic plan in identity stage order: the stage-sequential
    /// engine expressed in plan form (the "before" comparator of the
    /// modeling experiments, and the fallback when no tree is supplied).
    pub fn cyclic(nblocks: usize, nprocs: usize) -> Self {
        Self {
            nprocs,
            col_owner: vec![u32::MAX; nblocks],
            subtree_of: vec![u32::MAX; nblocks],
            stage_order: (0..nblocks).collect(),
            nsubtrees: 0,
            steal_attempts: 0,
            steal_hits: 0,
            subtree_work_ppm: 0,
        }
    }

    /// Is column `j` owned by a single rank (subtree column)?
    pub fn is_subtree(&self, j: usize) -> bool {
        self.col_owner[j] != u32::MAX
    }

    /// The grid column whose op list carries destination `j`'s work.
    pub fn grid_col(&self, j: usize, pc: usize) -> usize {
        match self.col_owner[j] {
            u32::MAX => j % pc,
            owner => owner as usize % pc,
        }
    }

    /// Number of tasks whose destination is a subtree column (they run
    /// with zero messages).
    pub fn subtree_task_count(&self, g: &TaskGraph) -> u64 {
        g.tasks
            .iter()
            .filter(|t| {
                let j = match **t {
                    TaskKind::Factor(j) => j,
                    TaskKind::Update(_, j) => j,
                } as usize;
                self.is_subtree(j)
            })
            .count() as u64
    }
}

/// Per-block work estimate: raw flop counts of the tasks owned by each
/// block (model-independent, so plans are machine-agnostic).
fn block_weights(g: &TaskGraph) -> Vec<u64> {
    let mut w = vec![0u64; g.nblocks];
    for (t, &(b2, b3)) in g.flops.iter().enumerate() {
        w[g.owner_block[t] as usize] += b2 + b3;
    }
    w
}

/// Build the tree-aware plan: Geist–Ng proportional cut, contiguous
/// proportional mapping, deterministic work-stealing rebalance.
pub fn plan_taskdag(g: &TaskGraph, parent: &[usize], nprocs: usize) -> TaskDagPlan {
    let nb = g.nblocks;
    assert_eq!(parent.len(), nb);
    assert!(nprocs >= 1);
    let weight = block_weights(g);
    let cost = splu_symbolic::subtree_costs(parent, &weight);
    let total: u64 = weight.iter().sum();

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nb];
    let mut frontier: Vec<usize> = Vec::new();
    for v in 0..nb {
        match parent[v] {
            NO_PARENT => frontier.push(v),
            p => children[p].push(v),
        }
    }
    // Geist–Ng: expand any frontier subtree heavier than the
    // proportional share. Single-proc plans keep whole trees (cap =
    // total): everything is a subtree and the factorization is local.
    let cap = (total / nprocs as u64).max(1);
    let mut i = 0;
    while i < frontier.len() {
        let v = frontier[i];
        if cost[v] > cap && !children[v].is_empty() {
            // v joins the separator; its children join the frontier
            frontier.swap_remove(i);
            frontier.extend(children[v].iter().copied());
        } else {
            // light enough, or a heavy leaf with nothing left to split
            i += 1;
        }
    }
    frontier.sort_unstable();

    // Contiguous proportional initial mapping over the frontier order.
    let sub_total: u64 = frontier.iter().map(|&v| cost[v]).sum();
    let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); nprocs];
    let mut cum = 0u64;
    for (s, &v) in frontier.iter().enumerate() {
        let p = if sub_total == 0 {
            s % nprocs
        } else {
            (((cum + cost[v] / 2) * nprocs as u64) / sub_total.max(1)).min(nprocs as u64 - 1)
                as usize
        };
        cum += cost[v];
        deques[p].push_back(s);
    }

    // Deterministic stealing pass: the earliest-finishing processor acts
    // next; when its deque drains it raids the back of the most-loaded
    // victim's deque (largest remaining cost, lowest rank on ties).
    let mut clock = vec![0u64; nprocs];
    let mut remaining: Vec<u64> = deques
        .iter()
        .map(|d| d.iter().map(|&s| cost[frontier[s]]).sum())
        .collect();
    let mut owner_of_subtree: Vec<u32> = vec![0; frontier.len()];
    let mut steal_attempts = 0u64;
    let mut steal_hits = 0u64;
    let mut left = frontier.len();
    let mut parked = vec![false; nprocs];
    while left > 0 {
        let p = (0..nprocs)
            .filter(|&q| !parked[q])
            .min_by_key(|&q| (clock[q], q))
            .expect("subtrees left but every processor parked");
        let s = if let Some(s) = deques[p].pop_front() {
            remaining[p] = remaining[p].saturating_sub(cost[frontier[s]]);
            s
        } else {
            steal_attempts += 1;
            let victim = (0..nprocs)
                .filter(|&q| deques[q].len() > 1)
                .max_by(|&a, &b| remaining[a].cmp(&remaining[b]).then(b.cmp(&a)));
            match victim {
                Some(q) => {
                    steal_hits += 1;
                    let s = deques[q].pop_back().expect("victim deque non-empty");
                    remaining[q] = remaining[q].saturating_sub(cost[frontier[s]]);
                    s
                }
                None => {
                    parked[p] = true;
                    continue;
                }
            }
        };
        clock[p] += cost[frontier[s]];
        owner_of_subtree[s] = p as u32;
        left -= 1;
    }

    // Materialize per-column ownership by walking each subtree.
    let mut col_owner = vec![u32::MAX; nb];
    let mut subtree_of = vec![u32::MAX; nb];
    let mut sub_work = 0u64;
    let mut stack: Vec<usize> = Vec::new();
    for (s, &root) in frontier.iter().enumerate() {
        stack.push(root);
        while let Some(v) = stack.pop() {
            col_owner[v] = owner_of_subtree[s];
            subtree_of[v] = s as u32;
            sub_work += weight[v];
            stack.extend(children[v].iter().copied());
        }
    }

    TaskDagPlan {
        nprocs,
        col_owner,
        subtree_of,
        stage_order: postorder(parent),
        nsubtrees: frontier.len(),
        steal_attempts,
        steal_hits,
        subtree_work_ppm: if total == 0 {
            0
        } else {
            ((sub_work as u128 * 1_000_000) / total as u128) as u32
        },
    }
}

/// Per-destination ascending source lists (`srcs[j]`) and per-source
/// destination lists (`dests[k]`) of the update DAG.
fn src_dest_lists(g: &TaskGraph) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let mut srcs: Vec<Vec<u32>> = vec![Vec::new(); g.nblocks];
    let mut dests: Vec<Vec<u32>> = vec![Vec::new(); g.nblocks];
    for t in &g.tasks {
        if let TaskKind::Update(k, j) = *t {
            srcs[j as usize].push(k);
            dests[k as usize].push(j);
        }
    }
    for s in &mut srcs {
        s.sort_unstable();
    }
    for d in &mut dests {
        d.sort_unstable();
    }
    (srcs, dests)
}

/// Build the task-DAG operation list for grid column `cno` of a
/// `p_c`-column grid. Destination-driven: stages run in the plan's
/// postorder; each owned destination's full chain list (ascending
/// sources) precedes its `Factor`; `Retire(k)` appears in every grid
/// column's list at the same global position — immediately after the
/// stage holding `k`'s last destination (its own `Factor` if none).
pub fn taskdag_schedule(g: &TaskGraph, plan: &TaskDagPlan, pc: usize, cno: usize) -> Vec<Op2d> {
    assert!(pc >= 1 && cno < pc);
    let nb = g.nblocks;
    assert_eq!(plan.col_owner.len(), nb);
    let (srcs, dests) = src_dest_lists(g);
    let mut pos_of = vec![0usize; nb];
    for (pos, &j) in plan.stage_order.iter().enumerate() {
        pos_of[j] = pos;
    }
    // Retire stage k right after the stage at its last-use position.
    let mut retire_at: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for k in 0..nb {
        let last = dests[k]
            .iter()
            .map(|&j| pos_of[j as usize])
            .max()
            .unwrap_or(pos_of[k])
            .max(pos_of[k]);
        retire_at[last].push(k as u32);
    }
    for r in &mut retire_at {
        r.sort_unstable();
    }

    let mut ops: Vec<Op2d> = Vec::new();
    let mut inflight = 0u32;
    for (pos, &j) in plan.stage_order.iter().enumerate() {
        if plan.grid_col(j, pc) == cno {
            for (seq, &k) in srcs[j].iter().enumerate() {
                ops.push(Op2d::Swap {
                    k,
                    j: j as u32,
                    seq: seq as u32,
                });
                ops.push(Op2d::Trsm { k, j: j as u32 });
                ops.push(Op2d::Update {
                    k,
                    j: j as u32,
                    seq: seq as u32,
                    deferred: inflight > 1,
                    depth: inflight.max(1),
                });
            }
            ops.push(Op2d::Factor {
                k: j as u32,
                nsrcs: srcs[j].len() as u32,
            });
        }
        inflight += 1;
        for &k in &retire_at[pos] {
            ops.push(Op2d::Retire { k });
            inflight -= 1;
        }
    }
    debug_assert_eq!(inflight, 0);
    ops
}

/// Map the plan onto the discrete-event simulator: subtree tasks run on
/// their owning rank; separator factors on `(j mod p_r, j mod p_c)` and
/// separator updates on `(k mod p_r, j mod p_c)` (the row owning the
/// source panel inside the destination's grid column). Per-processor
/// order is the global (stage postorder, ascending source) order
/// filtered to the processor — [`crate::sim::simulate`] panics if that
/// order could deadlock, which doubles as a plan validity check.
pub fn taskdag_sim_schedule(g: &TaskGraph, plan: &TaskDagPlan, pr: usize, pc: usize) -> Schedule {
    let nprocs = pr * pc;
    assert_eq!(plan.nprocs, nprocs);
    let rank_of = |r: usize, c: usize| (r * pc + c) as u32;
    let mut proc_of = vec![0u32; g.len()];
    // tasks of each destination stage: updates ascending k, then factor
    let mut stage_tasks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.nblocks];
    for (t, task) in g.tasks.iter().enumerate() {
        match *task {
            TaskKind::Factor(j) => {
                let ju = j as usize;
                proc_of[t] = match plan.col_owner[ju] {
                    u32::MAX => rank_of(ju % pr, ju % pc),
                    owner => owner,
                };
                stage_tasks[ju].push((u32::MAX, t as u32)); // factor sorts last
            }
            TaskKind::Update(k, j) => {
                let ju = j as usize;
                proc_of[t] = match plan.col_owner[ju] {
                    u32::MAX => rank_of(k as usize % pr, ju % pc),
                    owner => owner,
                };
                stage_tasks[ju].push((k, t as u32));
            }
        }
    }
    let mut order: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    for &j in &plan.stage_order {
        stage_tasks[j].sort_unstable();
        for &(_, t) in &stage_tasks[j] {
            order[proc_of[t as usize] as usize].push(t);
        }
    }
    Schedule { proc_of, order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, block_etree, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    fn setup(a: &splu_sparse::CscMatrix, bs: usize) -> (TaskGraph, Vec<usize>) {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, bs);
        let part = amalgamate(&s, &base, 4, bs);
        let bp = Arc::new(BlockPattern::build_structural(&s, &part));
        let parent = block_etree(&bp);
        (TaskGraph::build(&bp), parent)
    }

    fn tree_matrix() -> splu_sparse::CscMatrix {
        // bordered block-diagonal: real subtree parallelism
        gen::hier_circuit(8, 120, 10, 3, 0.9, ValueModel::default())
    }

    #[test]
    fn plan_separator_is_upward_closed_and_subtrees_single_owner() {
        let (g, parent) = setup(&tree_matrix(), 8);
        for nprocs in [1usize, 2, 4, 6] {
            let plan = plan_taskdag(&g, &parent, nprocs);
            assert_eq!(plan.nprocs, nprocs);
            for v in 0..g.nblocks {
                if plan.subtree_of[v] == u32::MAX {
                    // separator: parent (if any) must be separator too
                    if parent[v] != NO_PARENT {
                        assert_eq!(plan.subtree_of[parent[v]], u32::MAX);
                    }
                    assert_eq!(plan.col_owner[v], u32::MAX);
                } else {
                    assert!((plan.col_owner[v] as usize) < nprocs);
                    // same subtree ⇒ same owner
                    if parent[v] != NO_PARENT && plan.subtree_of[parent[v]] != u32::MAX {
                        assert_eq!(plan.subtree_of[parent[v]], plan.subtree_of[v]);
                        assert_eq!(plan.col_owner[parent[v]], plan.col_owner[v]);
                    }
                }
            }
            // every update into a subtree column comes from the same subtree
            for t in &g.tasks {
                if let TaskKind::Update(k, j) = *t {
                    let (k, j) = (k as usize, j as usize);
                    if plan.is_subtree(j) {
                        assert_eq!(
                            plan.subtree_of[k], plan.subtree_of[j],
                            "cross-subtree update ({k},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_proc_plan_is_fully_local() {
        let (g, parent) = setup(&tree_matrix(), 8);
        let plan = plan_taskdag(&g, &parent, 1);
        assert!(plan.col_owner.iter().all(|&o| o == 0));
        assert_eq!(plan.subtree_task_count(&g), g.len() as u64);
    }

    #[test]
    fn multi_proc_plan_finds_parallel_subtrees() {
        let (g, parent) = setup(&tree_matrix(), 8);
        let plan = plan_taskdag(&g, &parent, 4);
        assert!(plan.nsubtrees >= 4, "only {} subtrees", plan.nsubtrees);
        assert!(
            plan.subtree_work_ppm > 500_000,
            "subtree work only {} ppm",
            plan.subtree_work_ppm
        );
        // subtrees actually spread across ranks
        let mut used = [false; 4];
        for &o in &plan.col_owner {
            if o != u32::MAX {
                used[o as usize] = true;
            }
        }
        assert!(used.iter().all(|&u| u), "some rank got no subtree work");
    }

    /// Replay a task-DAG op list, checking executor invariants. Returns
    /// per-column applied-update counts and the retire sequence.
    fn replay(ops: &[Op2d], nb: usize) -> (Vec<u32>, Vec<u32>) {
        let mut applied = vec![0u32; nb];
        let mut open: Option<(u32, u32, u32)> = None; // (k, j, phase)
        let mut factored = vec![false; nb];
        let mut retired = vec![false; nb];
        let mut retires: Vec<u32> = Vec::new();
        for op in ops {
            match *op {
                Op2d::Swap { k, j, seq } => {
                    assert!(!retired[k as usize], "Swap({k},{j}) after Retire({k})");
                    assert_eq!(seq, applied[j as usize], "non-ascending source in {j}");
                    assert!(open.is_none(), "chain not closed before Swap({k},{j})");
                    open = Some((k, j, 0));
                }
                Op2d::Trsm { k, j } => {
                    assert_eq!(open, Some((k, j, 0)), "Trsm({k},{j}) out of order");
                    open = Some((k, j, 1));
                }
                Op2d::Update {
                    k, j, seq, depth, ..
                } => {
                    assert_eq!(open.take(), Some((k, j, 1)), "Update({k},{j}) out of order");
                    assert_eq!(seq, applied[j as usize]);
                    assert!(depth >= 1);
                    applied[j as usize] += 1;
                }
                Op2d::Factor { k, nsrcs } => {
                    assert!(open.is_none());
                    assert!(!factored[k as usize], "Factor({k}) twice");
                    assert_eq!(applied[k as usize], nsrcs, "Factor({k}) before sources");
                    factored[k as usize] = true;
                }
                Op2d::Retire { k } => {
                    assert!(open.is_none());
                    assert!(!retired[k as usize], "Retire({k}) twice");
                    retired[k as usize] = true;
                    retires.push(k);
                }
            }
        }
        assert!(open.is_none());
        (applied, retires)
    }

    #[test]
    fn schedule_invariants_and_coverage() {
        let (g, parent) = setup(&tree_matrix(), 8);
        let (srcs, _) = src_dest_lists(&g);
        for (nprocs, pc) in [(2usize, 2usize), (4, 2), (6, 3)] {
            let plan = plan_taskdag(&g, &parent, nprocs);
            let mut retires: Option<Vec<u32>> = None;
            let mut total_updates = 0usize;
            for cno in 0..pc {
                let ops = taskdag_schedule(&g, &plan, pc, cno);
                let (applied, r) = replay(&ops, g.nblocks);
                assert_eq!(r.len(), g.nblocks, "every stage retires on col {cno}");
                match &retires {
                    None => retires = Some(r),
                    Some(prev) => assert_eq!(prev, &r, "retire order differs on col {cno}"),
                }
                for j in 0..g.nblocks {
                    let expect = if plan.grid_col(j, pc) == cno {
                        srcs[j].len() as u32
                    } else {
                        0
                    };
                    assert_eq!(applied[j], expect, "column {j} on grid col {cno}");
                    total_updates += applied[j] as usize;
                }
            }
            let all_updates = g
                .tasks
                .iter()
                .filter(|t| matches!(t, TaskKind::Update(..)))
                .count();
            assert_eq!(
                total_updates, all_updates,
                "updates partition across columns"
            );
        }
    }

    #[test]
    fn postorder_keeps_sources_before_destinations() {
        let (g, parent) = setup(&tree_matrix(), 8);
        let plan = plan_taskdag(&g, &parent, 4);
        let mut pos = vec![0usize; g.nblocks];
        for (p, &j) in plan.stage_order.iter().enumerate() {
            pos[j] = p;
        }
        for t in &g.tasks {
            if let TaskKind::Update(k, j) = *t {
                assert!(
                    pos[k as usize] < pos[j as usize],
                    "stage order not a linear extension at ({k},{j})"
                );
            }
        }
    }

    #[test]
    fn sim_single_proc_equals_total_work_and_grids_speed_up() {
        let (g, parent) = setup(&tree_matrix(), 8);
        let model = splu_machine::T3E;
        let p1 = plan_taskdag(&g, &parent, 1);
        let s1 = taskdag_sim_schedule(&g, &p1, 1, 1);
        let r1 = crate::sim::simulate(&g, &s1, &model);
        assert!((r1.makespan - g.total_work(&model)).abs() < 1e-9 * r1.makespan.max(1.0));
        let p4 = plan_taskdag(&g, &parent, 4);
        let s4 = taskdag_sim_schedule(&g, &p4, 2, 2);
        let r4 = crate::sim::simulate(&g, &s4, &model); // also proves no deadlock
        assert!(
            r4.makespan < r1.makespan,
            "2×2 task-DAG ({}) not faster than serial ({})",
            r4.makespan,
            r1.makespan
        );
        // and the tree-aware plan beats the all-cyclic stage pipeline
        let cyc = TaskDagPlan::cyclic(g.nblocks, 4);
        let sc = taskdag_sim_schedule(&g, &cyc, 2, 2);
        let rc = crate::sim::simulate(&g, &sc, &model);
        assert!(
            r4.makespan < rc.makespan,
            "task-DAG ({}) not faster than cyclic pipeline ({})",
            r4.makespan,
            rc.makespan
        );
    }

    #[test]
    fn stealing_rebalances_a_lopsided_initial_mapping() {
        // Many similar subtrees on a wide forest: the contiguous
        // proportional mapping is already fair, so force imbalance by
        // planning for a prime processor count that can't divide evenly.
        let (g, parent) = setup(&tree_matrix(), 8);
        let plan = plan_taskdag(&g, &parent, 3);
        assert!(plan.steal_attempts >= plan.steal_hits);
        // sanity: the balancing pass terminated with every subtree owned
        let mut counts = [0usize; 3];
        for v in 0..g.nblocks {
            if plan.col_owner[v] != u32::MAX {
                counts[plan.col_owner[v] as usize] += 1;
            }
        }
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 2);
    }

    #[test]
    fn cyclic_plan_matches_lookahead_update_multiset() {
        // The all-cyclic task-DAG schedule touches exactly the update set
        // of the W=0 lookahead schedule, column by column.
        let (g, _parent) = setup(&tree_matrix(), 8);
        let plan = TaskDagPlan::cyclic(g.nblocks, 2);
        for cno in 0..2 {
            let mut dag: Vec<(u32, u32)> = taskdag_schedule(&g, &plan, 2, cno)
                .iter()
                .filter_map(|op| match op {
                    Op2d::Update { k, j, .. } => Some((*k, *j)),
                    _ => None,
                })
                .collect();
            let mut la: Vec<(u32, u32)> = crate::lookahead::lookahead_schedule(&g, 2, cno, 0)
                .iter()
                .filter_map(|op| match op {
                    Op2d::Update { k, j, .. } => Some((*k, *j)),
                    _ => None,
                })
                .collect();
            dag.sort_unstable();
            la.sort_unstable();
            assert_eq!(dag, la);
        }
    }
}
