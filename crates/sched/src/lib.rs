//! `splu-sched` — task graphs and scheduling for sparse LU (§4–5).
//!
//! The 1D S\* codes model the factorization as a directed acyclic task
//! graph over `Factor(k)` and `Update(k, j)` tasks ([`taskgraph`], the
//! four dependence properties of §4.1 plus the serialization property),
//! then execute it under one of two schedules:
//!
//! * **compute-ahead (CA)** ([`ca`]) — block-cyclic mapping with one-step
//!   lookahead (Fig. 10): `Factor(k+1)` runs as soon as `Update(k, k+1)`
//!   finishes so the next pivot column is communicated early;
//! * **graph scheduling** ([`graph_sched`]) — RAPID/PYRROS-style list
//!   scheduling using critical-path (bottom-level) priorities and
//!   communication-aware processor selection, which is what lets the
//!   paper's Fig. 11 example start `Factor(3)` before `Update(1, 5)`.
//!
//! [`sim`] is the discrete-event machine simulator that evaluates any
//! (mapping, per-processor order) pair under a [`splu_machine::MachineModel`]
//! — this is how the reproduction projects T3D/T3E parallel times for
//! processor counts beyond the host's cores (see `DESIGN.md` §3).
//! [`gantt`] renders Fig.-11-style charts and [`load_balance`] computes
//! Fig. 18's statistic.

pub mod ca;
pub mod gantt;
pub mod graph2d;
pub mod graph_sched;
pub mod load_balance;
pub mod lookahead;
pub mod sim;
pub mod taskdag;
pub mod taskgraph;

pub use ca::ca_schedule;
pub use graph2d::{build_2d_model, Mode2d, Model2d};
pub use graph_sched::{graph_schedule, graph_schedule_with, MappingPolicy};
pub use lookahead::{lookahead_schedule, Op2d};
pub use sim::{simulate, Schedule, SimResult};
pub use taskdag::{plan_taskdag, taskdag_schedule, taskdag_sim_schedule, TaskDagPlan};
pub use taskgraph::{TaskGraph, TaskKind};
