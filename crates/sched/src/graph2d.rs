//! Discrete-event model of the 2D block-cyclic algorithm (§5.2).
//!
//! The thread backend in `splu-core::par2d` validates the 2D protocol
//! bit-for-bit, but cannot measure parallel time beyond the host's cores.
//! This module builds a task-graph model of the same algorithm so the
//! generic simulator ([`crate::sim`]) can project T3D/T3E times for the
//! paper's processor counts (Tables 5–7):
//!
//! * `PF(k, r)` — processor row `r`'s share of the cooperative panel
//!   factorization of block `k` (scale + rank-1 work on its rows, plus
//!   the per-step pivot gather/broadcast latency on the diagonal owner);
//! * `PFdone(k)` — zero-cost completion marker on the diagonal owner
//!   (pivot sequence available; the per-step lockstep of the distributed
//!   pivot search is approximated by this single join);
//! * `LSend(k, r)` — zero-cost task on `(r, k mod p_c)` whose outgoing
//!   edges carry row `r`'s L panels along the grid row;
//! * `SST(k, j)` — delayed swap + TRSM of `U_kj` on its owner, its output
//!   multicast down the grid column;
//! * `U2D(k, j, r)` — processor row `r`'s share of `Update2D(k, j)`.
//!
//! Per-processor orders mirror the SPMD program of Fig. 12; the barrier
//! variant inserts a zero-cost global join per stage (Table 7's
//! synchronous baseline).

use crate::sim::Schedule;
use crate::taskgraph::{TaskGraph, TaskKind};
use splu_machine::{Grid, MachineModel};
use splu_symbolic::BlockPattern;
use std::collections::HashMap;
use std::sync::Arc;

/// The 2D model: a generic task graph plus the matching schedule.
pub struct Model2d {
    /// Task graph (costs in flops; `TaskKind` labels reuse `Factor`/`Update`
    /// with sub-task granularity — see `label` for exact roles).
    pub graph: TaskGraph,
    /// The program-order schedule on the `p_r × p_c` grid.
    pub schedule: Schedule,
    /// Human-readable role of each task.
    pub label: Vec<String>,
}

/// Synchronization variant to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode2d {
    /// Fully asynchronous pipelined execution.
    Async,
    /// Global barrier after every elimination stage.
    Barrier,
}

/// Build the 2D model for `pattern` on `grid` under `model`.
pub fn build_2d_model(
    pattern: &Arc<BlockPattern>,
    grid: Grid,
    model: &MachineModel,
    mode: Mode2d,
) -> Model2d {
    let nb = pattern.nblocks();
    let part = &pattern.part;
    let (pr, pc) = (grid.pr, grid.pc);

    struct Builder {
        tasks: Vec<TaskKind>,
        label: Vec<String>,
        flops: Vec<(u64, u64)>,
        extra_secs: Vec<f64>,
        msg_words: Vec<u64>,
        proc: Vec<u32>,
        succs: Vec<Vec<u32>>,
        preds: Vec<Vec<u32>>,
    }
    impl Builder {
        fn task(
            &mut self,
            kind: TaskKind,
            label: String,
            proc: usize,
            b2: u64,
            b3: u64,
            msg_words: u64,
        ) -> u32 {
            let id = self.tasks.len() as u32;
            self.tasks.push(kind);
            self.label.push(label);
            self.flops.push((b2, b3));
            self.extra_secs.push(0.0);
            self.msg_words.push(msg_words);
            self.proc.push(proc as u32);
            self.succs.push(Vec::new());
            self.preds.push(Vec::new());
            id
        }
        fn edge(&mut self, a: u32, b: u32) {
            if !self.succs[a as usize].contains(&b) {
                self.succs[a as usize].push(b);
                self.preds[b as usize].push(a);
            }
        }
    }
    let mut b = Builder {
        tasks: Vec::new(),
        label: Vec::new(),
        flops: Vec::new(),
        extra_secs: Vec::new(),
        msg_words: Vec::new(),
        proc: Vec::new(),
        succs: Vec::new(),
        preds: Vec::new(),
    };

    // ---- per-stage bookkeeping ----
    // rows of column block k owned by grid row r (L panel heights)
    let l_height = |k: usize, r: usize| -> u64 {
        pattern.l_blocks[k]
            .iter()
            .filter(|l| (l.i as usize) % pr == r)
            .map(|l| l.rows.len() as u64)
            .sum()
    };
    // last update stage touching column block j before stage k
    let mut prev_stage: Vec<Vec<usize>> = vec![Vec::new(); nb]; // per j: stages in order
    for k in 0..nb {
        for u in &pattern.u_blocks[k] {
            prev_stage[u.j as usize].push(k);
        }
    }

    let mut pf: HashMap<(usize, usize), u32> = HashMap::new(); // (k, r)
    let mut pfdone: Vec<u32> = vec![u32::MAX; nb];
    let mut lsend: HashMap<(usize, usize), u32> = HashMap::new(); // (k, r)
    let mut sst: HashMap<(usize, usize), u32> = HashMap::new(); // (k, j)
    let mut u2d: HashMap<(usize, usize, usize), u32> = HashMap::new(); // (k, j, r)

    // ---- create tasks ----
    for k in 0..nb {
        let w = part.width(k) as u64;
        let kc = k % pc;
        let kr = k % pr;
        let diag_proc = grid.rank_of(kr, kc);

        // PF(k, r): share of the panel factorization
        let mut participants: Vec<usize> =
            (0..pr).filter(|&r| r == kr || l_height(k, r) > 0).collect();
        if participants.is_empty() {
            participants.push(kr);
        }
        for &r in &participants {
            let nl = l_height(k, r);
            let own_diag = r == kr;
            // Σ_t (scale + rank-1) over owned rows
            let mut b2 = 0u64;
            for t in 0..w {
                let diag_rows = if own_diag { w - t - 1 } else { 0 };
                let rows = diag_rows + nl;
                b2 += rows + 2 * rows * (w - t - 1);
            }
            let id = b.task(
                TaskKind::Factor(k as u32),
                format!("PF({k},{r})"),
                grid.rank_of(r, kc),
                b2,
                0,
                // candidate subrows to the diag owner (w steps × w words)
                w * w,
            );
            // distributed pivot search latency: per step, a gather and a
            // broadcast along the column (only when pr > 1)
            if pr > 1 {
                b.extra_secs[id as usize] += w as f64 * 2.0 * (model.alpha + w as f64 * model.beta);
            }
            pf.insert((k, r), id);
        }
        // PFdone(k) on the diagonal owner
        let done = b.task(
            TaskKind::Factor(k as u32),
            format!("PFdone({k})"),
            diag_proc,
            0,
            0,
            w, // pivot sequence along the grid row
        );
        pfdone[k] = done;
        for &r in &participants {
            b.edge(pf[&(k, r)], done);
        }
        // LSend(k, r): L panels along the grid row (only if needed later)
        for &r in &participants {
            let nl = l_height(k, r);
            let vol = if r == kr { w * w + nl * w } else { nl * w };
            let id = b.task(
                TaskKind::Factor(k as u32),
                format!("LSend({k},{r})"),
                grid.rank_of(r, kc),
                0,
                0,
                vol.max(1),
            );
            b.edge(done, id);
            lsend.insert((k, r), id);
        }

        // SST(k, j) + U2D(k, j, r)
        for u in &pattern.u_blocks[k] {
            let j = u.j as usize;
            let nuc = u.cols.len() as u64;
            let trsm = w * w * nuc;
            let trsm3 =
                (trsm as f64 * (w as f64 / crate::taskgraph::BLAS3_REF_WIDTH).min(1.0)) as u64;
            let sst_id = b.task(
                TaskKind::Update(k as u32, u.j),
                format!("SST({k},{j})"),
                grid.rank_of(kr, j % pc),
                trsm - trsm3,
                trsm3,   // TRSM at width-dependent rate
                w * nuc, // U panel down the column
            );
            b.edge(done, sst_id);
            sst.insert((k, j), sst_id);

            for r in 0..pr {
                let nl = l_height(k, r);
                if nl == 0 {
                    continue;
                }
                let gemm = 2 * nl * w * nuc;
                let gemm3 =
                    (gemm as f64 * (w as f64 / crate::taskgraph::BLAS3_REF_WIDTH).min(1.0)) as u64;
                let uid = b.task(
                    TaskKind::Update(k as u32, u.j),
                    format!("U2D({k},{j},{r})"),
                    grid.rank_of(r, j % pc),
                    gemm - gemm3,
                    gemm3,
                    w.max(1),
                );
                b.edge(sst_id, uid);
                if let Some(&ls) = lsend.get(&(k, r)) {
                    b.edge(ls, uid);
                }
                u2d.insert((k, j, r), uid);
            }
        }
    }

    // ---- cross-stage dependences ----
    for j in 0..nb {
        let stages = &prev_stage[j];
        // chain same-destination updates per grid row; last feeds PF(j, r)
        for r in 0..pr {
            let mut last: Option<u32> = None;
            for &k in stages {
                if let Some(&uid) = u2d.get(&(k, j, r)) {
                    if let Some(prev) = last {
                        b.edge(prev, uid);
                    }
                    last = Some(uid);
                }
            }
            if let Some(prev) = last {
                if let Some(&pfid) = pf.get(&(j, r)) {
                    b.edge(prev, pfid);
                }
            }
        }
        // SST(k, j) must see the updates of earlier stages into U(k, j):
        // those land on grid row (k % pr); chain U2D(k', j, k%pr) → SST(k, j)
        for (si, &k) in stages.iter().enumerate() {
            if si > 0 {
                let kprev = stages[si - 1];
                if let Some(&uprev) = u2d.get(&(kprev, j, k % pr)) {
                    b.edge(uprev, sst[&(k, j)]);
                }
            }
        }
    }

    // ---- barrier variant ----
    if mode == Mode2d::Barrier {
        let mut stage_tasks: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for (&(k, j, _r), &uid) in &u2d {
            let _ = j;
            stage_tasks[k].push(uid);
        }
        for (&(k, _j), &sid) in &sst {
            stage_tasks[k].push(sid);
        }
        let mut prev_barrier: Option<u32> = None;
        for k in 0..nb {
            let bid = b.task(
                TaskKind::Factor(k as u32),
                format!("Barrier({k})"),
                0,
                0,
                0,
                1,
            );
            for &t in &stage_tasks[k] {
                b.edge(t, bid);
            }
            b.edge(pfdone[k], bid);
            if let Some(pb) = prev_barrier {
                b.edge(pb, bid);
            }
            // everything in stage k+1 depends on the barrier
            if k + 1 < nb {
                for &t in &stage_tasks[k + 1] {
                    b.edge(bid, t);
                }
                for r in 0..pr {
                    if let Some(&pfid) = pf.get(&(k + 1, r)) {
                        b.edge(bid, pfid);
                    }
                }
            }
            prev_barrier = Some(bid);
        }
    }

    // ---- assemble TaskGraph ----
    let n = b.tasks.len();
    let mut graph = TaskGraph {
        tasks: b.tasks,
        succs: b.succs,
        preds: b.preds,
        flops: b.flops,
        owner_block: vec![0; n],
        msg_words: b.msg_words,
        nblocks: nb,
        factor_task: pfdone.clone(),
    };
    // fold the extra per-task seconds into flops via the model's w2 rate
    for t in 0..n {
        if b.extra_secs[t] > 0.0 {
            let extra_flops = (b.extra_secs[t] / model.w2).ceil() as u64;
            graph.flops[t].0 += extra_flops;
        }
    }

    // ---- per-processor program order ----
    // Mirror Fig. 12's SPMD loop; within a proc, tasks sorted by
    // (stage k, phase, j) where phase orders PF < PFdone < LSend < SST <
    // compute-ahead U2D/PF(k+1) < remaining U2D. Instead of hand-coding
    // phases we use a stable global order by construction index filtered
    // per proc — tasks were created in program order per stage, and the
    // compute-ahead reordering is reproduced by hoisting U2D(k, k+1, ·)
    // and PF(k+1, ·): we approximate by leaving construction order, which
    // interleaves identically except for the hoist; the hoist is then
    // applied explicitly.
    let nprocs = grid.nprocs();
    let mut order: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    // construction order is (k ascending; PF, PFdone, LSend, SST/U2D by j)
    for t in 0..n as u32 {
        order[b.proc[t as usize] as usize].push(t);
    }
    // hoist: for each proc, move U2D(k, k+1, r) and PF(k+1, r) right after
    // stage-k SST tasks — construction order already places PF(k+1, ·)
    // after all stage-k tasks, so hoist U2D(k, k+1, ·) before other
    // stage-k U2D on the same proc.
    for ord in order.iter_mut() {
        ord.sort_by_key(|&t| {
            let tu = t as usize;
            let (stage, phase, jj) = decode(&graph.tasks[tu], &b.label[tu]);
            (stage, phase, jj, t)
        });
    }

    fn decode(kind: &TaskKind, label: &str) -> (u32, u8, u32) {
        match kind {
            TaskKind::Factor(k) => {
                // PF/PFdone/LSend of stage k happen "within" stage k-1's
                // iteration for k > 0 (compute-ahead), but ordering them at
                // the start of stage k is equivalent for the simulator
                // (they additionally wait on their dependences).
                let phase = if label.starts_with("PF(") {
                    0
                } else if label.starts_with("PFdone") {
                    1
                } else if label.starts_with("Barrier") {
                    7
                } else {
                    2 // LSend
                };
                (*k, phase, 0)
            }
            TaskKind::Update(k, j) => {
                // compute-ahead: U2D(k, k+1) before other stage-k updates
                let phase = if label.starts_with("SST") {
                    3
                } else if *j == *k + 1 {
                    4
                } else {
                    5
                };
                (*k, phase, *j)
            }
        }
    }

    let schedule = Schedule {
        proc_of: b.proc,
        order,
    };
    Model2d {
        graph,
        schedule,
        label: b.label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use splu_machine::{Grid, T3D, T3E};
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };

    fn pattern_for(n: usize) -> Arc<BlockPattern> {
        let a = gen::grid2d(n, n, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 8);
        let part = amalgamate(&s, &base, 4, 8);
        Arc::new(BlockPattern::build(&s, &part))
    }

    #[test]
    fn model_simulates_on_all_grids() {
        let p = pattern_for(10);
        for (pr, pc) in [(1, 1), (1, 2), (2, 2), (2, 4), (4, 4)] {
            let m = build_2d_model(&p, Grid::new(pr, pc), &T3E, Mode2d::Async);
            let r = simulate(&m.graph, &m.schedule, &T3E);
            assert!(r.makespan > 0.0, "grid {pr}x{pc}");
        }
    }

    #[test]
    fn async_beats_barrier() {
        // Table 7's point: asynchronous overlap wins, more with more procs.
        let p = pattern_for(14);
        for procs in [4usize, 16] {
            let g = Grid::for_procs(procs);
            let ma = build_2d_model(&p, g, &T3E, Mode2d::Async);
            let mb = build_2d_model(&p, g, &T3E, Mode2d::Barrier);
            let ta = simulate(&ma.graph, &ma.schedule, &T3E).makespan;
            let tb = simulate(&mb.graph, &mb.schedule, &T3E).makespan;
            assert!(
                ta < tb,
                "async ({ta}) must beat barrier ({tb}) at P={procs}"
            );
        }
    }

    #[test]
    fn more_processors_help() {
        let p = pattern_for(16);
        let t4 = {
            let m = build_2d_model(&p, Grid::for_procs(4), &T3D, Mode2d::Async);
            simulate(&m.graph, &m.schedule, &T3D).makespan
        };
        let t16 = {
            let m = build_2d_model(&p, Grid::for_procs(16), &T3D, Mode2d::Async);
            simulate(&m.graph, &m.schedule, &T3D).makespan
        };
        assert!(t16 < t4, "t16={t16} t4={t4}");
    }

    #[test]
    fn single_proc_equals_total_work() {
        let p = pattern_for(8);
        let m = build_2d_model(&p, Grid::new(1, 1), &T3D, Mode2d::Async);
        let r = simulate(&m.graph, &m.schedule, &T3D);
        assert!((r.makespan - m.graph.total_work(&T3D)).abs() < 1e-9);
    }
}
