//! Load-balance factor (Fig. 18 of the paper).
//!
//! `lbf = work_total / (P · work_max)`, counting only the updating work
//! ("because it is the major part of the computation"). A factor of 1.0
//! is perfect balance. The paper uses this to explain why the 2D code
//! closes part of its gap to the graph-scheduled 1D code: 2D block-cyclic
//! mapping balances better, compensating for its simpler task ordering.

use crate::taskgraph::{TaskGraph, TaskKind};
use splu_machine::MachineModel;

/// Compute the load-balance factor of a task→processor mapping.
pub fn load_balance_factor(
    g: &TaskGraph,
    proc_of: &[u32],
    nprocs: usize,
    model: &MachineModel,
) -> f64 {
    assert_eq!(proc_of.len(), g.len());
    let mut work = vec![0.0f64; nprocs];
    for (t, kind) in g.tasks.iter().enumerate() {
        if matches!(kind, TaskKind::Update(..)) {
            work[proc_of[t] as usize] += g.cost(t, model);
        }
    }
    let total: f64 = work.iter().sum();
    let wmax = work.iter().fold(0.0f64, |m, &w| m.max(w));
    if wmax <= 0.0 {
        1.0
    } else {
        total / (nprocs as f64 * wmax)
    }
}

/// Load-balance factor of the 2D block-cyclic mapping: update task
/// `U(k, j)` is split across the processor column owning `j`, with each
/// processor row getting the L segments it owns. We account it at block
/// granularity: the cost of updating destination block `(i, j)` goes to
/// processor `(i mod p_r, j mod p_c)`.
pub fn load_balance_factor_2d(
    pattern: &splu_symbolic::BlockPattern,
    grid: splu_machine::Grid,
    model: &MachineModel,
) -> f64 {
    let nb = pattern.nblocks();
    let mut work = vec![0.0f64; grid.nprocs()];
    for k in 0..nb {
        let wk = pattern.part.width(k) as u64;
        for u in &pattern.u_blocks[k] {
            let j = u.j as usize;
            let nuc = u.cols.len() as u64;
            for l in &pattern.l_blocks[k] {
                let i = l.i as usize;
                let flops = 2 * l.rows.len() as u64 * wk * nuc;
                work[grid.owner_of_block(i, j)] += model.compute_time(0, 0, flops);
            }
        }
    }
    let total: f64 = work.iter().sum();
    let wmax = work.iter().fold(0.0f64, |m, &w| m.max(w));
    if wmax <= 0.0 {
        1.0
    } else {
        total / (grid.nprocs() as f64 * wmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::ca_schedule;
    use crate::taskgraph::TaskGraph;
    use splu_machine::{Grid, T3D};
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    fn setup(n: usize) -> (Arc<BlockPattern>, TaskGraph) {
        let a = gen::grid2d(n, n, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 8);
        let part = amalgamate(&s, &base, 4, 8);
        let p = Arc::new(BlockPattern::build(&s, &part));
        let g = TaskGraph::build(&p);
        (p, g)
    }

    #[test]
    fn perfect_on_one_proc() {
        let (_, g) = setup(6);
        let s = ca_schedule(&g, 1);
        assert!((load_balance_factor(&g, &s.proc_of, 1, &T3D) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_one() {
        let (p, g) = setup(10);
        for np in [2usize, 4, 8] {
            let s = ca_schedule(&g, np);
            let f = load_balance_factor(&g, &s.proc_of, np, &T3D);
            assert!(f > 0.0 && f <= 1.0 + 1e-12, "1D P={np}: {f}");
            let f2 = load_balance_factor_2d(&p, Grid::for_procs(np), &T3D);
            assert!(f2 > 0.0 && f2 <= 1.0 + 1e-12, "2D P={np}: {f2}");
        }
    }

    #[test]
    fn two_d_balances_better_at_scale() {
        // The paper's Fig. 18 finding: the 2D block-cyclic mapping has a
        // better load balance factor than the 1D mapping on most matrices.
        let (p, g) = setup(14);
        let np = 8;
        let s = ca_schedule(&g, np);
        let f1 = load_balance_factor(&g, &s.proc_of, np, &T3D);
        let f2 = load_balance_factor_2d(&p, Grid::for_procs(np), &T3D);
        assert!(
            f2 > f1 * 0.95,
            "2D ({f2}) should be comparable or better than 1D ({f1})"
        );
    }
}
