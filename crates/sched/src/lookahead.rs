//! Critical-path lookahead schedule for the *real* 2D driver.
//!
//! The 1D codes consume the task graph's readiness information through
//! [`crate::graph_sched`]'s list scheduler; this module applies the same
//! readiness discipline (per-destination indegree counters over the
//! [`TaskGraph`]'s `Update(k, j)` dependences) to produce the
//! deterministic operation list that `splu-core::par2d`'s executor
//! replays — the paper's Fig. 10/11 lookahead implemented on the thread
//! machine rather than only in the simulator.
//!
//! The priority policy is two frontiers over elimination stages:
//!
//! * **factor frontier `kf`** — the next pivot block column. All of its
//!   still-pending update chains (`Swap → Trsm → Update`, ascending
//!   source stage) run *first*, then `Factor(kf)` issues immediately
//!   together with its row/column multicasts.
//! * **drain frontier `kd`** — the oldest unretired stage. Its trailing
//!   updates (the ones targeting columns beyond the lookahead window)
//!   drain *behind* the factor frontier, subject to the invariant
//!   `kf − kd ≤ W` re-established after every factorization.
//!
//! `W = 0` reproduces the in-order schedule (each stage fully drains
//! before the next-but-one panel factors — the ablation baseline);
//! `W ≥ 1` lets up to `W + 1` stages be in flight per grid column.
//!
//! Determinism is what makes this deadlock-free: every blocking pairwise
//! or collective exchange of the 2D protocol (pivot candidates, row
//! swaps, the `U`-row multicasts) happens between ranks of one grid
//! column, which own the same block columns and therefore replay the
//! *same* operation list; cross-column traffic is one-directional
//! multicast. Ordering update sources ascending per destination column
//! is also what keeps the factors bitwise identical for every `W`: each
//! block still accumulates its contributions in sequential stage order.

use crate::taskgraph::{TaskGraph, TaskKind};

/// One executor operation for the ranks of a single processor-grid
/// column (the per-column schedules interleave only through multicasts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op2d {
    /// Cooperative panel factorization of block column `k` plus its
    /// pivot-sequence / `L`-panel multicasts. `nsrcs` is the number of
    /// update sources column `k` must have absorbed first — the
    /// executor checks its next-expected-stage counter against it.
    Factor { k: u32, nsrcs: u32 },
    /// Stage-`k` delayed row interchanges in owned column `j`; `seq` is
    /// the source's index in column `j`'s ascending source list (the
    /// next-expected-stage counter value this op requires).
    Swap { k: u32, j: u32, seq: u32 },
    /// TRSM of `U_kj` by `L_kk` plus its column multicast (runs on the
    /// rank owning block row `k`; a no-op elsewhere).
    Trsm { k: u32, j: u32 },
    /// `Update2D(k, j)`: apply stage `k`'s outer product to owned column
    /// `j`. `deferred` marks trailing updates pushed behind at least one
    /// later panel factorization; `depth` is the number of stages in
    /// flight (factored or draining, unretired) when the op runs.
    Update {
        k: u32,
        j: u32,
        seq: u32,
        deferred: bool,
        depth: u32,
    },
    /// Stage `k` is fully consumed on this grid column: retire its
    /// cached panels (and synchronize, in barrier mode).
    Retire { k: u32 },
}

/// Build the lookahead operation list for grid column `cno` of a
/// `p_c`-column grid with window `window`. Deterministic in
/// `(graph, pc, cno, window)` only — never in message timing.
pub fn lookahead_schedule(graph: &TaskGraph, pc: usize, cno: usize, window: usize) -> Vec<Op2d> {
    assert!(pc >= 1 && cno < pc);
    let nb = graph.nblocks;
    // Readiness state, as in `graph_sched`'s indegree counters, but
    // specialized to the serialized per-column update chains: column
    // `j`'s sources in ascending stage order, plus a cursor (`next`)
    // that *is* the next-expected-stage counter.
    let mut srcs: Vec<Vec<u32>> = vec![Vec::new(); nb];
    let mut dests: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for t in &graph.tasks {
        if let TaskKind::Update(k, j) = *t {
            srcs[j as usize].push(k);
            dests[k as usize].push(j);
        }
    }
    for s in &mut srcs {
        s.sort_unstable();
    }
    for d in &mut dests {
        d.sort_unstable();
    }
    let owned = |j: usize| j % pc == cno;

    let mut ops: Vec<Op2d> = Vec::new();
    let mut next: Vec<usize> = vec![0; nb];
    // `swapped[j]`: the Swap + Trsm for column `j`'s *current* cursor
    // source were already emitted by a stage batch (`issue`), so the
    // chain link only owes the Update.
    let mut swapped: Vec<bool> = vec![false; nb];
    // Emit the chain link for source `k` of owned column `j` (Swap →
    // Trsm → Update, or just the Update if a stage batch already issued
    // the first two) and advance the column's readiness cursor.
    let chain = |ops: &mut Vec<Op2d>,
                 next: &mut [usize],
                 swapped: &mut [bool],
                 k: usize,
                 j: usize,
                 depth: usize| {
        let seq = next[j] as u32;
        if !swapped[j] {
            ops.push(Op2d::Swap {
                k: k as u32,
                j: j as u32,
                seq,
            });
            ops.push(Op2d::Trsm {
                k: k as u32,
                j: j as u32,
            });
        }
        swapped[j] = false;
        ops.push(Op2d::Update {
            k: k as u32,
            j: j as u32,
            seq,
            deferred: depth > 1,
            depth: depth as u32,
        });
        next[j] += 1;
    };
    // Stage batching, as the in-order driver's `scale_swap` had: a
    // draining stage first *issues* every pending column's row swaps
    // back-to-back (each is a lockstep pairwise exchange among the grid
    // column's ranks — batching keeps them from convoying behind
    // unequal GEMM times) and then every TRSM, so each `U`-row
    // multicast is in flight before any update or panel factorization
    // can block on one. The stage's trailing GEMM updates *complete*
    // behind the factor frontier. Reordering within the stage is safe
    // for bitwise identity: only the ascending-source order *per
    // destination column* matters, and each column appears at most
    // once per batch.
    let issue = |ops: &mut Vec<Op2d>, next: &[usize], swapped: &mut [bool], s: usize| {
        let pending: Vec<usize> = dests[s]
            .iter()
            .map(|&j| j as usize)
            .filter(|&j| owned(j) && next[j] < srcs[j].len() && srcs[j][next[j]] == s as u32)
            .collect();
        for &j in &pending {
            ops.push(Op2d::Swap {
                k: s as u32,
                j: j as u32,
                seq: next[j] as u32,
            });
        }
        for &j in &pending {
            ops.push(Op2d::Trsm {
                k: s as u32,
                j: j as u32,
            });
            swapped[j] = true;
        }
        pending
    };
    let complete = |ops: &mut Vec<Op2d>,
                    next: &mut [usize],
                    swapped: &mut [bool],
                    s: usize,
                    kf: usize,
                    pending: &[usize]| {
        for &j in pending {
            // a column the factor frontier consumed in between is past
            // the stage already (its Update rode the priority chain)
            if next[j] < srcs[j].len() && srcs[j][next[j]] == s as u32 {
                ops.push(Op2d::Update {
                    k: s as u32,
                    j: j as u32,
                    seq: next[j] as u32,
                    deferred: kf - s > 1,
                    depth: (kf - s) as u32,
                });
                swapped[j] = false;
                next[j] += 1;
            }
        }
        ops.push(Op2d::Retire { k: s as u32 });
    };

    if nb > 0 && owned(0) {
        ops.push(Op2d::Factor { k: 0, nsrcs: 0 });
    }
    let mut kd = 0usize;
    for kf in 1..nb {
        // the stage draining this iteration (at most one: `kf − kd`
        // grows by one per iteration) issues its swap + TRSM batch
        // *before* the factor frontier so its multicasts overlap the
        // priority chain and panel factorization
        let draining = if kf - kd > window {
            Some((kd, issue(&mut ops, &next, &mut swapped, kd)))
        } else {
            None
        };
        if owned(kf) {
            // critical path first: finish the next pivot column's chains
            // and issue its factorization ahead of older trailing work
            while next[kf] < srcs[kf].len() {
                let k = srcs[kf][next[kf]] as usize;
                chain(&mut ops, &mut next, &mut swapped, k, kf, kf - kd);
            }
            ops.push(Op2d::Factor {
                k: kf as u32,
                nsrcs: srcs[kf].len() as u32,
            });
        }
        if let Some((s, pending)) = draining {
            complete(&mut ops, &mut next, &mut swapped, s, kf, &pending);
            kd += 1;
        }
    }
    while kd < nb {
        let pending = issue(&mut ops, &next, &mut swapped, kd);
        complete(&mut ops, &mut next, &mut swapped, kd, nb, &pending);
        kd += 1;
    }
    debug_assert!(swapped.iter().all(|&f| !f));
    debug_assert!((0..nb).all(|j| !owned(j) || next[j] == srcs[j].len()));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    fn graph_for(pc: usize) -> (TaskGraph, usize) {
        let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 6);
        let part = amalgamate(&s, &base, 4, 6);
        let pattern = Arc::new(BlockPattern::build(&s, &part));
        (TaskGraph::build(&pattern), pc)
    }

    /// Replay `ops`, checking the executor's invariants: per-column
    /// sources ascend with correct `seq`s, each `(k, j)` link runs
    /// `Swap → Trsm → Update` (possibly interleaved with other links of
    /// the same batched stage, but never spanning a Factor or Retire),
    /// factors only after all their sources, no stage-`k` work after
    /// `Retire(k)`, and retires ascending exactly once each.
    fn replay(ops: &[Op2d], nb: usize, pc: usize, cno: usize) -> (Vec<u32>, u32) {
        let mut applied = vec![0u32; nb];
        // open chain links: (k, j) -> phase (0 = swapped, 1 = trsm'd)
        let mut open: std::collections::BTreeMap<(u32, u32), u32> =
            std::collections::BTreeMap::new();
        let mut retired = vec![false; nb];
        let mut next_retire = 0u32;
        let mut factored = vec![false; nb];
        let mut updates_into: Vec<u32> = vec![0; nb];
        let mut max_depth = 0u32;
        for op in ops {
            match *op {
                Op2d::Factor { k, nsrcs } => {
                    assert!(!factored[k as usize], "Factor({k}) twice");
                    assert_eq!(applied[k as usize], nsrcs, "Factor({k}) before its sources");
                    assert_eq!(updates_into[k as usize], nsrcs);
                    factored[k as usize] = true;
                    // stage batches may span the factor (swaps + TRSMs
                    // issued, updates completing behind it), but only
                    // fully issued: never between a Swap and its Trsm
                    assert!(
                        open.values().all(|&ph| ph == 1),
                        "Factor between a Swap and its Trsm"
                    );
                }
                Op2d::Swap { k, j, seq } => {
                    assert!(!retired[k as usize], "Swap({k},{j}) after Retire({k})");
                    // a source factored on *this* grid column must have its
                    // Factor op earlier in the list; other columns' factors
                    // arrive as multicasts (a runtime dependency, not a
                    // schedule-order one)
                    if k as usize % pc == cno {
                        assert!(factored[k as usize], "Swap({k},{j}) before Factor({k})");
                    }
                    assert_eq!(seq, applied[j as usize], "non-ascending source in col {j}");
                    assert!(open.insert((k, j), 0).is_none(), "Swap({k},{j}) twice");
                }
                Op2d::Trsm { k, j } => {
                    assert_eq!(
                        open.insert((k, j), 1),
                        Some(0),
                        "Trsm({k},{j}) out of chain order"
                    );
                }
                Op2d::Update {
                    k, j, seq, depth, ..
                } => {
                    assert_eq!(
                        open.remove(&(k, j)),
                        Some(1),
                        "Update({k},{j}) out of chain order"
                    );
                    assert_eq!(seq, applied[j as usize]);
                    applied[j as usize] += 1;
                    updates_into[j as usize] += 1;
                    max_depth = max_depth.max(depth);
                    assert!(depth >= 1);
                }
                Op2d::Retire { k } => {
                    assert_eq!(k, next_retire, "retires must ascend");
                    assert!(open.is_empty(), "Retire inside a chain link");
                    retired[k as usize] = true;
                    next_retire += 1;
                }
            }
        }
        assert!(open.is_empty());
        assert_eq!(next_retire as usize, nb, "every stage retired exactly once");
        (applied, max_depth)
    }

    #[test]
    fn invariants_hold_for_all_windows_and_columns() {
        let (g, pc) = graph_for(2);
        for w in [0usize, 1, 2, 4, 100] {
            for cno in 0..pc {
                let ops = lookahead_schedule(&g, pc, cno, w);
                let (applied, max_depth) = replay(&ops, g.nblocks, pc, cno);
                assert!(
                    (max_depth as usize) <= w + 1,
                    "W={w}: pipeline depth {max_depth} exceeds W+1"
                );
                // every owned column consumed its full source list
                for j in 0..g.nblocks {
                    let expect = if j % pc == cno {
                        g.tasks
                            .iter()
                            .filter(|t| matches!(t, TaskKind::Update(_, d) if *d as usize == j))
                            .count() as u32
                    } else {
                        0
                    };
                    assert_eq!(applied[j], expect, "column {j} under W={w}, cno={cno}");
                }
            }
        }
    }

    #[test]
    fn w0_is_the_in_order_schedule() {
        let (g, pc) = graph_for(2);
        for cno in 0..pc {
            let ops = lookahead_schedule(&g, pc, cno, 0);
            // depth 1 everywhere: a stage fully drains before the
            // next-but-one factorization, so nothing is ever deferred
            for op in &ops {
                if let Op2d::Update {
                    deferred, depth, ..
                } = *op
                {
                    assert_eq!(depth, 1);
                    assert!(!deferred);
                }
            }
            // Retire(k) precedes Factor(k + 2): only one stage in flight
            let mut factored_beyond = vec![usize::MAX; g.nblocks];
            for (pos, op) in ops.iter().enumerate() {
                if let Op2d::Factor { k, .. } = *op {
                    factored_beyond[k as usize] = pos;
                }
            }
            let mut retire_pos = vec![usize::MAX; g.nblocks];
            for (pos, op) in ops.iter().enumerate() {
                if let Op2d::Retire { k } = *op {
                    retire_pos[k as usize] = pos;
                }
            }
            for k in 0..g.nblocks.saturating_sub(2) {
                if k + 2 < g.nblocks && factored_beyond[k + 2] != usize::MAX {
                    assert!(
                        retire_pos[k] < factored_beyond[k + 2],
                        "W=0: Factor({}) issued before Retire({k})",
                        k + 2
                    );
                }
            }
        }
    }

    #[test]
    fn lookahead_defers_trailing_updates_past_next_factor() {
        let (g, pc) = graph_for(2);
        for cno in 0..pc {
            let ops = lookahead_schedule(&g, pc, cno, 2);
            let deferred = ops
                .iter()
                .filter(|op| matches!(op, Op2d::Update { deferred: true, .. }))
                .count();
            let depth2 = ops
                .iter()
                .any(|op| matches!(op, Op2d::Update { depth, .. } if *depth >= 2));
            assert!(deferred > 0, "W=2 deferred nothing on column {cno}");
            assert!(depth2, "W=2 never had two stages in flight");
        }
    }

    #[test]
    fn task_multiset_is_window_invariant() {
        let (g, pc) = graph_for(2);
        let collect = |w: usize, cno: usize| {
            let mut v: Vec<(u32, u32)> = lookahead_schedule(&g, pc, cno, w)
                .iter()
                .filter_map(|op| match op {
                    Op2d::Update { k, j, .. } => Some((*k, *j)),
                    _ => None,
                })
                .collect();
            v.sort_unstable();
            v
        };
        for cno in 0..pc {
            let base = collect(0, cno);
            assert!(!base.is_empty());
            for w in [1usize, 3, 7] {
                assert_eq!(collect(w, cno), base, "update set changed under W={w}");
            }
        }
    }

    #[test]
    fn retire_count_aligns_across_grid_columns() {
        // barrier mode synchronizes at Retire ops: every grid column must
        // emit exactly `nb` of them, in the same stage order
        let (g, _) = graph_for(3);
        let seq = |cno: usize| -> Vec<u32> {
            lookahead_schedule(&g, 3, cno, 1)
                .iter()
                .filter_map(|op| match op {
                    Op2d::Retire { k } => Some(*k),
                    _ => None,
                })
                .collect()
        };
        let r0 = seq(0);
        assert_eq!(r0.len(), g.nblocks);
        for cno in 1..3 {
            assert_eq!(seq(cno), r0);
        }
    }
}
