//! The compute-ahead (CA) schedule (Fig. 10 of the paper).
//!
//! Column blocks are mapped cyclically (`block j → proc j mod P`); tasks
//! execute in the global order
//!
//! ```text
//! F(1); for k = 1..N-1 { U(k, k+1); F(k+1); U(k, k+2..N) }
//! ```
//!
//! i.e. `Factor(k+1)` is executed as soon as `Update(k, k+1)` finishes so
//! the pivot column for the next layer is communicated as early as
//! possible — a one-step lookahead. The paper's Fig. 11 shows its
//! weakness: it "can look ahead only one step", so e.g. `Factor(3)` is
//! needlessly placed after `Update(1, 5)` while graph scheduling runs it
//! earlier.

use crate::sim::Schedule;
use crate::taskgraph::{TaskGraph, TaskKind};

/// Build the CA schedule for `g` on `nprocs` processors (cyclic mapping,
/// owner-computes).
pub fn ca_schedule(g: &TaskGraph, nprocs: usize) -> Schedule {
    assert!(nprocs >= 1);
    let nb = g.nblocks;
    // task lookup: update (k, j) → id
    let mut upd: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    for (t, kind) in g.tasks.iter().enumerate() {
        if let TaskKind::Update(k, j) = *kind {
            upd.insert((k, j), t as u32);
        }
    }

    // global CA order
    let mut global: Vec<u32> = Vec::with_capacity(g.len());
    if nb > 0 {
        global.push(g.factor_task[0]);
    }
    for k in 0..nb.saturating_sub(1) {
        let ku = k as u32;
        if let Some(&t) = upd.get(&(ku, ku + 1)) {
            global.push(t);
        }
        global.push(g.factor_task[k + 1]);
        for j in (k + 2)..nb {
            if let Some(&t) = upd.get(&(ku, j as u32)) {
                global.push(t);
            }
        }
    }
    debug_assert_eq!(global.len(), g.len());

    // owner-computes cyclic mapping
    let mut proc_of = vec![0u32; g.len()];
    for t in 0..g.len() {
        proc_of[t] = (g.owner_block[t] as usize % nprocs) as u32;
    }
    let mut order: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    for &t in &global {
        order[proc_of[t as usize] as usize].push(t);
    }
    Schedule { proc_of, order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use crate::taskgraph::TaskGraph;
    use splu_machine::T3D;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    fn graph_for(n: usize) -> TaskGraph {
        let a = gen::grid2d(n, n, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 8);
        let part = amalgamate(&s, &base, 4, 8);
        TaskGraph::build(&Arc::new(BlockPattern::build(&s, &part)))
    }

    #[test]
    fn ca_schedule_is_valid_and_simulates() {
        let g = graph_for(8);
        for p in [1usize, 2, 4, 7] {
            let s = ca_schedule(&g, p);
            let r = simulate(&g, &s, &T3D);
            assert!(r.makespan > 0.0, "P={p}");
        }
    }

    #[test]
    fn parallel_no_slower_than_double_serial() {
        let g = graph_for(10);
        let t1 = simulate(&g, &ca_schedule(&g, 1), &T3D).makespan;
        let t4 = simulate(&g, &ca_schedule(&g, 4), &T3D).makespan;
        // CA with communication can lose, but not by 2x on this workload
        assert!(t4 < 2.0 * t1, "t1={t1} t4={t4}");
    }

    #[test]
    fn single_proc_equals_total_work() {
        let g = graph_for(6);
        let r = simulate(&g, &ca_schedule(&g, 1), &T3D);
        assert!((r.makespan - g.total_work(&T3D)).abs() < 1e-12);
    }

    #[test]
    fn mapping_is_cyclic_owner_computes() {
        let g = graph_for(7);
        let s = ca_schedule(&g, 3);
        for (t, &p) in s.proc_of.iter().enumerate() {
            assert_eq!(p as usize, g.owner_block[t] as usize % 3);
        }
    }
}
