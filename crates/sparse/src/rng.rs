//! Small deterministic PRNG (std-only).
//!
//! The build environment has no access to crates.io, so the `rand` crate
//! cannot be used; this module provides the small slice of its API the
//! generators need. The engine is xoshiro256++ (Blackman & Vigna), seeded
//! through SplitMix64 — the same construction `rand::rngs::SmallRng` uses
//! on 64-bit targets. Sequences are fixed for a given seed forever: the
//! synthetic benchmark suite depends on that reproducibility.

/// A small, fast, non-cryptographic RNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed via SplitMix64 so nearby seeds give unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range; mirrors `rand::Rng::gen_range`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// (bias negligible for the bounds used here, and deterministic).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Ranges [`SmallRng::gen_range`] accepts.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SmallRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.bounded((hi - lo + 1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let u = r.gen_range(3usize..7);
            assert!((3..7).contains(&u));
            let w = r.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }
}
