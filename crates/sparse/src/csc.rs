//! Compressed sparse column storage.

use crate::coo::CooMatrix;
use crate::perm::Perm;
use splu_kernels::DenseMat;

/// A sparse matrix in compressed sparse column (CSC) format.
///
/// Row indices are sorted and unique within each column. Explicitly stored
/// zeros are legal and treated as *structural* nonzeros by the symbolic
/// machinery (the static symbolic factorization must not depend on values).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Assemble from raw CSC arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, unsorted or
    /// duplicate rows in a column, out-of-range indices).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(col_ptr.len(), ncols + 1, "col_ptr length");
        assert_eq!(col_ptr[0], 0, "col_ptr[0]");
        assert_eq!(*col_ptr.last().unwrap(), row_idx.len(), "col_ptr end");
        assert_eq!(row_idx.len(), values.len(), "row/value length");
        for j in 0..ncols {
            assert!(col_ptr[j] <= col_ptr[j + 1], "col_ptr monotone");
            let seg = &row_idx[col_ptr[j]..col_ptr[j + 1]];
            for w in seg.windows(2) {
                assert!(w[0] < w[1], "rows unsorted/duplicated in column {j}");
            }
            if let Some(&last) = seg.last() {
                assert!((last as usize) < nrows, "row index out of range");
            }
        }
        Self {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_parts(
            n,
            n,
            (0..=n).collect(),
            (0..n as u32).collect(),
            vec![1.0; n],
        )
    }

    /// Build from a dense matrix, storing every entry with `|a_ij| > 0` —
    /// plus the diagonal if `keep_diag` is set (useful for test fixtures).
    pub fn from_dense(a: &DenseMat, keep_diag: bool) -> Self {
        let mut coo = CooMatrix::new(a.nrows(), a.ncols());
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                let v = a[(i, j)];
                if v != 0.0 || (keep_diag && i == j) {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csc()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointer array (length `ncols + 1`).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// All row indices, column-segmented by [`CscMatrix::col_ptr`].
    #[inline]
    pub fn row_indices(&self) -> &[u32] {
        &self.row_idx
    }

    /// All values, column-segmented by [`CscMatrix::col_ptr`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Structure-only 64-bit fingerprint of the sparsity pattern (see
    /// [`crate::fingerprint::pattern_fingerprint`]): equal for any two
    /// matrices with identical CSC structure regardless of values, so it
    /// keys cached symbolic analyses.
    pub fn pattern_fingerprint(&self) -> u64 {
        crate::fingerprint::pattern_fingerprint(self)
    }

    /// Bit-exact 64-bit fingerprint of the numeric values (see
    /// [`crate::fingerprint::value_fingerprint`]): combined with
    /// [`CscMatrix::pattern_fingerprint`] it identifies a matrix
    /// completely, keying cached numeric factorizations.
    pub fn value_fingerprint(&self) -> u64 {
        crate::fingerprint::value_fingerprint(self)
    }

    /// The rows and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    /// Value at `(i, j)`, `0.0` if not stored. O(log nnz(col j)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (rows, vals) = self.col(j);
        match rows.binary_search(&(i as u32)) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// Whether `(i, j)` is structurally nonzero (stored).
    pub fn is_stored(&self, i: usize, j: usize) -> bool {
        let (rows, _) = self.col(j);
        rows.binary_search(&(i as u32)).is_ok()
    }

    /// Whether every diagonal entry is structurally present.
    ///
    /// The static symbolic factorization requires a zero-free diagonal
    /// (§3.1); `splu-order`'s transversal produces a row permutation that
    /// establishes it.
    pub fn has_zero_free_diagonal(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        (0..self.ncols).all(|j| self.is_stored(j, j))
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj != 0.0 {
                let (rows, vals) = self.col(j);
                for (&i, &v) in rows.iter().zip(vals) {
                    y[i as usize] += v * xj;
                }
            }
        }
        y
    }

    /// `y = Aᵀ x`.
    /// `y ← A x` into a caller-supplied buffer (the allocation-free
    /// [`CscMatrix::matvec`]; iterative refinement calls this per step).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        for j in 0..self.ncols {
            let xj = x[j];
            if xj != 0.0 {
                let (rows, vals) = self.col(j);
                for (&i, &v) in rows.iter().zip(vals) {
                    y[i as usize] += v * xj;
                }
            }
        }
    }

    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows);
        let mut y = vec![0.0; self.ncols];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            let mut acc = 0.0;
            for (&i, &v) in rows.iter().zip(vals) {
                acc += v * x[i as usize];
            }
            y[j] = acc;
        }
        y
    }

    /// The transpose, in CSC (equivalently, this matrix reinterpreted as
    /// compressed sparse *row*).
    pub fn transpose(&self) -> CscMatrix {
        let mut counts = vec![0usize; self.nrows + 1];
        for &i in &self.row_idx {
            counts[i as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut next = counts.clone();
        let mut ri = vec![0u32; self.nnz()];
        let mut vv = vec![0.0; self.nnz()];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                let slot = next[i as usize];
                next[i as usize] += 1;
                ri[slot] = j as u32;
                vv[slot] = v;
            }
        }
        // Column j of A is scanned in increasing j, so each transposed
        // column's rows come out already sorted.
        CscMatrix::from_parts(self.ncols, self.nrows, counts, ri, vv)
    }

    /// Densify (small matrices / tests only).
    pub fn to_dense(&self) -> DenseMat {
        let mut d = DenseMat::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                d[(i as usize, j)] = v;
            }
        }
        d
    }

    /// Apply a row permutation: returns `B` with `B[r, j] = A[prow.old_of_new(r), j]`
    /// — i.e. `B = P A` where row `old` of `A` becomes row `prow.new_of_old(old)`.
    pub fn permute_rows(&self, prow: &Perm) -> CscMatrix {
        assert_eq!(prow.len(), self.nrows);
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                coo.push(prow.new_of_old(i as usize), j, v);
            }
        }
        coo.to_csc()
    }

    /// Apply a column permutation: column `old` of `A` becomes column
    /// `pcol.new_of_old(old)` of the result (`B = A Pᵀ` in matrix terms).
    pub fn permute_cols(&self, pcol: &Perm) -> CscMatrix {
        assert_eq!(pcol.len(), self.ncols);
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut ri = Vec::with_capacity(self.nnz());
        let mut vv = Vec::with_capacity(self.nnz());
        for newj in 0..self.ncols {
            let oldj = pcol.old_of_new(newj);
            let (rows, vals) = self.col(oldj);
            ri.extend_from_slice(rows);
            vv.extend_from_slice(vals);
            col_ptr[newj + 1] = ri.len();
        }
        CscMatrix::from_parts(self.nrows, self.ncols, col_ptr, ri, vv)
    }

    /// Apply both permutations: `B = P A Qᵀ` with
    /// `B[prow.new_of_old(i), pcol.new_of_old(j)] = A[i, j]`.
    pub fn permute(&self, prow: &Perm, pcol: &Perm) -> CscMatrix {
        self.permute_rows(prow).permute_cols(pcol)
    }

    /// Infinity norm of the matrix (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut rowsum = vec![0.0f64; self.nrows];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                rowsum[i as usize] += v.abs();
            }
        }
        rowsum.iter().fold(0.0f64, |m, &v| m.max(v))
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Iterate over all stored `(row, col, value)` entries in column order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter()
                .zip(vals)
                .map(move |(&i, &v)| (i as usize, j, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(2, 0, 4.0);
        c.push(1, 1, 3.0);
        c.push(0, 2, 2.0);
        c.push(2, 2, 5.0);
        c.to_csc()
    }

    #[test]
    fn basic_accessors() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert!(a.is_stored(1, 1));
        assert!(!a.is_stored(0, 1));
        assert!(a.has_zero_free_diagonal());
    }

    #[test]
    fn matvec_and_transpose_matvec_agree_with_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(a.matvec(&x), d.matvec(&x));
        assert_eq!(a.matvec_transpose(&x), d.transpose().matvec(&x));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(0, 2), 4.0);
        assert_eq!(a.transpose().get(2, 0), a.get(0, 2));
    }

    #[test]
    fn permute_rows_moves_entries() {
        let a = sample();
        // cycle rows: 0->1, 1->2, 2->0
        let p = Perm::from_new_of_old(vec![1, 2, 0]);
        let b = a.permute_rows(&p);
        assert_eq!(b.get(1, 0), a.get(0, 0));
        assert_eq!(b.get(0, 0), a.get(2, 0));
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn permute_cols_moves_columns() {
        let a = sample();
        let p = Perm::from_new_of_old(vec![2, 0, 1]); // old col 0 -> new col 2
        let b = a.permute_cols(&p);
        assert_eq!(b.get(0, 2), a.get(0, 0));
        assert_eq!(b.get(2, 2), a.get(2, 0));
    }

    #[test]
    fn permute_is_pa_qt() {
        let a = sample();
        let pr = Perm::from_new_of_old(vec![2, 0, 1]);
        let pc = Perm::from_new_of_old(vec![1, 2, 0]);
        let b = a.permute(&pr, &pc);
        for (i, j, v) in a.iter() {
            assert_eq!(b.get(pr.new_of_old(i), pc.new_of_old(j)), v);
        }
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = CscMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        assert!(i.has_zero_free_diagonal());
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn norms() {
        let a = sample();
        assert_eq!(a.max_abs(), 5.0);
        assert_eq!(a.norm_inf(), 9.0); // row 2: |4| + |5|
    }

    #[test]
    #[should_panic]
    fn unsorted_rows_rejected() {
        CscMatrix::from_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_row_rejected() {
        CscMatrix::from_parts(2, 1, vec![0, 1], vec![5], vec![1.0]);
    }
}
