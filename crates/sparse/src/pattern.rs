//! Structure-only (symbolic) matrix operations.
//!
//! The static symbolic factorization and the fill-reducing ordering operate
//! on nonzero *patterns*, never on values. This module provides the pattern
//! algebra the paper relies on:
//!
//! * [`ata_pattern`] — the pattern of `AᵀA`, on which the multiple minimum
//!   degree ordering is computed (§3.1) and whose Cholesky factor bounds the
//!   static L/U structures (Table 1's `AᵀA` column),
//! * [`at_plus_a_pattern`] — the pattern of `Aᵀ + A` (the alternative
//!   ordering target SuperLU uses for matrices like `memplus`),
//! * [`structural_symmetry`] — the paper's "symmetry number" statistic,
//! * [`cholesky_fill_count`] — nnz of the Cholesky factor `L_c` of a
//!   symmetric pattern (symbolic factorization only).

use crate::csc::CscMatrix;

/// A value-free sparse pattern in CSC layout (rows sorted per column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
}

impl Pattern {
    /// Extract the pattern of a CSC matrix (every stored entry, including
    /// explicit zeros, is structural).
    pub fn from_csc(a: &CscMatrix) -> Self {
        Self {
            nrows: a.nrows(),
            ncols: a.ncols(),
            col_ptr: a.col_ptr().to_vec(),
            row_idx: a.row_indices().to_vec(),
        }
    }

    /// Assemble from raw parts.
    ///
    /// # Panics
    /// Panics on inconsistent arrays (delegates to [`CscMatrix::from_parts`]
    /// validation rules).
    pub fn from_parts(nrows: usize, ncols: usize, col_ptr: Vec<usize>, row_idx: Vec<u32>) -> Self {
        // Reuse CscMatrix validation by constructing a dummy-value matrix.
        let vals = vec![0.0; row_idx.len()];
        let m = CscMatrix::from_parts(nrows, ncols, col_ptr, row_idx, vals);
        Self {
            nrows,
            ncols,
            col_ptr: m.col_ptr().to_vec(),
            row_idx: m.row_indices().to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of structural entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Rows of column `j` (sorted).
    pub fn col(&self, j: usize) -> &[u32] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Whether `(i, j)` is present.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.col(j).binary_search(&(i as u32)).is_ok()
    }

    /// Column pointers.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// All row indices.
    pub fn row_indices(&self) -> &[u32] {
        &self.row_idx
    }
}

/// Pattern of `AᵀA` for a (possibly rectangular) `A`, diagonal included.
///
/// Column `j` of `AᵀA` is the union of the column sets of all rows that have
/// an entry in column `j`; equivalently every row of `A` forms a clique
/// among the columns it touches. Cost is `O(Σ_i nnz(row i)²)` before
/// deduplication, which is fine for the stencil-like matrices in this
/// workspace.
pub fn ata_pattern(a: &CscMatrix) -> Pattern {
    let n = a.ncols();
    let at = a.transpose(); // rows of A as columns of Aᵀ
    let mut mark = vec![u32::MAX; n];
    let mut col_ptr = vec![0usize; n + 1];
    let mut rows_out: Vec<u32> = Vec::new();
    // For column j: union of cols(row i) over i in struct(A[:, j]).
    for j in 0..n {
        let start = rows_out.len();
        for &i in a.col(j).0 {
            for &k in at.col(i as usize).0 {
                if mark[k as usize] != j as u32 {
                    mark[k as usize] = j as u32;
                    rows_out.push(k);
                }
            }
        }
        // Guarantee the diagonal: AᵀA always has it structurally when the
        // column is nonempty; add it for empty columns too so downstream
        // symmetric algorithms see a zero-free diagonal.
        if mark[j] != j as u32 {
            mark[j] = j as u32;
            rows_out.push(j as u32);
        }
        rows_out[start..].sort_unstable();
        col_ptr[j + 1] = rows_out.len();
    }
    Pattern::from_parts(n, n, col_ptr, rows_out)
}

/// Pattern of `Aᵀ + A` for square `A`, diagonal included.
pub fn at_plus_a_pattern(a: &CscMatrix) -> Pattern {
    assert_eq!(a.nrows(), a.ncols(), "Aᵀ+A needs a square matrix");
    let n = a.ncols();
    let at = a.transpose();
    let mut col_ptr = vec![0usize; n + 1];
    let mut rows_out: Vec<u32> = Vec::new();
    for j in 0..n {
        let (r1, _) = a.col(j);
        let (r2, _) = at.col(j);
        // merge two sorted lists + diagonal
        let (mut p, mut q) = (0, 0);
        let start = rows_out.len();
        let push = |v: u32, out: &mut Vec<u32>| {
            if out.len() == start || *out.last().unwrap() != v {
                out.push(v);
            }
        };
        let mut diag_done = false;
        loop {
            let next = match (r1.get(p), r2.get(q)) {
                (Some(&x), Some(&y)) => {
                    if x <= y {
                        p += 1;
                        x
                    } else {
                        q += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    p += 1;
                    x
                }
                (None, Some(&y)) => {
                    q += 1;
                    y
                }
                (None, None) => break,
            };
            if !diag_done && next >= j as u32 {
                if next > j as u32 {
                    push(j as u32, &mut rows_out);
                }
                diag_done = true;
            }
            push(next, &mut rows_out);
        }
        if !diag_done {
            push(j as u32, &mut rows_out);
        }
        col_ptr[j + 1] = rows_out.len();
    }
    Pattern::from_parts(n, n, col_ptr, rows_out)
}

/// The paper's structural "symmetry number" (Table 1, column `A / (A∩Aᵀ)`-ish):
/// we define it as `nnz(A ∪ Aᵀ) / nnz(A)`.
///
/// A structurally symmetric matrix scores exactly 1.0; a matrix whose
/// pattern shares nothing with its transpose (apart from the diagonal)
/// approaches 2.0. The bigger the number, the more nonsymmetric the
/// structure — matching the table's convention that "the bigger the
/// symmetry number is, the more nonsymmetric the original matrix is".
pub fn structural_symmetry(a: &CscMatrix) -> f64 {
    assert_eq!(a.nrows(), a.ncols());
    let union = at_plus_a_pattern(a);
    // at_plus_a adds the diagonal; subtract any diagonal entries that are
    // absent from both A and Aᵀ to keep the statistic faithful.
    let mut union_nnz = union.nnz();
    for j in 0..a.ncols() {
        if !a.is_stored(j, j) {
            union_nnz -= 1;
        }
    }
    union_nnz as f64 / a.nnz() as f64
}

/// Symbolic Cholesky factorization of a symmetric pattern: returns the
/// number of nonzeros in the factor `L_c` (diagonal included) and the
/// elimination tree parent array (`usize::MAX` for roots).
///
/// Used for Table 1's "Cholesky factor of `AᵀA`" upper bound: per George &
/// Ng, `struct(L_c(AᵀA))` bounds the static L and U structures for *any*
/// pivot sequence, but the bound "is not very tight".
///
/// The implementation is Liu-style: it computes the elimination tree with
/// path compression, then counts each column's structure by walking row
/// subtrees with marks — `O(nnz(L))` time, `O(n)` extra space.
pub fn cholesky_fill_count(p: &Pattern) -> (usize, Vec<usize>) {
    assert_eq!(p.nrows(), p.ncols(), "cholesky needs square pattern");
    let n = p.ncols();
    const NONE: usize = usize::MAX;
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    // Liu's elimination tree algorithm.
    for i in 0..n {
        for &jj in p.col(i) {
            let mut j = jj as usize;
            if j >= i {
                break; // sorted; only strictly-lower part (row i, col j<i)
            }
            // walk from j to the root of its current subtree
            while j != NONE && j < i {
                let next = ancestor[j];
                ancestor[j] = i; // path compression
                if next == NONE {
                    parent[j] = i;
                    break;
                }
                j = next;
            }
        }
    }
    // Column counts by row-subtree marking.
    let mut colcount = vec![1usize; n]; // diagonal
    let mut mark = vec![NONE; n];
    for i in 0..n {
        mark[i] = i;
        for &jj in p.col(i) {
            let mut j = jj as usize;
            if j >= i {
                break;
            }
            while mark[j] != i {
                mark[j] = i;
                colcount[j] += 1; // row i appears in column j of L
                j = parent[j];
                if j == NONE {
                    break;
                }
            }
        }
    }
    (colcount.iter().sum(), parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use splu_kernels::DenseMat;

    fn arrow(n: usize) -> CscMatrix {
        // Arrowhead: dense first row & column + diagonal.
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, 0, 1.0);
                c.push(0, i, 1.0);
            }
        }
        c.to_csc()
    }

    fn pattern_of_dense_bool(d: &[Vec<bool>]) -> Pattern {
        let n = d.len();
        let mut c = CooMatrix::new(n, n);
        for (i, row) in d.iter().enumerate() {
            for (j, &b) in row.iter().enumerate() {
                if b {
                    c.push(i, j, 1.0);
                }
            }
        }
        Pattern::from_csc(&c.to_csc())
    }

    #[test]
    fn ata_pattern_matches_dense_oracle() {
        let mut c = CooMatrix::new(4, 4);
        for &(i, j) in &[(0, 0), (1, 0), (1, 1), (2, 2), (3, 2), (0, 3), (3, 3)] {
            c.push(i, j, 1.0);
        }
        let a = c.to_csc();
        let p = ata_pattern(&a);
        // dense oracle
        let d = a.to_dense();
        let ata = d.transpose().matmul(&d);
        for i in 0..4 {
            for j in 0..4 {
                let expected = ata[(i, j)] != 0.0 || i == j;
                assert_eq!(p.contains(i, j), expected, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn ata_pattern_is_symmetric() {
        let a = arrow(6);
        let p = ata_pattern(&a);
        for j in 0..6 {
            for &i in p.col(j) {
                assert!(p.contains(j, i as usize));
            }
        }
    }

    #[test]
    fn at_plus_a_unions_both_triangles() {
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        c.push(2, 2, 1.0);
        c.push(2, 0, 1.0); // lower only
        let a = c.to_csc();
        let p = at_plus_a_pattern(&a);
        assert!(p.contains(2, 0));
        assert!(p.contains(0, 2));
        assert_eq!(p.nnz(), 5);
    }

    #[test]
    fn symmetry_number_is_one_for_symmetric_pattern() {
        let a = arrow(5);
        assert!((structural_symmetry(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_number_grows_with_asymmetry() {
        // Strictly upper bidiagonal + diagonal: each off-diag entry is
        // unmatched.
        let mut c = CooMatrix::new(4, 4);
        for i in 0..4 {
            c.push(i, i, 1.0);
        }
        for i in 0..3 {
            c.push(i, i + 1, 1.0);
        }
        let a = c.to_csc();
        // union has 4 diag + 3 upper + 3 lower = 10; nnz(A) = 7
        assert!((structural_symmetry(&a) - 10.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_fill_tridiagonal_has_no_fill() {
        let n = 8;
        let t = pattern_of_dense_bool(
            &(0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| (i as isize - j as isize).abs() <= 1)
                        .collect()
                })
                .collect::<Vec<_>>(),
        );
        let (nnz_l, parent) = cholesky_fill_count(&t);
        // tridiagonal L: n diagonal + (n-1) subdiagonal
        assert_eq!(nnz_l, 2 * n - 1);
        for j in 0..n - 1 {
            assert_eq!(parent[j], j + 1);
        }
        assert_eq!(parent[n - 1], usize::MAX);
    }

    #[test]
    fn cholesky_fill_arrow_reversed_fills_completely() {
        // Arrowhead with the hub eliminated FIRST causes complete fill.
        let n = 6;
        let a = arrow(n);
        let p = Pattern::from_csc(&a);
        let (nnz_l, _) = cholesky_fill_count(&p);
        // hub first: L column 0 is full, and the rank-1 clique fills the rest
        assert_eq!(nnz_l, n * (n + 1) / 2);
        // hub LAST: no fill — reversed arrowhead
        let rev = crate::perm::Perm::from_new_of_old((0..n).map(|i| (n - 1) - i).collect());
        let ar = a.permute(&rev, &rev);
        let (nnz_l2, _) = cholesky_fill_count(&Pattern::from_csc(&ar));
        assert_eq!(nnz_l2, n + (n - 1)); // diagonal + last dense row
    }

    #[test]
    fn cholesky_fill_matches_dense_elimination_oracle() {
        // brute-force symbolic elimination on a random-ish symmetric pattern
        let n = 10;
        let mut d = vec![vec![false; n]; n];
        for i in 0..n {
            d[i][i] = true;
        }
        let edges = [
            (1, 0),
            (4, 2),
            (5, 0),
            (6, 3),
            (7, 4),
            (8, 1),
            (9, 6),
            (5, 4),
            (7, 2),
        ];
        for &(i, j) in &edges {
            d[i][j] = true;
            d[j][i] = true;
        }
        let p = pattern_of_dense_bool(&d);
        let (nnz_l, _) = cholesky_fill_count(&p);
        // oracle: right-looking symbolic elimination
        let mut f = d.clone();
        let mut count = 0;
        for k in 0..n {
            for i in k..n {
                if f[i][k] {
                    count += 1;
                }
            }
            for i in (k + 1)..n {
                if f[i][k] {
                    for j in (k + 1)..n {
                        if f[j][k] {
                            f[i][j] = true;
                            f[j][i] = true;
                        }
                    }
                }
            }
        }
        assert_eq!(nnz_l, count);
    }

    #[test]
    fn ata_of_identity_is_identity() {
        let a = CscMatrix::identity(5);
        let p = ata_pattern(&a);
        assert_eq!(p.nnz(), 5);
    }

    #[test]
    fn pattern_from_dense_roundtrip() {
        let d = DenseMat::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let a = CscMatrix::from_dense(&d, false);
        let p = Pattern::from_csc(&a);
        assert!(p.contains(0, 0) && p.contains(1, 1));
        assert!(!p.contains(1, 0));
    }
}
