//! Matrix Market coordinate-format I/O.
//!
//! The paper's benchmark matrices are Harwell–Boeing / Matrix-Market files;
//! this module lets users run the full pipeline on real files when they
//! have them, while the bundled experiments use the synthetic
//! [`crate::suite`] stand-ins.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a human-readable message.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<io::Error> for MmError {
    fn from(e: io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a Matrix Market `coordinate` matrix from a reader.
///
/// Supports `real` / `integer` values and `general` / `symmetric` symmetry
/// (symmetric entries are mirrored); `pattern` matrices get value `1.0`.
pub fn read_matrix_market<R: Read>(r: R) -> Result<CscMatrix, MmError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err("missing %%MatrixMarket header"));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err(format!("unsupported format {}", fields[2])));
    }
    let value_kind = fields[3];
    if !matches!(value_kind, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field {value_kind}")));
    }
    let symmetry = fields[4];
    if !matches!(symmetry, "general" | "symmetric" | "skew-symmetric") {
        return Err(parse_err(format!("unsupported symmetry {symmetry}")));
    }

    // Skip comments and blank lines until the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line needs `rows cols nnz`"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("short entry line"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("short entry line"))?
            .parse()
            .map_err(|_| parse_err("bad col index"))?;
        let v: f64 = match value_kind {
            "pattern" => 1.0,
            _ => it
                .next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?,
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("entry ({i},{j}) out of range")));
        }
        coo.push(i - 1, j - 1, v);
        match symmetry {
            "symmetric" if i != j => coo.push(j - 1, i - 1, v),
            "skew-symmetric" if i != j => coo.push(j - 1, i - 1, -v),
            _ => {}
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csc())
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CscMatrix, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a matrix in Matrix Market `coordinate real general` format.
pub fn write_matrix_market<W: Write>(w: &mut W, a: &CscMatrix) -> io::Result<()> {
    let mut s = String::new();
    let _ = writeln!(s, "%%MatrixMarket matrix coordinate real general");
    let _ = writeln!(s, "% written by splu-sparse");
    let _ = writeln!(s, "{} {} {}", a.nrows(), a.ncols(), a.nnz());
    for (i, j, v) in a.iter() {
        let _ = writeln!(s, "{} {} {:.17e}", i + 1, j + 1, v);
    }
    w.write_all(s.as_bytes())
}

/// Write a matrix to a Matrix Market file on disk.
pub fn write_matrix_market_file(path: impl AsRef<Path>, a: &CscMatrix) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write_matrix_market(&mut f, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 0, 1.5);
        coo.push(2, 1, -2.25);
        coo.push(1, 3, 1e-30);
        let a = coo.to_csc();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_entries_are_mirrored() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    3 3 3\n\
                    1 1 2.0\n\
                    3 1 5.0\n\
                    2 2 1.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(2, 0), 5.0);
        assert_eq!(a.get(0, 2), 5.0);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 1\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(read_matrix_market("hello\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n".as_bytes()).is_err()
        );
    }

    #[test]
    fn wrong_count_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
