//! Permutations.

/// A permutation of `0..n`, stored in *scatter* form: `new_of_old[old]`
/// gives the new position of element `old`.
///
/// The inverse (*gather*) view `old_of_new` is materialized lazily-never:
/// both directions are stored so each lookup is O(1); permutations in this
/// workspace are built once and applied many times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perm {
    new_of_old: Vec<u32>,
    old_of_new: Vec<u32>,
}

impl Perm {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<u32> = (0..n as u32).collect();
        Self {
            new_of_old: v.clone(),
            old_of_new: v,
        }
    }

    /// Build from scatter form (`p[old] = new`).
    ///
    /// # Panics
    /// Panics if `p` is not a permutation of `0..p.len()`.
    pub fn from_new_of_old(p: Vec<usize>) -> Self {
        let n = p.len();
        let mut inv = vec![u32::MAX; n];
        for (old, &new) in p.iter().enumerate() {
            assert!(new < n, "permutation image {new} out of range");
            assert!(inv[new] == u32::MAX, "duplicate image {new} in permutation");
            inv[new] = old as u32;
        }
        Self {
            new_of_old: p.into_iter().map(|v| v as u32).collect(),
            old_of_new: inv,
        }
    }

    /// Build from gather form (`p[new] = old`), e.g. an elimination order
    /// where `p[k]` is the original index eliminated at step `k`.
    pub fn from_old_of_new(p: Vec<usize>) -> Self {
        Self::from_new_of_old_inverse(p)
    }

    fn from_new_of_old_inverse(p: Vec<usize>) -> Self {
        let n = p.len();
        let mut fwd = vec![u32::MAX; n];
        for (new, &old) in p.iter().enumerate() {
            assert!(old < n, "permutation image {old} out of range");
            assert!(fwd[old] == u32::MAX, "duplicate image {old} in permutation");
            fwd[old] = new as u32;
        }
        Self {
            new_of_old: fwd,
            old_of_new: p.into_iter().map(|v| v as u32).collect(),
        }
    }

    /// Size of the permuted set.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New position of element `old`.
    #[inline]
    pub fn new_of_old(&self, old: usize) -> usize {
        self.new_of_old[old] as usize
    }

    /// Original element at new position `new`.
    #[inline]
    pub fn old_of_new(&self, new: usize) -> usize {
        self.old_of_new[new] as usize
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Perm {
        Perm {
            new_of_old: self.old_of_new.clone(),
            old_of_new: self.new_of_old.clone(),
        }
    }

    /// Composition: apply `self` first, then `after`
    /// (`result.new_of_old(x) = after.new_of_old(self.new_of_old(x))`).
    pub fn then(&self, after: &Perm) -> Perm {
        assert_eq!(self.len(), after.len());
        Perm::from_new_of_old(
            (0..self.len())
                .map(|old| after.new_of_old(self.new_of_old(old)))
                .collect(),
        )
    }

    /// Apply to a vector: `out[new_of_old(i)] = v[i]`.
    pub fn apply_vec<T: Clone>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.len());
        let mut out: Vec<T> = v.to_vec();
        for (old, x) in v.iter().enumerate() {
            out[self.new_of_old(old)] = x.clone();
        }
        out
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(i, &p)| i as u32 == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Perm::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.new_of_old(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn scatter_gather_consistency() {
        let p = Perm::from_new_of_old(vec![2, 0, 1]);
        assert_eq!(p.new_of_old(0), 2);
        assert_eq!(p.old_of_new(2), 0);
        let q = Perm::from_old_of_new(vec![1, 2, 0]);
        assert_eq!(q.new_of_old(1), 0);
        assert_eq!(q.old_of_new(0), 1);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Perm::from_new_of_old(vec![3, 1, 0, 2]);
        assert!(p.then(&p.inverse()).is_identity());
        assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn composition_order() {
        let p = Perm::from_new_of_old(vec![1, 2, 0]); // 0->1->2->0
        let q = Perm::from_new_of_old(vec![0, 2, 1]); // swap 1,2
        let r = p.then(&q);
        // 0 -p-> 1 -q-> 2
        assert_eq!(r.new_of_old(0), 2);
    }

    #[test]
    fn apply_vec_scatters() {
        let p = Perm::from_new_of_old(vec![2, 0, 1]);
        assert_eq!(p.apply_vec(&['a', 'b', 'c']), vec!['b', 'c', 'a']);
    }

    #[test]
    #[should_panic]
    fn non_permutation_rejected() {
        Perm::from_new_of_old(vec![0, 0, 1]);
    }
}
