//! `splu-sparse` — sparse matrix substrate for the S\* sparse LU system.
//!
//! Provides the storage formats, permutations, pattern algebra, I/O and
//! workload generators that the ordering, symbolic-factorization and
//! numerical crates build on:
//!
//! * [`CooMatrix`] — triplet builder (duplicates summed),
//! * [`CscMatrix`] — compressed sparse column storage, the interchange
//!   format of the whole workspace,
//! * [`Perm`] — permutations with row/column application to CSC matrices,
//! * [`pattern`] — structure-only operations: the pattern of `AᵀA`
//!   (used by the fill-reducing ordering and by the Cholesky-factor upper
//!   bound of Table 1), `Aᵀ+A`, structural symmetry statistics,
//! * [`io`] — Matrix Market coordinate format read/write,
//! * [`hb`] — Harwell–Boeing reader (the original matrices' format),
//! * [`gen`] — synthetic matrix generators (grid stencils, random patterns
//!   with target structural symmetry, block "fluid-flow" structures, dense),
//! * [`suite`] — the paper's benchmark matrix table (Table 1) realized as
//!   deterministic synthetic stand-ins, since the original Harwell–Boeing
//!   files are not shipped; see `DESIGN.md` §3 for the substitution
//!   rationale.

pub mod coo;
pub mod csc;
pub mod fingerprint;
pub mod gen;
pub mod hb;
pub mod io;
pub mod pattern;
pub mod perm;
pub mod rng;
pub mod suite;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use perm::Perm;
