//! Structure-only fingerprints for sparsity patterns.
//!
//! The S\* pipeline's whole symbolic phase — transversal, fill-reducing
//! ordering, static symbolic factorization, supernode partitioning — is a
//! pure function of the sparsity *pattern*. A 64-bit hash of that pattern
//! therefore identifies which matrices can share one cached analysis
//! (Newton steps, time-stepping, circuit simulation all re-solve with the
//! same structure). The hash is FNV-1a over the CSC shape and index
//! arrays; values are deliberately excluded.

use crate::CscMatrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher (hand-rolled: the build environment
/// has no crates.io access, and `DefaultHasher` is not stable across Rust
/// releases — fingerprints may be persisted in run summaries).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorb one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    /// Absorb a `u64` (little-endian byte order).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Hash the sparsity pattern of `a`: dimensions, column pointers and row
/// indices — everything the symbolic pipeline depends on, nothing it
/// doesn't. Two matrices get equal fingerprints iff they have identical
/// CSC structure (up to the vanishingly unlikely 64-bit collision).
pub fn pattern_fingerprint(a: &CscMatrix) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(a.nrows() as u64);
    h.write_u64(a.ncols() as u64);
    for &p in a.col_ptr() {
        h.write_u64(p as u64);
    }
    for &r in a.row_indices() {
        h.write_u64(r as u64);
    }
    h.finish()
}

/// Hash the numeric values of `a`, bit-exact. Together with
/// [`pattern_fingerprint`] this identifies a matrix completely: the
/// solver service reuses a cached *numeric* factorization outright when
/// both fingerprints match (repeated solves of the same system), and
/// falls back to refactorization when only the pattern matches.
pub fn value_fingerprint(a: &CscMatrix) -> u64 {
    let mut h = Fnv1a::new();
    for &v in a.values() {
        h.write_u64(v.to_bits());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, ValueModel};

    #[test]
    fn same_pattern_different_values_agree() {
        let a = gen::grid2d(6, 5, 0.4, ValueModel::default());
        let b = gen::perturb_values(&a, 12345);
        assert_ne!(a.values(), b.values());
        assert_eq!(a.pattern_fingerprint(), b.pattern_fingerprint());
    }

    #[test]
    fn different_patterns_disagree() {
        let vm = ValueModel::default();
        let a = gen::grid2d(6, 5, 0.4, vm);
        let b = gen::grid2d(5, 6, 0.4, vm);
        let c = gen::random_sparse(30, 3, 0.5, vm);
        assert_ne!(a.pattern_fingerprint(), b.pattern_fingerprint());
        assert_ne!(a.pattern_fingerprint(), c.pattern_fingerprint());
    }

    #[test]
    fn value_fingerprint_tracks_values_not_pattern() {
        let a = gen::grid2d(6, 5, 0.4, ValueModel::default());
        let b = gen::perturb_values(&a, 7);
        assert_ne!(value_fingerprint(&a), value_fingerprint(&b));
        let c = gen::perturb_values(&a, 7); // same seed → same values
        assert_eq!(value_fingerprint(&b), value_fingerprint(&c));
    }

    #[test]
    fn fnv_vector() {
        // FNV-1a 64 of the bytes "a" is a published test vector
        let mut h = Fnv1a::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
