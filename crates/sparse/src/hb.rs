//! Harwell–Boeing format reader.
//!
//! The paper's benchmark matrices (sherman5, orsreg1, saylr4, …) are
//! distributed in the Harwell–Boeing exchange format: a fixed-width,
//! Fortran-formatted file with a 4–5 line header followed by column
//! pointers, row indices and values. This reader supports the assembled
//! real and pattern types (`RUA`, `RSA`, `PUA`, `PSA`, and the `R*A`
//! variants), so the pipeline runs on the original files when available
//! (the bundled experiments use the synthetic suite).
//!
//! Right-hand-side blocks are skipped.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use std::io::{BufRead, BufReader, Read};

/// Errors from Harwell–Boeing parsing.
#[derive(Debug)]
pub enum HbError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Parse(String),
}

impl std::fmt::Display for HbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HbError::Io(e) => write!(f, "I/O error: {e}"),
            HbError::Parse(m) => write!(f, "Harwell-Boeing parse error: {m}"),
        }
    }
}

impl std::error::Error for HbError {}

impl From<std::io::Error> for HbError {
    fn from(e: std::io::Error) -> Self {
        HbError::Io(e)
    }
}

fn perr(msg: impl Into<String>) -> HbError {
    HbError::Parse(msg.into())
}

/// A parsed Fortran edit descriptor: `count` fields of `width` characters
/// per record (e.g. `(16I5)` → 16×5, `(1P,4E20.12)` → 4×20).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FortranFormat {
    /// Fields per line.
    pub count: usize,
    /// Characters per field.
    pub width: usize,
}

/// Parse a subset of Fortran format strings: optional scale factor
/// (`1P`), a repeat count, one of `I/E/F/D/G`, and a field width
/// (fractional digits ignored). Examples: `(16I5)`, `(10E12.4)`,
/// `(1P,4E20.12)`, `(4D25.16)`.
pub fn parse_fortran_format(s: &str) -> Result<FortranFormat, HbError> {
    let t = s.trim().trim_start_matches('(').trim_end_matches(')');
    // drop a leading scale factor like "1P" or "1P,"
    let t = if let Some(pos) = t.to_uppercase().find('P') {
        let (head, tail) = t.split_at(pos + 1);
        if head
            .trim_end_matches(['P', 'p'])
            .chars()
            .all(|c| c.is_ascii_digit() || c == '-')
        {
            tail.trim_start_matches(',').trim()
        } else {
            t
        }
    } else {
        t
    };
    let up = t.to_uppercase();
    let letter_pos = up
        .find(['I', 'E', 'F', 'D', 'G'])
        .ok_or_else(|| perr(format!("no edit descriptor in `{s}`")))?;
    let count: usize = up[..letter_pos].trim().parse().unwrap_or(1); // "(I8)" means one field
    let rest = &up[letter_pos + 1..];
    let width_str: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    let width: usize = width_str
        .parse()
        .map_err(|_| perr(format!("no field width in `{s}`")))?;
    if count == 0 || width == 0 {
        return Err(perr(format!("degenerate format `{s}`")));
    }
    Ok(FortranFormat { count, width })
}

/// Read `total` fixed-width fields from `lines` under `fmt`, parsing each
/// with `parse`.
fn read_fields<B: BufRead, T>(
    lines: &mut std::io::Lines<B>,
    fmt: FortranFormat,
    total: usize,
    mut parse: impl FnMut(&str) -> Result<T, HbError>,
) -> Result<Vec<T>, HbError> {
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let line = lines
            .next()
            .ok_or_else(|| perr("unexpected end of file"))??;
        let chars: Vec<char> = line.chars().collect();
        for f in 0..fmt.count {
            if out.len() == total {
                break;
            }
            let start = f * fmt.width;
            if start >= chars.len() {
                break;
            }
            let end = ((f + 1) * fmt.width).min(chars.len());
            let field: String = chars[start..end].iter().collect();
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            out.push(parse(field)?);
        }
    }
    Ok(out)
}

/// Read a Harwell–Boeing matrix (assembled real/pattern types).
pub fn read_harwell_boeing<R: Read>(r: R) -> Result<CscMatrix, HbError> {
    let mut lines = BufReader::new(r).lines();
    let _title = lines.next().ok_or_else(|| perr("empty file"))??;
    let counts_line = lines.next().ok_or_else(|| perr("missing line 2"))??;
    let counts: Vec<i64> = counts_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| perr("bad card counts")))
        .collect::<Result<_, _>>()?;
    if counts.is_empty() {
        return Err(perr("bad card-count line"));
    }
    let rhscrd = *counts.get(4).unwrap_or(&0);

    let type_line = lines.next().ok_or_else(|| perr("missing line 3"))??;
    let mxtype: String = type_line.chars().take(3).collect::<String>().to_uppercase();
    let dims: Vec<usize> = type_line
        .chars()
        .skip(3)
        .collect::<String>()
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| perr("bad dimensions")))
        .collect::<Result<_, _>>()?;
    if dims.len() < 3 {
        return Err(perr("need NROW NCOL NNZERO"));
    }
    let (nrow, ncol, nnz) = (dims[0], dims[1], dims[2]);

    let value_kind = mxtype.chars().next().unwrap_or('?');
    let symmetry = mxtype.chars().nth(1).unwrap_or('?');
    let assembled = mxtype.chars().nth(2).unwrap_or('?');
    if assembled != 'A' {
        return Err(perr(format!("unsupported (elemental) type {mxtype}")));
    }
    if !matches!(value_kind, 'R' | 'P') {
        return Err(perr(format!("unsupported value type {mxtype}")));
    }
    if !matches!(symmetry, 'U' | 'S' | 'Z' | 'R') {
        return Err(perr(format!("unsupported symmetry {mxtype}")));
    }

    let fmt_line = lines.next().ok_or_else(|| perr("missing line 4"))??;
    // PTRFMT (cols 1-16), INDFMT (17-32), VALFMT (33-52)
    let take = |lo: usize, hi: usize| -> String {
        fmt_line.chars().skip(lo).take(hi - lo).collect::<String>()
    };
    let ptrfmt = parse_fortran_format(&take(0, 16))?;
    let indfmt = parse_fortran_format(&take(16, 32))?;
    let valfmt = if value_kind == 'R' {
        Some(parse_fortran_format(&take(32, 52))?)
    } else {
        None
    };
    if rhscrd > 0 {
        let _rhs_line = lines.next().ok_or_else(|| perr("missing line 5"))??;
    }

    let ptr: Vec<usize> = read_fields(&mut lines, ptrfmt, ncol + 1, |f| {
        f.parse::<usize>().map_err(|_| perr("bad pointer"))
    })?;
    let idx: Vec<usize> = read_fields(&mut lines, indfmt, nnz, |f| {
        f.parse::<usize>().map_err(|_| perr("bad row index"))
    })?;
    let vals: Vec<f64> = match valfmt {
        Some(fmt) => read_fields(&mut lines, fmt, nnz, |f| {
            let s = f.replace(['D', 'd'], "E");
            s.parse::<f64>()
                .map_err(|_| perr(format!("bad value `{f}`")))
        })?,
        None => vec![1.0; nnz],
    };

    // assemble (1-based pointers/indices)
    let mut coo = CooMatrix::with_capacity(nrow, ncol, nnz * 2);
    for j in 0..ncol {
        let s = ptr[j]
            .checked_sub(1)
            .ok_or_else(|| perr(format!("zero pointer for column {j}")))?;
        let e = ptr[j + 1]
            .checked_sub(1)
            .ok_or_else(|| perr(format!("zero pointer for column {}", j + 1)))?;
        if e < s || e > nnz {
            return Err(perr(format!("bad pointer range for column {j}")));
        }
        for p in s..e {
            let i = idx[p]
                .checked_sub(1)
                .ok_or_else(|| perr("zero row index".to_string()))?;
            if i >= nrow {
                return Err(perr(format!("row index {} out of range", idx[p])));
            }
            let v = vals[p];
            coo.push(i, j, v);
            if i != j {
                match symmetry {
                    'S' | 'R' => coo.push(j, i, v), // symmetric (R = rectangular won't hit)
                    'Z' => coo.push(j, i, -v),      // skew
                    _ => {}
                }
            }
        }
    }
    Ok(coo.to_csc())
}

/// Read a Harwell–Boeing file from disk.
pub fn read_harwell_boeing_file(path: impl AsRef<std::path::Path>) -> Result<CscMatrix, HbError> {
    read_harwell_boeing(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fortran_formats_parse() {
        assert_eq!(
            parse_fortran_format("(16I5)").unwrap(),
            FortranFormat {
                count: 16,
                width: 5
            }
        );
        assert_eq!(
            parse_fortran_format("(10E12.4)").unwrap(),
            FortranFormat {
                count: 10,
                width: 12
            }
        );
        assert_eq!(
            parse_fortran_format("(1P,4E20.12)").unwrap(),
            FortranFormat {
                count: 4,
                width: 20
            }
        );
        assert_eq!(
            parse_fortran_format(" (4D25.16) ").unwrap(),
            FortranFormat {
                count: 4,
                width: 25
            }
        );
        assert_eq!(
            parse_fortran_format("(I8)").unwrap(),
            FortranFormat { count: 1, width: 8 }
        );
        assert!(parse_fortran_format("(XYZ)").is_err());
    }

    /// A hand-written RUA file:
    /// A = [ 1.0   0    2.0 ]
    ///     [ 0    3.0   0   ]
    ///     [ 4.0   0   5.0  ]
    fn sample_rua() -> String {
        let mut s = String::new();
        s.push_str(
            "Sample matrix                                                           SAMP\n",
        );
        s.push_str("             3             1             1             1             0\n");
        s.push_str("RUA                        3             3             5             0\n");
        s.push_str("(4I5)           (5I5)           (5E12.4)\n");
        // pointers: cols start at 1, 3, 4; end 6 (1-based)
        s.push_str("    1    3    4    6\n");
        // row indices per column: col1: 1,3; col2: 2; col3: 1,3
        s.push_str("    1    3    2    1    3\n");
        // values
        s.push_str("  1.0000E+00  4.0000E+00  3.0000E+00  2.0000E+00  5.0000E+00\n");
        s
    }

    #[test]
    fn reads_rua() {
        let a = read_harwell_boeing(sample_rua().as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn reads_rsa_mirrors() {
        let mut s = String::new();
        s.push_str(
            "Symmetric sample                                                        SYMM\n",
        );
        s.push_str("             3             1             1             1\n");
        s.push_str("RSA                        2             2             3             0\n");
        s.push_str("(3I5)           (3I5)           (3D12.4)\n");
        s.push_str("    1    3    4\n");
        s.push_str("    1    2    2\n");
        s.push_str("  2.0000D+00 -1.0000D+00  2.0000D+00\n");
        let a = read_harwell_boeing(s.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 1), 2.0);
    }

    #[test]
    fn reads_pattern_matrices() {
        let mut s = String::new();
        s.push_str(
            "Pattern sample                                                          PATT\n",
        );
        s.push_str("             2             1             1             0\n");
        s.push_str("PUA                        2             2             2             0\n");
        s.push_str("(3I5)           (3I5)\n");
        s.push_str("    1    2    3\n");
        s.push_str("    1    2\n");
        let a = read_harwell_boeing(s.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn fixed_width_fields_without_spaces() {
        // widths matter: "(2I3)" packs "  1  3" as fields "  1", "  3"
        let mut s = String::new();
        s.push_str(
            "Tight fields                                                            TGHT\n",
        );
        s.push_str("             2             1             1             1\n");
        s.push_str("RUA                        2             2             2             0\n");
        s.push_str("(3I3)           (2I3)           (2E10.3)\n");
        s.push_str("  1  2  3\n");
        s.push_str("  1  2\n");
        s.push_str(" 1.500E+00-2.50E+000\n");
        let a = read_harwell_boeing(s.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(1, 1), -2.5);
    }

    #[test]
    fn rejects_elemental() {
        let mut s = sample_rua();
        s = s.replace("RUA", "RUE");
        assert!(read_harwell_boeing(s.as_bytes()).is_err());
    }

    #[test]
    fn pipeline_runs_on_hb_input() {
        let a = read_harwell_boeing(sample_rua().as_bytes()).unwrap();
        let b = a.matvec(&[1.0; 3]);
        let x = splu_core_free_solve(&a, &b);
        for (got, want) in x.iter().zip([1.0, 1.0, 1.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    /// Tiny local solve via the dense oracle (splu-core is a downstream
    /// crate; the full-pipeline HB test lives in `tests/`).
    fn splu_core_free_solve(a: &CscMatrix, b: &[f64]) -> Vec<f64> {
        splu_kernels::dense_solve(&a.to_dense(), b).unwrap()
    }
}
