//! The benchmark matrix suite (synthetic stand-ins for Table 1).
//!
//! The paper evaluates on sixteen nonsymmetric matrices. The original
//! Harwell–Boeing files are not distributable with this workspace, so each
//! is realized as a deterministic synthetic matrix of the same structural
//! class, order and density (see `DESIGN.md` §3 for the substitution
//! argument). Orders match the paper exactly at `scale = 1.0`; a `scale`
//! parameter shrinks the large matrices proportionally so the full
//! experiment grid also runs quickly on small hosts (harnesses print the
//! scale they used).

use crate::csc::CscMatrix;
use crate::gen::{self, ValueModel};

/// Structural class of a suite matrix, with generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatrixKind {
    /// 2D stencil (`nx`, `ny`, convection).
    Grid2d(usize, usize, f64),
    /// 3D stencil (`nx`, `ny`, `nz`, convection).
    Grid3d(usize, usize, usize, f64),
    /// Random pattern (`n`, avg entries/col, pattern-symmetry fraction).
    Random(usize, usize, f64),
    /// Block fluid-flow (`nblocks`, `min_bs`, `max_bs`, extra coupling).
    BlockFluid(usize, usize, usize, f64),
    /// Banded FEM (`n`, half bandwidth, density).
    Banded(usize, usize, f64),
    /// Dense (`n`).
    Dense(usize),
    /// Power-law circuit netlist (`n`, avg degree, mirror fraction) —
    /// preferential-attachment pattern with hub columns (see
    /// [`gen::power_law_circuit`]).
    Circuit(usize, usize, f64),
    /// Hierarchical circuit (`nsub`, `sub_n`, `border`, avg degree,
    /// mirror fraction): bordered block-diagonal power-law subcircuits
    /// feeding global rails (see [`gen::hier_circuit`]).
    HierCircuit(usize, usize, usize, usize, f64),
    /// Hierarchical 3D mesh (`nsub`, `nx`, `ny`, `nz`, `border`,
    /// convection): bordered block-diagonal 7-point subdomains feeding
    /// global rails (see [`gen::hier_grid3d`]).
    HierGrid3d(usize, usize, usize, usize, usize, f64),
}

/// A named suite matrix: the paper's identifier plus the synthetic spec.
#[derive(Debug, Clone, Copy)]
pub struct MatrixSpec {
    /// The paper's matrix identifier (Table 1).
    pub name: &'static str,
    /// Order reported in the paper (for reference / reporting).
    pub paper_n: usize,
    /// nnz(A) reported in the paper (for reference / reporting).
    pub paper_nnz: usize,
    /// Generator class and parameters at `scale = 1.0`.
    pub kind: MatrixKind,
    /// Deterministic seed.
    pub seed: u64,
}

impl MatrixSpec {
    /// Build the matrix at full (paper) scale.
    pub fn build(&self) -> CscMatrix {
        self.build_scaled(1.0)
    }

    /// Build a proportionally shrunk instance: linear dimensions are scaled
    /// by `scale.cbrt()`/`scale.sqrt()` as appropriate so the *order*
    /// scales by roughly `scale`. `scale = 1.0` reproduces the paper order.
    pub fn build_scaled(&self, scale: f64) -> CscMatrix {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let vm = ValueModel {
            diag_scale: 1.0,
            seed: self.seed,
        };
        let sdim = |d: usize, f: f64| ((d as f64 * f).round() as usize).max(2);
        match self.kind {
            MatrixKind::Grid2d(nx, ny, c) => {
                let f = scale.sqrt();
                gen::grid2d(sdim(nx, f), sdim(ny, f), c, vm)
            }
            MatrixKind::Grid3d(nx, ny, nz, c) => {
                let f = scale.cbrt();
                gen::grid3d(sdim(nx, f), sdim(ny, f), sdim(nz, f), c, vm)
            }
            MatrixKind::Random(n, per_col, sym) => {
                gen::random_sparse(sdim(n, scale), per_col, sym, vm)
            }
            MatrixKind::BlockFluid(nb, lo, hi, x) => {
                gen::block_fluid(sdim(nb, scale), lo, hi, x, vm)
            }
            MatrixKind::Banded(n, bw, d) => gen::banded(sdim(n, scale), bw, d, vm),
            MatrixKind::Dense(n) => gen::dense_random(sdim(n, scale), vm),
            MatrixKind::Circuit(n, deg, sym) => {
                gen::power_law_circuit(sdim(n, scale), deg, sym, vm)
            }
            // The hierarchical kinds shrink by dropping whole subdomains
            // (keeping each subdomain's interior structure intact) and
            // scale the shared border like a separator (∝ √scale).
            MatrixKind::HierCircuit(nsub, sub_n, border, deg, sym) => gen::hier_circuit(
                sdim(nsub, scale),
                sub_n,
                sdim(border, scale.sqrt()),
                deg,
                sym,
                vm,
            ),
            MatrixKind::HierGrid3d(nsub, nx, ny, nz, border, c) => gen::hier_grid3d(
                sdim(nsub, scale),
                nx,
                ny,
                nz,
                sdim(border, scale.sqrt()),
                c,
                vm,
            ),
        }
    }
}

/// The small/medium matrices of Table 2 & 3 (fit comfortably everywhere).
pub const SMALL: &[&str] = &[
    "sherman5", "lnsp3937", "lns3937", "sherman3", "jpwh991", "orsreg1", "saylr4",
];

/// The large matrices of Tables 5 & 6.
pub const LARGE: &[&str] = &[
    "goodwin", "e40r0100", "ex11", "raefsky4", "inaccura", "af23560", "vavasis3",
];

/// The n = 50k–500k extension tier (beyond anything in Table 1): the
/// bordered hierarchical matrices — power-law circuits and 3D 7-point
/// meshes — where elimination-subtree parallelism is structural, not
/// incidental. Benchmarked by `splu bench-lu --suite large` through the
/// machine model (the matrices are far too large for wall-clock
/// thread-simulated runs on a 1-core host). Built with the *natural*
/// ordering: the generators emit subdomains-then-border directly, which
/// min-degree would only scramble (and its quotient-graph pass costs
/// minutes at n = 200k+).
pub const XLARGE: &[&str] = &["hier50k", "hiergrid50k", "hier200k", "hier500k"];

/// Single shrunk instance of the extension tier for CI smoke runs
/// (`splu bench-lu --suite large-smoke`).
pub const XLARGE_SMOKE: &[&str] = &["hier20k"];

/// The full suite, in Table 1 order, plus the two extra matrices of
/// Table 2 (`b33_5600`, `dense1000`).
pub fn all() -> Vec<MatrixSpec> {
    vec![
        MatrixSpec {
            name: "sherman5",
            paper_n: 3312,
            paper_nnz: 20793,
            // 16*23*9 = 3312, oil reservoir, 3D stencil
            kind: MatrixKind::Grid3d(16, 23, 9, 0.6),
            seed: 1,
        },
        MatrixSpec {
            name: "lnsp3937",
            paper_n: 3937,
            paper_nnz: 25407,
            kind: MatrixKind::Random(3937, 5, 0.55),
            seed: 2,
        },
        MatrixSpec {
            name: "lns3937",
            paper_n: 3937,
            paper_nnz: 25407,
            kind: MatrixKind::Random(3937, 5, 0.75),
            seed: 3,
        },
        MatrixSpec {
            name: "sherman3",
            paper_n: 5005,
            paper_nnz: 20033,
            // 35*13*11 = 5005
            kind: MatrixKind::Grid3d(35, 13, 11, 0.4),
            seed: 4,
        },
        MatrixSpec {
            name: "jpwh991",
            paper_n: 991,
            paper_nnz: 6027,
            kind: MatrixKind::Random(991, 5, 0.9),
            seed: 5,
        },
        MatrixSpec {
            name: "orsreg1",
            paper_n: 2205,
            paper_nnz: 14133,
            // 21*21*5 = 2205
            kind: MatrixKind::Grid3d(21, 21, 5, 0.5),
            seed: 6,
        },
        MatrixSpec {
            name: "saylr4",
            paper_n: 3564,
            paper_nnz: 22316,
            // 54*66 = 3564
            kind: MatrixKind::Grid2d(54, 66, 0.5),
            seed: 7,
        },
        MatrixSpec {
            name: "goodwin",
            paper_n: 7320,
            paper_nnz: 324772,
            kind: MatrixKind::BlockFluid(520, 10, 18, 0.3),
            seed: 8,
        },
        MatrixSpec {
            name: "e40r0100",
            paper_n: 17281,
            paper_nnz: 553562,
            kind: MatrixKind::BlockFluid(1350, 9, 16, 0.25),
            seed: 9,
        },
        MatrixSpec {
            name: "ex11",
            paper_n: 16614,
            paper_nnz: 1096948,
            kind: MatrixKind::BlockFluid(1050, 12, 19, 0.45),
            seed: 10,
        },
        MatrixSpec {
            name: "raefsky4",
            paper_n: 19779,
            paper_nnz: 1316789,
            kind: MatrixKind::BlockFluid(1230, 13, 19, 0.4),
            seed: 11,
        },
        MatrixSpec {
            name: "inaccura",
            paper_n: 16146,
            paper_nnz: 1015156,
            // structures problem: dense local blocks + long-range coupling
            kind: MatrixKind::BlockFluid(1010, 13, 19, 0.5),
            seed: 12,
        },
        MatrixSpec {
            name: "af23560",
            paper_n: 23560,
            paper_nnz: 460598,
            kind: MatrixKind::Banded(23560, 18, 0.52),
            seed: 13,
        },
        MatrixSpec {
            name: "vavasis3",
            paper_n: 41092,
            paper_nnz: 1683902,
            // 2D PDE discretization: block structure with mesh coupling
            kind: MatrixKind::BlockFluid(2570, 13, 19, 0.35),
            seed: 14,
        },
        MatrixSpec {
            name: "b33_5600",
            paper_n: 5600,
            paper_nnz: 250000,
            kind: MatrixKind::Banded(5600, 42, 0.52),
            seed: 15,
        },
        MatrixSpec {
            name: "dense1000",
            paper_n: 1000,
            paper_nnz: 1_000_000,
            kind: MatrixKind::Dense(1000),
            seed: 16,
        },
        // Workspace extension (not a Table 1 matrix): a power-law
        // circuit netlist at post-layout scale, the structural class of
        // the serving workload's circuit-simulation tenants and the
        // first step toward the large-matrix suite (ROADMAP item 1).
        MatrixSpec {
            name: "circuit20k",
            paper_n: 20000,
            paper_nnz: 110000,
            kind: MatrixKind::Circuit(20000, 4, 0.9),
            seed: 17,
        },
        // The n = 50k–500k extension tier ([`XLARGE`]): hierarchical
        // (bordered block-diagonal) matrices whose block elimination
        // trees have dozens-to-hundreds of independent subtrees — the
        // structural class the task-DAG runtime exists for. `paper_n` /
        // `paper_nnz` record the generated order and nnz (there is no
        // paper counterpart).
        MatrixSpec {
            name: "hier20k",
            paper_n: 19888,
            paper_nnz: 172320,
            kind: MatrixKind::HierCircuit(32, 620, 48, 4, 0.9),
            seed: 42,
        },
        MatrixSpec {
            name: "hier50k",
            paper_n: 49800,
            paper_nnz: 432800,
            kind: MatrixKind::HierCircuit(64, 777, 72, 4, 0.9),
            seed: 42,
        },
        MatrixSpec {
            name: "hiergrid50k",
            paper_n: 49224,
            paper_nnz: 318467,
            kind: MatrixKind::HierGrid3d(64, 12, 8, 8, 72, 0.5),
            seed: 42,
        },
        MatrixSpec {
            name: "hier200k",
            paper_n: 199008,
            paper_nnz: 1739773,
            kind: MatrixKind::HierCircuit(256, 777, 96, 4, 0.9),
            seed: 42,
        },
        MatrixSpec {
            name: "hier500k",
            paper_n: 499840,
            paper_nnz: 4379600,
            kind: MatrixKind::HierCircuit(512, 976, 128, 4, 0.9),
            seed: 42,
        },
    ]
}

/// Look up a suite matrix by the paper's identifier.
pub fn by_name(name: &str) -> Option<MatrixSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_unique_and_lookup_works() {
        let specs = all();
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name, b.name);
            }
            assert_eq!(by_name(a.name).unwrap().paper_n, a.paper_n);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn small_matrices_match_paper_order_exactly() {
        for name in SMALL {
            let spec = by_name(name).unwrap();
            let a = spec.build();
            assert_eq!(
                a.nrows(),
                spec.paper_n,
                "{name}: order should match paper at scale 1"
            );
            assert!(a.has_zero_free_diagonal(), "{name}");
        }
    }

    #[test]
    fn small_matrices_nnz_in_right_ballpark() {
        for name in SMALL {
            let spec = by_name(name).unwrap();
            let a = spec.build();
            let ratio = a.nnz() as f64 / spec.paper_nnz as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{name}: nnz {} vs paper {} (ratio {ratio:.2})",
                a.nnz(),
                spec.paper_nnz
            );
        }
    }

    #[test]
    fn scaling_shrinks_order_proportionally() {
        let spec = by_name("saylr4").unwrap();
        let half = spec.build_scaled(0.25);
        let full = spec.build();
        let ratio = half.nrows() as f64 / full.nrows() as f64;
        assert!((0.15..0.35).contains(&ratio), "ratio {ratio}");
        assert!(half.has_zero_free_diagonal());
    }

    #[test]
    fn dense1000_is_dense() {
        let a = by_name("dense1000").unwrap().build_scaled(0.05);
        assert_eq!(a.nnz(), a.nrows() * a.ncols());
    }

    #[test]
    fn circuit_extension_builds_scaled() {
        let spec = by_name("circuit20k").unwrap();
        let a = spec.build_scaled(0.05);
        assert!(a.nrows() >= 900 && a.nrows() <= 1100);
        assert!(a.has_zero_free_diagonal());
        // hub columns survive scaling
        let avg = a.nnz() as f64 / a.ncols() as f64;
        let max_col = (0..a.ncols())
            .map(|j| a.col_ptr()[j + 1] - a.col_ptr()[j])
            .max()
            .unwrap();
        assert!(max_col as f64 > 4.0 * avg, "no hub: {max_col} vs {avg:.1}");
    }

    #[test]
    fn xlarge_tier_listed_and_orders_recorded() {
        for name in XLARGE_SMOKE.iter().chain(XLARGE) {
            assert!(by_name(name).is_some(), "{name} missing from suite");
        }
        // build the two cheap representatives and check the recorded
        // order/nnz are the generated ones (the rest share generators)
        for name in ["hier20k", "hiergrid50k"] {
            let spec = by_name(name).unwrap();
            let a = spec.build();
            assert_eq!(a.ncols(), spec.paper_n, "{name} order");
            assert_eq!(a.nnz(), spec.paper_nnz, "{name} nnz");
            assert!(a.has_zero_free_diagonal(), "{name}");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let s = by_name("jpwh991").unwrap();
        assert_eq!(s.build(), s.build());
    }
}
