//! Coordinate (triplet) format builder.

use crate::csc::CscMatrix;

/// A sparse matrix under construction, as a list of `(row, col, value)`
/// triplets. Duplicate coordinates are *summed* on conversion to CSC, the
/// usual finite-element assembly convention.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// An empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// An empty builder with room reserved for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of triplets recorded so far (before duplicate merging).
    pub fn ntriplets(&self) -> usize {
        self.vals.len()
    }

    /// Record `A[i, j] += v`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows, "row {i} out of bounds ({})", self.nrows);
        assert!(j < self.ncols, "col {j} out of bounds ({})", self.ncols);
        self.rows.push(i as u32);
        self.cols.push(j as u32);
        self.vals.push(v);
    }

    /// Convert to CSC, summing duplicates and dropping exact zeros that
    /// result from cancellation only if `drop_zeros` is set. Entries pushed
    /// as literal `0.0` are *kept* by default because symbolic codes treat
    /// explicitly stored zeros as structural nonzeros.
    pub fn to_csc(&self) -> CscMatrix {
        self.to_csc_inner(false)
    }

    /// Like [`CooMatrix::to_csc`], but drops entries whose merged value is
    /// exactly zero.
    pub fn to_csc_drop_zeros(&self) -> CscMatrix {
        self.to_csc_inner(true)
    }

    fn to_csc_inner(&self, drop_zeros: bool) -> CscMatrix {
        // Counting sort by column, then sort rows within each column and
        // merge duplicates.
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let mut next = counts.clone();
        let nnz = self.vals.len();
        let mut ri = vec![0u32; nnz];
        let mut vv = vec![0.0f64; nnz];
        for k in 0..nnz {
            let c = self.cols[k] as usize;
            let slot = next[c];
            next[c] += 1;
            ri[slot] = self.rows[k];
            vv[slot] = self.vals[k];
        }
        // Sort each column segment by row and merge duplicates in place.
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut out_ri: Vec<u32> = Vec::with_capacity(nnz);
        let mut out_vv: Vec<f64> = Vec::with_capacity(nnz);
        let mut idx: Vec<usize> = Vec::new();
        for j in 0..self.ncols {
            let (s, e) = (counts[j], counts[j + 1]);
            idx.clear();
            idx.extend(s..e);
            idx.sort_unstable_by_key(|&k| ri[k]);
            let mut p = 0;
            while p < idx.len() {
                let row = ri[idx[p]];
                let mut v = vv[idx[p]];
                let mut q = p + 1;
                while q < idx.len() && ri[idx[q]] == row {
                    v += vv[idx[q]];
                    q += 1;
                }
                if !(drop_zeros && v == 0.0) {
                    out_ri.push(row);
                    out_vv.push(v);
                }
                p = q;
            }
            col_ptr[j + 1] = out_ri.len();
        }
        CscMatrix::from_parts(self.nrows, self.ncols, col_ptr, out_ri, out_vv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_gives_empty_csc() {
        let a = CooMatrix::new(3, 4).to_csc();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 4);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 0, 2.0);
        c.push(1, 1, 5.0);
        let a = c.to_csc();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 5.0);
    }

    #[test]
    fn rows_sorted_within_columns() {
        let mut c = CooMatrix::new(4, 1);
        c.push(3, 0, 3.0);
        c.push(0, 0, 0.5);
        c.push(2, 0, 2.0);
        let a = c.to_csc();
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[0, 2, 3]);
        assert_eq!(vals, &[0.5, 2.0, 3.0]);
    }

    #[test]
    fn explicit_zero_kept_cancellation_droppable() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 0.0); // explicit zero — structural
        c.push(1, 0, 1.0);
        c.push(1, 0, -1.0); // cancels
        assert_eq!(c.to_csc().nnz(), 2);
        assert_eq!(c.to_csc_drop_zeros().nnz(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        CooMatrix::new(2, 2).push(2, 0, 1.0);
    }
}
