//! Synthetic sparse matrix generators.
//!
//! The paper evaluates on Harwell–Boeing matrices from oil-reservoir
//! simulation (`orsreg1`, `saylr4`, `sherman3/5`), circuit simulation
//! (`jpwh991`), fluid flow (`lnsp3937`, `lns3937`, `goodwin`, `e40r0100`,
//! `ex11`, `raefsky4`), structures/FEM (`b33_5600`, `af23560`), and PDE
//! solvers (`vavasis3`), plus a dense matrix. These generators produce
//! matrices of the same *structural classes* — stencil graphs, banded FEM
//! patterns, block fluid-flow coupling, random circuit patterns — with
//! deterministic seeds, so every experiment in the workspace is
//! reproducible without shipping the original files (see `DESIGN.md` §3).
//!
//! All generators guarantee a structurally zero-free diagonal (the paper
//! permutes rows with Duff's transversal to establish one; our matrices
//! start with one, and the transversal code is exercised by dedicated tests
//! that destroy the diagonal first).

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::rng::SmallRng;

/// Value model shared by the generators.
///
/// Off-diagonal values are uniform in `[-1, 1]`; the diagonal value is
/// `diag_scale * (1 + u)` with `u` uniform in `[0, 1]`, so diagonals are
/// nonzero but *not* dominant by default — partial pivoting stays
/// genuinely exercised (rows do get swapped), while pivot growth remains
/// moderate.
#[derive(Debug, Clone, Copy)]
pub struct ValueModel {
    /// Scale of diagonal entries relative to off-diagonals.
    pub diag_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ValueModel {
    fn default() -> Self {
        Self {
            diag_scale: 1.0,
            seed: 0xC0FFEE,
        }
    }
}

impl ValueModel {
    fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }
}

fn offdiag(rng: &mut SmallRng) -> f64 {
    loop {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if v.abs() > 1e-3 {
            return v;
        }
    }
}

fn diagval(rng: &mut SmallRng, vm: &ValueModel) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    vm.diag_scale * (1.0 + u) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 }
}

/// 2D convection–diffusion operator on an `nx × ny` grid (5-point stencil),
/// the structural class of the oil-reservoir matrices (`orsreg1`, `saylr4`,
/// `sherman*`). `convection` skews the east/west and north/south couplings,
/// making the *values* nonsymmetric while the pattern stays symmetric
/// (symmetry number 1.0, like `sherman3`/`orsreg1`/`saylr4` in Table 1).
pub fn grid2d(nx: usize, ny: usize, convection: f64, vm: ValueModel) -> CscMatrix {
    let n = nx * ny;
    let mut rng = vm.rng();
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| x + y * nx;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, diagval(&mut rng, &vm) + 4.0 * vm.diag_scale);
            let c = offdiag(&mut rng);
            if x > 0 {
                coo.push(i, idx(x - 1, y), -1.0 - convection * c.abs());
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), -1.0 + convection * c.abs());
            }
            let c2 = offdiag(&mut rng);
            if y > 0 {
                coo.push(i, idx(x, y - 1), -1.0 - convection * c2.abs());
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), -1.0 + convection * c2.abs());
            }
        }
    }
    coo.to_csc()
}

/// 3D convection–diffusion operator on an `nx × ny × nz` grid (7-point
/// stencil) — the 3D reservoir / FEM volume class (`saylr4`-like density,
/// `ex11`-like provenance).
pub fn grid3d(nx: usize, ny: usize, nz: usize, convection: f64, vm: ValueModel) -> CscMatrix {
    let n = nx * ny * nz;
    let mut rng = vm.rng();
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, diagval(&mut rng, &vm) + 6.0 * vm.diag_scale);
                let mut couple = |xi: isize, yi: isize, zi: isize, rng: &mut SmallRng| {
                    if xi >= 0
                        && yi >= 0
                        && zi >= 0
                        && (xi as usize) < nx
                        && (yi as usize) < ny
                        && (zi as usize) < nz
                    {
                        let j = idx(xi as usize, yi as usize, zi as usize);
                        let skew = convection * offdiag(rng).abs();
                        let sign = if j < i { -1.0 - skew } else { -1.0 + skew };
                        coo.push(i, j, sign);
                    }
                };
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                couple(xi - 1, yi, zi, &mut rng);
                couple(xi + 1, yi, zi, &mut rng);
                couple(xi, yi - 1, zi, &mut rng);
                couple(xi, yi + 1, zi, &mut rng);
                couple(xi, yi, zi - 1, &mut rng);
                couple(xi, yi, zi + 1, &mut rng);
            }
        }
    }
    coo.to_csc()
}

/// Random sparse matrix with a target *pattern* symmetry: each off-diagonal
/// entry `(i, j)` is mirrored to `(j, i)` with probability `sym_frac`.
/// This is the circuit-simulation class (`jpwh991`: symmetry ≈ 1, random
/// pattern; more nonsymmetric variants model `lnsp3937`-style matrices).
pub fn random_sparse(n: usize, avg_per_col: usize, sym_frac: f64, vm: ValueModel) -> CscMatrix {
    assert!(n > 0);
    let mut rng = vm.rng();
    let mut coo = CooMatrix::with_capacity(n, n, n * (avg_per_col + 1));
    for j in 0..n {
        coo.push(j, j, diagval(&mut rng, &vm));
        // average avg_per_col off-diagonals per column
        let cnt = rng.gen_range(avg_per_col.saturating_sub(1)..=avg_per_col + 1);
        for _ in 0..cnt {
            let i = rng.gen_range(0..n);
            if i == j {
                continue;
            }
            let v = offdiag(&mut rng);
            coo.push(i, j, v);
            if rng.gen_bool(sym_frac) {
                coo.push(j, i, offdiag(&mut rng));
            }
        }
    }
    coo.to_csc()
}

/// Block "fluid-flow" structure: a block-tridiagonal backbone of variable
/// block sizes with extra random long-range block couplings — the
/// structural class of `goodwin` / `e40r0100` / `raefsky4` (FEM fluid
/// meshes with dense local blocks).
pub fn block_fluid(
    nblocks: usize,
    min_bs: usize,
    max_bs: usize,
    extra_coupling: f64,
    vm: ValueModel,
) -> CscMatrix {
    assert!(min_bs >= 1 && max_bs >= min_bs);
    let mut rng = vm.rng();
    let sizes: Vec<usize> = (0..nblocks)
        .map(|_| rng.gen_range(min_bs..=max_bs))
        .collect();
    let starts: Vec<usize> = sizes
        .iter()
        .scan(0usize, |acc, &s| {
            let v = *acc;
            *acc += s;
            Some(v)
        })
        .collect();
    let n: usize = sizes.iter().sum();
    let mut coo = CooMatrix::with_capacity(n, n, n * (max_bs + 4));

    let dense_block = |coo: &mut CooMatrix,
                       bi: usize,
                       bj: usize,
                       density: f64,
                       rng: &mut SmallRng,
                       vm: &ValueModel| {
        for jj in 0..sizes[bj] {
            for ii in 0..sizes[bi] {
                let (i, j) = (starts[bi] + ii, starts[bj] + jj);
                if i == j {
                    coo.push(i, j, diagval(rng, vm) + vm.diag_scale);
                } else if rng.gen_bool(density) {
                    coo.push(i, j, offdiag(rng));
                }
            }
        }
    };

    for b in 0..nblocks {
        dense_block(&mut coo, b, b, 0.9, &mut rng, &vm);
        if b + 1 < nblocks {
            dense_block(&mut coo, b + 1, b, 0.35, &mut rng, &vm);
            dense_block(&mut coo, b, b + 1, 0.35, &mut rng, &vm);
        }
        // occasional long-range coupling (mesh folds / periodic boundaries)
        if extra_coupling > 0.0 && rng.gen_bool(extra_coupling.min(1.0)) {
            let other = rng.gen_range(0..nblocks);
            if other != b {
                dense_block(&mut coo, other, b, 0.15, &mut rng, &vm);
            }
        }
    }
    coo.to_csc()
}

/// Banded matrix with given half-bandwidth and in-band fill density — the
/// truncated-stiffness-matrix class (`b33_5600` is BCSSTK33 truncated;
/// `af23560` is a similar band structure).
pub fn banded(n: usize, half_bw: usize, density: f64, vm: ValueModel) -> CscMatrix {
    let mut rng = vm.rng();
    let mut coo = CooMatrix::with_capacity(n, n, n * (2 * half_bw + 1) / 2);
    for j in 0..n {
        coo.push(j, j, diagval(&mut rng, &vm) + vm.diag_scale);
        let lo = j.saturating_sub(half_bw);
        let hi = (j + half_bw).min(n - 1);
        for i in lo..=hi {
            if i != j && rng.gen_bool(density) {
                coo.push(i, j, offdiag(&mut rng));
            }
        }
    }
    coo.to_csc()
}

/// Fully dense random matrix of order `n` (the paper's `dense1000`).
pub fn dense_random(n: usize, vm: ValueModel) -> CscMatrix {
    let mut rng = vm.rng();
    let mut coo = CooMatrix::with_capacity(n, n, n * n);
    for j in 0..n {
        for i in 0..n {
            let v = if i == j {
                diagval(&mut rng, &vm) + vm.diag_scale
            } else {
                offdiag(&mut rng)
            };
            coo.push(i, j, v);
        }
    }
    coo.to_csc()
}

/// Power-law "circuit netlist" pattern via preferential attachment — the
/// post-layout circuit-simulation class (HYLU-style workloads): most
/// nodes touch a handful of neighbours, while a few hub nodes (ground /
/// supply rails, clock trees) accumulate degrees far above the mean, so
/// column counts follow a heavy-tailed (power-law) distribution instead
/// of the bounded stencil degrees of `grid2d`/`grid3d`.
///
/// Construction: nodes join one at a time; node `j` attaches `~avg_deg`
/// edges to earlier nodes sampled proportionally to their current degree
/// (Barabási–Albert preferential attachment, implemented by sampling
/// from the flat edge-endpoint list). Each attachment stamps `A[j, t]`
/// and, with probability `sym_frac`, the mirrored `A[t, j]` — circuit
/// conductance stamps are structurally symmetric, so `sym_frac` close to
/// 1 matches netlist matrices (`jpwh991` has symmetry ≈ 1). The diagonal
/// is always present (zero-free) and scaled up with node degree, the way
/// a node's self-conductance grows with its incident branches.
///
/// Deterministic in `vm.seed`; used by the serving-workload generator
/// (`splu-load`) and the benchmark suite (`circuit20k`).
pub fn power_law_circuit(n: usize, avg_deg: usize, sym_frac: f64, vm: ValueModel) -> CscMatrix {
    assert!(n >= 2, "power_law_circuit needs n >= 2");
    let avg_deg = avg_deg.max(1);
    let mut rng = vm.rng();
    let mut coo = CooMatrix::with_capacity(n, n, n * (avg_deg + 1) * 2);
    // Flat endpoint list: each stamped edge pushes both endpoints, so a
    // uniform draw from it is a degree-proportional draw over nodes.
    let mut endpoints: Vec<u32> = Vec::with_capacity(n * avg_deg * 2);
    let mut degree: Vec<u32> = vec![0; n];
    // Small seed chain so the first draws have endpoints to sample.
    let m0 = (avg_deg + 1).min(n);
    for j in 1..m0 {
        endpoints.push(j as u32 - 1);
        endpoints.push(j as u32);
        degree[j - 1] += 1;
        degree[j] += 1;
        coo.push(j, j - 1, offdiag(&mut rng));
        if rng.gen_bool(sym_frac) {
            coo.push(j - 1, j, offdiag(&mut rng));
        }
    }
    let mut targets: Vec<usize> = Vec::with_capacity(avg_deg + 2);
    for j in m0..n {
        let k = rng
            .gen_range(avg_deg.saturating_sub(1)..=avg_deg + 1)
            .max(1);
        targets.clear();
        // A couple of retries per slot keep the expected attachment
        // count at k without risking long duplicate-rejection loops on
        // hub-heavy endpoint lists.
        let mut tries = 4 * k;
        while targets.len() < k && tries > 0 {
            tries -= 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())] as usize;
            if t != j && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            endpoints.push(j as u32);
            endpoints.push(t as u32);
            degree[j] += 1;
            degree[t] += 1;
            coo.push(j, t, offdiag(&mut rng));
            if rng.gen_bool(sym_frac) {
                coo.push(t, j, offdiag(&mut rng));
            }
        }
    }
    // Degree-scaled diagonal: hubs get self-conductance proportional to
    // their incident branch count, keeping pivoting realistic.
    for j in 0..n {
        let d = diagval(&mut rng, &vm);
        coo.push(
            j,
            j,
            d + d.signum() * vm.diag_scale * (1.0 + degree[j] as f64).sqrt(),
        );
    }
    coo.to_csc()
}

/// Hierarchical circuit: `nsub` independent power-law subcircuits (see
/// [`power_law_circuit`]) plus a small border of `border` global-rail
/// columns each subcircuit feeds into — the bordered block-diagonal form
/// large circuit matrices take after hierarchical partitioning, and the
/// structural class where elimination-subtree parallelism is real.
///
/// The rail coupling is one-directional: a tapped node *row* carries an
/// entry in the rail *column* (the node equation senses the rail), but
/// rail rows stay confined to the border. That keeps the candidate-pivot
/// row sets of distinct subcircuits disjoint, so the static (S\*)
/// structure — which must cover every pivot sequence — remains exactly
/// block-separable: the block elimination tree has one independent
/// subtree per subcircuit under the rail separator, no matter how rows
/// are interchanged inside a block. Two-way taps would let one rail row
/// union every subcircuit's structure together and collapse the tree to
/// a chain (and the predicted fill to near-dense).
pub fn hier_circuit(
    nsub: usize,
    sub_n: usize,
    border: usize,
    avg_deg: usize,
    sym_frac: f64,
    vm: ValueModel,
) -> CscMatrix {
    bordered_block_diagonal(nsub, sub_n, border, avg_deg + 2, vm, |sub_vm| {
        power_law_circuit(sub_n, avg_deg, sym_frac, sub_vm)
    })
}

/// Hierarchical 3D mesh: `nsub` independent `nx × ny × nz` 7-point
/// convection-diffusion subdomains (see [`grid3d`]) feeding the same
/// one-directional global-rail border as [`hier_circuit`] — the
/// domain-decomposed form of a large 3D PDE problem (each subdomain is
/// one processor's mesh chunk, the rails are interface aggregates).
///
/// A *monolithic* 3D grid is the worst case for the static S\* structure
/// (its nested-dissection separators union into near-dense trailing
/// blocks once candidate pivot rows are folded in), so the n≥50k tier
/// uses this bordered form: the S\* structure stays block-separable and
/// the block elimination tree keeps one independent subtree per
/// subdomain, exactly as in `hier_circuit` — while each subtree retains
/// genuine 3D 7-point interior structure.
pub fn hier_grid3d(
    nsub: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    border: usize,
    convection: f64,
    vm: ValueModel,
) -> CscMatrix {
    bordered_block_diagonal(nsub, nx * ny * nz, border, 9, vm, |sub_vm| {
        grid3d(nx, ny, nz, convection, sub_vm)
    })
}

/// Shared bordered block-diagonal assembly: embed `nsub` independently
/// generated `sub_n × sub_n` blocks on the diagonal, tap each block into
/// `border` trailing global-rail columns (row = block node, column =
/// rail — one-directional, see [`hier_circuit`] for why), then close the
/// border with a bidirectional rail chain and strong diagonals. Block
/// `b` is generated from a per-block seed derived from `vm.seed`, so the
/// whole matrix is deterministic.
fn bordered_block_diagonal(
    nsub: usize,
    sub_n: usize,
    border: usize,
    cap_per_row: usize,
    vm: ValueModel,
    mut make_block: impl FnMut(ValueModel) -> CscMatrix,
) -> CscMatrix {
    assert!(nsub >= 1 && sub_n >= 2);
    let n = nsub * sub_n + border;
    let mut rng = vm.rng();
    let mut coo = CooMatrix::with_capacity(n, n, n * cap_per_row);
    for b in 0..nsub {
        let off = b * sub_n;
        let sub_vm = ValueModel {
            diag_scale: vm.diag_scale,
            seed: vm.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(b as u64 + 1),
        };
        let sub = make_block(sub_vm);
        for j in 0..sub_n {
            for p in sub.col_ptr()[j]..sub.col_ptr()[j + 1] {
                coo.push(
                    sub.row_indices()[p] as usize + off,
                    j + off,
                    sub.values()[p],
                );
            }
        }
        // Each rail taps one or two nodes of this block (row = node,
        // column = rail): duplicates sum harmlessly in `to_csc`.
        for r in 0..border {
            let rail = nsub * sub_n + r;
            for _ in 0..(1 + rng.gen_range(0..2usize)) {
                coo.push(off + rng.gen_range(0..sub_n), rail, offdiag(&mut rng));
            }
        }
    }
    // The border itself: a rail chain plus strong diagonals (a rail's
    // self-conductance aggregates every block tap).
    let b0 = nsub * sub_n;
    for r in 0..border {
        if r > 0 {
            coo.push(b0 + r - 1, b0 + r, offdiag(&mut rng));
            coo.push(b0 + r, b0 + r - 1, offdiag(&mut rng));
        }
        let d = diagval(&mut rng, &vm);
        coo.push(
            b0 + r,
            b0 + r,
            d + d.signum() * vm.diag_scale * (1.0 + nsub as f64).sqrt(),
        );
    }
    coo.to_csc()
}

/// Same sparsity pattern, fresh values: every entry of `a` is scaled by a
/// deterministic pseudo-random factor in `[0.5, 1.5]` drawn from `seed`.
/// Models the refactorization workloads of the solver service (Newton
/// steps, time-stepping): the pattern fingerprint is preserved while the
/// numerics change, so a cached analysis must still apply.
pub fn perturb_values(a: &CscMatrix, seed: u64) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x005e_ed0f_a15e);
    let values: Vec<f64> = a
        .values()
        .iter()
        .map(|&v| v * (1.0 + 0.5 * (2.0 * rng.next_f64() - 1.0)))
        .collect();
    CscMatrix::from_parts(
        a.nrows(),
        a.ncols(),
        a.col_ptr().to_vec(),
        a.row_indices().to_vec(),
        values,
    )
}

/// Zero out the stored values of column `j` while keeping the sparsity
/// pattern (the entries stay stored, as explicit zeros): the result is
/// numerically singular but shares `a`'s pattern fingerprint — the
/// solver service's singular-request workload, which must surface as a
/// typed `ZeroPivot` error rather than a panic.
pub fn zero_column_values(a: &CscMatrix, j: usize) -> CscMatrix {
    assert!(j < a.ncols());
    let mut values = a.values().to_vec();
    let (lo, hi) = (a.col_ptr()[j], a.col_ptr()[j + 1]);
    values[lo..hi].fill(0.0);
    CscMatrix::from_parts(
        a.nrows(),
        a.ncols(),
        a.col_ptr().to_vec(),
        a.row_indices().to_vec(),
        values,
    )
}

/// Destroy the zero-free diagonal of a matrix by cyclically shifting its
/// rows (used by transversal tests: the result needs row permutation before
/// symbolic factorization is applicable).
pub fn shift_rows(a: &CscMatrix, shift: usize) -> CscMatrix {
    let n = a.nrows();
    let p = crate::perm::Perm::from_new_of_old((0..n).map(|i| (i + shift) % n).collect());
    a.permute_rows(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::structural_symmetry;

    #[test]
    fn grid2d_basic_properties() {
        let a = grid2d(10, 7, 0.5, ValueModel::default());
        assert_eq!(a.nrows(), 70);
        assert!(a.has_zero_free_diagonal());
        // interior nodes have 5 entries: nnz between 3n and 5n
        assert!(a.nnz() > 3 * 70 && a.nnz() <= 5 * 70);
        // pattern symmetric
        assert!((structural_symmetry(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid2d_values_nonsymmetric() {
        let a = grid2d(5, 5, 0.8, ValueModel::default());
        let mut found = false;
        for (i, j, v) in a.iter() {
            if i != j && (a.get(j, i) - v).abs() > 1e-9 {
                found = true;
                break;
            }
        }
        assert!(found, "convection should break value symmetry");
    }

    #[test]
    fn grid3d_shape() {
        let a = grid3d(4, 3, 2, 0.3, ValueModel::default());
        assert_eq!(a.nrows(), 24);
        assert!(a.has_zero_free_diagonal());
        assert!((structural_symmetry(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_sparse_symmetry_knob() {
        let vm = ValueModel::default();
        let sym = random_sparse(300, 5, 1.0, vm);
        let asym = random_sparse(300, 5, 0.0, vm);
        assert!(structural_symmetry(&sym) < structural_symmetry(&asym));
        assert!(sym.has_zero_free_diagonal());
        assert!(asym.has_zero_free_diagonal());
    }

    #[test]
    fn generators_are_deterministic() {
        let vm = ValueModel {
            diag_scale: 1.0,
            seed: 99,
        };
        assert_eq!(random_sparse(50, 4, 0.5, vm), random_sparse(50, 4, 0.5, vm));
        assert_eq!(grid2d(6, 6, 0.2, vm), grid2d(6, 6, 0.2, vm));
    }

    #[test]
    fn block_fluid_has_blocks() {
        let a = block_fluid(10, 4, 8, 0.3, ValueModel::default());
        assert!(a.nrows() >= 40 && a.nrows() <= 80);
        assert!(a.has_zero_free_diagonal());
        // denser than a stencil
        assert!(a.nnz() as f64 / a.nrows() as f64 > 3.0);
    }

    #[test]
    fn banded_respects_bandwidth() {
        let a = banded(50, 3, 0.8, ValueModel::default());
        for (i, j, _) in a.iter() {
            assert!((i as isize - j as isize).unsigned_abs() <= 3);
        }
        assert!(a.has_zero_free_diagonal());
    }

    #[test]
    fn dense_random_is_dense() {
        let a = dense_random(12, ValueModel::default());
        assert_eq!(a.nnz(), 144);
    }

    #[test]
    fn power_law_circuit_has_hubs_and_zero_free_diagonal() {
        let a = power_law_circuit(1200, 4, 0.9, ValueModel::default());
        assert_eq!(a.nrows(), 1200);
        assert!(a.has_zero_free_diagonal());
        // average column degree stays near the requested one...
        let avg = a.nnz() as f64 / a.ncols() as f64;
        assert!(
            (3.0..12.0).contains(&avg),
            "avg entries/col {avg:.1} out of range"
        );
        // ...but preferential attachment concentrates degree: the
        // largest column is far above the mean (a hub), unlike the
        // bounded-degree stencil generators.
        let max_col = (0..a.ncols())
            .map(|j| a.col_ptr()[j + 1] - a.col_ptr()[j])
            .max()
            .unwrap();
        assert!(
            max_col as f64 > 5.0 * avg,
            "max column degree {max_col} vs avg {avg:.1}: no hub formed"
        );
        // high sym_frac keeps the pattern mostly symmetric (circuit
        // stamps): nnz(A ∪ Aᵀ)/nnz(A) stays near 1
        assert!(structural_symmetry(&a) < 1.2);
    }

    #[test]
    fn power_law_circuit_is_deterministic_and_seed_sensitive() {
        let vm = ValueModel {
            diag_scale: 1.0,
            seed: 42,
        };
        assert_eq!(
            power_law_circuit(400, 3, 0.8, vm),
            power_law_circuit(400, 3, 0.8, vm)
        );
        let other = ValueModel {
            diag_scale: 1.0,
            seed: 43,
        };
        assert_ne!(
            power_law_circuit(400, 3, 0.8, vm),
            power_law_circuit(400, 3, 0.8, other)
        );
    }

    #[test]
    fn hier_generators_are_block_separable() {
        // For any column inside subdomain b, every row index must stay
        // inside subdomain b: the one-directional rail taps are the only
        // cross-block coupling, and they live in the border columns.
        // This is the structural invariant that keeps the S* block
        // elimination tree one-subtree-per-subdomain.
        let vm = ValueModel {
            diag_scale: 1.0,
            seed: 7,
        };
        let cases = [
            (hier_circuit(6, 90, 8, 3, 0.9, vm), 6usize, 90usize, 8usize),
            (hier_grid3d(5, 4, 4, 3, 6, 0.5, vm), 5, 48, 6),
        ];
        for (a, nsub, sub_n, border) in cases {
            assert_eq!(a.ncols(), nsub * sub_n + border);
            assert!(a.has_zero_free_diagonal());
            for j in 0..nsub * sub_n {
                let b = j / sub_n;
                for p in a.col_ptr()[j]..a.col_ptr()[j + 1] {
                    let i = a.row_indices()[p] as usize;
                    assert!(
                        i / sub_n == b && i < nsub * sub_n,
                        "column {j} (subdomain {b}) has row {i} outside its block"
                    );
                }
            }
            // every subdomain taps at least one rail
            for b in 0..nsub {
                let tapped = (nsub * sub_n..a.ncols()).any(|j| {
                    (a.col_ptr()[j]..a.col_ptr()[j + 1])
                        .any(|p| (a.row_indices()[p] as usize) / sub_n == b)
                });
                assert!(tapped, "subdomain {b} never taps the border");
            }
        }
    }

    #[test]
    fn hier_grid3d_interior_is_a_7_point_stencil() {
        let vm = ValueModel {
            diag_scale: 1.0,
            seed: 7,
        };
        let a = hier_grid3d(3, 5, 5, 5, 4, 0.0, vm);
        // an interior node of subdomain 0: 6 neighbours + diagonal
        let j = 2 * 25 + 2 * 5 + 2;
        assert_eq!(a.col_ptr()[j + 1] - a.col_ptr()[j], 7);
    }

    #[test]
    fn shift_rows_breaks_diagonal() {
        let a = grid2d(4, 4, 0.0, ValueModel::default());
        let b = shift_rows(&a, 1);
        assert!(!b.has_zero_free_diagonal());
        assert_eq!(b.nnz(), a.nnz());
    }
}
