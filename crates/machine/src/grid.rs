//! 2D processor-grid arithmetic (§4.3 of the paper).
//!
//! `p` processors are viewed as a `p_r × p_c` grid; submatrix block
//! `A_ij` is assigned to processor `P_{i mod p_r, j mod p_c}`. The paper
//! sets `p_c / p_r = 2` in practice ("setting p_r ≤ p_c + 1 always leads
//! to better performance").

/// A `p_r × p_c` processor grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Rows of the grid.
    pub pr: usize,
    /// Columns of the grid.
    pub pc: usize,
}

impl Grid {
    /// A grid with the given shape.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr >= 1 && pc >= 1);
        Self { pr, pc }
    }

    /// The paper's preferred shape for `p` processors: `p = p_r × p_c`
    /// with `p_c / p_r ≈ 2` (exact factorization of `p`; for powers of
    /// two this gives e.g. 64 → 4×16? no — 64 → p_r=4? Let's see:
    /// p_r ≤ p_c and p_c/p_r closest to 2).
    pub fn for_procs(p: usize) -> Self {
        assert!(p >= 1);
        let mut best = Grid::new(1, p);
        let mut best_score = f64::INFINITY;
        for pr in 1..=p {
            if !p.is_multiple_of(pr) {
                continue;
            }
            let pc = p / pr;
            if pr > pc + 1 {
                break;
            }
            let score = (pc as f64 / pr as f64 - 2.0).abs();
            if score < best_score {
                best_score = score;
                best = Grid::new(pr, pc);
            }
        }
        best
    }

    /// Total processors.
    pub fn nprocs(&self) -> usize {
        self.pr * self.pc
    }

    /// Rank of the processor at `(row, col)` coordinates.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.pr && col < self.pc);
        row * self.pc + col
    }

    /// Coordinates of `rank`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.nprocs());
        (rank / self.pc, rank % self.pc)
    }

    /// Owner rank of block `(i, j)`.
    pub fn owner_of_block(&self, i: usize, j: usize) -> usize {
        self.rank_of(i % self.pr, j % self.pc)
    }

    /// Ranks of the processor column holding block-column `j`.
    pub fn col_ranks(&self, j: usize) -> impl Iterator<Item = usize> + '_ {
        let c = j % self.pc;
        (0..self.pr).map(move |r| self.rank_of(r, c))
    }

    /// Ranks of the processor row holding block-row `i`.
    pub fn row_ranks(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let r = i % self.pr;
        (0..self.pc).map(move |c| self.rank_of(r, c))
    }

    /// Ranks in the same grid row as `rank` (for row multicasts).
    pub fn my_row(&self, rank: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, _) = self.coords_of(rank);
        (0..self.pc).map(move |c| self.rank_of(r, c))
    }

    /// Ranks in the same grid column as `rank` (for column multicasts).
    pub fn my_col(&self, rank: usize) -> impl Iterator<Item = usize> + '_ {
        let (_, c) = self.coords_of(rank);
        (0..self.pr).map(move |r| self.rank_of(r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let g = Grid::new(3, 5);
        for rank in 0..15 {
            let (r, c) = g.coords_of(rank);
            assert_eq!(g.rank_of(r, c), rank);
        }
    }

    #[test]
    fn owner_is_cyclic() {
        let g = Grid::new(2, 4);
        assert_eq!(g.owner_of_block(0, 0), g.owner_of_block(2, 4));
        assert_eq!(g.owner_of_block(1, 3), g.owner_of_block(3, 7));
        assert_ne!(g.owner_of_block(0, 0), g.owner_of_block(1, 0));
    }

    #[test]
    fn for_procs_prefers_1_to_2_aspect() {
        assert_eq!(Grid::for_procs(2), Grid::new(1, 2));
        assert_eq!(Grid::for_procs(8), Grid::new(2, 4));
        assert_eq!(Grid::for_procs(32), Grid::new(4, 8));
        assert_eq!(Grid::for_procs(128), Grid::new(8, 16));
        // odd counts still factor
        let g = Grid::for_procs(12);
        assert_eq!(g.nprocs(), 12);
        assert!(g.pr <= g.pc);
    }

    #[test]
    fn row_and_col_rank_sets() {
        let g = Grid::new(2, 3);
        let col0: Vec<usize> = g.col_ranks(0).collect();
        assert_eq!(col0, vec![0, 3]);
        let row1: Vec<usize> = g.row_ranks(1).collect();
        assert_eq!(row1, vec![3, 4, 5]);
        let myrow: Vec<usize> = g.my_row(4).collect();
        assert_eq!(myrow, vec![3, 4, 5]);
        let mycol: Vec<usize> = g.my_col(4).collect();
        assert_eq!(mycol, vec![1, 4]);
    }

    #[test]
    fn square_counts() {
        let g = Grid::for_procs(16);
        assert_eq!(g.nprocs(), 16);
        // 16 = 2×8 (ratio 4) or 4×4 (ratio 1): |1-2|=1 < |4-2|=2 → 4×4?
        // score for 2×8: |4-2| = 2; for 4×4: |1-2| = 1 → picks 4×4.
        assert_eq!((g.pr, g.pc), (4, 4));
    }
}
