//! Thread-per-processor message-passing runtime.
//!
//! Semantics follow the one-sided model the paper's RAPID system relies
//! on: sends never block and never copy (payloads are `Arc`-shared),
//! receives are tag-matched and block until the matching message arrives.
//! Out-of-order arrivals park in a per-processor pending map, which is
//! what permits the 2D code's multi-stage pipelining (different update
//! stages in flight concurrently, Theorem 2).
//!
//! [`run_machine_jittered`] is the delivery-jitter test mode: a seeded
//! rng scrambles the order in which arrived messages are parked and, for
//! tags with several queued messages, which one a receive takes first.
//! Protocols that are correct under tag matching alone (none of ours
//! relies on cross-sender arrival order) must produce bitwise-identical
//! results under any jitter seed — the integration tests assert exactly
//! that for the 1D and 2D factorization drivers. Without jitter the
//! runtime keeps strict FIFO order within a tag.

use crate::chan::{unbounded, Receiver, Sender};
use splu_probe::metrics::{self, Counter, Histogram};
use splu_probe::{Collector, Probe};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tag reserved for failure propagation: when a processor panics, this
/// message wakes every peer so blocked receives turn into clean panics
/// instead of a process-wide hang.
pub const POISON_TAG: u64 = u64::MAX;

/// A tagged message. Payloads are shared, so a multicast of a large panel
/// costs one allocation total (the RMA-like zero-copy property).
#[derive(Debug, Clone)]
pub struct Message {
    /// Match key; protocols encode (kind, step, …) into it.
    pub tag: u64,
    /// Integer payload (pivot sequences, row ids, …).
    pub ints: Arc<Vec<u32>>,
    /// Floating-point payload (panels).
    pub floats: Arc<Vec<f64>>,
}

impl Message {
    /// Build a message; wraps the payloads in `Arc`s.
    pub fn new(tag: u64, ints: Vec<u32>, floats: Vec<f64>) -> Self {
        Self {
            tag,
            ints: Arc::new(ints),
            floats: Arc::new(floats),
        }
    }

    /// Payload size in bytes (for communication-volume accounting).
    pub fn nbytes(&self) -> u64 {
        (self.ints.len() * 4 + self.floats.len() * 8) as u64
    }
}

/// Aggregate communication counters for one run.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Messages sent (multicast counts once per destination).
    pub messages: AtomicU64,
    /// Bytes sent (payload bytes × destinations).
    pub bytes: AtomicU64,
}

impl CommStats {
    /// (messages, bytes) snapshot.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.messages.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
        )
    }
}

/// Per-processor context handed to the SPMD closure.
pub struct ProcCtx {
    /// This processor's rank in `0..nprocs`.
    pub rank: usize,
    /// Total processor count.
    pub nprocs: usize,
    senders: Arc<Vec<Sender<Message>>>,
    receiver: Receiver<Message>,
    pending: HashMap<u64, VecDeque<Message>>,
    pending_bytes: u64,
    /// High-water mark of parked message bytes — the §5.2 "buffer space"
    /// statistic (Cbuffer/Rbuffer occupancy) for this processor.
    pub max_pending_bytes: u64,
    stats: Arc<CommStats>,
    probe: Probe,
    metrics: RankMetrics,
    pool_ints: Vec<Vec<u32>>,
    pool_floats: Vec<Vec<f64>>,
    /// Steal-phase flag: set by a task-DAG executor once this rank has
    /// drained its proportional-mapped subtree work. Blocked-receive time
    /// accrued while set is attributed to the steal-idle metric — the
    /// stretch where the rank would steal if any subtree had work left —
    /// instead of ordinary pipeline park time.
    steal_phase: bool,
    /// Delivery-jitter rng (`run_machine_jittered`); `None` keeps the
    /// strict FIFO-within-tag delivery order.
    jitter: Option<JitterRng>,
}

/// Hand-rolled SplitMix64: the deterministic seed stream behind the
/// delivery-jitter test mode (no external rng dependency).
struct JitterRng(u64);

impl JitterRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Recycled buffers kept per kind in [`ProcCtx`]'s payload pool; beyond
/// this the returned buffers are simply dropped (bounds pool memory).
const POOL_CAP: usize = 32;

/// Always-on per-rank production metrics (the [`metrics::global`]
/// registry): message/byte counts and time spent blocked in `recv`
/// waiting for a message that had not arrived ("park time"). Handles
/// are resolved once per run; updates are relaxed atomics.
struct RankMetrics {
    messages: Arc<Counter>,
    send_bytes: Arc<Counter>,
    park_us: Arc<Counter>,
    park_hist: Arc<Histogram>,
    steal_idle_us: Arc<Counter>,
}

impl RankMetrics {
    fn for_rank(rank: usize) -> Self {
        let g = metrics::global();
        Self {
            messages: g.counter(&format!("splu_machine_messages_total{{rank=\"{rank}\"}}")),
            send_bytes: g.counter(&format!("splu_machine_send_bytes_total{{rank=\"{rank}\"}}")),
            park_us: g.counter(&format!("splu_machine_park_us_total{{rank=\"{rank}\"}}")),
            park_hist: g.histogram("splu_machine_park_us"),
            steal_idle_us: g.counter(&format!(
                "splu_machine_steal_idle_us_total{{rank=\"{rank}\"}}"
            )),
        }
    }
}

impl ProcCtx {
    fn park(&mut self, m: Message) {
        self.pending_bytes += m.nbytes();
        self.max_pending_bytes = self.max_pending_bytes.max(self.pending_bytes);
        self.probe.mark("park", m.nbytes());
        self.probe.count("parks", 1);
        self.probe.gauge_max("parked_bytes_hw", self.pending_bytes);
        self.pending.entry(m.tag).or_default().push_back(m);
    }

    fn unpark(&mut self, m: &Message) {
        self.pending_bytes -= m.nbytes();
        self.probe.mark("unpark", m.nbytes());
        self.probe.count("unparks", 1);
    }

    /// Enter/leave the steal phase: from here on, time blocked in `recv`
    /// counts toward `splu_machine_steal_idle_us_total` (and the
    /// `steal_idle_ns` probe counter) in addition to the ordinary park
    /// metrics. Task-DAG executors flip this on when the rank's last
    /// subtree-local task retires and it transitions to separator-only
    /// (message-driven) work.
    pub fn set_steal_phase(&mut self, on: bool) {
        self.steal_phase = on;
    }

    /// Is this rank currently in the steal phase (out of subtree work)?
    pub fn steal_phase(&self) -> bool {
        self.steal_phase
    }

    /// Send `msg` to `dest` (never blocks; zero-copy).
    pub fn send(&self, dest: usize, msg: Message) {
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(msg.nbytes(), Ordering::Relaxed);
        self.probe.mark("send", msg.nbytes());
        self.probe.count("sends", 1);
        self.probe.count("send_bytes", msg.nbytes());
        self.metrics.messages.inc();
        self.metrics.send_bytes.add(msg.nbytes());
        self.senders[dest]
            .send(msg)
            .expect("receiver hung up — a processor panicked");
    }

    /// Send to every rank in `dests` except self (a multicast; payload
    /// shared, accounting counts each destination).
    pub fn multicast<I: IntoIterator<Item = usize>>(&self, dests: I, msg: Message) {
        for d in dests {
            if d != self.rank {
                self.send(d, msg.clone());
            }
        }
    }

    /// Scramble the jitter decision for a pending-queue take: with jitter
    /// on and several same-tag messages parked, take a random one instead
    /// of the oldest (adversarial cross-sender interleaving).
    fn pop_pending(pending: &mut VecDeque<Message>, jitter: &mut Option<JitterRng>) -> Message {
        match jitter {
            Some(rng) if pending.len() > 1 => {
                let i = (rng.next() % pending.len() as u64) as usize;
                pending.remove(i).unwrap()
            }
            _ => pending.pop_front().expect("pop from empty pending queue"),
        }
    }

    /// Jitter mode: drain everything that has arrived and park it in a
    /// seeded-random order, so subsequent receives observe an adversarial
    /// delivery interleaving rather than channel FIFO.
    fn jitter_scramble(&mut self) {
        if self.jitter.is_none() {
            return;
        }
        let mut batch: Vec<Message> = Vec::new();
        while let Ok(m) = self.receiver.try_recv() {
            if m.tag == POISON_TAG {
                self.probe.mark("poison", 0);
                std::panic::panic_any(PEER_FAILED_MSG);
            }
            batch.push(m);
        }
        let rng = self.jitter.as_mut().unwrap();
        // Fisher–Yates over the drained batch
        for i in (1..batch.len()).rev() {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            batch.swap(i, j);
        }
        for m in batch {
            self.park(m);
        }
    }

    /// Blocking tag-matched receive. Messages with other tags are parked
    /// until their own `recv` call.
    pub fn recv(&mut self, tag: u64) -> Message {
        self.jitter_scramble();
        if let Entry::Occupied(mut e) = self.pending.entry(tag) {
            if !e.get().is_empty() {
                let m = Self::pop_pending(e.get_mut(), &mut self.jitter);
                if e.get().is_empty() {
                    e.remove();
                }
                self.unpark(&m);
                self.probe.mark("recv", m.nbytes());
                self.probe.count("recvs", 1);
                return m;
            }
        }
        // The wanted message has not arrived: this receive blocks. Time
        // the blocked stretch — it is the runtime's "park time" (pivot/
        // panel wait in the 2D protocol) — and report it both to the
        // always-on metrics registry and, as a `recv-wait` mark whose
        // detail is the waited nanoseconds, to the flight recorder for
        // `splu analyze`'s pivot-wait attribution.
        let blocked_at = std::time::Instant::now();
        loop {
            let m = self
                .receiver
                .recv()
                .expect("channel closed while waiting — a processor panicked");
            if m.tag == POISON_TAG {
                self.probe.mark("poison", 0);
                std::panic::panic_any(PEER_FAILED_MSG);
            }
            if m.tag == tag {
                let waited = blocked_at.elapsed();
                let wait_us = waited.as_micros() as u64;
                self.metrics.park_us.add(wait_us);
                self.metrics.park_hist.record(wait_us);
                if self.steal_phase {
                    self.metrics.steal_idle_us.add(wait_us);
                    self.probe.count("steal_idle_ns", waited.as_nanos() as u64);
                }
                self.probe.mark("recv-wait", waited.as_nanos() as u64);
                self.probe.count("recv_wait_ns", waited.as_nanos() as u64);
                self.probe.mark("recv", m.nbytes());
                self.probe.count("recvs", 1);
                return m;
            }
            self.park(m);
        }
    }

    /// Non-blocking probe: take a message with `tag` if one has arrived.
    pub fn try_recv(&mut self, tag: u64) -> Option<Message> {
        if self.jitter.is_some() {
            self.jitter_scramble();
        } else {
            // drain the channel into pending first
            while let Ok(m) = self.receiver.try_recv() {
                if m.tag == POISON_TAG {
                    self.probe.mark("poison", 0);
                    std::panic::panic_any(PEER_FAILED_MSG);
                }
                self.park(m);
            }
        }
        match self.pending.entry(tag) {
            Entry::Occupied(mut e) => {
                let m = if e.get().is_empty() {
                    None
                } else {
                    Some(Self::pop_pending(e.get_mut(), &mut self.jitter))
                };
                if e.get().is_empty() {
                    e.remove();
                }
                if let Some(m) = &m {
                    self.unpark(m);
                    self.probe.mark("recv", m.nbytes());
                    self.probe.count("recvs", 1);
                }
                m
            }
            Entry::Vacant(_) => None,
        }
    }

    /// Take a cleared `u32` buffer from the payload pool (or a fresh one).
    /// Fill it and hand it to [`Message::new`]; when the message has been
    /// consumed by every receiver, [`ProcCtx::recycle`] returns the
    /// allocation here, so the steady-state protocol allocates nothing.
    pub fn ints_buf(&mut self) -> Vec<u32> {
        match self.pool_ints.pop() {
            Some(mut v) => {
                v.clear();
                self.probe.count("payload_pool_hits", 1);
                v
            }
            None => {
                self.probe.count("payload_pool_misses", 1);
                Vec::new()
            }
        }
    }

    /// Take a cleared `f64` buffer from the payload pool (or a fresh one).
    /// See [`ProcCtx::ints_buf`].
    pub fn floats_buf(&mut self) -> Vec<f64> {
        match self.pool_floats.pop() {
            Some(mut v) => {
                v.clear();
                self.probe.count("payload_pool_hits", 1);
                v
            }
            None => {
                self.probe.count("payload_pool_misses", 1);
                Vec::new()
            }
        }
    }

    /// Return a fully consumed message's payload buffers to the pool.
    ///
    /// Only the last holder of a (possibly multicast) payload actually
    /// reclaims it — earlier holders' `Arc`s simply drop their reference.
    /// The pool is bounded; overflow buffers are freed.
    pub fn recycle(&mut self, msg: Message) {
        if let Ok(v) = Arc::try_unwrap(msg.ints) {
            if self.pool_ints.len() < POOL_CAP {
                self.probe.count("payload_recycled", 1);
                self.pool_ints.push(v);
            }
        }
        if let Ok(v) = Arc::try_unwrap(msg.floats) {
            if self.pool_floats.len() < POOL_CAP {
                self.probe.count("payload_recycled", 1);
                self.pool_floats.push(v);
            }
        }
    }

    /// Shared communication counters.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// This processor's flight-recorder handle (a no-op recorder unless
    /// the run was started through [`run_machine_traced`] with the
    /// `probe` feature on). Protocol code opens its stage spans through
    /// this.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }
}

/// Message of the panic a processor raises when a *peer* failed (the
/// poison cascade) — the uninteresting secondary panic.
const PEER_FAILED_MSG: &str = "a peer processor failed; aborting this processor";

/// Rank panic payloads for propagation: typed payloads (e.g. a
/// `SolverError` from a singular pivot) beat string panics, which beat
/// the poison-cascade panics peers raise after the original failure.
fn payload_priority(p: &(dyn std::any::Any + Send)) -> u8 {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        u8::from(*s != PEER_FAILED_MSG)
    } else if let Some(s) = p.downcast_ref::<String>() {
        u8::from(!s.contains("a processor panicked"))
    } else {
        2
    }
}

/// Run an SPMD program on `nprocs` simulated processors (OS threads).
/// Returns each rank's result, plus aggregate communication statistics.
///
/// # Panics
/// Propagates any processor panic.
pub fn run_machine<F, R>(nprocs: usize, f: F) -> (Vec<R>, (u64, u64))
where
    F: Fn(ProcCtx) -> R + Sync,
    R: Send,
{
    run_machine_impl(nprocs, &|_| Probe::disabled(), None, f)
}

/// Like [`run_machine`], but with the delivery-jitter test mode on:
/// every processor scrambles its receive interleaving with a
/// deterministic per-rank stream derived from `seed`. Use this to assert
/// that a protocol's results do not depend on message arrival order.
pub fn run_machine_jittered<F, R>(nprocs: usize, seed: u64, f: F) -> (Vec<R>, (u64, u64))
where
    F: Fn(ProcCtx) -> R + Sync,
    R: Send,
{
    run_machine_impl(nprocs, &|_| Probe::disabled(), Some(seed), f)
}

/// Like [`run_machine`], but every processor records into `collector`:
/// the runtime emits send/recv/park/unpark/poison marks and comm
/// counters, and the SPMD closure can open stage spans through
/// [`ProcCtx::probe`]. With the `probe` feature off this is exactly
/// [`run_machine`] (the probes are zero-sized no-ops).
pub fn run_machine_traced<F, R>(nprocs: usize, collector: &Collector, f: F) -> (Vec<R>, (u64, u64))
where
    F: Fn(ProcCtx) -> R + Sync,
    R: Send,
{
    run_machine_impl(nprocs, &|rank| collector.probe(rank), None, f)
}

fn run_machine_impl<F, R>(
    nprocs: usize,
    mk_probe: &(dyn Fn(usize) -> Probe + Sync),
    jitter_seed: Option<u64>,
    f: F,
) -> (Vec<R>, (u64, u64))
where
    F: Fn(ProcCtx) -> R + Sync,
    R: Send,
{
    assert!(nprocs >= 1);
    let mut senders = Vec::with_capacity(nprocs);
    let mut receivers = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    // Keep a clone of every receiver alive until all processors have
    // joined: a processor that finishes early must not close its mailbox
    // while slower processors still multicast to it (messages it never
    // needed to consume — e.g. row-multicast panels).
    let keepalive: Vec<Receiver<Message>> = receivers.clone();
    let senders = Arc::new(senders);
    let stats = Arc::new(CommStats::default());

    let mut results: Vec<Option<R>> = (0..nprocs).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nprocs);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let mut probe = mk_probe(rank);
            let ctx = ProcCtx {
                rank,
                nprocs,
                senders: senders.clone(),
                receiver,
                pending: HashMap::new(),
                pending_bytes: 0,
                max_pending_bytes: 0,
                stats: stats.clone(),
                probe: Probe::disabled(),
                metrics: RankMetrics::for_rank(rank),
                pool_ints: Vec::new(),
                pool_floats: Vec::new(),
                steal_phase: false,
                // decorrelate the ranks' jitter streams
                jitter: jitter_seed
                    .map(|s| JitterRng(s ^ (rank as u64).wrapping_mul(0xA076_1D64_78BD_642F))),
            };
            let f = &f;
            let poison_senders = senders.clone();
            handles.push(scope.spawn(move || {
                let mut ctx = ctx;
                // attach on the worker thread so flop deltas are
                // attributed to this processor
                probe.attach_thread();
                ctx.probe = probe;
                let rank = ctx.rank;
                match catch_unwind(AssertUnwindSafe(|| f(ctx))) {
                    Ok(r) => r,
                    Err(e) => {
                        // wake every blocked peer before unwinding, so a
                        // single failure (e.g. a singular matrix) becomes a
                        // clean propagated panic instead of a hang
                        for (d, s) in poison_senders.iter().enumerate() {
                            if d != rank {
                                let _ = s.send(Message::new(POISON_TAG, vec![], vec![]));
                            }
                        }
                        resume_unwind(e)
                    }
                }
            }));
        }
        let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results[rank] = Some(r),
                Err(e) => panics.push(e),
            }
        }
        drop(keepalive);
        if !panics.is_empty() {
            // Several processors usually go down together: the one that
            // hit the real fault (possibly with a typed payload, e.g. a
            // `SolverError`) plus peers that panicked on the poison
            // broadcast. Re-raise the most informative payload so the
            // host can downcast it.
            let idx = panics
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| payload_priority(p.as_ref()))
                .map(|(i, _)| i)
                .unwrap_or(0);
            resume_unwind(panics.swap_remove(idx));
        }
    });
    (
        results.into_iter().map(|r| r.unwrap()).collect(),
        stats.snapshot(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_proc_runs() {
        let (res, (msgs, _)) = run_machine(1, |ctx| ctx.rank * 10);
        assert_eq!(res, vec![0]);
        assert_eq!(msgs, 0);
    }

    #[test]
    fn ring_pass() {
        let n = 6;
        let (res, (msgs, bytes)) = run_machine(n, |mut ctx| {
            let next = (ctx.rank + 1) % ctx.nprocs;
            ctx.send(next, Message::new(7, vec![ctx.rank as u32], vec![]));
            let m = ctx.recv(7);
            m.ints[0]
        });
        for (rank, &got) in res.iter().enumerate() {
            assert_eq!(got as usize, (rank + n - 1) % n);
        }
        assert_eq!(msgs, n as u64);
        assert_eq!(bytes, 4 * n as u64);
    }

    #[test]
    fn steal_phase_attributes_blocked_recv_to_steal_idle() {
        let before =
            metrics::global().counter_value("splu_machine_steal_idle_us_total{rank=\"1\"}");
        run_machine(2, |mut ctx| {
            if ctx.rank == 0 {
                // make rank 1's receive actually block for a measurable
                // stretch before the message lands
                std::thread::sleep(std::time::Duration::from_millis(5));
                ctx.send(1, Message::new(3, vec![], vec![1.0]));
            } else {
                assert!(!ctx.steal_phase());
                ctx.set_steal_phase(true);
                assert!(ctx.steal_phase());
                ctx.recv(3);
            }
        });
        let after = metrics::global().counter_value("splu_machine_steal_idle_us_total{rank=\"1\"}");
        assert!(
            after > before,
            "steal-phase blocked recv must accrue steal idle ({before} → {after})"
        );
    }

    #[test]
    fn tag_matching_reorders() {
        let (res, _) = run_machine(2, |mut ctx| {
            if ctx.rank == 0 {
                // send tag 2 first, then tag 1
                ctx.send(1, Message::new(2, vec![22], vec![]));
                ctx.send(1, Message::new(1, vec![11], vec![]));
                0
            } else {
                // receive tag 1 first — tag 2 must park
                let a = ctx.recv(1).ints[0];
                let b = ctx.recv(2).ints[0];
                assert_eq!((a, b), (11, 22));
                1
            }
        });
        assert_eq!(res, vec![0, 1]);
    }

    #[test]
    fn multicast_shares_payload() {
        let (res, (msgs, _)) = run_machine(4, |mut ctx| {
            if ctx.rank == 0 {
                let m = Message::new(5, vec![], vec![1.0; 1000]);
                ctx.multicast(1..4, m);
                0.0
            } else {
                ctx.recv(5).floats[999]
            }
        });
        assert_eq!(res[1..], [1.0, 1.0, 1.0]);
        assert_eq!(msgs, 3);
    }

    #[test]
    fn try_recv_nonblocking() {
        let (res, _) = run_machine(2, |mut ctx| {
            if ctx.rank == 0 {
                ctx.send(1, Message::new(9, vec![1], vec![]));
                true
            } else {
                // poll until it arrives
                loop {
                    if let Some(m) = ctx.try_recv(9) {
                        return m.ints[0] == 1;
                    }
                    std::hint::spin_loop();
                }
            }
        });
        assert!(res[0] && res[1]);
    }

    #[test]
    fn peer_panic_propagates_instead_of_hanging() {
        // rank 0 panics while rank 1 blocks on a receive that will never be
        // satisfied: the poison broadcast must wake rank 1 so run_machine
        // panics promptly instead of deadlocking.
        let result = std::panic::catch_unwind(|| {
            run_machine(2, |mut ctx| {
                if ctx.rank == 0 {
                    panic!("simulated numerical failure");
                } else {
                    let _ = ctx.recv(42); // would block forever without poison
                }
                0u32
            })
        });
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn nbytes_counts_both_payloads() {
        assert_eq!(Message::new(0, vec![], vec![]).nbytes(), 0);
        assert_eq!(Message::new(0, vec![1, 2, 3], vec![]).nbytes(), 12);
        assert_eq!(Message::new(0, vec![], vec![0.0; 5]).nbytes(), 40);
        assert_eq!(Message::new(0, vec![7; 2], vec![1.5; 4]).nbytes(), 8 + 32);
    }

    #[test]
    fn comm_stats_match_explicit_sends() {
        // 3 ranks each send one 12-byte and one 40-byte message to rank 0
        let (_, (msgs, bytes)) = run_machine(4, |mut ctx| {
            if ctx.rank == 0 {
                for _ in 0..3 {
                    ctx.recv(1);
                    ctx.recv(2);
                }
            } else {
                ctx.send(0, Message::new(1, vec![0; 3], vec![]));
                ctx.send(0, Message::new(2, vec![], vec![0.0; 5]));
            }
        });
        assert_eq!(msgs, 6);
        assert_eq!(bytes, 3 * (12 + 40));
    }

    #[test]
    fn parked_bytes_high_water_under_out_of_order_delivery() {
        // rank 0 sends three out-of-order messages; rank 1 receives the
        // last-sent tag first, so the other two must park simultaneously:
        // the high-water mark is their combined size, and it drops back
        // to zero once both are consumed.
        let (res, _) = run_machine(2, |mut ctx| {
            if ctx.rank == 0 {
                ctx.send(1, Message::new(10, vec![0; 25], vec![])); // 100 B
                ctx.send(1, Message::new(11, vec![], vec![0.0; 25])); // 200 B
                ctx.send(1, Message::new(12, vec![1], vec![])); // 4 B
                (0, 0)
            } else {
                // guarantee arrival order by polling for the last tag:
                // receiving tag 12 forces 10 and 11 to park first
                let m = ctx.recv(12);
                assert_eq!(m.nbytes(), 4);
                let hw_after_parking = ctx.max_pending_bytes;
                ctx.recv(10);
                ctx.recv(11);
                (hw_after_parking, ctx.max_pending_bytes)
            }
        });
        let (hw, hw_final) = res[1];
        assert_eq!(hw, 300, "both earlier messages parked at once");
        assert_eq!(hw_final, 300, "high-water is monotone");
    }

    #[test]
    #[cfg(feature = "probe")]
    fn traced_run_records_sends_consistent_with_comm_stats() {
        let c = Collector::new();
        let n = 4;
        let (_, (msgs, bytes)) = run_machine_traced(n, &c, |mut ctx| {
            let next = (ctx.rank + 1) % ctx.nprocs;
            ctx.send(next, Message::new(7, vec![ctx.rank as u32], vec![0.0; 8]));
            ctx.recv(7);
        });
        let t = c.finish();
        assert_eq!(t.procs.len(), n);
        assert_eq!(t.counter_total("sends"), msgs);
        assert_eq!(t.counter_total("send_bytes"), bytes);
        assert_eq!(t.counter_total("recvs"), msgs);
        // every processor produced at least its send and recv marks
        for p in &t.procs {
            assert!(p.marks.iter().any(|m| m.name == "send"));
            assert!(p.marks.iter().any(|m| m.name == "recv"));
        }
    }

    #[test]
    #[cfg(feature = "probe")]
    fn traced_run_records_park_high_water() {
        let c = Collector::new();
        let (_, _) = run_machine_traced(2, &c, |mut ctx| {
            if ctx.rank == 0 {
                ctx.send(1, Message::new(10, vec![0; 25], vec![]));
                ctx.send(1, Message::new(12, vec![], vec![]));
            } else {
                ctx.recv(12); // tag 10 parks (100 bytes)
                ctx.recv(10);
            }
        });
        let t = c.finish();
        assert_eq!(t.counter_max("parked_bytes_hw"), 100);
        assert_eq!(t.counter_total("parks"), 1);
        assert_eq!(t.counter_total("unparks"), 1);
    }

    #[test]
    fn blocked_recv_reports_park_time_metrics() {
        // rank 1 blocks on a message rank 0 sends after a delay: park
        // time must land in the global metrics registry for that rank.
        let before = metrics::global().counter_value("splu_machine_park_us_total{rank=\"1\"}");
        let hist_before = metrics::global()
            .histogram_summary("splu_machine_park_us")
            .count;
        run_machine(2, |mut ctx| {
            if ctx.rank == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                ctx.send(1, Message::new(1, vec![1], vec![]));
            } else {
                ctx.recv(1);
            }
        });
        let after = metrics::global().counter_value("splu_machine_park_us_total{rank=\"1\"}");
        assert!(after >= before + 3_000, "≥3 ms of park time recorded");
        let hist_after = metrics::global()
            .histogram_summary("splu_machine_park_us")
            .count;
        assert!(hist_after > hist_before);
    }

    #[test]
    fn per_rank_message_metrics_accumulate() {
        let before = metrics::global().counter_value("splu_machine_messages_total{rank=\"0\"}");
        let bytes_before =
            metrics::global().counter_value("splu_machine_send_bytes_total{rank=\"0\"}");
        run_machine(2, |mut ctx| {
            if ctx.rank == 0 {
                ctx.send(1, Message::new(1, vec![0; 3], vec![]));
            } else {
                ctx.recv(1);
            }
        });
        let after = metrics::global().counter_value("splu_machine_messages_total{rank=\"0\"}");
        let bytes_after =
            metrics::global().counter_value("splu_machine_send_bytes_total{rank=\"0\"}");
        assert_eq!(after, before + 1);
        assert_eq!(bytes_after, bytes_before + 12);
    }

    #[test]
    #[cfg(feature = "probe")]
    fn blocked_recv_emits_recv_wait_mark() {
        let c = Collector::new();
        run_machine_traced(2, &c, |mut ctx| {
            if ctx.rank == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
                ctx.send(1, Message::new(1, vec![], vec![]));
            } else {
                ctx.recv(1);
            }
        });
        let t = c.finish();
        let p1 = t.procs.iter().find(|p| p.rank == 1).unwrap();
        let wait = p1.marks.iter().find(|m| m.name == "recv-wait").unwrap();
        assert!(
            wait.detail >= 1_000_000,
            "waited ≥1 ms, got {} ns",
            wait.detail
        );
        assert!(t.counter_total("recv_wait_ns") >= 1_000_000);
    }

    #[test]
    fn untraced_run_probe_is_silent() {
        // ProcCtx::probe is usable in any configuration; in an untraced
        // run it must simply record nothing
        let (res, _) = run_machine(2, |mut ctx| {
            let enabled = ctx.probe().is_enabled();
            if ctx.rank == 0 {
                ctx.send(1, Message::new(1, vec![1], vec![]));
            } else {
                ctx.recv(1);
            }
            enabled
        });
        assert_eq!(res, vec![false, false]);
    }

    #[test]
    fn payload_pool_reuses_recycled_buffers() {
        run_machine(1, |mut ctx| {
            let mut f = ctx.floats_buf();
            f.resize(100, 1.0);
            let ptr = f.as_ptr() as usize;
            let m = Message::new(1, ctx.ints_buf(), f);
            ctx.recycle(m);
            // sole-owner payload comes back: same allocation, same capacity
            let f2 = ctx.floats_buf();
            assert!(f2.capacity() >= 100);
            assert_eq!(f2.as_ptr() as usize, ptr);
            // a payload still shared with another holder is NOT reclaimed
            let m1 = Message::new(2, vec![], f2);
            let m2 = m1.clone();
            ctx.recycle(m1);
            let f3 = ctx.floats_buf();
            assert_eq!(f3.capacity(), 0, "shared payload must not be pooled");
            drop(m2);
        });
    }

    /// Self-sends land in the rank's own channel, so after `recv(done)`
    /// every earlier message is already parked — a fully deterministic
    /// way to exercise the jitter scramble.
    fn jittered_take_order(seed: u64) -> Vec<u32> {
        let (mut res, _) = run_machine_jittered(1, seed, |mut ctx| {
            for i in 0..16u32 {
                ctx.send(0, Message::new(3, vec![i], vec![]));
            }
            ctx.send(0, Message::new(4, vec![], vec![]));
            ctx.recv(4);
            (0..16).map(|_| ctx.recv(3).ints[0]).collect::<Vec<u32>>()
        });
        res.pop().unwrap()
    }

    #[test]
    fn jitter_scrambles_within_tag_but_loses_nothing() {
        let order = jittered_take_order(42);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u32>>(), "no loss, no dup");
        assert_ne!(order, sorted, "seed 42 must actually reorder");
    }

    #[test]
    fn jitter_is_deterministic_in_the_seed() {
        assert_eq!(jittered_take_order(7), jittered_take_order(7));
        assert_ne!(jittered_take_order(7), jittered_take_order(8));
    }

    #[test]
    fn fifo_within_tag() {
        let (res, _) = run_machine(2, |mut ctx| {
            if ctx.rank == 0 {
                for i in 0..10u32 {
                    ctx.send(1, Message::new(3, vec![i], vec![]));
                }
                vec![]
            } else {
                (0..10).map(|_| ctx.recv(3).ints[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(res[1], (0..10).collect::<Vec<u32>>());
    }
}
