//! Minimal unbounded MPMC channel (std-only).
//!
//! The runtime previously used `crossbeam::channel`; the build
//! environment cannot reach crates.io, so this module provides the small
//! subset the runtime needs on top of `Mutex<VecDeque>` + `Condvar`:
//! unbounded non-blocking sends, blocking and non-blocking receives, and
//! cloneable endpoints (the runtime clones receivers to keep a mailbox
//! alive after its owning processor finishes).
//!
//! Throughput is not a concern here — each simulated processor does
//! dense-kernel work between messages — but the implementation still
//! avoids waking receivers unless a message actually arrived.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
}

/// Sending endpoint; cloneable, never blocks.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving endpoint; cloneable (all clones drain the same queue).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
        }
    }
}

/// Error returned by [`Receiver::try_recv`] on an empty queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryRecvError;

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue `msg`; never blocks, never fails (the queue is unbounded
    /// and lives as long as any endpoint).
    pub fn send(&self, msg: T) -> Result<(), T> {
        let mut q = self.shared.queue.lock().unwrap();
        q.push_back(msg);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Block until a message is available.
    #[allow(clippy::result_unit_err)] // senders never close; Err is unreachable by construction
    pub fn recv(&self) -> Result<T, ()> {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(m) = q.pop_front() {
                return Ok(m);
            }
            q = self.shared.ready.wait(q).unwrap();
        }
    }

    /// Take a message if one is queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.shared
            .queue
            .lock()
            .unwrap()
            .pop_front()
            .ok_or(TryRecvError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_recv() {
        let (s, r) = unbounded();
        s.send(5u32).unwrap();
        assert_eq!(r.recv(), Ok(5));
    }

    #[test]
    fn try_recv_empty() {
        let (_s, r) = unbounded::<u32>();
        assert_eq!(r.try_recv(), Err(TryRecvError));
    }

    #[test]
    fn fifo_order() {
        let (s, r) = unbounded();
        for i in 0..100 {
            s.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(r.recv(), Ok(i));
        }
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (s, r) = unbounded();
        let h = std::thread::spawn(move || r.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.send(42u64).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn clones_share_queue() {
        let (s, r) = unbounded();
        let r2 = r.clone();
        s.send(1u8).unwrap();
        s.send(2u8).unwrap();
        assert_eq!(r.recv(), Ok(1));
        assert_eq!(r2.recv(), Ok(2));
    }
}
