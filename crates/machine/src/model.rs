//! Cost model of the paper's machines (§6).
//!
//! The paper reports, for block size 25:
//!
//! | machine | DGEMM | DGEMV | bandwidth | latency |
//! |---------|-------|-------|-----------|---------|
//! | Cray T3D | 103 MFLOPS | 85 MFLOPS | 126 MB/s (`shmem_put`) | 2.7 µs |
//! | Cray T3E | 388 MFLOPS | 255 MFLOPS | 500 MB/s | ~1 µs |
//!
//! giving the per-flop costs `w3 = 1/DGEMM`, `w2 = 1/DGEMV` used in the
//! §6.1 sequential analysis (`T_S* = (1−r)·w2·OPS + r·w3·OPS`) and the
//! communication parameters for the schedule simulator.

/// Per-flop and per-message cost parameters of a distributed-memory
/// machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Seconds per BLAS-1 flop (conservatively equal to `w2`).
    pub w1: f64,
    /// Seconds per BLAS-2 flop (`1 / DGEMV rate`).
    pub w2: f64,
    /// Seconds per BLAS-3 flop (`1 / DGEMM rate`).
    pub w3: f64,
    /// Message start-up latency in seconds (α).
    pub alpha: f64,
    /// Seconds per 8-byte word transferred (β).
    pub beta: f64,
}

/// Cray T3D parameters (§6: DGEMM 103 MFLOPS, DGEMV 85 MFLOPS,
/// 126 MB/s, 2.7 µs overhead).
pub const T3D: MachineModel = MachineModel {
    name: "Cray-T3D",
    w1: 1.0 / 85.0e6,
    w2: 1.0 / 85.0e6,
    w3: 1.0 / 103.0e6,
    alpha: 2.7e-6,
    beta: 8.0 / 126.0e6,
};

/// Cray T3E parameters (§6: DGEMM 388 MFLOPS, DGEMV 255 MFLOPS,
/// 500 MB/s peak, 0.5–2 µs round trip → 1 µs one-way).
pub const T3E: MachineModel = MachineModel {
    name: "Cray-T3E",
    w1: 1.0 / 255.0e6,
    w2: 1.0 / 255.0e6,
    w3: 1.0 / 388.0e6,
    alpha: 1.0e-6,
    beta: 8.0 / 500.0e6,
};

impl MachineModel {
    /// Time to execute a task with the given per-class flop counts.
    pub fn compute_time(&self, blas1: u64, blas2: u64, blas3: u64) -> f64 {
        blas1 as f64 * self.w1 + blas2 as f64 * self.w2 + blas3 as f64 * self.w3
    }

    /// Time for one message of `words` 8-byte words.
    pub fn message_time(&self, words: u64) -> f64 {
        self.alpha + words as f64 * self.beta
    }

    /// The §6.1 sequential-time model: `(1−r)·w2·ops + r·w3·ops`, where
    /// `r` is the DGEMM fraction of the numerical updates.
    pub fn sequential_time(&self, ops: u64, blas3_fraction: f64) -> f64 {
        let r = blas3_fraction.clamp(0.0, 1.0);
        ops as f64 * ((1.0 - r) * self.w2 + r * self.w3)
    }

    /// The paper's SuperLU model: `(1 + h)·w2·ops` with `h` the symbolic
    /// factorization overhead ratio (§6.1 estimates `h < 0.82`; the ratio
    /// analysis uses the measured value).
    pub fn superlu_time(&self, ops: u64, h: f64) -> f64 {
        (1.0 + h) * self.w2 * ops as f64
    }
}

#[cfg(test)]
#[allow(clippy::assertions_on_constants)] // asserting machine-constant relations is the point
mod tests {
    use super::*;

    #[test]
    fn blas3_is_faster_per_flop() {
        assert!(T3D.w3 < T3D.w2);
        assert!(T3E.w3 < T3E.w2);
    }

    #[test]
    fn t3e_dominates_t3d() {
        assert!(T3E.w2 < T3D.w2);
        assert!(T3E.w3 < T3D.w3);
        assert!(T3E.beta < T3D.beta);
        assert!(T3E.alpha <= T3D.alpha);
    }

    #[test]
    fn paper_dense_case_ratios_reproduced() {
        // §6.1 dense case: ops ratio = 1, r = 0.65, h = 0.82 gives
        // T_S*/T_SuperLU = 0.48 on T3D and 0.42 on T3E — the paper states
        // these "are almost the same as the ratios listed in Table 2".
        let ops = 1_000_000u64;
        for (m, expect) in [(T3D, 0.48), (T3E, 0.42)] {
            let ratio = m.sequential_time(ops, 0.65) / m.superlu_time(ops, 0.82);
            assert!(
                (ratio - expect).abs() < 0.01,
                "{}: ratio {ratio} vs paper {expect}",
                m.name
            );
        }
    }

    #[test]
    fn paper_sparse_case_favors_t3e() {
        // §6.1 sparse case: average ops ratio 3.98 — the S*/SuperLU time
        // ratio is below the 3.98 flop ratio on both machines, and smaller
        // on T3E (bigger DGEMM advantage).
        let ops_superlu = 1_000_000u64;
        let ops_sstar = (3.98 * ops_superlu as f64) as u64;
        let rt3d = T3D.sequential_time(ops_sstar, 0.65) / T3D.superlu_time(ops_superlu, 0.82);
        let rt3e = T3E.sequential_time(ops_sstar, 0.65) / T3E.superlu_time(ops_superlu, 0.82);
        assert!(rt3d < 3.98 && rt3e < 3.98);
        assert!(rt3e < rt3d);
    }

    #[test]
    fn message_time_scales() {
        let t1 = T3D.message_time(0);
        let t2 = T3D.message_time(1000);
        assert!((t1 - T3D.alpha).abs() < 1e-15);
        assert!(t2 > t1);
    }

    #[test]
    fn dense_gemm_rate_matches_nameplate() {
        // 25×25 DGEMM on T3D: 2·25³ flops at 103 MFLOPS
        let t = T3D.compute_time(0, 0, 2 * 25 * 25 * 25);
        let mflops = 2.0 * 25.0f64.powi(3) / t / 1e6;
        assert!((mflops - 103.0).abs() < 1e-9);
    }
}
