//! `splu-machine` — the distributed-memory machine substrate.
//!
//! The paper's experiments run on Cray T3D and T3E systems using the
//! `shmem` one-sided communication library. Neither machine (nor MPI) is
//! available here, so this crate provides the substitution described in
//! `DESIGN.md` §3:
//!
//! * [`runtime`] — a **real** shared-nothing message-passing runtime:
//!   each simulated processor is an OS thread that owns its data partition
//!   and communicates only through typed mailboxes ([`chan`]).
//!   Message payloads travel as `Arc`s — the receiving processor reads the
//!   sender's buffer without copying, mirroring the paper's remote-memory
//!   access (`shmem_put`) data path with its "no copying/buffering during
//!   a data transfer" property. Tag-matched receives let the SPMD codes
//!   express the asynchronous protocols of Figs. 10 and 12–15 directly.
//! * [`model`] — the **cost model** of the paper's two machines (per-flop
//!   BLAS-1/2/3 rates, message latency α and per-word cost β), used by the
//!   discrete-event schedule simulator in `splu-sched` to project T3D/T3E
//!   numbers for processor counts beyond the host's core count.
//! * [`grid`] — the 2D processor-grid arithmetic (`p = p_r × p_c`,
//!   block `(i, j)` owned by `P_{i mod p_r, j mod p_c}`).

pub mod chan;
pub mod grid;
pub mod model;
pub mod runtime;

pub use grid::Grid;
pub use model::{MachineModel, T3D, T3E};
pub use runtime::{
    run_machine, run_machine_jittered, run_machine_traced, CommStats, Message, ProcCtx,
};
