//! `splu-superlu` — a SuperLU-like sequential sparse LU baseline.
//!
//! The paper compares S\* against SuperLU, the highly optimized sequential
//! supernodal code of Demmel, Eisenstat, Gilbert, Li & Liu, which performs
//! symbolic factorization *on the fly* as pivots are chosen. This crate
//! provides that baseline role:
//!
//! * [`gp_factor`] — a Gilbert–Peierls left-looking sparse LU with partial
//!   pivoting and symmetric pruning: per column, a depth-first reach over
//!   the current L structure gives the exact fill, then a sparse triangular
//!   solve computes the values. This produces the **exact** `L`/`U`
//!   nonzero counts and operation counts that the paper's statistics use:
//!   Table 1's "factor entries SuperLU" column, Table 2's baseline times,
//!   and the MFLOPS formula ("operation count obtained from SuperLU"
//!   divided by the S\* parallel time).
//! * [`supernode_stats`] — post-factorization detection of supernodes in
//!   the computed `L` (the structures SuperLU would exploit with BLAS-2),
//!   used by the Fig. 3 comparison harness.
//!
//! Full SuperLU also aggregates columns into panels for cache reuse; the
//! per-flop cost model of §6.1 captures that difference via the measured
//! BLAS-2 rate (`w2`), which is how our Table 2 reproduction projects
//! T3D/T3E numbers.

mod gp;
mod stats;

pub use gp::{gp_factor, gp_solve, GpLu, SingularError};
pub use stats::{supernode_stats, SupernodeStats};
