//! Post-factorization supernode statistics for the baseline.
//!
//! SuperLU identifies supernodes in `L` *on the fly* as the factorization
//! proceeds, and its U factor has no regular dense structure beyond single
//! columns (Fig. 3a of the paper). These statistics quantify that: they
//! feed the Fig. 3 comparison harness (dense structures available to
//! SuperLU vs. S\*) and the Table 2 cost-model projection.

use crate::gp::GpLu;

/// Supernode statistics of a computed `L` factor.
#[derive(Debug, Clone, PartialEq)]
pub struct SupernodeStats {
    /// Number of supernodes detected (maximal runs of consecutive columns
    /// with nested L structure).
    pub count: usize,
    /// Average columns per supernode (the paper reports 1.5–2 before
    /// amalgamation for typical sparse matrices).
    pub avg_width: f64,
    /// Largest supernode width.
    pub max_width: usize,
    /// Fraction of `L` entries inside supernodal dense trapezoids.
    pub supernodal_fraction: f64,
}

/// Detect supernodes in the L factor of a Gilbert–Peierls factorization:
/// column `j+1` joins column `j`'s supernode iff
/// `struct(L(:, j+1)) = struct(L(:, j)) \ {j}`.
pub fn supernode_stats(f: &GpLu) -> SupernodeStats {
    let n = f.l.ncols();
    if n == 0 {
        return SupernodeStats {
            count: 0,
            avg_width: 0.0,
            max_width: 0,
            supernodal_fraction: 0.0,
        };
    }
    let mut widths: Vec<usize> = Vec::new();
    let mut cur = 1usize;
    for j in 1..n {
        let (prev, _) = f.l.col(j - 1);
        let (next, _) = f.l.col(j);
        let nested = prev.len() == next.len() + 1 && prev[1..] == *next;
        if nested {
            cur += 1;
        } else {
            widths.push(cur);
            cur = 1;
        }
    }
    widths.push(cur);

    // entries inside supernodal trapezoids
    let mut snode_entries = 0usize;
    let mut col = 0usize;
    for &w in &widths {
        let head_len = f.l.col(col).0.len(); // rows of the first column
        for t in 0..w {
            // column col+t has head_len - t entries, all inside the trapezoid
            let _ = t;
            snode_entries += head_len - t;
        }
        col += w;
    }
    let total = f.l.nnz();
    SupernodeStats {
        count: widths.len(),
        avg_width: n as f64 / widths.len() as f64,
        max_width: widths.iter().copied().max().unwrap_or(0),
        supernodal_fraction: snode_entries as f64 / total.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::gp_factor;
    use splu_sparse::gen::{self, ValueModel};
    use splu_sparse::CscMatrix;

    #[test]
    fn identity_has_singleton_supernodes() {
        let f = gp_factor(&CscMatrix::identity(5), 1.0).unwrap();
        let s = supernode_stats(&f);
        assert_eq!(s.count, 5);
        assert_eq!(s.avg_width, 1.0);
        assert_eq!(s.max_width, 1);
        assert!((s.supernodal_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_matrix_is_one_supernode() {
        let a = gen::dense_random(12, ValueModel::default());
        let f = gp_factor(&a, 1.0).unwrap();
        let s = supernode_stats(&f);
        assert_eq!(s.count, 1);
        assert_eq!(s.max_width, 12);
        assert!((s.supernodal_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_matrices_have_small_supernodes() {
        let a = gen::grid2d(10, 10, 0.3, ValueModel::default());
        let f = gp_factor(&a, 1.0).unwrap();
        let s = supernode_stats(&f);
        assert!(s.count > 10);
        assert!(s.avg_width < 6.0, "avg width {}", s.avg_width);
        assert!(s.supernodal_fraction <= 1.0 + 1e-12);
    }
}
