//! Gilbert–Peierls left-looking sparse LU with partial pivoting.
//!
//! For each column `j`:
//!
//! 1. **Symbolic**: the nonzero pattern of `x = L⁻¹ A(:, j)` is the set of
//!    nodes reachable from `pattern(A(:, j))` in the graph of the
//!    already-computed `L` columns (a depth-first search producing a
//!    topological order);
//! 2. **Numeric**: a sparse triangular solve over that pattern;
//! 3. **Pivot**: the entry of maximum magnitude among not-yet-pivotal rows
//!    (threshold-relaxable), row-interchange recorded in a permutation;
//! 4. Split `x` into `U(:, j)` (pivotal rows) and `L(:, j)` (scaled).
//!
//! Time is O(flops(L U)) — proportional to the actual arithmetic — which is
//! what makes this the right oracle for "operation count obtained from
//! SuperLU" in the paper's MFLOPS accounting.

use splu_sparse::{CscMatrix, Perm};

/// The factorization failed because no acceptable pivot exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularError {
    /// Column at which factorization broke down.
    pub column: usize,
}

impl std::fmt::Display for SingularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is numerically singular at column {}",
            self.column
        )
    }
}

impl std::error::Error for SingularError {}

/// Result of a Gilbert–Peierls factorization: `P A = L U`.
#[derive(Debug, Clone)]
pub struct GpLu {
    /// Unit lower-triangular factor (unit diagonal stored explicitly),
    /// rows in *pivotal* (permuted) coordinates.
    pub l: CscMatrix,
    /// Upper-triangular factor including the diagonal.
    pub u: CscMatrix,
    /// Row permutation: `row_perm.new_of_old(orig) = pivotal position`.
    pub row_perm: Perm,
    /// Exact multiply/add/divide count of the numeric factorization —
    /// the paper's "operation count obtained from SuperLU".
    pub flops: u64,
}

impl GpLu {
    /// nnz(L) + nnz(U) counting the unit diagonal once (the paper's
    /// "factor entries" statistic).
    pub fn factor_nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz() - self.l.ncols()
    }
}

/// Factorize with partial pivoting. `threshold` in `(0, 1]` relaxes the
/// pivot choice (1.0 = classic partial pivoting: always take the largest
/// magnitude; `t < 1` accepts the diagonal candidate if it is within factor
/// `t` of the largest, reducing fill disturbance).
pub fn gp_factor(a: &CscMatrix, threshold: f64) -> Result<GpLu, SingularError> {
    assert_eq!(a.nrows(), a.ncols(), "gp_factor needs a square matrix");
    assert!(threshold > 0.0 && threshold <= 1.0);
    let n = a.ncols();

    // L columns under construction (pivotal row coordinates are assigned
    // lazily; storage keeps ORIGINAL row ids plus a pinv map).
    const EMPTY: u32 = u32::MAX;
    let mut pinv = vec![EMPTY; n]; // original row -> pivotal position
    let mut perm = vec![EMPTY; n]; // pivotal position -> original row

    // L in original-row ids (excluding the unit diagonal):
    let mut l_cols_rows: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut l_cols_vals: Vec<Vec<f64>> = Vec::with_capacity(n);
    // U in pivotal-row ids (excluding the diagonal), plus diagonal values:
    let mut u_cols_rows: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut u_cols_vals: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut u_diag: Vec<f64> = Vec::with_capacity(n);

    let mut flops = 0u64;

    // workspaces
    let mut x = vec![0.0f64; n]; // scatter by original row id
    let mut stack: Vec<(u32, usize)> = Vec::new();
    let mut topo: Vec<u32> = Vec::new(); // original row ids, topo order
    let mut visited = vec![u32::MAX; n]; // stamp per column j

    for j in 0..n {
        let stamp = j as u32;
        // ---- symbolic: reach of pattern(A(:, j)) through L ----
        topo.clear();
        let (arows, avals) = a.col(j);
        for &r0 in arows {
            if visited[r0 as usize] == stamp {
                continue;
            }
            // iterative DFS from r0
            stack.clear();
            stack.push((r0, 0));
            visited[r0 as usize] = stamp;
            while let Some(&(r, pos0)) = stack.last() {
                let pr = pinv[r as usize];
                let kids: &[u32] = if pr == EMPTY {
                    &[]
                } else {
                    &l_cols_rows[pr as usize]
                };
                let mut pos = pos0;
                let mut descend: Option<u32> = None;
                while pos < kids.len() {
                    let c = kids[pos];
                    pos += 1;
                    if visited[c as usize] != stamp {
                        visited[c as usize] = stamp;
                        descend = Some(c);
                        break;
                    }
                }
                stack.last_mut().unwrap().1 = pos;
                match descend {
                    Some(c) => stack.push((c, 0)),
                    None => topo.push(stack.pop().unwrap().0),
                }
            }
        }
        // topo now lists rows children-first; the triangular solve needs
        // parents (earlier pivots) first → iterate in reverse.

        // ---- numeric: sparse triangular solve ----
        for (&r, &v) in arows.iter().zip(avals) {
            x[r as usize] = v;
        }
        for &r in topo.iter().rev() {
            let pr = pinv[r as usize];
            if pr == EMPTY {
                continue;
            }
            let xk = x[r as usize];
            if xk != 0.0 {
                let rows = &l_cols_rows[pr as usize];
                let vals = &l_cols_vals[pr as usize];
                for (&rr, &lv) in rows.iter().zip(vals) {
                    x[rr as usize] -= lv * xk;
                }
                flops += 2 * rows.len() as u64;
            }
        }

        // ---- pivot among non-pivotal rows ----
        let mut best: Option<u32> = None;
        let mut best_abs = 0.0f64;
        let mut diag_candidate: Option<(u32, f64)> = None;
        for &r in &topo {
            if pinv[r as usize] == EMPTY {
                let a = x[r as usize].abs();
                if a > best_abs {
                    best_abs = a;
                    best = Some(r);
                } else if best.is_none() {
                    best = Some(r);
                }
                if r as usize == j {
                    diag_candidate = Some((r, a));
                }
            }
        }
        let Some(mut piv) = best else {
            return Err(SingularError { column: j });
        };
        if best_abs == 0.0 {
            // cleanup scatter before bailing
            for &r in &topo {
                x[r as usize] = 0.0;
            }
            return Err(SingularError { column: j });
        }
        // threshold pivoting: prefer the diagonal row if acceptable
        if let Some((dr, da)) = diag_candidate {
            if da >= threshold * best_abs && da > 0.0 {
                piv = dr;
            }
        }
        let pv = x[piv as usize];
        pinv[piv as usize] = j as u32;
        perm[j] = piv;
        u_diag.push(pv);

        // ---- split x into U (pivotal rows) and L (non-pivotal) ----
        let mut urows: Vec<u32> = Vec::new();
        let mut uvals: Vec<f64> = Vec::new();
        let mut lrows: Vec<u32> = Vec::new();
        let mut lvals: Vec<f64> = Vec::new();
        for &r in &topo {
            let ru = r as usize;
            let v = x[ru];
            x[ru] = 0.0;
            if r == piv {
                continue;
            }
            let pr = pinv[ru];
            if pr != EMPTY {
                if v != 0.0 {
                    urows.push(pr);
                    uvals.push(v);
                }
            } else if v != 0.0 {
                lrows.push(r);
                lvals.push(v / pv);
            }
        }
        flops += lvals.len() as u64; // the scaling divisions
        l_cols_rows.push(lrows);
        l_cols_vals.push(lvals);
        u_cols_rows.push(urows);
        u_cols_vals.push(uvals);
    }

    // ---- assemble CSC factors in pivotal coordinates ----
    let row_perm = Perm::from_old_of_new(perm.iter().map(|&r| r as usize).collect());
    let mut lp = vec![0usize; n + 1];
    let mut lr: Vec<u32> = Vec::new();
    let mut lval: Vec<f64> = Vec::new();
    for j in 0..n {
        // unit diagonal first (pivotal row j), then scaled entries mapped
        // to pivotal coordinates
        let mut entries: Vec<(u32, f64)> = vec![(j as u32, 1.0)];
        for (&r, &v) in l_cols_rows[j].iter().zip(&l_cols_vals[j]) {
            entries.push((row_perm.new_of_old(r as usize) as u32, v));
        }
        entries.sort_unstable_by_key(|e| e.0);
        for (r, v) in entries {
            lr.push(r);
            lval.push(v);
        }
        lp[j + 1] = lr.len();
    }
    let l = CscMatrix::from_parts(n, n, lp, lr, lval);

    let mut up = vec![0usize; n + 1];
    let mut ur: Vec<u32> = Vec::new();
    let mut uval: Vec<f64> = Vec::new();
    for j in 0..n {
        let mut entries: Vec<(u32, f64)> = u_cols_rows[j]
            .iter()
            .zip(&u_cols_vals[j])
            .map(|(&r, &v)| (r, v))
            .collect();
        entries.push((j as u32, u_diag[j]));
        entries.sort_unstable_by_key(|e| e.0);
        for (r, v) in entries {
            ur.push(r);
            uval.push(v);
        }
        up[j + 1] = ur.len();
    }
    let u = CscMatrix::from_parts(n, n, up, ur, uval);

    Ok(GpLu {
        l,
        u,
        row_perm,
        flops,
    })
}

/// Solve `A x = b` given a Gilbert–Peierls factorization.
pub fn gp_solve(f: &GpLu, b: &[f64]) -> Vec<f64> {
    let n = f.l.ncols();
    assert_eq!(b.len(), n);
    // y = P b
    let mut y: Vec<f64> = (0..n).map(|i| b[f.row_perm.old_of_new(i)]).collect();
    // L y' = y (unit lower, forward)
    for j in 0..n {
        let yj = y[j];
        if yj != 0.0 {
            let (rows, vals) = f.l.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                if r as usize > j {
                    y[r as usize] -= v * yj;
                }
            }
        }
    }
    // U x = y' (backward)
    for j in (0..n).rev() {
        let (rows, vals) = f.u.col(j);
        // diagonal is the last entry ≤ j; find it
        let dpos = rows.binary_search(&(j as u32)).expect("diag present");
        y[j] /= vals[dpos];
        let xj = y[j];
        if xj != 0.0 {
            for (&r, &v) in rows.iter().zip(vals) {
                if (r as usize) < j {
                    y[r as usize] -= v * xj;
                }
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_kernels::{dense_lu, DenseMat};
    use splu_sparse::gen::{self, ValueModel};

    fn residual(a: &CscMatrix, f: &GpLu) -> f64 {
        // max |P A - L U| / max|A|
        let pa = a.permute_rows(&f.row_perm).to_dense();
        let lu = f.l.to_dense().matmul(&f.u.to_dense());
        pa.sub(&lu).max_abs() / a.max_abs()
    }

    #[test]
    fn identity_factors_trivially() {
        let a = CscMatrix::identity(6);
        let f = gp_factor(&a, 1.0).unwrap();
        assert_eq!(f.l.nnz(), 6);
        assert_eq!(f.u.nnz(), 6);
        assert_eq!(f.flops, 0);
        assert!(f.row_perm.is_identity());
    }

    #[test]
    fn random_sparse_factors_accurately() {
        for seed in 0..5 {
            let a = gen::random_sparse(
                80,
                4,
                0.5,
                ValueModel {
                    diag_scale: 1.0,
                    seed,
                },
            );
            let f = gp_factor(&a, 1.0).unwrap();
            assert!(residual(&a, &f) < 1e-11, "seed {seed}");
        }
    }

    #[test]
    fn grid_factors_and_solves() {
        let a = gen::grid2d(9, 8, 0.5, ValueModel::default());
        let n = a.ncols();
        let f = gp_factor(&a, 1.0).unwrap();
        assert!(residual(&a, &f) < 1e-11);
        let xt: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let b = a.matvec(&xt);
        let x = gp_solve(&f, &b);
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(err < 1e-8, "solve error {err}");
    }

    #[test]
    fn matches_dense_lu_pivot_sequence_on_dense_input() {
        // On a dense matrix with threshold 1.0 the pivot choice (max
        // magnitude, first-index tie-break) must match dense GEPP.
        let a = gen::dense_random(15, ValueModel::default());
        let f = gp_factor(&a, 1.0).unwrap();
        let d = dense_lu(&a.to_dense()).unwrap();
        for i in 0..15 {
            assert_eq!(f.row_perm.old_of_new(i), d.row_perm[i], "pivot row {i}");
        }
        assert!(residual(&a, &f) < 1e-12);
    }

    #[test]
    fn partial_pivoting_bounds_l() {
        let a = gen::random_sparse(60, 5, 0.3, ValueModel::default());
        let f = gp_factor(&a, 1.0).unwrap();
        for v in f.l.values() {
            assert!(v.abs() <= 1.0 + 1e-14);
        }
    }

    #[test]
    fn threshold_pivoting_prefers_diagonal() {
        // With threshold 0.001 the (structurally safe) diagonal is taken
        // almost always; the permutation should be close to identity.
        let a = gen::grid2d(6, 6, 0.2, ValueModel::default());
        let f = gp_factor(&a, 0.001).unwrap();
        let id_count = (0..36).filter(|&i| f.row_perm.new_of_old(i) == i).count();
        assert!(id_count > 30, "only {id_count} rows unmoved");
        assert!(residual(&a, &f) < 1e-9);
    }

    #[test]
    fn singular_matrix_detected() {
        // second column linearly dependent (equal) to first with same pattern
        let d = DenseMat::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![2.0, 2.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ]);
        let a = CscMatrix::from_dense(&d, false);
        assert!(gp_factor(&a, 1.0).is_err());
    }

    #[test]
    fn flops_match_structure_formula() {
        // flops = Σ_k [ nnzL_k + 2·Σ cmods ] — verify against the standard
        // column formula computed from the factors themselves:
        // Σ_j ( nnzL(:,j)' + Σ_{k: U(k,j)≠0} 2·nnzL(:,k)' ) with ' = strict.
        let a = gen::random_sparse(50, 3, 0.5, ValueModel::default());
        let f = gp_factor(&a, 1.0).unwrap();
        let strict_l: Vec<u64> = (0..50).map(|j| (f.l.col(j).0.len() - 1) as u64).collect();
        let mut expect = 0u64;
        for j in 0..50 {
            expect += strict_l[j]; // scaling divisions
            let (rows, vals) = f.u.col(j);
            for (&k, &v) in rows.iter().zip(vals) {
                if (k as usize) < j && v != 0.0 {
                    expect += 2 * strict_l[k as usize];
                }
            }
        }
        assert_eq!(f.flops, expect);
    }

    #[test]
    fn factor_nnz_counts_diagonal_once() {
        let a = CscMatrix::identity(4);
        let f = gp_factor(&a, 1.0).unwrap();
        assert_eq!(f.factor_nnz(), 4);
    }
}
