//! `splu-load` — load generation and serving benchmarks for the S\*
//! solver service.
//!
//! The ROADMAP north star is a solver **service** under heavy traffic,
//! not a one-shot factorization; this crate supplies the traffic. It
//! has two halves:
//!
//! * [`workload`] — a seeded synthetic workload generator: a
//!   population of tenants mixing cold-start (fresh large patterns),
//!   value-churn (Newton-style same-pattern matrix sequences with
//!   deadline-bound solve bursts) and pattern-reuse traffic, laid out
//!   on an open-loop arrival schedule. Fully deterministic per seed.
//! * [`driver`] — replays a schedule against the concurrent solver
//!   service ([`splu_solver::concurrent`]), pacing submissions by wall
//!   clock, sampling solutions for accuracy, and reporting goodput,
//!   p50/p95/p99 latency, cache + refactor-ahead hit rates and
//!   per-shard contention as a `BENCH_solver.json`-compatible record
//!   (consumed by `splu loadgen` and the `--baseline` gate).
//!
//! Everything is hand-rolled on `std` only, like the rest of the
//! workspace.

pub mod driver;
pub mod workload;

pub use driver::{run_load, run_schedule, LoadReport, SAMPLE_EVERY};
pub use workload::{
    generate, tenant_matrix, Event, EventKind, LoadConfig, Schedule, Tenant, TenantClass,
};
