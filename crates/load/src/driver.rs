//! Open-loop replay of a generated schedule against the concurrent
//! solver service, with goodput + latency reporting.
//!
//! The driver paces [`Event`]s by wall clock (an event scheduled at
//! `at_us` is submitted at `epoch + at_us`, never earlier; if the
//! driver falls behind, the backlog is submitted as fast as possible
//! and the maximum scheduling lag is reported). `NewValues` events
//! build the tenant's new matrix and start a speculative
//! refactor-ahead; `Solve` events go through the non-blocking
//! admission path.
//!
//! **Throughput is goodput**: `req_per_sec` counts only requests solved
//! within their deadline, divided by the total wall time including the
//! drain. On a single-core host (like the reference benchmark machine)
//! raw completion throughput is pinned by the CPU, but goodput still
//! separates configurations: one factor worker serializes cheap churn
//! refactors behind multi-ms cold factorizations and their dependent
//! solves blow their deadlines, while several factor workers let the
//! OS timeslice the cold work under the small jobs.
//!
//! Every `sample_every`-th request keeps its solution and is checked
//! against a manufactured `x_true`, so a ≥100k-request run still
//! carries a forward-error bound without retaining 100k vectors.

use crate::workload::{generate, tenant_matrix, EventKind, LoadConfig, Schedule};
use splu_probe::metrics::Registry;
use splu_solver::concurrent::{ConcurrentConfig, ConcurrentService};
use splu_solver::queue::JobStatus;
use splu_solver::{AheadStats, CacheStats, QueueStats, ShardSnapshot};
use splu_sparse::CscMatrix;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Check every `SAMPLE_EVERY`-th request against a known solution.
pub const SAMPLE_EVERY: usize = 97;

/// Everything one load run produced.
pub struct LoadReport {
    /// Factor worker threads the service ran with.
    pub factor_workers: usize,
    /// Total solve worker threads.
    pub solve_workers: usize,
    /// Cache / queue shards.
    pub shards: usize,
    /// Solve requests submitted.
    pub requests: usize,
    /// `NewValues` events replayed (== prefetches issued).
    pub new_values: usize,
    /// Scheduled arrival window, µs.
    pub span_us: u64,
    /// Wall time from first event to full drain, µs.
    pub wall_us: u64,
    /// Worst scheduling lag behind the open-loop timeline, µs.
    pub sched_lag_max_us: u64,
    /// Requests solved within deadline.
    pub solved: u64,
    /// Requests expired at dequeue.
    pub expired: u64,
    /// Requests failed (factorization or solve error).
    pub failed: u64,
    /// **Goodput**: solved requests per wall second.
    pub req_per_sec: f64,
    /// Offered arrival rate: requests per scheduled span second.
    pub offered_per_sec: f64,
    /// Largest forward error over the sampled, solved requests.
    pub max_err: f64,
    /// Sampled requests whose solution was checked.
    pub samples_checked: usize,
    /// Aggregated cache counters.
    pub cache: CacheStats,
    /// Cache bytes resident at shutdown.
    pub cache_resident_bytes: usize,
    /// Per-shard cache observations.
    pub shard_snapshots: Vec<ShardSnapshot>,
    /// Refactor-ahead accounting.
    pub ahead: AheadStats,
    /// Solve queue counters (summed over shards).
    pub queue: QueueStats,
    /// Factor tasks executed.
    pub factor_tasks: u64,
    /// The service's metrics registry (e2e/solve/wait/factor
    /// histograms, per-worker busy counters).
    pub metrics: Arc<Registry>,
}

/// Deterministic synthetic solution for request `id`.
fn x_true(n: usize, nrhs: usize, id: usize) -> Vec<f64> {
    let mut x = vec![0.0; n * nrhs];
    for c in 0..nrhs {
        for i in 0..n {
            x[c * n + i] = ((i * 7 + c * 13 + id * 31) % 17) as f64 * 0.25 - 2.0;
        }
    }
    x
}

/// Replay `schedule` (or generate it from `cfg`) against a
/// [`ConcurrentService`] configured by `service_cfg`.
pub fn run_load(cfg: &LoadConfig, service_cfg: ConcurrentConfig) -> LoadReport {
    let schedule = generate(cfg);
    run_schedule(cfg, &schedule, service_cfg)
}

/// Replay a pre-generated schedule (lets a comparison run reuse the
/// exact same event sequence and matrices).
pub fn run_schedule(
    cfg: &LoadConfig,
    schedule: &Schedule,
    service_cfg: ConcurrentConfig,
) -> LoadReport {
    let svc = ConcurrentService::new(service_cfg);
    let metrics = svc.metrics();
    // current matrix per tenant (only the latest version stays alive)
    let mut current: Vec<Option<Arc<CscMatrix>>> = vec![None; schedule.tenants.len()];
    let mut samples: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut id = 0usize;
    let mut new_values = 0usize;
    let mut lag_max_us = 0u64;
    let epoch = Instant::now();
    for ev in &schedule.events {
        let target = epoch + Duration::from_micros(ev.at_us);
        let now = Instant::now();
        if now < target {
            std::thread::sleep(target - now);
        } else {
            lag_max_us = lag_max_us.max(now.duration_since(target).as_micros() as u64);
        }
        match ev.kind {
            EventKind::NewValues { tenant, version } => {
                let a = Arc::new(tenant_matrix(&schedule.tenants[tenant], version, cfg));
                svc.prefetch(&a);
                current[tenant] = Some(a);
                new_values += 1;
            }
            EventKind::Solve {
                tenant,
                nrhs,
                deadline_us,
            } => {
                let a = current[tenant]
                    .as_ref()
                    .expect("schedule guarantees NewValues first");
                let n = a.ncols();
                let sampled = id.is_multiple_of(SAMPLE_EVERY);
                let b = if sampled {
                    let xt = x_true(n, nrhs, id);
                    let mut b = vec![0.0; n * nrhs];
                    for c in 0..nrhs {
                        a.matvec_into(&xt[c * n..(c + 1) * n], &mut b[c * n..(c + 1) * n]);
                    }
                    samples.insert(id, xt);
                    b
                } else {
                    vec![1.0; n * nrhs]
                };
                svc.submit_solve(id, a, b, nrhs, deadline_us, !sampled);
                id += 1;
            }
        }
    }
    drop(current);
    let report = svc.finish();
    let wall_us = epoch.elapsed().as_micros() as u64;
    metrics
        .gauge("splu_sched_lag_max_us")
        .raise(lag_max_us as f64);

    // e2e latency per request: admission → dequeue (wait, including any
    // flight time) + solve.
    let e2e = metrics.histogram("splu_request_us");
    let mut solved = 0u64;
    let mut expired = 0u64;
    let mut failed = 0u64;
    let mut max_err = 0.0f64;
    let mut samples_checked = 0usize;
    for r in &report.reports {
        e2e.record(r.wait_us + r.solve_us);
        match &r.status {
            JobStatus::Solved => {
                solved += 1;
                if let Some(xt) = samples.get(&r.id) {
                    let x = r.x.as_ref().expect("sampled solve keeps its solution");
                    let err = x
                        .iter()
                        .zip(xt)
                        .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
                    max_err = max_err.max(err);
                    samples_checked += 1;
                }
            }
            JobStatus::DeadlineExpired => expired += 1,
            JobStatus::Failed(_) => failed += 1,
        }
    }
    let wall_secs = (wall_us as f64 / 1e6).max(1e-9);
    let span_secs = (cfg.span_us as f64 / 1e6).max(1e-9);
    LoadReport {
        factor_workers: service_cfg.factor_workers,
        solve_workers: service_cfg.solve_workers,
        shards: service_cfg.shards,
        requests: id,
        new_values,
        span_us: cfg.span_us,
        wall_us,
        sched_lag_max_us: lag_max_us,
        solved,
        expired,
        failed,
        req_per_sec: solved as f64 / wall_secs,
        offered_per_sec: id as f64 / span_secs,
        max_err,
        samples_checked,
        cache: report.cache,
        cache_resident_bytes: report.cache_resident_bytes,
        shard_snapshots: report.shards,
        ahead: report.ahead,
        queue: report.queue,
        factor_tasks: report.factor_tasks,
        metrics,
    }
}

impl LoadReport {
    /// Render the run as a `BENCH_solver.json` document (parseable by
    /// [`splu_solver::SolverRecord`], so the existing `--baseline` /
    /// `SPLU_BENCH_TOL_PCT` gate applies). When `single_worker` holds a
    /// comparison run of the same schedule with one factor worker, a
    /// `single_worker` block and `speedup_vs_single_worker` (goodput
    /// ratio) are appended.
    pub fn to_json(&self, single_worker: Option<&LoadReport>) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"solver_serve\",\n");
        out.push_str("  \"mode\": \"loadgen\",\n");
        out.push_str(&format!("  \"requests\": {},\n", self.requests));
        out.push_str(&format!("  \"new_values_events\": {},\n", self.new_values));
        out.push_str(&format!(
            "  \"factor_workers\": {}, \"solve_workers\": {}, \"shards\": {},\n",
            self.factor_workers, self.solve_workers, self.shards
        ));
        out.push_str(&format!(
            "  \"span_us\": {}, \"wall_us\": {}, \"sched_lag_max_us\": {},\n",
            self.span_us, self.wall_us, self.sched_lag_max_us
        ));
        out.push_str(&format!(
            "  \"solved\": {}, \"deadline_expired\": {}, \"failed\": {},\n",
            self.solved, self.expired, self.failed
        ));
        out.push_str(&format!(
            "  \"req_per_sec\": {:.1},\n  \"offered_per_sec\": {:.1},\n",
            self.req_per_sec, self.offered_per_sec
        ));
        out.push_str(&format!(
            "  \"max_err\": {:e},\n  \"samples_checked\": {},\n",
            self.max_err, self.samples_checked
        ));
        out.push_str("  \"latency_us\": {\n");
        let phases = [
            ("e2e", "splu_request_us"),
            ("solve", "splu_solve_us"),
            ("wait", "splu_solve_wait_us"),
            ("factor", "splu_factor_us"),
        ];
        for (i, (key, hist)) in phases.iter().enumerate() {
            let s = self.metrics.histogram_summary(hist);
            out.push_str(&format!(
                "    \"{key}\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{}\n",
                s.count,
                s.p50,
                s.p95,
                s.p99,
                if i + 1 < phases.len() { "," } else { "" },
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"cache_hit_rate\": {:.6},\n",
            self.cache.hit_rate()
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"analysis_hits\": {}, \"analysis_misses\": {}, \
             \"factor_hits\": {}, \"refactors\": {}, \"evictions\": {}, \
             \"resident_bytes\": {}}},\n",
            self.cache.analysis_hits,
            self.cache.analysis_misses,
            self.cache.factor_hits,
            self.cache.refactors,
            self.cache.evictions,
            self.cache_resident_bytes,
        ));
        out.push_str(&format!(
            "  \"refactor_ahead\": {{\"prefetches\": {}, \"spec_started\": {}, \
             \"hits_ready\": {}, \"hits_inflight\": {}, \"demand_flights\": {}, \
             \"hit_rate\": {:.6}}},\n",
            self.ahead.prefetches,
            self.ahead.spec_started,
            self.ahead.hits_ready,
            self.ahead.hits_inflight,
            self.ahead.demand_flights,
            self.ahead.hit_rate(),
        ));
        out.push_str(&format!(
            "  \"queue\": {{\"accepted\": {}, \"rejected_full\": {}, \
             \"expired\": {}, \"solved\": {}, \"failed\": {}}},\n",
            self.queue.accepted,
            self.queue.rejected_full,
            self.queue.expired,
            self.queue.solved,
            self.queue.failed,
        ));
        out.push_str(&format!("  \"factor_tasks\": {},\n", self.factor_tasks));
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shard_snapshots.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shard\": {}, \"entries\": {}, \"resident_bytes\": {}, \
                 \"lookups\": {}, \"contended_locks\": {}, \"factor_hits\": {}, \
                 \"refactors\": {}, \"evictions\": {}}}{}\n",
                s.shard,
                s.entries,
                s.resident_bytes,
                s.lookups,
                s.contended_locks,
                s.stats.factor_hits,
                s.stats.refactors,
                s.stats.evictions,
                if i + 1 < self.shard_snapshots.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ]");
        if let Some(single) = single_worker {
            let s = single.metrics.histogram_summary("splu_request_us");
            out.push_str(&format!(
                ",\n  \"single_worker\": {{\"factor_workers\": {}, \"req_per_sec\": {:.1}, \
                 \"solved\": {}, \"deadline_expired\": {}, \"p95_e2e_us\": {}}},\n",
                single.factor_workers, single.req_per_sec, single.solved, single.expired, s.p95,
            ));
            let speedup = if single.req_per_sec > 0.0 {
                self.req_per_sec / single.req_per_sec
            } else {
                f64::INFINITY
            };
            out.push_str(&format!("  \"speedup_vs_single_worker\": {speedup:.2}\n"));
        } else {
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_solver::SolverRecord;

    fn tiny_load() -> LoadConfig {
        LoadConfig {
            requests: 150,
            tenants: 16,
            span_us: 120_000,
            cold_dim: (11, 13),
            churn_dim: (6, 9),
            circuit_n: (40, 80),
            deadline_us: (30_000, 60_000),
            ..LoadConfig::default()
        }
    }

    fn tiny_service() -> ConcurrentConfig {
        ConcurrentConfig {
            factor_workers: 2,
            solve_workers: 2,
            shards: 2,
            ..ConcurrentConfig::default()
        }
    }

    #[test]
    fn small_load_end_to_end() {
        let cfg = tiny_load();
        let report = run_load(&cfg, tiny_service());
        assert!(report.requests >= 150);
        assert_eq!(
            report.solved + report.expired + report.failed,
            report.requests as u64,
            "every request reports exactly once"
        );
        assert_eq!(report.failed, 0);
        assert!(report.samples_checked > 0);
        assert!(report.max_err < 1e-6, "max_err {:.3e}", report.max_err);
        assert!(report.new_values > 0);
        assert_eq!(report.ahead.prefetches as usize, report.new_values);
        // churn traffic exercises the speculative path
        assert!(
            report.ahead.hits_ready + report.ahead.hits_inflight > 0,
            "no refactor-ahead hits: {:?}",
            report.ahead
        );
        assert!(report.cache.hit_rate() > 0.0);
        assert!(report.req_per_sec > 0.0);
        let e2e = report.metrics.histogram_summary("splu_request_us");
        assert_eq!(e2e.count as usize, report.requests);
    }

    #[test]
    fn json_record_is_gate_compatible() {
        let cfg = LoadConfig {
            requests: 60,
            span_us: 40_000,
            ..tiny_load()
        };
        let schedule = generate(&cfg);
        let multi = run_schedule(&cfg, &schedule, tiny_service());
        let single = run_schedule(
            &cfg,
            &schedule,
            ConcurrentConfig {
                factor_workers: 1,
                ..tiny_service()
            },
        );
        let json = multi.to_json(Some(&single));
        // the existing serve gate parses the loadgen record directly
        let rec = SolverRecord::parse(&json).expect("gate-parseable record");
        assert!(rec.cache_hit_rate >= 0.0);
        assert!(json.contains("\"mode\": \"loadgen\""));
        assert!(json.contains("\"req_per_sec\""));
        assert!(json.contains("\"refactor_ahead\""));
        assert!(json.contains("\"speedup_vs_single_worker\""));
        assert!(json.contains("\"shards\": ["));
        // without a comparison run the block is absent
        let solo = multi.to_json(None);
        assert!(!solo.contains("single_worker"));
        assert!(SolverRecord::parse(&solo).is_ok());
    }
}
