//! Seeded synthetic multi-tenant workload generation.
//!
//! Models the traffic mix a production factorization service sees
//! (HYLU-style circuit simulation, Newton/time-stepping clients):
//!
//! * **value-churn tenants** (the bulk) — one fixed sparsity pattern
//!   per tenant; each *session* delivers a new value set (a Newton
//!   step) followed by a burst of dependent solves under tight
//!   deadlines. This is the analyze-once/factorize-many regime the
//!   paper's static symbolic factorization is built for, and the
//!   target of the service's speculative refactor-ahead.
//! * **pattern-reuse tenants** — fixed pattern *and* values; solves
//!   only. Pure cache traffic.
//! * **cold-start tenants** — every session brings a brand-new (and
//!   much larger) pattern: the full symbolic + numeric pipeline runs.
//!   These are the head-of-line blockers that serialize a
//!   single-factor-worker service.
//!
//! [`generate`] lays sessions on an **open-loop** arrival schedule
//! (event times are drawn up front over `span_us` and do not react to
//! service backlog — the standard way to measure a service under load
//! rather than measure the load generator). Everything is derived from
//! one seed: the same `LoadConfig` always produces the identical event
//! sequence and the identical matrices.

use splu_sparse::gen::{self, ValueModel};
use splu_sparse::rng::SmallRng;
use splu_sparse::CscMatrix;

/// Traffic class of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantClass {
    /// New large pattern every session (full symbolic + numeric).
    ColdStart,
    /// Fixed pattern, new values per session + solve burst (Newton).
    ValueChurn,
    /// Fixed pattern and values; solves only.
    PatternReuse,
}

impl TenantClass {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            TenantClass::ColdStart => "cold_start",
            TenantClass::ValueChurn => "value_churn",
            TenantClass::PatternReuse => "pattern_reuse",
        }
    }
}

/// One tenant of the synthetic population.
#[derive(Debug, Clone, Copy)]
pub struct Tenant {
    /// Tenant index.
    pub id: usize,
    /// Traffic class.
    pub class: TenantClass,
    /// Per-tenant derivation seed (pattern shape, value streams).
    pub seed: u64,
}

/// What happens at one schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A new matrix (values, and for cold tenants a new pattern)
    /// arrives for the tenant. The serving driver reacts by starting a
    /// speculative refactor-ahead.
    NewValues {
        /// Owning tenant.
        tenant: usize,
        /// Monotonic per-tenant version (0 = initial).
        version: u64,
    },
    /// A solve request against the tenant's current matrix.
    Solve {
        /// Owning tenant.
        tenant: usize,
        /// Right-hand-side columns.
        nrhs: usize,
        /// Deadline in µs from submission (`None` = none).
        deadline_us: Option<u64>,
    },
}

/// One schedule entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Arrival offset from replay start, µs.
    pub at_us: u64,
    /// Payload.
    pub kind: EventKind,
}

/// Workload shape knobs. Every field is deterministic given `seed`.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Minimum number of solve requests to generate (sessions are
    /// whole, so the schedule may slightly overshoot).
    pub requests: usize,
    /// Tenant population size (min 3, one per class).
    pub tenants: usize,
    /// Master seed.
    pub seed: u64,
    /// Open-loop arrival window, µs.
    pub span_us: u64,
    /// Grid dimension range for cold-start patterns (inclusive). The
    /// default (70–87) gives orders ≈ 4900–7600: ≈ 100–200 ms per cold
    /// factorization — long enough that a single factor worker visibly
    /// serializes deadline-bound churn refactors behind them.
    pub cold_dim: (usize, usize),
    /// Grid dimension range for churn/reuse grid patterns (inclusive);
    /// default 10–16 (orders ≈ 100–256, sub-ms refactors).
    pub churn_dim: (usize, usize),
    /// Order range for churn/reuse power-law circuit patterns.
    pub circuit_n: (usize, usize),
    /// Solves per value-churn session (inclusive range) — the Newton
    /// burst length.
    pub newton_burst: (usize, usize),
    /// Deadline range for churn/reuse solves, µs (inclusive).
    pub deadline_us: (u64, u64),
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            requests: 100_000,
            tenants: 48,
            seed: 0x10AD_F00D,
            span_us: 10_000_000,
            cold_dim: (70, 87),
            churn_dim: (10, 16),
            circuit_n: (120, 240),
            newton_burst: (6, 10),
            deadline_us: (25_000, 60_000),
        }
    }
}

/// A generated schedule: the tenant population plus time-ordered
/// events.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The tenant population.
    pub tenants: Vec<Tenant>,
    /// Events sorted by `at_us` (ties keep generation order, so a
    /// tenant's `NewValues` always precedes its dependent solves).
    pub events: Vec<Event>,
    /// Number of `Solve` events (≥ `LoadConfig::requests`).
    pub solve_count: usize,
}

fn class_of(i: usize) -> TenantClass {
    // per 16 tenants: 1 cold-start, 2 pattern-reuse, 13 value-churn —
    // cold solves end up a few percent of traffic, churn ≈ 80–85 %,
    // and cold factorizations arrive often enough to keep a serial
    // service blockaded for a large share of the span.
    match i % 16 {
        0 => TenantClass::ColdStart,
        1 | 2 => TenantClass::PatternReuse,
        _ => TenantClass::ValueChurn,
    }
}

/// Generate the tenant population and the open-loop event schedule.
pub fn generate(cfg: &LoadConfig) -> Schedule {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n_tenants = cfg.tenants.max(3);
    let tenants: Vec<Tenant> = (0..n_tenants)
        .map(|id| Tenant {
            id,
            class: class_of(id),
            seed: cfg.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        })
        .collect();
    let span = cfg.span_us.max(1) as usize;
    let mut events: Vec<Event> = Vec::with_capacity(cfg.requests * 2);
    // Every tenant's initial matrix arrives at t = 0, before any
    // session, so a solve never races its tenant's first NewValues.
    let mut versions = vec![0u64; n_tenants];
    for t in &tenants {
        events.push(Event {
            at_us: 0,
            kind: EventKind::NewValues {
                tenant: t.id,
                version: 0,
            },
        });
    }
    let mut solve_count = 0usize;
    while solve_count < cfg.requests {
        let ti = rng.gen_range(0..n_tenants);
        let t = tenants[ti];
        let at = rng.gen_range(0..span) as u64;
        match t.class {
            TenantClass::ValueChurn => {
                versions[ti] += 1;
                events.push(Event {
                    at_us: at,
                    kind: EventKind::NewValues {
                        tenant: t.id,
                        version: versions[ti],
                    },
                });
                let burst = rng.gen_range(cfg.newton_burst.0..=cfg.newton_burst.1.max(1));
                for k in 0..burst {
                    // solves trail the value arrival by a growing lag
                    // (downstream assembly work between Newton solves)
                    let dt = 150 * (k as u64 + 1) + rng.gen_range(0..120usize) as u64;
                    let deadline =
                        rng.gen_range(cfg.deadline_us.0 as usize..=cfg.deadline_us.1 as usize);
                    events.push(Event {
                        at_us: at + dt,
                        kind: EventKind::Solve {
                            tenant: t.id,
                            nrhs: 1,
                            deadline_us: Some(deadline as u64),
                        },
                    });
                    solve_count += 1;
                }
            }
            TenantClass::PatternReuse => {
                let burst = rng.gen_range(1..=3usize);
                for k in 0..burst {
                    let dt = 100 * k as u64 + rng.gen_range(0..90usize) as u64;
                    let deadline =
                        rng.gen_range(cfg.deadline_us.0 as usize..=cfg.deadline_us.1 as usize);
                    events.push(Event {
                        at_us: at + dt,
                        kind: EventKind::Solve {
                            tenant: t.id,
                            nrhs: rng.gen_range(1..=2usize),
                            deadline_us: Some(deadline as u64),
                        },
                    });
                    solve_count += 1;
                }
            }
            TenantClass::ColdStart => {
                versions[ti] += 1;
                events.push(Event {
                    at_us: at,
                    kind: EventKind::NewValues {
                        tenant: t.id,
                        version: versions[ti],
                    },
                });
                let burst = rng.gen_range(2..=4usize);
                for k in 0..burst {
                    let dt = 2_000 * (k as u64 + 1) + rng.gen_range(0..500usize) as u64;
                    events.push(Event {
                        at_us: at + dt,
                        kind: EventKind::Solve {
                            tenant: t.id,
                            nrhs: 1,
                            deadline_us: None,
                        },
                    });
                    solve_count += 1;
                }
            }
        }
    }
    // Stable by arrival time: equal times keep generation order, so the
    // t = 0 initial NewValues stay ahead of any t = 0 session.
    events.sort_by_key(|e| e.at_us);
    Schedule {
        tenants,
        events,
        solve_count,
    }
}

/// Build the matrix a tenant serves at `version`. Deterministic in
/// `(tenant.seed, version, cfg)`; the driver caches the current
/// version per tenant, so this runs once per `NewValues` event.
pub fn tenant_matrix(t: &Tenant, version: u64, cfg: &LoadConfig) -> CscMatrix {
    match t.class {
        TenantClass::ColdStart => {
            // a fresh pattern every session: order ≈ cold_dim²
            let mut r =
                SmallRng::seed_from_u64(t.seed ^ version.wrapping_mul(0xA076_1D64_78BD_642F));
            let dx = r.gen_range(cfg.cold_dim.0..=cfg.cold_dim.1);
            let dy = r.gen_range(cfg.cold_dim.0..=cfg.cold_dim.1);
            gen::grid2d(
                dx,
                dy,
                0.4,
                ValueModel {
                    diag_scale: 1.0,
                    seed: t.seed ^ version,
                },
            )
        }
        TenantClass::ValueChurn | TenantClass::PatternReuse => {
            let mut r = SmallRng::seed_from_u64(t.seed);
            let vm = ValueModel {
                diag_scale: 1.0,
                seed: t.seed,
            };
            let base = match r.gen_range(0..3usize) {
                0 => {
                    let dx = r.gen_range(cfg.churn_dim.0..=cfg.churn_dim.1);
                    let dy = r.gen_range(cfg.churn_dim.0..=cfg.churn_dim.1);
                    gen::grid2d(dx, dy, 0.4, vm)
                }
                1 => {
                    let n = r.gen_range(cfg.circuit_n.0..=cfg.circuit_n.1);
                    gen::power_law_circuit(n, 4, 0.9, vm)
                }
                _ => {
                    let n = r.gen_range(cfg.circuit_n.0..=cfg.circuit_n.1);
                    gen::random_sparse(n, 4, 0.6, vm)
                }
            };
            // reuse tenants pin version 0; churn tenants re-value
            if version == 0 || t.class == TenantClass::PatternReuse {
                base
            } else {
                gen::perturb_values(&base, version)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> LoadConfig {
        LoadConfig {
            requests: 200,
            tenants: 16,
            span_us: 50_000,
            cold_dim: (10, 12),
            churn_dim: (6, 9),
            circuit_n: (40, 80),
            ..LoadConfig::default()
        }
    }

    #[test]
    fn generate_is_deterministic_and_seed_sensitive() {
        let cfg = small_cfg();
        let s1 = generate(&cfg);
        let s2 = generate(&cfg);
        assert_eq!(s1.events, s2.events);
        assert_eq!(s1.solve_count, s2.solve_count);
        let other = generate(&LoadConfig {
            seed: cfg.seed ^ 1,
            ..cfg
        });
        assert_ne!(s1.events, other.events);
    }

    #[test]
    fn schedule_covers_all_classes_and_meets_request_floor() {
        let s = generate(&small_cfg());
        assert!(s.solve_count >= 200);
        let n_solves = s
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Solve { .. }))
            .count();
        assert_eq!(n_solves, s.solve_count);
        for class in [
            TenantClass::ColdStart,
            TenantClass::ValueChurn,
            TenantClass::PatternReuse,
        ] {
            assert!(
                s.tenants.iter().any(|t| t.class == class),
                "missing {class:?}"
            );
        }
        // churn solves carry deadlines; cold ones don't
        let churn_ids: Vec<usize> = s
            .tenants
            .iter()
            .filter(|t| t.class == TenantClass::ValueChurn)
            .map(|t| t.id)
            .collect();
        assert!(s.events.iter().any(|e| matches!(
            e.kind,
            EventKind::Solve { tenant, deadline_us: Some(_), .. } if churn_ids.contains(&tenant)
        )));
    }

    #[test]
    fn every_solve_follows_its_tenants_new_values() {
        let s = generate(&small_cfg());
        let mut seen = vec![false; s.tenants.len()];
        for e in &s.events {
            match e.kind {
                EventKind::NewValues { tenant, .. } => seen[tenant] = true,
                EventKind::Solve { tenant, .. } => {
                    assert!(seen[tenant], "solve before NewValues for tenant {tenant}");
                }
            }
        }
        // arrival times are sorted
        assert!(s.events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn tenant_matrices_are_deterministic_and_version_aware() {
        let cfg = small_cfg();
        let s = generate(&cfg);
        let churn = *s
            .tenants
            .iter()
            .find(|t| t.class == TenantClass::ValueChurn)
            .unwrap();
        let m0 = tenant_matrix(&churn, 0, &cfg);
        let m0b = tenant_matrix(&churn, 0, &cfg);
        assert_eq!(m0, m0b);
        let m1 = tenant_matrix(&churn, 1, &cfg);
        // same pattern, new values
        assert_eq!(m0.pattern_fingerprint(), m1.pattern_fingerprint());
        assert_ne!(m0.value_fingerprint(), m1.value_fingerprint());
        // reuse tenants pin their values across versions
        let reuse = *s
            .tenants
            .iter()
            .find(|t| t.class == TenantClass::PatternReuse)
            .unwrap();
        assert_eq!(
            tenant_matrix(&reuse, 0, &cfg).value_fingerprint(),
            tenant_matrix(&reuse, 3, &cfg).value_fingerprint()
        );
        // cold tenants change pattern per version
        let cold = *s
            .tenants
            .iter()
            .find(|t| t.class == TenantClass::ColdStart)
            .unwrap();
        assert_ne!(
            tenant_matrix(&cold, 1, &cfg).pattern_fingerprint(),
            tenant_matrix(&cold, 2, &cfg).pattern_fingerprint()
        );
    }
}
