//! Generic text Gantt rendering.
//!
//! One renderer serves two producers: `splu-sched`'s discrete-event
//! simulations (Fig. 11 of the paper) and this crate's recorded
//! [`Trace`](crate::Trace)s from real thread-backed runs. Both reduce
//! their data to flat [`Bar`] lists and call [`render_bars`].

use std::fmt::Write as _;

/// One busy interval on a processor's row.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Processor row (0-based).
    pub proc: usize,
    /// Start time, any consistent unit.
    pub start: f64,
    /// Finish time, same unit as `start`.
    pub finish: f64,
    /// Label appended after the row (task or stage name).
    pub label: String,
}

/// Render bars as a text Gantt chart: one line per processor, `width`
/// character cells across `[0, extent]`, labels listed after each bar in
/// start order. `header`, when given, becomes the first line. `extent`
/// defaults to the latest finish when `None`.
pub fn render_bars(
    bars: &[Bar],
    nprocs: usize,
    width: usize,
    extent: Option<f64>,
    header: Option<&str>,
) -> String {
    let span = extent
        .unwrap_or_else(|| bars.iter().fold(0.0f64, |m, b| m.max(b.finish)))
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    if let Some(h) = header {
        let _ = writeln!(out, "{h}");
    }
    for p in 0..nprocs {
        let mut cells = vec![' '; width];
        let mut labels: Vec<(usize, &str)> = Vec::new();
        for bar in bars.iter().filter(|b| b.proc == p) {
            let c0 = ((bar.start / span) * width as f64).floor() as usize;
            let c1 = (((bar.finish / span) * width as f64).ceil() as usize).min(width);
            for cell in cells.iter_mut().take(c1).skip(c0.min(width)) {
                *cell = '█';
            }
            labels.push((c0, bar.label.as_str()));
        }
        labels.sort();
        let row: String = cells.into_iter().collect();
        let seq = labels.iter().map(|(_, l)| *l).collect::<Vec<_>>().join(" ");
        let _ = writeln!(out, "P{p:<3}|{row}| {seq}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_proc_plus_header() {
        let bars = vec![
            Bar {
                proc: 0,
                start: 0.0,
                finish: 1.0,
                label: "F(1)".into(),
            },
            Bar {
                proc: 1,
                start: 1.0,
                finish: 2.0,
                label: "U(2,1)".into(),
            },
        ];
        let s = render_bars(&bars, 2, 40, None, Some("makespan: 2.0"));
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("P0"));
        assert!(s.contains("P1"));
        assert!(s.contains("F(1)"));
        assert!(s.starts_with("makespan: 2.0"));
    }

    #[test]
    fn labels_in_start_order() {
        let bars = vec![
            Bar {
                proc: 0,
                start: 5.0,
                finish: 6.0,
                label: "late".into(),
            },
            Bar {
                proc: 0,
                start: 0.0,
                finish: 1.0,
                label: "early".into(),
            },
        ];
        let s = render_bars(&bars, 1, 60, None, None);
        let early = s.find("early").unwrap();
        let late = s.find("late").unwrap();
        assert!(early < late);
    }

    #[test]
    fn empty_bars_still_render_rows() {
        let s = render_bars(&[], 3, 10, None, None);
        assert_eq!(s.lines().count(), 3);
        for line in s.lines() {
            assert!(line.contains("|          |"));
        }
    }

    #[test]
    fn explicit_extent_scales_bars() {
        let bars = vec![Bar {
            proc: 0,
            start: 0.0,
            finish: 1.0,
            label: "a".into(),
        }];
        // with extent 10 the 1-unit bar fills ~1/10 of the row
        let s = render_bars(&bars, 1, 100, Some(10.0), None);
        let filled = s.chars().filter(|&c| c == '█').count();
        assert!(filled <= 12, "bar too wide: {filled}");
        assert!(filled >= 8, "bar too narrow: {filled}");
    }
}
