//! Always-on production metrics: counters, gauges, and log-bucketed
//! histograms behind a name-keyed registry.
//!
//! Unlike the flight recorder ([`crate::Probe`]), which is compiled out
//! without the `probe` cargo feature and is meant for offline trace
//! analysis, this module is **always on**: a long-running solver service
//! needs request percentiles and cache/queue counters in every build.
//! The design keeps the hot path lock-free — callers resolve a metric
//! name to an `Arc` handle once (one mutex acquisition) and afterwards
//! every update is a relaxed atomic operation.
//!
//! Histograms use fixed power-of-two buckets: bucket 0 holds the value
//! `0` and bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`. Two
//! histograms therefore always have identical bucket boundaries, which
//! makes merging across workers a plain element-wise add (associative
//! and commutative), and quantile estimation a cumulative walk that
//! reports the upper bound of the containing bucket — a conservative
//! (never underestimating) p50/p95/p99.

use crate::json::escape_into;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: the zero bucket plus one per power of
/// two up to `2^63`.
pub const HIST_BUCKETS: usize = 65;

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64` (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to at least `v` (high-water mark).
    pub fn raise(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while f64::from_bits(cur) < v {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed log2-bucket histogram of `u64` samples (latencies in µs, byte
/// counts, …). All methods are thread-safe; `record` is two relaxed
/// atomic adds plus one on the bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Conservative 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Conservative 95th percentile (bucket upper bound).
    pub p95: u64,
    /// Conservative 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: 0 for the value 0, else
    /// `1 + floor(log2 v)` (so bucket `i ≥ 1` covers `[2^(i-1), 2^i)`).
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Fold another histogram into this one (element-wise bucket add —
    /// associative, so worker-local histograms can be merged in any
    /// grouping).
    pub fn merge_from(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(&other.buckets) {
            let v = o.load(Ordering::Relaxed);
            if v > 0 {
                b.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of the raw bucket counts.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Conservative quantile: the upper bound of the bucket containing
    /// the `ceil(q·count)`-th smallest sample (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(HIST_BUCKETS - 1)
    }

    /// Count + sum + p50/p95/p99 in one snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

#[derive(Default)]
struct Families {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Name-keyed metric registry. `counter`/`gauge`/`histogram` get or
/// create a handle under one short mutex acquisition; the handles
/// themselves are lock-free. Names may carry a Prometheus label set
/// (`splu_machine_messages_total{rank="3"}`); the exporters keep it
/// intact.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Families>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fam = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &fam.counters.len())
            .field("gauges", &fam.gauges.len())
            .field("histograms", &fam.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut f = self.inner.lock().unwrap();
        f.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut f = self.inner.lock().unwrap();
        f.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut f = self.inner.lock().unwrap();
        f.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Value of counter `name`, 0 if absent (for tests and gates).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .map_or(0, |c| c.get())
    }

    /// Summary of histogram `name`, empty if absent.
    pub fn histogram_summary(&self, name: &str) -> HistogramSummary {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .map_or_else(HistogramSummary::default, |h| h.summary())
    }

    /// Fold every metric of `other` into this registry: counters add,
    /// gauges take the max, histograms merge bucket-wise.
    pub fn merge_from(&self, other: &Registry) {
        let o = other.inner.lock().unwrap();
        for (name, c) in &o.counters {
            self.counter(name).add(c.get());
        }
        for (name, g) in &o.gauges {
            self.gauge(name).raise(g.get());
        }
        for (name, h) in &o.histograms {
            self.histogram(name).merge_from(h);
        }
    }

    /// Prometheus text exposition of every metric. Histograms render
    /// the standard `_bucket{le=…}`/`_sum`/`_count` series (only
    /// occupied buckets, cumulative, plus `+Inf`).
    pub fn prometheus_text(&self) -> String {
        let f = self.inner.lock().unwrap();
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, c) in &f.counters {
            type_line(&mut out, &mut last_family, name, "counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        last_family.clear();
        for (name, g) in &f.gauges {
            type_line(&mut out, &mut last_family, name, "gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        last_family.clear();
        for (name, h) in &f.histograms {
            type_line(&mut out, &mut last_family, name, "histogram");
            let counts = h.bucket_counts();
            let mut cum = 0u64;
            for (i, &n) in counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let _ = writeln!(
                    out,
                    "{} {cum}",
                    with_label(
                        name,
                        "_bucket",
                        &format!("le=\"{}\"", Histogram::bucket_upper(i))
                    )
                );
            }
            let _ = writeln!(
                out,
                "{} {}",
                with_label(name, "_bucket", "le=\"+Inf\""),
                h.count()
            );
            let _ = writeln!(out, "{} {}", with_suffix(name, "_sum"), h.sum());
            let _ = writeln!(out, "{} {}", with_suffix(name, "_count"), h.count());
        }
        out
    }

    /// JSON snapshot: counters and gauges by name, histograms with
    /// count/sum/p50/p95/p99 and the occupied `[upper, count]` buckets.
    pub fn json_snapshot(&self) -> String {
        let f = self.inner.lock().unwrap();
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, c) in &f.counters {
            json_key(&mut out, &mut first, name);
            let _ = write!(out, "{}", c.get());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, g) in &f.gauges {
            json_key(&mut out, &mut first, name);
            let _ = write!(out, "{:.6}", g.get());
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &f.histograms {
            json_key(&mut out, &mut first, name);
            let s = h.summary();
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                s.count, s.sum, s.p50, s.p95, s.p99
            );
            let mut bfirst = true;
            for (i, &n) in h.bucket_counts().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !bfirst {
                    out.push_str(", ");
                }
                bfirst = false;
                let _ = write!(out, "[{}, {n}]", Histogram::bucket_upper(i));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Emit one `# TYPE` comment per metric family (the name with its label
/// set stripped).
fn type_line(out: &mut String, last_family: &mut String, name: &str, kind: &str) {
    let family = name.split('{').next().unwrap_or(name);
    if family != last_family {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        *last_family = family.to_string();
    }
}

/// `base{labels}` + suffix → `base_suffix{labels}`.
fn with_suffix(name: &str, suffix: &str) -> String {
    match name.split_once('{') {
        Some((base, rest)) => format!("{base}{suffix}{{{rest}"),
        None => format!("{name}{suffix}"),
    }
}

/// `base{labels}` + suffix + extra label → `base_suffix{labels,extra}`.
fn with_label(name: &str, suffix: &str, label: &str) -> String {
    match name.split_once('{') {
        Some((base, rest)) => {
            let rest = rest.trim_end_matches('}');
            format!("{base}{suffix}{{{rest},{label}}}")
        }
        None => format!("{name}{suffix}{{{label}}}"),
    }
}

fn json_key(out: &mut String, first: &mut bool, name: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n    ");
    escape_into(out, name);
    out.push_str(": ");
}

/// The process-wide registry. The machine runtime reports per-rank
/// communication and park time here; anything without a natural
/// per-component registry may use it too.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("jobs_total");
        c.inc();
        c.add(4);
        assert_eq!(r.counter_value("jobs_total"), 5);
        // same name resolves to the same metric
        r.counter("jobs_total").inc();
        assert_eq!(c.get(), 6);

        let g = r.gauge("depth");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.raise(1.0); // below current: no-op
        assert_eq!(g.get(), 2.5);
        g.raise(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // uppers are inclusive and agree with the index mapping
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(3), 7);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 5, 1023, 1024, 1 << 40] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper(i));
            if i > 0 {
                assert!(v > Histogram::bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        // 1..=100: p50 lands in bucket [32,63], p99 in [64,127]
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.quantile(0.50), 63);
        assert_eq!(h.quantile(0.95), 127);
        assert_eq!(h.quantile(0.99), 127);
        // all mass in one bucket: every quantile is that bucket's upper
        let h2 = Histogram::new();
        for _ in 0..10 {
            h2.record(5);
        }
        assert_eq!(h2.quantile(0.01), 7);
        assert_eq!(h2.quantile(0.99), 7);
        // empty histogram
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_associative() {
        let samples: [&[u64]; 3] = [&[1, 2, 3, 900], &[64, 64, 64], &[0, 0, 7_000_000]];
        // (a ⊕ b) ⊕ c
        let left = Histogram::new();
        let ab = Histogram::new();
        for &v in samples[0].iter().chain(samples[1]) {
            ab.record(v);
        }
        left.merge_from(&ab);
        let c = Histogram::new();
        for &v in samples[2] {
            c.record(v);
        }
        left.merge_from(&c);
        // a ⊕ (b ⊕ c)
        let right = Histogram::new();
        for &v in samples[0] {
            right.record(v);
        }
        let bc = Histogram::new();
        for &v in samples[1].iter().chain(samples[2]) {
            bc.record(v);
        }
        right.merge_from(&bc);
        assert_eq!(left.bucket_counts(), right.bucket_counts());
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(left.summary(), right.summary());
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let r = Registry::new();
        r.counter("splu_jobs_total").add(3);
        r.counter("splu_machine_messages_total{rank=\"0\"}").add(7);
        r.gauge("splu_queue_depth").set(2.0);
        let h = r.histogram("splu_solve_us");
        h.record(3);
        h.record(100);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE splu_jobs_total counter"));
        assert!(text.contains("splu_jobs_total 3"));
        assert!(text.contains("# TYPE splu_machine_messages_total counter"));
        assert!(text.contains("splu_machine_messages_total{rank=\"0\"} 7"));
        assert!(text.contains("# TYPE splu_queue_depth gauge"));
        assert!(text.contains("# TYPE splu_solve_us histogram"));
        assert!(text.contains("splu_solve_us_bucket{le=\"3\"} 1"));
        assert!(text.contains("splu_solve_us_bucket{le=\"127\"} 2"));
        assert!(text.contains("splu_solve_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("splu_solve_us_sum 103"));
        assert!(text.contains("splu_solve_us_count 2"));
    }

    #[test]
    fn labeled_histogram_suffixes_keep_labels() {
        let r = Registry::new();
        r.histogram("splu_worker_busy_us{worker=\"1\"}").record(10);
        let text = r.prometheus_text();
        assert!(text.contains("splu_worker_busy_us_bucket{worker=\"1\",le=\"15\"} 1"));
        assert!(text.contains("splu_worker_busy_us_sum{worker=\"1\"} 10"));
        assert!(text.contains("splu_worker_busy_us_count{worker=\"1\"} 1"));
    }

    #[test]
    fn json_snapshot_parses_and_carries_percentiles() {
        let r = Registry::new();
        r.counter("hits").add(2);
        r.gauge("util").set(0.75);
        let h = r.histogram("lat_us");
        for v in 1..=100u64 {
            h.record(v);
        }
        let v = json::parse(&r.json_snapshot()).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("hits").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("util").unwrap().as_f64(),
            Some(0.75)
        );
        let lat = v.get("histograms").unwrap().get("lat_us").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(100));
        assert_eq!(lat.get("p50").unwrap().as_u64(), Some(63));
        assert_eq!(lat.get("p95").unwrap().as_u64(), Some(127));
        assert_eq!(lat.get("p99").unwrap().as_u64(), Some(127));
        assert!(!lat.get("buckets").unwrap().items().unwrap().is_empty());
    }

    #[test]
    fn registry_merge_folds_everything() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("n").add(1);
        b.counter("n").add(2);
        a.gauge("g").set(1.0);
        b.gauge("g").set(3.0);
        a.histogram("h").record(4);
        b.histogram("h").record(90);
        a.merge_from(&b);
        assert_eq!(a.counter_value("n"), 3);
        assert_eq!(a.gauge("g").get(), 3.0);
        let s = a.histogram_summary("h");
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 94);
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("metrics_selftest_total").inc();
        assert!(global().counter_value("metrics_selftest_total") >= 1);
    }
}
