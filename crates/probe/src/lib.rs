//! `splu-probe` — flight-recorder tracing for the S\* pipeline.
//!
//! The paper's whole evaluation (Tables 3–7, Figs 16–18) is built from
//! per-processor, per-stage measurements: elapsed time per
//! `ScaleSwap`/`Factor`/`Update` stage, communication volume, buffer
//! occupancy (§5.2), and load balance. This crate records exactly those
//! timelines from the *real* thread-backed runs (as opposed to the
//! discrete-event projections in `splu-sched`):
//!
//! * [`Collector`] / [`Probe`] — a per-processor event recorder. Each
//!   simulated processor owns its buffer outright, so recording a span or
//!   bumping a counter is a plain `Vec` push — no locks, no atomics on
//!   the hot path. Buffers are handed to the collector once, when the
//!   processor finishes.
//! * [`export`] — three exporters: Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`, one track per processor), an ASCII
//!   Gantt chart, and a machine-readable run summary (per-stage times,
//!   communication volume, buffer high-water, load imbalance).
//! * [`json`] — a minimal JSON parser so tests can round-trip the
//!   exported files without external crates.
//! * [`flops`] — thread-local flop counters the BLAS kernels feed, split
//!   by BLAS level (the paper's `w1`/`w2`/`w3` distinction).
//! * [`gantt`] — the generic text Gantt renderer (shared with
//!   `splu-sched`'s Fig.-11 charts).
//!
//! Everything is hand-rolled on `std` only: the build environment cannot
//! reach crates.io, so `tracing`/`serde` are off the table by design.
//!
//! ## The `probe` feature
//!
//! With the `probe` cargo feature **off** (the default for this crate
//! alone), [`Probe`] is a zero-sized type and every recording method is
//! an empty `#[inline]` function — instrumented code paths compile to
//! no-ops and behavior is bit-for-bit identical. The root `sstar`
//! package turns the feature on by default. [`ENABLED`] reports which
//! way this build went.

pub mod analyze;
pub mod export;
pub mod flops;
pub mod gantt;
pub mod json;
pub mod metrics;
mod record;

pub use record::{collect, Collector, Probe, SpanGuard};

/// Whether this build records anything (the `probe` cargo feature).
pub const ENABLED: bool = cfg!(feature = "probe");

/// One completed span on a processor timeline: a paper-named stage
/// (`scale-swap`, `panel-factor`, `row-swap`, `update`, …) plus the
/// elimination stage `k` it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (static: span names come from the instrumented code).
    pub name: &'static str,
    /// Detail value — the elimination stage `k` for pipeline stages.
    pub detail: u32,
    /// Start, nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the collector's epoch.
    pub end_ns: u64,
}

/// An instant event (send/recv/park/unpark/poison marks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mark {
    /// Event name.
    pub name: &'static str,
    /// Free detail value (byte counts, tags, …).
    pub detail: u64,
    /// Timestamp, nanoseconds since the collector's epoch.
    pub t_ns: u64,
}

/// Everything one processor recorded.
#[derive(Debug, Clone, Default)]
pub struct ProcTimeline {
    /// Processor rank.
    pub rank: u32,
    /// Completed spans, in completion order.
    pub spans: Vec<Span>,
    /// Instant events, in emission order.
    pub marks: Vec<Mark>,
    /// Named counters (sorted map for deterministic export).
    pub counters: std::collections::BTreeMap<&'static str, u64>,
}

impl ProcTimeline {
    /// Busy nanoseconds: total span time at nesting depth zero (nested
    /// spans — e.g. `row-swap` inside `scale-swap` — are not
    /// double-counted; spans on one processor never overlap except by
    /// nesting).
    pub fn busy_ns(&self) -> u64 {
        // sweep over span boundaries, counting time covered by ≥1 span
        let mut edges: Vec<(u64, i64)> = Vec::with_capacity(self.spans.len() * 2);
        for s in &self.spans {
            edges.push((s.start_ns, 1));
            edges.push((s.end_ns, -1));
        }
        edges.sort_unstable();
        let (mut depth, mut busy, mut last) = (0i64, 0u64, 0u64);
        for (t, d) in edges {
            if depth > 0 {
                busy += t - last;
            }
            depth += d;
            last = t;
        }
        busy
    }
}

/// A full recorded run: one timeline per processor.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-processor timelines, sorted by rank.
    pub procs: Vec<ProcTimeline>,
}

impl Trace {
    /// Total over all processors of counter `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.procs.iter().filter_map(|p| p.counters.get(name)).sum()
    }

    /// Maximum over all processors of counter `name` (for high-water
    /// gauges).
    pub fn counter_max(&self, name: &str) -> u64 {
        self.procs
            .iter()
            .filter_map(|p| p.counters.get(name).copied())
            .max()
            .unwrap_or(0)
    }

    /// Count of spans named `name` across all processors.
    pub fn span_count(&self, name: &str) -> usize {
        self.procs
            .iter()
            .map(|p| p.spans.iter().filter(|s| s.name == name).count())
            .sum()
    }

    /// Load imbalance ratio `max(busy) / mean(busy)` over processors
    /// (1.0 = perfectly balanced; the paper's Fig. 18 statistic).
    pub fn load_imbalance(&self) -> f64 {
        if self.procs.is_empty() {
            return 1.0;
        }
        let busy: Vec<u64> = self.procs.iter().map(|p| p.busy_ns()).collect();
        let max = busy.iter().copied().max().unwrap_or(0) as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Wall-clock extent of the trace in nanoseconds (latest span end or
    /// mark).
    pub fn extent_ns(&self) -> u64 {
        self.procs
            .iter()
            .flat_map(|p| {
                p.spans
                    .iter()
                    .map(|s| s.end_ns)
                    .chain(p.marks.iter().map(|m| m.t_ns))
            })
            .max()
            .unwrap_or(0)
    }
}
