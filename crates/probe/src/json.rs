//! Minimal JSON: escaping for the emitters and a small recursive-descent
//! parser so tests can verify the exported files round-trip. Std-only by
//! necessity (no crates.io access), and deliberately strict: the parser
//! accepts exactly RFC-8259 JSON, which keeps the exporters honest.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member access for objects: `v.get("traceEvents")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.i)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.ws();
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.ws();
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.ws();
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            out.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.ws();
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("bad \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // surrogate pairs are not needed by our emitters;
                            // decode BMP scalars, reject the rest
                            out.push(char::from_u32(cp).ok_or("surrogate in \\u escape")?);
                        }
                        _ => return Err(format!("bad escape '\\{}'", e as char)),
                    }
                }
                Some(_) => {
                    // copy one UTF-8 scalar
                    let rest =
                        std::str::from_utf8(&self.b[self.i..]).map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number '{s}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "x"}, []], "c": 2}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_u64(), Some(2));
        let arr = v.get("a").unwrap().items().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut buf = String::new();
        escape_into(&mut buf, nasty);
        assert_eq!(parse(&buf).unwrap(), Value::Str(nasty.into()));
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo ∑\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ∑"));
    }
}
