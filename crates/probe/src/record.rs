//! The recorder: per-processor handles feeding a shared collector.
//!
//! Recording is single-writer by construction — each [`Probe`] is owned
//! by exactly one simulated processor, and its event buffer is a plain
//! `Vec` behind a `RefCell` (no locks or atomics on the hot path). The
//! only synchronization is one mutex acquisition per processor, at
//! flush time (when the `Probe` is dropped at the end of the SPMD
//! closure).
//!
//! With the `probe` feature off, [`Probe`] is zero-sized and every
//! method body is empty — the instrumented call sites compile away.

use crate::Trace;

#[cfg(feature = "probe")]
mod imp {
    use crate::{flops, Mark, ProcTimeline, Span, Trace};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    struct Sink {
        epoch: Instant,
        done: Mutex<Vec<ProcTimeline>>,
    }

    /// Gathers the timelines of one traced run.
    pub struct Collector {
        sink: Arc<Sink>,
    }

    impl Collector {
        /// Start a collection; its creation instant is the trace epoch.
        pub fn new() -> Self {
            Self {
                sink: Arc::new(Sink {
                    epoch: Instant::now(),
                    done: Mutex::new(Vec::new()),
                }),
            }
        }

        /// A recording handle for processor `rank`. Hand it to the
        /// processor's thread; it flushes itself on drop.
        pub fn probe(&self, rank: usize) -> Probe {
            Probe {
                inner: Some(Box::new(Inner {
                    sink: self.sink.clone(),
                    tl: RefCell::new(ProcTimeline {
                        rank: rank as u32,
                        ..ProcTimeline::default()
                    }),
                    flops_base: [0; 3],
                })),
            }
        }

        /// Finish: all probes must be dropped (i.e. all processors
        /// joined). Returns timelines sorted by rank.
        pub fn finish(self) -> Trace {
            let mut procs = std::mem::take(&mut *self.sink.done.lock().unwrap());
            procs.sort_by_key(|p| p.rank);
            Trace { procs }
        }
    }

    impl Default for Collector {
        fn default() -> Self {
            Self::new()
        }
    }

    struct Inner {
        sink: Arc<Sink>,
        tl: RefCell<ProcTimeline>,
        flops_base: [u64; 3],
    }

    /// Per-processor recording handle (real implementation).
    pub struct Probe {
        inner: Option<Box<Inner>>,
    }

    impl Probe {
        /// A handle that records nothing.
        pub fn disabled() -> Self {
            Self { inner: None }
        }

        /// Whether this handle records.
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// Call from the owning thread before recording: snapshots the
        /// thread-local flop counters so the flush reports only flops
        /// performed by this processor.
        pub fn attach_thread(&mut self) {
            if let Some(inner) = &mut self.inner {
                inner.flops_base = flops::snapshot();
            }
        }

        fn now_ns(inner: &Inner) -> u64 {
            inner.sink.epoch.elapsed().as_nanos() as u64
        }

        /// Open a span; it records itself when the guard drops.
        #[must_use = "the span ends when the guard is dropped"]
        pub fn span(&self, name: &'static str, detail: u32) -> SpanGuard<'_> {
            SpanGuard {
                probe: self,
                name,
                detail,
                start_ns: self.inner.as_deref().map(Self::now_ns).unwrap_or(0),
            }
        }

        /// Current timestamp (ns since the collector epoch; 0 when
        /// disabled). Pair with [`Probe::span_at`] where holding a
        /// [`SpanGuard`] would conflict with other borrows.
        pub fn now(&self) -> u64 {
            self.inner.as_deref().map(Self::now_ns).unwrap_or(0)
        }

        /// Record a span that started at `start_ns` (from [`Probe::now`])
        /// and ends now.
        pub fn span_at(&self, name: &'static str, detail: u32, start_ns: u64) {
            self.push_span(name, detail, start_ns);
        }

        /// Record an instant event.
        pub fn mark(&self, name: &'static str, detail: u64) {
            if let Some(inner) = &self.inner {
                let t = Self::now_ns(inner);
                inner.tl.borrow_mut().marks.push(Mark {
                    name,
                    detail,
                    t_ns: t,
                });
            }
        }

        /// Add `delta` to counter `name`.
        pub fn count(&self, name: &'static str, delta: u64) {
            if let Some(inner) = &self.inner {
                *inner.tl.borrow_mut().counters.entry(name).or_insert(0) += delta;
            }
        }

        /// Raise gauge `name` to at least `value` (high-water marks).
        pub fn gauge_max(&self, name: &'static str, value: u64) {
            if let Some(inner) = &self.inner {
                let mut tl = inner.tl.borrow_mut();
                let e = tl.counters.entry(name).or_insert(0);
                *e = (*e).max(value);
            }
        }

        fn push_span(&self, name: &'static str, detail: u32, start_ns: u64) {
            if let Some(inner) = &self.inner {
                let end = Self::now_ns(inner);
                inner.tl.borrow_mut().spans.push(Span {
                    name,
                    detail,
                    start_ns,
                    end_ns: end,
                });
            }
        }
    }

    impl Drop for Probe {
        fn drop(&mut self) {
            if let Some(inner) = self.inner.take() {
                let mut tl = inner.tl.into_inner();
                let fl = flops::snapshot();
                let names: [&'static str; 3] = ["flops_blas1", "flops_blas2", "flops_blas3"];
                let mut counters = BTreeMap::new();
                std::mem::swap(&mut counters, &mut tl.counters);
                for (lvl, name) in names.into_iter().enumerate() {
                    let d = fl[lvl].wrapping_sub(inner.flops_base[lvl]);
                    if d > 0 {
                        *counters.entry(name).or_insert(0) += d;
                    }
                }
                tl.counters = counters;
                inner.sink.done.lock().unwrap().push(tl);
            }
        }
    }

    /// Ends (and records) a span when dropped.
    pub struct SpanGuard<'a> {
        probe: &'a Probe,
        name: &'static str,
        detail: u32,
        start_ns: u64,
    }

    impl Drop for SpanGuard<'_> {
        fn drop(&mut self) {
            self.probe.push_span(self.name, self.detail, self.start_ns);
        }
    }
}

#[cfg(not(feature = "probe"))]
mod imp {
    use crate::Trace;

    /// Gathers the timelines of one traced run (no-op build).
    #[derive(Default)]
    pub struct Collector;

    impl Collector {
        /// Start a collection (records nothing in this build).
        pub fn new() -> Self {
            Self
        }

        /// A recording handle for processor `rank` (zero-sized no-op).
        pub fn probe(&self, _rank: usize) -> Probe {
            Probe
        }

        /// Finish; the trace is always empty in this build.
        pub fn finish(self) -> Trace {
            Trace::default()
        }
    }

    /// Per-processor recording handle (zero-sized no-op).
    pub struct Probe;

    impl Probe {
        /// A handle that records nothing.
        #[inline(always)]
        pub fn disabled() -> Self {
            Probe
        }

        /// Always `false` in this build.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn attach_thread(&mut self) {}

        /// No-op span.
        #[inline(always)]
        #[must_use = "the span ends when the guard is dropped"]
        pub fn span(&self, _name: &'static str, _detail: u32) -> SpanGuard<'_> {
            SpanGuard(std::marker::PhantomData)
        }

        /// Always 0 in this build.
        #[inline(always)]
        pub fn now(&self) -> u64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn span_at(&self, _name: &'static str, _detail: u32, _start_ns: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn mark(&self, _name: &'static str, _detail: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn count(&self, _name: &'static str, _delta: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn gauge_max(&self, _name: &'static str, _value: u64) {}
    }

    /// Zero-sized span guard.
    pub struct SpanGuard<'a>(pub(super) std::marker::PhantomData<&'a ()>);
}

pub use imp::{Collector, Probe, SpanGuard};

/// Convenience: run `f` with a fresh collector when tracing is enabled,
/// returning `f`'s value and the collected trace (empty when the `probe`
/// feature is off).
pub fn collect<R>(f: impl FnOnce(&Collector) -> R) -> (R, Trace) {
    let c = Collector::new();
    let r = f(&c);
    (r, c.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "probe")]
    fn spans_counters_marks_recorded() {
        let c = Collector::new();
        {
            let p = c.probe(3);
            {
                let _s = p.span("panel-factor", 7);
                p.count("pivot_search_rows", 5);
                p.mark("send", 128);
            }
            p.gauge_max("parked_bytes_hw", 10);
            p.gauge_max("parked_bytes_hw", 4);
        }
        let t = c.finish();
        assert_eq!(t.procs.len(), 1);
        let tl = &t.procs[0];
        assert_eq!(tl.rank, 3);
        assert_eq!(tl.spans.len(), 1);
        assert_eq!(tl.spans[0].name, "panel-factor");
        assert_eq!(tl.spans[0].detail, 7);
        assert!(tl.spans[0].end_ns >= tl.spans[0].start_ns);
        assert_eq!(tl.counters["pivot_search_rows"], 5);
        assert_eq!(tl.counters["parked_bytes_hw"], 10);
        assert_eq!(tl.marks.len(), 1);
        assert_eq!(tl.marks[0].detail, 128);
    }

    #[test]
    #[cfg(feature = "probe")]
    fn disabled_probe_records_nothing() {
        let p = Probe::disabled();
        let _s = p.span("x", 0);
        p.count("c", 1);
        assert!(!p.is_enabled());
    }

    #[test]
    #[cfg(feature = "probe")]
    fn ranks_sorted_in_trace() {
        let c = Collector::new();
        for rank in [2usize, 0, 1] {
            let p = c.probe(rank);
            p.count("x", 1);
        }
        let t = c.finish();
        let ranks: Vec<u32> = t.procs.iter().map(|p| p.rank).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    #[cfg(not(feature = "probe"))]
    fn noop_probe_is_zero_sized_and_trace_empty() {
        assert_eq!(std::mem::size_of::<Probe>(), 0);
        assert_eq!(std::mem::size_of::<SpanGuard<'_>>(), 0);
        let (r, t) = collect(|c| {
            let p = c.probe(0);
            let _s = p.span("update", 1);
            p.count("sends", 3);
            17u32
        });
        assert_eq!(r, 17);
        assert!(t.procs.is_empty());
    }

    #[test]
    fn collect_helper_returns_value() {
        let (v, _t) = collect(|_| 9i64);
        assert_eq!(v, 9);
    }
}
