//! Exporters for a recorded [`Trace`].
//!
//! Three views of the same run, mirroring how the paper presents its
//! results: a Chrome trace-event JSON for interactive inspection in
//! Perfetto (`ui.perfetto.dev`) or `chrome://tracing`, an ASCII Gantt
//! chart for the terminal (Fig.-11 style), and a machine-readable run
//! summary with the Table-5/6 statistics (per-stage times, communication
//! volume, buffer high-water, load imbalance).

use crate::gantt::{render_bars, Bar};
use crate::json::escape_into;
use crate::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Run-level facts that live outside the trace itself — the caller
/// supplies them when writing a summary.
#[derive(Debug, Clone, Default)]
pub struct SummaryExtras {
    /// Matrix name (file stem or generator description).
    pub matrix: String,
    /// Matrix order.
    pub n: usize,
    /// Nonzeros in the input matrix.
    pub nnz: usize,
    /// Simulated processor count.
    pub procs: usize,
    /// End-to-end wall-clock seconds of the factorization.
    pub wall_secs: f64,
    /// Total messages sent (from the runtime's `CommStats`).
    pub messages: u64,
    /// Total bytes sent (from the runtime's `CommStats`).
    pub bytes: u64,
    /// Peak receive-buffer occupancy in bytes (§5.2 buffer bound).
    pub peak_buffer_bytes: u64,
    /// Sustained pipeline depth: the 95th percentile (tick-weighted) of
    /// concurrently in-flight stages measured by the 2D lookahead
    /// executor (`Par2dResult::sustained_depth_p95`).
    pub pipeline_depth_p95: u32,
}

/// Serialize the trace in Chrome trace-event format ("JSON Object
/// Format"): one `pid` for the machine, one `tid` (track) per simulated
/// processor, `ph:"X"` complete events for spans and `ph:"i"` instants
/// for marks. Timestamps are microseconds, as the format requires.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n  ");
        out.push_str(&ev);
    };
    for p in &trace.procs {
        // name the track so Perfetto shows "proc 3" instead of a bare tid
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"proc {}\"}}}}",
                p.rank, p.rank
            ),
        );
        for s in &p.spans {
            let mut ev = String::from("{\"name\":");
            escape_into(&mut ev, s.name);
            let _ = write!(
                ev,
                ",\"cat\":\"stage\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"k\":{}}}}}",
                p.rank,
                s.start_ns as f64 / 1e3,
                (s.end_ns - s.start_ns) as f64 / 1e3,
                s.detail
            );
            push(&mut out, &mut first, ev);
        }
        for m in &p.marks {
            let mut ev = String::from("{\"name\":");
            escape_into(&mut ev, m.name);
            let _ = write!(
                ev,
                ",\"cat\":\"comm\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\
                 \"ts\":{:.3},\"args\":{{\"detail\":{}}}}}",
                p.rank,
                m.t_ns as f64 / 1e3,
                m.detail
            );
            push(&mut out, &mut first, ev);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Serialize the run summary: run facts from `extras`, then per-stage
/// total/max times aggregated over processors, total counters, and the
/// load-imbalance ratio.
pub fn run_summary_json(trace: &Trace, extras: &SummaryExtras) -> String {
    // aggregate span time per stage name
    let mut stage_total_ns: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut stage_count: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    for p in &trace.procs {
        for s in &p.spans {
            *stage_total_ns.entry(s.name).or_insert(0) += s.end_ns - s.start_ns;
            *stage_count.entry(s.name).or_insert(0) += 1;
        }
        for (&name, &v) in &p.counters {
            *counters.entry(name).or_insert(0) += v;
        }
    }
    // high-water gauges aggregate by max, not sum
    for hw in [
        "parked_bytes_hw",
        "update_gemm_rows_max",
        "panel_cache_bytes_hw",
        "pipeline_depth_hw",
    ] {
        if counters.contains_key(hw) {
            counters.insert(hw, trace.counter_max(hw));
        }
    }

    let mut out = String::from("{\n");
    let _ = write!(out, "  \"matrix\": ");
    escape_into(&mut out, &extras.matrix);
    let _ = writeln!(out, ",");
    let _ = writeln!(out, "  \"n\": {},", extras.n);
    let _ = writeln!(out, "  \"nnz\": {},", extras.nnz);
    let _ = writeln!(out, "  \"procs\": {},", extras.procs);
    let _ = writeln!(out, "  \"wall_secs\": {:.6},", extras.wall_secs);
    let _ = writeln!(out, "  \"messages\": {},", extras.messages);
    let _ = writeln!(out, "  \"bytes\": {},", extras.bytes);
    let _ = writeln!(
        out,
        "  \"peak_buffer_bytes\": {},",
        extras.peak_buffer_bytes
    );
    let _ = writeln!(
        out,
        "  \"pipeline_depth_p95\": {},",
        extras.pipeline_depth_p95
    );
    let _ = writeln!(out, "  \"load_imbalance\": {:.4},", trace.load_imbalance());
    let _ = writeln!(
        out,
        "  \"trace_extent_secs\": {:.6},",
        trace.extent_ns() as f64 / 1e9
    );
    out.push_str("  \"stages\": {");
    let mut first = true;
    for (name, total) in &stage_total_ns {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        escape_into(&mut out, name);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"total_secs\": {:.6}}}",
            stage_count[name],
            *total as f64 / 1e9
        );
    }
    out.push_str("\n  },\n  \"counters\": {");
    first = true;
    for (name, v) in &counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        escape_into(&mut out, name);
        let _ = write!(out, ": {v}");
    }
    out.push_str("\n  },\n  \"procs_busy_secs\": [");
    first = true;
    for p in &trace.procs {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{:.6}", p.busy_ns() as f64 / 1e9);
    }
    out.push_str("]\n}\n");
    out
}

/// Render the trace as an ASCII Gantt chart, `width` cells wide, one row
/// per processor. Only depth-zero stage names are labeled (a full run
/// has far too many spans to label each).
pub fn ascii_gantt(trace: &Trace, width: usize) -> String {
    let extent = trace.extent_ns().max(1) as f64;
    let mut bars = Vec::new();
    for p in &trace.procs {
        for s in &p.spans {
            bars.push(Bar {
                proc: p.rank as usize,
                start: s.start_ns as f64,
                finish: s.end_ns as f64,
                label: String::new(),
            });
        }
    }
    let header = format!(
        "trace: {:.3} ms, {} procs, imbalance {:.2}",
        extent / 1e6,
        trace.procs.len(),
        trace.load_imbalance()
    );
    let nprocs = trace
        .procs
        .iter()
        .map(|p| p.rank as usize + 1)
        .max()
        .unwrap_or(0);
    let mut chart = render_bars(&bars, nprocs, width, Some(extent), Some(&header));
    // labels are all empty; trim the trailing separators they leave
    chart = chart
        .lines()
        .map(|l| l.trim_end())
        .collect::<Vec<_>>()
        .join("\n");
    chart.push('\n');
    chart
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::{Mark, ProcTimeline, Span};

    fn sample_trace() -> Trace {
        let mut p0 = ProcTimeline {
            rank: 0,
            ..Default::default()
        };
        p0.spans.push(Span {
            name: "panel-factor",
            detail: 0,
            start_ns: 1_000,
            end_ns: 5_000,
        });
        p0.spans.push(Span {
            name: "update",
            detail: 0,
            start_ns: 5_000,
            end_ns: 9_000,
        });
        p0.marks.push(Mark {
            name: "send",
            detail: 256,
            t_ns: 4_500,
        });
        p0.counters.insert("sends", 1);
        let mut p1 = ProcTimeline {
            rank: 1,
            ..Default::default()
        };
        p1.spans.push(Span {
            name: "update",
            detail: 0,
            start_ns: 2_000,
            end_ns: 6_000,
        });
        p1.counters.insert("sends", 2);
        p1.counters.insert("parked_bytes_hw", 128);
        Trace {
            procs: vec![p0, p1],
        }
    }

    #[test]
    fn chrome_json_parses_and_has_one_track_per_proc() {
        let t = sample_trace();
        let s = chrome_trace_json(&t);
        let v = json::parse(&s).unwrap();
        let events = v.get("traceEvents").unwrap().items().unwrap();
        // 2 thread_name + 3 spans + 1 mark
        assert_eq!(events.len(), 6);
        let mut tids: Vec<u64> = events
            .iter()
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, vec![0, 1]);
        let spans = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .count();
        assert_eq!(spans, 3);
        let instants = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .count();
        assert_eq!(instants, 1);
    }

    #[test]
    fn chrome_json_microsecond_timestamps() {
        let t = sample_trace();
        let v = json::parse(&chrome_trace_json(&t)).unwrap();
        let events = v.get("traceEvents").unwrap().items().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        // 1000 ns = 1 µs
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn summary_parses_and_aggregates() {
        let t = sample_trace();
        let extras = SummaryExtras {
            matrix: "test.mtx".into(),
            n: 100,
            nnz: 500,
            procs: 2,
            wall_secs: 0.25,
            messages: 3,
            bytes: 1024,
            peak_buffer_bytes: 128,
            pipeline_depth_p95: 2,
        };
        let v = json::parse(&run_summary_json(&t, &extras)).unwrap();
        assert_eq!(v.get("matrix").unwrap().as_str(), Some("test.mtx"));
        assert_eq!(v.get("pipeline_depth_p95").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("procs").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("messages").unwrap().as_u64(), Some(3));
        let stages = v.get("stages").unwrap();
        let upd = stages.get("update").unwrap();
        assert_eq!(upd.get("count").unwrap().as_u64(), Some(2));
        // 4 µs + 4 µs of update
        let total = upd.get("total_secs").unwrap().as_f64().unwrap();
        assert!((total - 8e-6).abs() < 1e-9);
        // sends sum, parked high-water takes the max not the sum
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("sends").unwrap().as_u64(), Some(3));
        assert_eq!(counters.get("parked_bytes_hw").unwrap().as_u64(), Some(128));
        assert_eq!(v.get("procs_busy_secs").unwrap().items().unwrap().len(), 2);
    }

    #[test]
    fn gantt_has_row_per_proc() {
        let t = sample_trace();
        let g = ascii_gantt(&t, 40);
        assert_eq!(g.lines().count(), 3); // header + 2 procs
        assert!(g.contains("P0"));
        assert!(g.contains("P1"));
        assert!(g.contains('█'));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = Trace::default();
        assert!(json::parse(&chrome_trace_json(&t)).is_ok());
        let extras = SummaryExtras::default();
        assert!(json::parse(&run_summary_json(&t, &extras)).is_ok());
        assert_eq!(ascii_gantt(&t, 10).lines().count(), 1); // header only
    }
}
