//! Thread-local flop counters, split by BLAS level.
//!
//! The dense kernels in `splu-kernels` call [`add`] with their
//! operation counts; the per-processor [`crate::Probe`] snapshots these
//! thread-locals when it attaches to a processor thread and reports the
//! delta as `flops_blas{1,2,3}` counters at flush time. The paper's §6.1
//! performance model rests on exactly this split (`w1`, `w2`, `w3`
//! per-flop costs) — measuring it confirms how much of the update work
//! actually runs at DGEMM rates.
//!
//! With the `probe` feature off, [`add`] is an empty inline function.

/// BLAS level of a kernel, for flop attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Vector-vector (daxpy, ddot, dscal, …).
    L1,
    /// Matrix-vector (dgemv, dger, dtrsv).
    L2,
    /// Matrix-matrix (dgemm, dtrsm).
    L3,
}

#[cfg(feature = "probe")]
mod imp {
    use super::Level;
    use std::cell::Cell;

    thread_local! {
        static FLOPS: [Cell<u64>; 3] = const { [Cell::new(0), Cell::new(0), Cell::new(0)] };
    }

    /// Credit `n` flops to `level` on the current thread.
    #[inline]
    pub fn add(level: Level, n: u64) {
        FLOPS.with(|f| {
            let c = &f[level as usize];
            c.set(c.get().wrapping_add(n));
        });
    }

    /// Current thread's totals `[blas1, blas2, blas3]`.
    pub fn snapshot() -> [u64; 3] {
        FLOPS.with(|f| [f[0].get(), f[1].get(), f[2].get()])
    }
}

#[cfg(not(feature = "probe"))]
mod imp {
    use super::Level;

    /// No-op in this build.
    #[inline(always)]
    pub fn add(_level: Level, _n: u64) {}

    /// Always zeros in this build.
    #[inline(always)]
    pub fn snapshot() -> [u64; 3] {
        [0; 3]
    }
}

pub use imp::{add, snapshot};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "probe")]
    fn per_thread_accumulation() {
        let base = snapshot();
        add(Level::L1, 10);
        add(Level::L3, 100);
        add(Level::L3, 1);
        let now = snapshot();
        assert_eq!(now[0] - base[0], 10);
        assert_eq!(now[1] - base[1], 0);
        assert_eq!(now[2] - base[2], 101);
    }

    #[test]
    #[cfg(feature = "probe")]
    fn threads_do_not_share_counters() {
        let h = std::thread::spawn(|| {
            add(Level::L2, 7);
            snapshot()[1]
        });
        let other = h.join().unwrap();
        assert!(other >= 7);
        // this thread's L2 counter is untouched by the spawned thread's adds
        let before = snapshot()[1];
        let h2 = std::thread::spawn(|| add(Level::L2, 1000));
        h2.join().unwrap();
        assert_eq!(snapshot()[1], before);
    }

    #[test]
    #[cfg(not(feature = "probe"))]
    fn noop_snapshot_is_zero() {
        add(Level::L3, 5);
        assert_eq!(snapshot(), [0; 3]);
    }
}
