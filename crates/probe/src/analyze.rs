//! Critical-path and wall-time attribution over a recorded [`Trace`].
//!
//! The 2D driver's flight-recorder timelines say *what ran when*; this
//! module turns them into the paper's diagnostic questions: where did
//! the wall time go per processor (compute vs. communication wait vs.
//! idle), how long is the critical path through the op DAG (the speedup
//! ceiling `T_1 / T_∞`), how deep did the pipeline actually run against
//! the Theorem 2 `p_c + W` bound, and how does the measured message
//! volume compare with the 2D cost model's per-stage prediction.
//!
//! Attribution partitions each rank's wall time exactly (categories sum
//! to 100 %): an edge sweep assigns every instant to the highest-
//! priority active activity — `panel-factor` > `scale-swap` (TRSM) >
//! `update` (GEMM) > `row-swap` (swap/comm) > blocked-receive wait
//! (pivot/panel wait, from the runtime's `recv-wait` marks) — and the
//! remainder is idle.
//!
//! The op DAG is reconstructed conservatively: per-rank program order
//! plus the stage dependencies `panel(k) → trsm(k) → update(k) →
//! panel(k+1)`, keeping only edges whose source span *ended* before the
//! dependent span started (a dependency that did not complete in time
//! cannot have been real), which also guarantees acyclicity under
//! lookahead pipelining.

use crate::json::{self, escape_into, Value};
use crate::{Mark, ProcTimeline, Span, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Span name the 2D driver uses for supernodal panel factorization.
pub const SPAN_PANEL: &str = "panel-factor";
/// Span name for the TRSM (scale/swap) stage.
pub const SPAN_TRSM: &str = "scale-swap";
/// Span name for the GEMM update stage.
pub const SPAN_GEMM: &str = "update";
/// Span name for explicit row interchanges.
pub const SPAN_SWAP: &str = "row-swap";
/// Mark the machine runtime emits when a blocking receive completes;
/// its detail is the nanoseconds the receiver was blocked.
pub const MARK_RECV_WAIT: &str = "recv-wait";

/// Attribution categories, in sweep priority order; `idle` is the
/// remainder and always last.
pub const CATEGORIES: [&str; 6] = [
    "panel_factor",
    "trsm",
    "gemm",
    "swap_comm",
    "pivot_wait",
    "idle",
];

const NCAT: usize = CATEGORIES.len();
const IDLE: usize = NCAT - 1;

/// One processor's exact wall-time partition.
#[derive(Debug, Clone)]
pub struct RankAttribution {
    /// Processor rank.
    pub rank: u32,
    /// Wall time attributed (the global trace extent), nanoseconds.
    pub wall_ns: u64,
    /// Nanoseconds per category, summing exactly to `wall_ns`.
    pub category_ns: [u64; NCAT],
}

/// The full analysis of one traced run.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Global wall time (trace extent), nanoseconds.
    pub wall_ns: u64,
    /// Per-rank partitions.
    pub ranks: Vec<RankAttribution>,
    /// Category totals over all ranks.
    pub total_ns: [u64; NCAT],
    /// Total compute time (panel + trsm + gemm + swap), nanoseconds —
    /// the `T_1` of the speedup-ceiling estimate.
    pub total_work_ns: u64,
    /// Longest dependency chain through the reconstructed op DAG,
    /// nanoseconds — the `T_∞` estimate.
    pub critical_path_ns: u64,
    /// Number of spans on the critical path.
    pub critical_path_spans: usize,
    /// `T_1 / T_∞`: no schedule on any processor count beats this.
    pub speedup_ceiling: f64,
    /// Tick-weighted 95th percentile of distinct update stages
    /// concurrently in flight (measured from span overlap).
    pub pipeline_depth_p95: u32,
    /// Messages sent (from the `sends` counters).
    pub messages: u64,
    /// Bytes sent (from the `send_bytes` counters).
    pub bytes: u64,
}

/// Longest path through a DAG given per-node costs and dependency
/// lists (`deps[i]` are indices that must complete before node `i`).
/// Returns the path length (sum of node costs along it) and the node
/// indices in execution order, or an error if the graph has a cycle.
pub fn critical_path(costs: &[u64], deps: &[Vec<usize>]) -> Result<(u64, Vec<usize>), String> {
    assert_eq!(costs.len(), deps.len());
    let n = costs.len();
    // Kahn topological order over the dependency edges
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        indeg[i] = ds.len();
        for &d in ds {
            assert!(d < n, "dependency index out of range");
            out[d].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut dist = vec![0u64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut seen = 0usize;
    while let Some(i) = ready.pop() {
        seen += 1;
        let di = dist[i] + costs[i];
        for &j in &out[i] {
            if di > dist[j] {
                dist[j] = di;
                pred[j] = Some(i);
            }
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    if seen != n {
        return Err("dependency graph has a cycle".to_string());
    }
    let end = match (0..n).max_by_key(|&i| dist[i] + costs[i]) {
        Some(e) => e,
        None => return Ok((0, Vec::new())),
    };
    let length = dist[end] + costs[end];
    let mut path = vec![end];
    let mut cur = end;
    while let Some(p) = pred[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Ok((length, path))
}

fn category_of(name: &str) -> Option<usize> {
    match name {
        SPAN_PANEL => Some(0),
        SPAN_TRSM => Some(1),
        SPAN_GEMM => Some(2),
        SPAN_SWAP => Some(3),
        _ => None,
    }
}

/// Exact wall-time partition for one rank: sweep the span/wait interval
/// edges, assigning each segment to the highest-priority active
/// category.
fn attribute_rank(p: &ProcTimeline, wall_ns: u64) -> RankAttribution {
    // (time, category, +1/-1) edges
    let mut edges: Vec<(u64, usize, i64)> = Vec::new();
    for s in &p.spans {
        if let Some(c) = category_of(s.name) {
            if s.end_ns > s.start_ns {
                edges.push((s.start_ns.min(wall_ns), c, 1));
                edges.push((s.end_ns.min(wall_ns), c, -1));
            }
        }
    }
    for m in &p.marks {
        if m.name == MARK_RECV_WAIT && m.detail > 0 {
            let start = m.t_ns.saturating_sub(m.detail);
            edges.push((start.min(wall_ns), 4, 1));
            edges.push((m.t_ns.min(wall_ns), 4, -1));
        }
    }
    edges.sort_unstable_by_key(|&(t, _, _)| t);
    let mut depth = [0i64; NCAT];
    let mut category_ns = [0u64; NCAT];
    let mut last = 0u64;
    for (t, c, d) in edges {
        if t > last {
            let active = (0..IDLE).find(|&i| depth[i] > 0).unwrap_or(IDLE);
            category_ns[active] += t - last;
            last = t;
        }
        depth[c] += d;
    }
    if wall_ns > last {
        category_ns[IDLE] += wall_ns - last;
    }
    RankAttribution {
        rank: p.rank,
        wall_ns,
        category_ns,
    }
}

/// Tick-weighted p95 of distinct update stages concurrently in flight,
/// measured over the time where at least one update span is active.
fn measured_depth_p95(trace: &Trace) -> u32 {
    // (time, stage, +1/-1)
    let mut events: Vec<(u64, u32, i64)> = Vec::new();
    for p in &trace.procs {
        for s in &p.spans {
            if s.name == SPAN_GEMM && s.end_ns > s.start_ns {
                events.push((s.start_ns, s.detail, 1));
                events.push((s.end_ns, s.detail, -1));
            }
        }
    }
    if events.is_empty() {
        return 0;
    }
    events.sort_unstable_by_key(|&(t, _, _)| t);
    let mut active: BTreeMap<u32, i64> = BTreeMap::new();
    let mut time_at_depth: BTreeMap<usize, u64> = BTreeMap::new();
    let mut last = events[0].0;
    for (t, k, d) in events {
        let depth = active.len();
        if depth > 0 && t > last {
            *time_at_depth.entry(depth).or_insert(0) += t - last;
        }
        last = t;
        let e = active.entry(k).or_insert(0);
        *e += d;
        if *e == 0 {
            active.remove(&k);
        }
    }
    let covered: u64 = time_at_depth.values().sum();
    if covered == 0 {
        return 0;
    }
    let threshold = (covered as f64 * 0.95).ceil() as u64;
    let mut cum = 0u64;
    for (&depth, &t) in &time_at_depth {
        cum += t;
        if cum >= threshold {
            return depth as u32;
        }
    }
    *time_at_depth.keys().last().unwrap() as u32
}

/// Reconstruct the op DAG and compute the critical path. Nodes are the
/// compute spans; edges are per-rank program order plus the stage chain
/// `panel(k) → trsm(k) → update(k) → panel(k+1)`, restricted to pairs
/// where the source completed before the target started.
fn span_dag_critical_path(trace: &Trace) -> (u64, usize) {
    #[derive(Clone, Copy)]
    struct Node {
        cat: usize,
        stage: u32,
        start: u64,
        end: u64,
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut by_rank: Vec<Vec<usize>> = Vec::new();
    for p in &trace.procs {
        let mut mine: Vec<usize> = Vec::new();
        for s in &p.spans {
            if let Some(cat) = category_of(s.name) {
                if cat <= 2 {
                    mine.push(nodes.len());
                    nodes.push(Node {
                        cat,
                        stage: s.detail,
                        start: s.start_ns,
                        end: s.end_ns,
                    });
                }
            }
        }
        mine.sort_by_key(|&i| (nodes[i].start, nodes[i].end));
        by_rank.push(mine);
    }
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    // program order: each span depends on its predecessor on the rank
    for mine in &by_rank {
        for w in mine.windows(2) {
            deps[w[1]].push(w[0]);
        }
    }
    // stage chain, filtered to causally-possible edges
    let mut by_stage_cat: BTreeMap<(u32, usize), Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_stage_cat.entry((n.stage, n.cat)).or_default().push(i);
    }
    let link = |from: &[usize], to: &[usize], deps: &mut [Vec<usize>]| {
        for &t in to {
            for &f in from {
                if nodes[f].end <= nodes[t].start {
                    deps[t].push(f);
                }
            }
        }
    };
    let stages: Vec<u32> = {
        let mut s: Vec<u32> = by_stage_cat.keys().map(|&(k, _)| k).collect();
        s.dedup();
        s
    };
    let empty: Vec<usize> = Vec::new();
    for (si, &k) in stages.iter().enumerate() {
        let panel = by_stage_cat.get(&(k, 0)).unwrap_or(&empty);
        let trsm = by_stage_cat.get(&(k, 1)).unwrap_or(&empty);
        let gemm = by_stage_cat.get(&(k, 2)).unwrap_or(&empty);
        link(panel, trsm, &mut deps);
        link(trsm, gemm, &mut deps);
        if si + 1 < stages.len() {
            if let Some(next_panel) = by_stage_cat.get(&(stages[si + 1], 0)) {
                link(gemm, next_panel, &mut deps);
            }
        }
    }
    let costs: Vec<u64> = nodes.iter().map(|n| n.end - n.start).collect();
    match critical_path(&costs, &deps) {
        Ok((len, path)) => (len, path.len()),
        Err(_) => (0, 0),
    }
}

/// Analyze a trace: exact per-rank wall-time partition, op-DAG critical
/// path, measured pipeline depth, and communication totals.
pub fn attribute(trace: &Trace) -> Attribution {
    let wall_ns = trace.extent_ns();
    let ranks: Vec<RankAttribution> = trace
        .procs
        .iter()
        .map(|p| attribute_rank(p, wall_ns))
        .collect();
    let mut total_ns = [0u64; NCAT];
    for r in &ranks {
        for (t, v) in total_ns.iter_mut().zip(r.category_ns) {
            *t += v;
        }
    }
    let total_work_ns: u64 = total_ns[..4].iter().sum();
    let (critical_path_ns, critical_path_spans) = span_dag_critical_path(trace);
    let speedup_ceiling = if critical_path_ns > 0 {
        total_work_ns as f64 / critical_path_ns as f64
    } else {
        1.0
    };
    Attribution {
        wall_ns,
        ranks,
        total_ns,
        total_work_ns,
        critical_path_ns,
        critical_path_spans,
        speedup_ceiling,
        pipeline_depth_p95: measured_depth_p95(trace),
        messages: trace.counter_total("sends"),
        bytes: trace.counter_total("send_bytes"),
    }
}

/// The 2D cost model instantiated for our protocol: per elimination
/// stage, `p_r − 1` pivot-candidate messages up the column, `p_r − 1`
/// pivot-row replies, one L-panel row multicast per panel-column rank
/// (`p_r (p_c − 1)`) and one batched U-row column multicast per
/// pivot-row rank (`p_c (p_r − 1)`) — per-stage message count depends
/// only on the grid, the paper's 2D scalability argument. Predicted
/// bytes charge each factor entry its multicast fan-out (L entries
/// travel `p_c − 1` ways along rows, U entries `p_r − 1` down columns;
/// entries are split evenly absent an exact L/U split).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommModel {
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
    /// Elimination (block) stages.
    pub stages: usize,
    /// Factor entries (nnz of L+U, or the static storage bound).
    pub factor_entries: u64,
}

impl CommModel {
    /// Predicted total message count.
    pub fn predicted_messages(&self) -> u64 {
        let (pr, pc) = (self.pr as u64, self.pc as u64);
        let per_stage = 2 * (pr - 1) + pr * (pc - 1) + pc * (pr - 1);
        self.stages as u64 * per_stage
    }

    /// Predicted total bytes.
    pub fn predicted_bytes(&self) -> u64 {
        let (pr, pc) = (self.pr as u64, self.pc as u64);
        8 * (self.factor_entries / 2) * ((pc - 1) + (pr - 1))
    }
}

/// Task-DAG engine attribution: how much of the factorization ran as
/// zero-message subtree-local work versus on the block-cyclic separator
/// (counted by the runtime's `subtree_local_tasks` / `steal_*` stats).
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskDagSummary {
    /// Factor + update tasks whose destination column lives in a
    /// proportional-mapped subtree (executed owner-locally, no messages).
    pub subtree_local_tasks: u64,
    /// All factor + update tasks of the run.
    pub total_tasks: u64,
    /// Independent subtree tasks of the elimination-tree cut.
    pub nsubtrees: u64,
    /// Steal attempts of the plan's deterministic balancing pass.
    pub steal_attempts: u64,
    /// Attempts that found a victim with spare subtrees.
    pub steal_hits: u64,
}

impl TaskDagSummary {
    /// Share of tasks that ran subtree-local (0.0 on an empty run).
    pub fn subtree_share(&self) -> f64 {
        if self.total_tasks == 0 {
            0.0
        } else {
            self.subtree_local_tasks as f64 / self.total_tasks as f64
        }
    }
}

/// Run facts the caller supplies alongside the trace for reporting.
#[derive(Debug, Clone, Default)]
pub struct ReportExtras {
    /// Matrix name.
    pub matrix: String,
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
    /// Lookahead window `W`.
    pub lookahead: usize,
    /// Executor-measured sustained pipeline depth (tick-weighted p95
    /// from `Par2dResult`), when the run happened in-process; `None`
    /// falls back to the trace-measured overlap depth.
    pub executor_depth_p95: Option<u32>,
    /// Cost model for the message-volume comparison (`None` omits it).
    pub model: Option<CommModel>,
    /// Subtree-vs-separator attribution of a task-DAG run of the same
    /// matrix (`None` omits the section, e.g. for loaded traces).
    pub taskdag: Option<TaskDagSummary>,
}

impl ReportExtras {
    /// Theorem 2 pipeline-depth bound `p_c + W`.
    pub fn depth_bound(&self) -> u32 {
        (self.pc + self.lookahead) as u32
    }

    fn depth(&self, a: &Attribution) -> u32 {
        self.executor_depth_p95.unwrap_or(a.pipeline_depth_p95)
    }
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Schema-stable JSON report.
pub fn report_json(a: &Attribution, x: &ReportExtras) -> String {
    let mut out = String::from("{\n  \"report\": \"splu_analyze\",\n");
    let _ = write!(out, "  \"matrix\": ");
    escape_into(&mut out, &x.matrix);
    let _ = writeln!(out, ",");
    let _ = writeln!(out, "  \"pr\": {},", x.pr);
    let _ = writeln!(out, "  \"pc\": {},", x.pc);
    let _ = writeln!(out, "  \"lookahead\": {},", x.lookahead);
    let _ = writeln!(out, "  \"wall_secs\": {:.6},", secs(a.wall_ns));
    let _ = writeln!(out, "  \"total_work_secs\": {:.6},", secs(a.total_work_ns));
    let _ = writeln!(
        out,
        "  \"critical_path_secs\": {:.6},",
        secs(a.critical_path_ns)
    );
    let _ = writeln!(out, "  \"critical_path_spans\": {},", a.critical_path_spans);
    let _ = writeln!(out, "  \"speedup_ceiling\": {:.4},", a.speedup_ceiling);
    let depth = x.depth(a);
    let _ = writeln!(out, "  \"pipeline_depth_p95\": {depth},");
    let _ = writeln!(out, "  \"pipeline_depth_bound\": {},", x.depth_bound());
    let _ = writeln!(
        out,
        "  \"pipeline_depth_ok\": {},",
        depth <= x.depth_bound()
    );
    let _ = writeln!(out, "  \"messages\": {},", a.messages);
    let _ = writeln!(out, "  \"bytes\": {},", a.bytes);
    if let Some(m) = &x.model {
        let _ = writeln!(out, "  \"model_messages\": {},", m.predicted_messages());
        let _ = writeln!(out, "  \"model_bytes\": {},", m.predicted_bytes());
    }
    if let Some(t) = &x.taskdag {
        let _ = writeln!(
            out,
            "  \"taskdag\": {{\"subtree_local_tasks\": {}, \"separator_tasks\": {}, \
             \"subtree_task_share\": {:.4}, \"nsubtrees\": {}, \
             \"steal_attempts\": {}, \"steal_hits\": {}}},",
            t.subtree_local_tasks,
            t.total_tasks.saturating_sub(t.subtree_local_tasks),
            t.subtree_share(),
            t.nsubtrees,
            t.steal_attempts,
            t.steal_hits
        );
    }
    out.push_str("  \"attribution\": {");
    let mut first = true;
    for (name, &ns) in CATEGORIES.iter().zip(&a.total_ns) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{name}_secs\": {:.6}", secs(ns));
    }
    out.push_str("\n  },\n  \"ranks\": [");
    first = true;
    for r in &a.ranks {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {{\"rank\": {}, \"wall_secs\": {:.6}",
            r.rank,
            secs(r.wall_ns)
        );
        for (name, &ns) in CATEGORIES.iter().zip(&r.category_ns) {
            let _ = write!(out, ", \"{name}_secs\": {:.6}", secs(ns));
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Human-readable ASCII report (per-rank percentage table).
pub fn report_text(a: &Attribution, x: &ReportExtras) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "splu analyze — {} ({}×{} grid, lookahead {})",
        x.matrix, x.pr, x.pc, x.lookahead
    );
    let _ = writeln!(
        out,
        "wall {:.3} ms   work {:.3} ms   critical path {:.3} ms ({} spans)   \
         speedup ceiling {:.2}×",
        1e3 * secs(a.wall_ns),
        1e3 * secs(a.total_work_ns),
        1e3 * secs(a.critical_path_ns),
        a.critical_path_spans,
        a.speedup_ceiling
    );
    let depth = x.depth(a);
    let bound = x.depth_bound();
    let _ = writeln!(
        out,
        "pipeline depth p95: {depth} {} bound p_c + W = {bound}",
        if depth <= bound { "≤" } else { "EXCEEDS" }
    );
    match &x.model {
        Some(m) => {
            let pm = m.predicted_messages().max(1);
            let pb = m.predicted_bytes().max(1);
            let _ = writeln!(
                out,
                "messages: {} (model {}, ratio {:.2})   bytes: {} (model {}, ratio {:.2})",
                a.messages,
                pm,
                a.messages as f64 / pm as f64,
                a.bytes,
                pb,
                a.bytes as f64 / pb as f64
            );
        }
        None => {
            let _ = writeln!(out, "messages: {}   bytes: {}", a.messages, a.bytes);
        }
    }
    if let Some(t) = &x.taskdag {
        let _ = writeln!(
            out,
            "task-DAG: {}/{} tasks subtree-local ({:.1}%) across {} subtrees   \
             steals {}/{}",
            t.subtree_local_tasks,
            t.total_tasks,
            100.0 * t.subtree_share(),
            t.nsubtrees,
            t.steal_hits,
            t.steal_attempts
        );
    }
    let _ = writeln!(
        out,
        "{:<6}{:>9}{:>9}{:>9}{:>11}{:>12}{:>8}",
        "rank", "panel", "trsm", "gemm", "swap/comm", "pivot-wait", "idle"
    );
    for r in &a.ranks {
        let pct = |c: usize| 100.0 * r.category_ns[c] as f64 / r.wall_ns.max(1) as f64;
        let _ = writeln!(
            out,
            "P{:<5}{:>8.1}%{:>8.1}%{:>8.1}%{:>10.1}%{:>11.1}%{:>7.1}%",
            r.rank,
            pct(0),
            pct(1),
            pct(2),
            pct(3),
            pct(4),
            pct(5)
        );
    }
    out
}

/// Intern an event name from a loaded trace file onto the small static
/// vocabulary the recorder uses (unknown names map to `"other"`).
fn intern(name: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        SPAN_PANEL,
        SPAN_TRSM,
        SPAN_GEMM,
        SPAN_SWAP,
        MARK_RECV_WAIT,
        "send",
        "recv",
        "park",
        "unpark",
        "poison",
    ];
    KNOWN
        .iter()
        .find(|&&k| k == name)
        .copied()
        .unwrap_or("other")
}

/// Load a Chrome trace-event JSON file (as written by `splu trace`)
/// back into a [`Trace`], reconstructing the `sends`/`send_bytes`
/// counters from the send marks.
pub fn trace_from_chrome_json(text: &str) -> Result<Trace, String> {
    let v = json::parse(text)?;
    let events = v
        .get("traceEvents")
        .and_then(Value::items)
        .ok_or("missing traceEvents array")?;
    let mut procs: BTreeMap<u32, ProcTimeline> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0) as u32;
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        let ts_ns = |key: &str| -> u64 {
            (e.get(key).and_then(Value::as_f64).unwrap_or(0.0) * 1e3).round() as u64
        };
        match ph {
            "X" => {
                let p = procs.entry(tid).or_insert_with(|| ProcTimeline {
                    rank: tid,
                    ..Default::default()
                });
                let start = ts_ns("ts");
                p.spans.push(Span {
                    name: intern(name),
                    detail: e
                        .get("args")
                        .and_then(|a| a.get("k"))
                        .and_then(Value::as_u64)
                        .unwrap_or(0) as u32,
                    start_ns: start,
                    end_ns: start + ts_ns("dur"),
                });
            }
            "i" => {
                let p = procs.entry(tid).or_insert_with(|| ProcTimeline {
                    rank: tid,
                    ..Default::default()
                });
                let detail = e
                    .get("args")
                    .and_then(|a| a.get("detail"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                let name = intern(name);
                p.marks.push(Mark {
                    name,
                    detail,
                    t_ns: ts_ns("ts"),
                });
                if name == "send" {
                    *p.counters.entry("sends").or_insert(0) += 1;
                    *p.counters.entry("send_bytes").or_insert(0) += detail;
                }
            }
            _ => {}
        }
    }
    Ok(Trace {
        procs: procs.into_values().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_on_a_chain() {
        // 0 → 1 → 2, costs 3/4/5: length 12, the whole chain
        let costs = [3, 4, 5];
        let deps = vec![vec![], vec![0], vec![1]];
        let (len, path) = critical_path(&costs, &deps).unwrap();
        assert_eq!(len, 12);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn critical_path_picks_the_longest_branch() {
        // diamond: 0 → {1 (cost 10), 2 (cost 1)} → 3
        let costs = [2, 10, 1, 4];
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let (len, path) = critical_path(&costs, &deps).unwrap();
        assert_eq!(len, 2 + 10 + 4);
        assert_eq!(path, vec![0, 1, 3]);
    }

    #[test]
    fn critical_path_handles_disconnected_components() {
        // two chains: {0 → 1} of length 5, {2} of length 9
        let costs = [2, 3, 9];
        let deps = vec![vec![], vec![0], vec![]];
        let (len, path) = critical_path(&costs, &deps).unwrap();
        assert_eq!(len, 9);
        assert_eq!(path, vec![2]);
    }

    #[test]
    fn critical_path_rejects_cycles() {
        let costs = [1, 1];
        let deps = vec![vec![1], vec![0]];
        assert!(critical_path(&costs, &deps).is_err());
    }

    #[test]
    fn critical_path_of_empty_graph_is_zero() {
        let (len, path) = critical_path(&[], &[]).unwrap();
        assert_eq!(len, 0);
        assert!(path.is_empty());
    }

    fn span(name: &'static str, detail: u32, start_ns: u64, end_ns: u64) -> Span {
        Span {
            name,
            detail,
            start_ns,
            end_ns,
        }
    }

    /// Two ranks, 10 µs wall. Rank 0: panel [0,4µs], gemm [4,8µs];
    /// rank 1: recv-wait [0,3µs], gemm overlapping trsm.
    fn hand_trace() -> Trace {
        let mut p0 = ProcTimeline {
            rank: 0,
            ..Default::default()
        };
        p0.spans.push(span(SPAN_PANEL, 0, 0, 4_000));
        p0.spans.push(span(SPAN_GEMM, 0, 4_000, 8_000));
        p0.counters.insert("sends", 2);
        p0.counters.insert("send_bytes", 100);
        let mut p1 = ProcTimeline {
            rank: 1,
            ..Default::default()
        };
        p1.marks.push(Mark {
            name: MARK_RECV_WAIT,
            detail: 3_000,
            t_ns: 3_000,
        });
        p1.spans.push(span(SPAN_TRSM, 0, 3_000, 6_000));
        // overlaps the trsm tail: priority sweep charges trsm first
        p1.spans.push(span(SPAN_GEMM, 0, 5_000, 10_000));
        Trace {
            procs: vec![p0, p1],
        }
    }

    #[test]
    fn attribution_partitions_wall_time_exactly() {
        let a = attribute(&hand_trace());
        assert_eq!(a.wall_ns, 10_000);
        for r in &a.ranks {
            let sum: u64 = r.category_ns.iter().sum();
            assert_eq!(sum, r.wall_ns, "rank {} must partition exactly", r.rank);
        }
        let r0 = &a.ranks[0];
        assert_eq!(r0.category_ns[0], 4_000); // panel
        assert_eq!(r0.category_ns[2], 4_000); // gemm
        assert_eq!(r0.category_ns[5], 2_000); // idle tail
        let r1 = &a.ranks[1];
        assert_eq!(r1.category_ns[4], 3_000); // pivot wait
        assert_eq!(r1.category_ns[1], 3_000); // trsm wins the overlap
        assert_eq!(r1.category_ns[2], 4_000); // gemm after the trsm ends
        assert_eq!(r1.category_ns[5], 0);
        assert_eq!(a.messages, 2);
        assert_eq!(a.bytes, 100);
    }

    #[test]
    fn trace_critical_path_respects_stage_chain() {
        // panel(0) on rank 0 [0,4], trsm(0) on rank 1 [3,6]: the trsm
        // started before the panel ended, so no cross edge — but the
        // gemm(0) on rank 1 [5,10] chains after rank-1's trsm by program
        // order. Longest chain: trsm(3µs) + gemm(5µs) = 8 µs.
        let a = attribute(&hand_trace());
        assert_eq!(a.critical_path_ns, 8_000);
        assert!(a.critical_path_spans >= 2);
        assert!(a.speedup_ceiling >= 1.0);
        // total work = panel 4 + gemm 4 + trsm 3 + gemm(5, minus 1 µs
        // shadowed by trsm in attribution but full span in work? no —
        // work comes from the attribution partition: 4+4+3+4 = 15 µs
        assert_eq!(a.total_work_ns, 15_000);
    }

    #[test]
    fn depth_measures_distinct_stages() {
        // stage 0 and stage 1 updates overlapping on two ranks
        let mut p0 = ProcTimeline {
            rank: 0,
            ..Default::default()
        };
        p0.spans.push(span(SPAN_GEMM, 0, 0, 10_000));
        let mut p1 = ProcTimeline {
            rank: 1,
            ..Default::default()
        };
        p1.spans.push(span(SPAN_GEMM, 1, 0, 10_000));
        let t = Trace {
            procs: vec![p0, p1],
        };
        assert_eq!(measured_depth_p95(&t), 2);
        // same stage on both ranks: depth 1
        let mut p1b = ProcTimeline {
            rank: 1,
            ..Default::default()
        };
        p1b.spans.push(span(SPAN_GEMM, 0, 0, 10_000));
        let t1 = Trace {
            procs: vec![t.procs[0].clone(), p1b],
        };
        assert_eq!(measured_depth_p95(&t1), 1);
    }

    #[test]
    fn comm_model_counts_per_stage_fanout() {
        let m = CommModel {
            pr: 2,
            pc: 2,
            stages: 10,
            factor_entries: 1000,
        };
        // per stage: 2·1 + 2·1 + 2·1 = 6
        assert_eq!(m.predicted_messages(), 60);
        assert_eq!(m.predicted_bytes(), 8 * 500 * 2);
        // 1×1 grid: nothing to say
        let m1 = CommModel {
            pr: 1,
            pc: 1,
            stages: 10,
            factor_entries: 1000,
        };
        assert_eq!(m1.predicted_messages(), 0);
        assert_eq!(m1.predicted_bytes(), 0);
    }

    #[test]
    fn report_json_is_schema_stable_and_parses() {
        let a = attribute(&hand_trace());
        let x = ReportExtras {
            matrix: "hand".into(),
            pr: 2,
            pc: 1,
            lookahead: 1,
            executor_depth_p95: None,
            model: Some(CommModel {
                pr: 2,
                pc: 1,
                stages: 1,
                factor_entries: 10,
            }),
            taskdag: Some(TaskDagSummary {
                subtree_local_tasks: 3,
                total_tasks: 4,
                nsubtrees: 2,
                steal_attempts: 4,
                steal_hits: 1,
            }),
        };
        let j = report_json(&a, &x);
        let v = json::parse(&j).unwrap();
        assert_eq!(v.get("report").unwrap().as_str(), Some("splu_analyze"));
        for key in [
            "matrix",
            "pr",
            "pc",
            "lookahead",
            "wall_secs",
            "total_work_secs",
            "critical_path_secs",
            "critical_path_spans",
            "speedup_ceiling",
            "pipeline_depth_p95",
            "pipeline_depth_bound",
            "pipeline_depth_ok",
            "messages",
            "bytes",
            "model_messages",
            "model_bytes",
            "attribution",
            "ranks",
        ] {
            assert!(v.get(key).is_some(), "missing key {key}");
        }
        let attr = v.get("attribution").unwrap();
        for c in CATEGORIES {
            assert!(attr.get(&format!("{c}_secs")).is_some(), "missing {c}");
        }
        let ranks = v.get("ranks").unwrap().items().unwrap();
        assert_eq!(ranks.len(), 2);
        assert!(ranks[0].get("gemm_secs").is_some());
    }

    #[test]
    fn report_text_has_one_row_per_rank() {
        let a = attribute(&hand_trace());
        let x = ReportExtras {
            matrix: "hand".into(),
            pr: 2,
            pc: 1,
            lookahead: 0,
            ..Default::default()
        };
        let t = report_text(&a, &x);
        assert!(t.contains("P0"));
        assert!(t.contains("P1"));
        assert!(t.contains("speedup ceiling"));
        assert!(t.contains("bound p_c + W = 1"));
    }

    #[test]
    fn chrome_round_trip_preserves_attribution() {
        let t = hand_trace();
        let json_text = crate::export::chrome_trace_json(&t);
        let t2 = trace_from_chrome_json(&json_text).unwrap();
        assert_eq!(t2.procs.len(), 2);
        let a1 = attribute(&t);
        let a2 = attribute(&t2);
        assert_eq!(a1.wall_ns, a2.wall_ns);
        assert_eq!(a1.total_ns, a2.total_ns);
        assert_eq!(a1.critical_path_ns, a2.critical_path_ns);
        // counters rebuilt from send marks (hand trace has none → 0;
        // the loader still parses the span/mark streams)
        assert!(trace_from_chrome_json("{\"traceEvents\":[]}").is_ok());
        assert!(trace_from_chrome_json("not json").is_err());
    }
}
