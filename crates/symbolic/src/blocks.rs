//! The 2D L/U block pattern (§3.2 of the paper).
//!
//! After supernode partitioning, the same partition is applied to the rows,
//! tiling the matrix into `N × N` submatrices. This module materializes
//! which blocks are structurally nonzero and their dense-structure masks:
//!
//! * an **L block** `L_IJ` (`I > J`) is a set of *dense subrows* spanning
//!   the full width of column block `J`,
//! * a **U block** `U_KJ` (`K < J`) is a set of *dense subcolumns* spanning
//!   the full height of row block `K` (Theorem 1; "almost dense" after
//!   amalgamation, Corollary 3),
//! * the **diagonal block** is stored dense.
//!
//! The numerical crates allocate one dense panel per present block and use
//! these masks to drive `DGEMM`/`DGEMV` updates; the scheduling crate uses
//! block presence to build the task graph (`Update(k, j)` exists iff
//! `U_kj ≠ 0`).

use crate::supernode::SupernodePartition;
use crate::symfact::StaticStructure;

/// Whether a U block is fully dense or only a subset of subcolumns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UBlockKind {
    /// Every subcolumn of the block is present (line 04 of `Update(k,j)`,
    /// Fig. 8: one DGEMM covers the whole block).
    Dense,
    /// Only the listed subcolumns are present (lines 06–08: per-subcolumn
    /// DGEMV path, or a packed DGEMM).
    SparseCols,
}

/// An L block's pattern: row-block id and present global rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LBlockPat {
    /// Row-block index `I` (`I > J` for the owning column block `J`).
    pub i: u32,
    /// Present global row indices, sorted (dense subrows of the block).
    pub rows: Vec<u32>,
}

/// A U block's pattern: column-block id and present global columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UBlockPat {
    /// Column-block index `J` (`J > K` for the owning row block `K`).
    pub j: u32,
    /// Present global column indices, sorted (dense subcolumns).
    pub cols: Vec<u32>,
    /// Dense or column-sparse.
    pub kind: UBlockKind,
}

/// The complete 2D block pattern of the static factors.
#[derive(Debug, Clone)]
pub struct BlockPattern {
    /// The (possibly amalgamated) supernode partition.
    pub part: SupernodePartition,
    /// `l_blocks[j]`: L blocks below the diagonal in column block `j`,
    /// sorted by row-block id.
    pub l_blocks: Vec<Vec<LBlockPat>>,
    /// `u_blocks[k]`: U blocks right of the diagonal in row block `k`,
    /// sorted by column-block id.
    pub u_blocks: Vec<Vec<UBlockPat>>,
    /// Precomputed scatter maps for every `Update(k, j)` destination pair
    /// (see [`BlockPattern::scatter_map`]).
    maps: ScatterMaps,
}

/// Flat storage of the precomputed `Update` scatter maps.
///
/// The map of source pair `(k, li, uj)` — L block `li` and U block `uj`
/// of stage `k`, both by *position* in their per-stage lists — occupies
/// `data[offsets[p]..offsets[p + 1]]` with
/// `p = pair_base[k] + li * u_blocks[k].len() + uj`. The numeric drivers
/// read these instead of re-merging index lists on every update task of
/// every (re)factorization; everything here is a function of the static
/// pattern only.
#[derive(Debug, Clone, Default)]
struct ScatterMaps {
    /// Concatenated position maps (`u32::MAX` = absent destination slot).
    data: Vec<u32>,
    /// `offsets[p]..offsets[p + 1]` bounds pair `p`'s map in `data`.
    offsets: Vec<usize>,
    /// First pair index of each source stage `k`.
    pair_base: Vec<usize>,
}

impl ScatterMaps {
    fn build(l_blocks: &[Vec<LBlockPat>], u_blocks: &[Vec<UBlockPat>]) -> Self {
        let nb = l_blocks.len();
        let mut pair_base = Vec::with_capacity(nb);
        let mut npairs = 0usize;
        for k in 0..nb {
            pair_base.push(npairs);
            npairs += l_blocks[k].len() * u_blocks[k].len();
        }
        let mut offsets = Vec::with_capacity(npairs + 1);
        offsets.push(0usize);
        let mut data: Vec<u32> = Vec::new();
        for k in 0..nb {
            for l in &l_blocks[k] {
                let i = l.i as usize;
                for u in &u_blocks[k] {
                    let j = u.j as usize;
                    use std::cmp::Ordering::*;
                    match i.cmp(&j) {
                        // Diagonal destination: contiguous, no map needed.
                        Equal => {}
                        // Rows of L_ik within the destination L block (i, j).
                        // An absent destination (pure padding) maps to MAX.
                        Greater => match find_l(&l_blocks[j], i) {
                            Some(d) => merge_positions(&l.rows, &d.rows, &mut data),
                            None => data.extend(l.rows.iter().map(|_| u32::MAX)),
                        },
                        // Columns of U_kj within the destination U block (i, j).
                        Less => match find_u(&u_blocks[i], j) {
                            Some(d) => merge_positions(&u.cols, &d.cols, &mut data),
                            None => data.extend(u.cols.iter().map(|_| u32::MAX)),
                        },
                    }
                    offsets.push(data.len());
                }
            }
        }
        Self {
            data,
            offsets,
            pair_base,
        }
    }
}

fn find_l(v: &[LBlockPat], i: usize) -> Option<&LBlockPat> {
    v.binary_search_by_key(&(i as u32), |l| l.i)
        .ok()
        .map(|p| &v[p])
}

fn find_u(v: &[UBlockPat], j: usize) -> Option<&UBlockPat> {
    v.binary_search_by_key(&(j as u32), |u| u.j)
        .ok()
        .map(|p| &v[p])
}

/// For each element of `needles` (sorted), its position in `haystack`
/// (sorted), or `u32::MAX` if absent. Linear merge.
fn merge_positions(needles: &[u32], haystack: &[u32], out: &mut Vec<u32>) {
    let mut p = 0usize;
    for &g in needles {
        while p < haystack.len() && haystack[p] < g {
            p += 1;
        }
        if p < haystack.len() && haystack[p] == g {
            out.push(p as u32);
            p += 1;
        } else {
            out.push(u32::MAX);
        }
    }
}

impl BlockPattern {
    /// Build the block pattern from the static structure and a partition.
    ///
    /// Masks are unions over the supernode's columns/rows: before
    /// amalgamation the union equals every member (Theorem 1); after
    /// amalgamation the union realizes the "almost dense" structures of
    /// Corollary 3.
    pub fn build(s: &StaticStructure, part: &SupernodePartition) -> Self {
        let mut bp = Self::build_masks(s, part);
        // Second pass: with every block's mask known, precompute the
        // scatter maps so the numeric update loops never merge index
        // lists again (the `Arc<BlockPattern>` shared by the solver cache
        // amortizes this over all refactorizations).
        bp.maps = ScatterMaps::build(&bp.l_blocks, &bp.u_blocks);
        bp
    }

    /// Build the block pattern **without** the precomputed scatter maps.
    ///
    /// The maps exist purely for the numeric update loops; on large
    /// modeling-only pipelines (task-graph construction, schedule
    /// simulation) they dominate both build time and resident memory —
    /// gigabytes on the n ≥ 50k suite matrices — so the scheduling path
    /// skips them. Calling [`BlockPattern::scatter_map`] on a pattern
    /// built this way panics.
    pub fn build_structural(s: &StaticStructure, part: &SupernodePartition) -> Self {
        Self::build_masks(s, part)
    }

    fn build_masks(s: &StaticStructure, part: &SupernodePartition) -> Self {
        let nb = part.nblocks();
        let block_of = part.block_of_index();
        let mut l_blocks: Vec<Vec<LBlockPat>> = Vec::with_capacity(nb);
        let mut u_blocks: Vec<Vec<UBlockPat>> = Vec::with_capacity(nb);

        for b in 0..nb {
            let lo = part.start(b);
            let hi = part.starts[b + 1];

            let mut rows: Vec<u32> = Vec::new();
            for k in lo..hi {
                rows.extend(s.lcols[k].iter().copied().filter(|&r| (r as usize) >= hi));
            }
            rows.sort_unstable();
            rows.dedup();
            let mut lb: Vec<LBlockPat> = Vec::new();
            for &r in &rows {
                let ib = block_of[r as usize];
                match lb.last_mut() {
                    Some(last) if last.i == ib => last.rows.push(r),
                    _ => lb.push(LBlockPat {
                        i: ib,
                        rows: vec![r],
                    }),
                }
            }
            l_blocks.push(lb);

            let mut cols: Vec<u32> = Vec::new();
            for k in lo..hi {
                cols.extend(s.urows[k].iter().copied().filter(|&c| (c as usize) >= hi));
            }
            cols.sort_unstable();
            cols.dedup();
            let mut ub: Vec<UBlockPat> = Vec::new();
            for &c in &cols {
                let jb = block_of[c as usize];
                match ub.last_mut() {
                    Some(last) if last.j == jb => last.cols.push(c),
                    _ => ub.push(UBlockPat {
                        j: jb,
                        cols: vec![c],
                        kind: UBlockKind::SparseCols,
                    }),
                }
            }
            for u in &mut ub {
                if u.cols.len() == part.width(u.j as usize) {
                    u.kind = UBlockKind::Dense;
                }
            }
            u_blocks.push(ub);
        }

        Self {
            part: part.clone(),
            l_blocks,
            u_blocks,
            maps: ScatterMaps::default(),
        }
    }

    /// Number of blocks per side.
    pub fn nblocks(&self) -> usize {
        self.part.nblocks()
    }

    /// The U block `(k, j)` if present (`k < j`).
    pub fn u_block(&self, k: usize, j: usize) -> Option<&UBlockPat> {
        let v = &self.u_blocks[k];
        v.binary_search_by_key(&(j as u32), |u| u.j)
            .ok()
            .map(|p| &v[p])
    }

    /// The L block `(i, j)` if present (`i > j`).
    pub fn l_block(&self, i: usize, j: usize) -> Option<&LBlockPat> {
        let v = &self.l_blocks[j];
        v.binary_search_by_key(&(i as u32), |l| l.i)
            .ok()
            .map(|p| &v[p])
    }

    /// The precomputed scatter map of source pair `(k, li, uj)`:
    /// L block `self.l_blocks[k][li]` (destination row block `i`) updating
    /// U block `self.u_blocks[k][uj]` (destination column block `j`).
    ///
    /// * `i > j` — one entry per source row: its position within the
    ///   destination L block `(i, j)`'s `rows`, or `u32::MAX` if the row
    ///   is pure padding there (its contribution is exactly zero);
    /// * `i < j` — one entry per source U column: its position within the
    ///   destination U block `(i, j)`'s `cols`, likewise MAX-masked;
    /// * `i == j` — empty: the diagonal panel is indexed directly.
    pub fn scatter_map(&self, k: usize, li: usize, uj: usize) -> &[u32] {
        let p = self.maps.pair_base[k] + li * self.u_blocks[k].len() + uj;
        &self.maps.data[self.maps.offsets[p]..self.maps.offsets[p + 1]]
    }

    /// Total `u32` entries held by the precomputed scatter maps — the
    /// memory cost of owning them (reported alongside
    /// [`BlockPattern::storage_entries`]; multiply by 4 for bytes).
    pub fn scatter_map_entries(&self) -> usize {
        self.maps.data.len()
    }

    /// Resident bytes of the scatter-map storage (entries + offset
    /// tables).
    pub fn scatter_map_bytes(&self) -> usize {
        self.maps.data.len() * std::mem::size_of::<u32>()
            + (self.maps.offsets.len() + self.maps.pair_base.len()) * std::mem::size_of::<usize>()
    }

    /// Column blocks `j > k` with `U_kj ≠ 0` — the targets of
    /// `Update(k, j)` tasks.
    pub fn update_targets(&self, k: usize) -> impl Iterator<Item = usize> + '_ {
        self.u_blocks[k].iter().map(|u| u.j as usize)
    }

    /// Dense-storage entry count: what the block representation actually
    /// allocates (padding included). Diagonal blocks count as full
    /// squares; L blocks as `rows.len() × width`; U blocks as
    /// `height × cols.len()`.
    pub fn storage_entries(&self) -> usize {
        let mut total = 0usize;
        for b in 0..self.nblocks() {
            let w = self.part.width(b);
            total += w * w;
            for l in &self.l_blocks[b] {
                total += l.rows.len() * w;
            }
            for u in &self.u_blocks[b] {
                total += u.cols.len() * w; // height of row block b is w
            }
        }
        total
    }

    /// Fraction of the `Update` flops that run as full-block DGEMM
    /// (both `U_kj` dense), the paper's measured `r ≈ 0.65`.
    /// The remainder runs as per-subcolumn updates.
    pub fn dense_update_fraction(&self) -> f64 {
        let mut dense = 0u64;
        let mut total = 0u64;
        for k in 0..self.nblocks() {
            let wk = self.part.width(k) as u64;
            let lrows: u64 = self.l_blocks[k].iter().map(|l| l.rows.len() as u64).sum();
            for u in &self.u_blocks[k] {
                let flops = 2 * lrows * wk * u.cols.len() as u64;
                total += flops;
                if u.kind == UBlockKind::Dense {
                    dense += flops;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            dense as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supernode::{amalgamate, partition_supernodes};
    use crate::symfact::static_symbolic_factorization;
    use splu_sparse::gen::{self, ValueModel};

    fn build(a: &splu_sparse::CscMatrix, r: usize) -> (StaticStructure, BlockPattern) {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, 25);
        let part = amalgamate(&s, &base, r, 25);
        let bp = BlockPattern::build(&s, &part);
        (s, bp)
    }

    #[test]
    fn theorem1_u_blocks_are_dense_subcolumns_pre_amalgamation() {
        // Without amalgamation, every U block subcolumn must be present in
        // EVERY row of its supernode: cols ∈ urows[k] for all k in block.
        let a = gen::grid2d(8, 8, 0.3, ValueModel::default());
        let (s, bp) = build(&a, 0);
        for k in 0..bp.nblocks() {
            let lo = bp.part.start(k);
            let hi = bp.part.starts[k + 1];
            for u in &bp.u_blocks[k] {
                for &c in &u.cols {
                    for row in lo..hi {
                        assert!(
                            s.urows[row].binary_search(&c).is_ok(),
                            "U block ({k},{}) col {c} missing from row {row}",
                            u.j
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn corollary1_nesting_down_the_column_block() {
        // If U_{i',j} has dense subcolumn c and L_{i',i'} nonzero with
        // i < i' < j and U_{i,j} nonzero, then U_{i,j} has subcolumn c...
        // Equivalently (what the implementation must satisfy): masks nest
        // upward for blocks in the same column when the lower row block is
        // reachable. We verify the mask-union construction keeps Corollary
        // 1's consequence used by the numeric code: every fill target of
        // Update(k,j) exists.
        let a = gen::random_sparse(120, 4, 0.5, ValueModel::default());
        let (_s, bp) = build(&a, 0);
        for k in 0..bp.nblocks() {
            for u in &bp.u_blocks[k] {
                let j = u.j as usize;
                for l in &bp.l_blocks[k] {
                    let i = l.i as usize;
                    // destination block (i, j): diag, L, or U — must exist
                    if i == j {
                        continue; // diagonal always allocated
                    } else if i > j {
                        assert!(
                            bp.l_block(i, j).is_some(),
                            "missing L dest ({i},{j}) for update from {k}"
                        );
                        // and every source row must be present there
                        for &r in &l.rows {
                            assert!(
                                bp.l_block(i, j).unwrap().rows.binary_search(&r).is_ok(),
                                "row {r} missing in L dest ({i},{j})"
                            );
                        }
                    } else {
                        let dest = bp.u_block(i, j).expect("missing U dest");
                        for &c in &u.cols {
                            assert!(
                                dest.cols.binary_search(&c).is_ok(),
                                "col {c} missing in U dest ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dense_matrix_all_blocks_dense() {
        let a = gen::dense_random(30, ValueModel::default());
        let (_s, bp) = build(&a, 0);
        let nb = bp.nblocks();
        for k in 0..nb {
            assert_eq!(bp.u_blocks[k].len(), nb - k - 1);
            for u in &bp.u_blocks[k] {
                assert_eq!(u.kind, UBlockKind::Dense);
            }
            assert_eq!(bp.l_blocks[k].len(), nb - k - 1);
            for l in &bp.l_blocks[k] {
                assert_eq!(l.rows.len(), bp.part.width(l.i as usize));
            }
        }
        assert!((bp.dense_update_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(bp.storage_entries(), 900);
    }

    #[test]
    fn storage_at_least_static_nnz() {
        let a = gen::grid2d(9, 7, 0.4, ValueModel::default());
        let (s, bp) = build(&a, 4);
        assert!(bp.storage_entries() >= s.factor_nnz());
    }

    #[test]
    fn update_targets_match_u_blocks() {
        let a = gen::random_sparse(90, 3, 0.6, ValueModel::default());
        let (_s, bp) = build(&a, 4);
        for k in 0..bp.nblocks() {
            let t: Vec<usize> = bp.update_targets(k).collect();
            assert_eq!(t.len(), bp.u_blocks[k].len());
            for j in &t {
                assert!(*j > k);
                assert!(bp.u_block(k, *j).is_some());
            }
            // sorted strictly increasing
            for w in t.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    /// Oracle: every precomputed scatter map must equal a fresh linear
    /// merge of the source index list against the destination mask.
    fn check_maps_match_fresh_merge(bp: &BlockPattern) {
        for k in 0..bp.nblocks() {
            for (li, l) in bp.l_blocks[k].iter().enumerate() {
                let i = l.i as usize;
                for (uj, u) in bp.u_blocks[k].iter().enumerate() {
                    let j = u.j as usize;
                    let map = bp.scatter_map(k, li, uj);
                    let mut want = Vec::new();
                    use std::cmp::Ordering::*;
                    match i.cmp(&j) {
                        Equal => {}
                        Greater => {
                            let empty: &[u32] = &[];
                            let dest = bp.l_block(i, j).map_or(empty, |d| &d.rows);
                            merge_positions(&l.rows, dest, &mut want);
                        }
                        Less => {
                            let empty: &[u32] = &[];
                            let dest = bp.u_block(i, j).map_or(empty, |d| &d.cols);
                            merge_positions(&u.cols, dest, &mut want);
                        }
                    }
                    assert_eq!(map, &want[..], "map for (k={k}, li={li}, uj={uj})");
                    // present entries really index the matching row/col
                    for (s, &pos) in map.iter().enumerate() {
                        if pos == u32::MAX {
                            continue;
                        }
                        match i.cmp(&j) {
                            Greater => {
                                assert_eq!(bp.l_block(i, j).unwrap().rows[pos as usize], l.rows[s])
                            }
                            Less => {
                                assert_eq!(bp.u_block(i, j).unwrap().cols[pos as usize], u.cols[s])
                            }
                            Equal => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_maps_match_fresh_merges() {
        for (mat, r) in [
            (gen::grid2d(8, 8, 0.3, ValueModel::default()), 0),
            (gen::random_sparse(120, 4, 0.5, ValueModel::default()), 4),
            (gen::dense_random(30, ValueModel::default()), 0),
        ] {
            let (_s, bp) = build(&mat, r);
            check_maps_match_fresh_merge(&bp);
            assert!(bp.scatter_map_bytes() >= bp.scatter_map_entries() * 4);
        }
    }

    #[test]
    fn scatter_maps_cover_every_update_pair() {
        // Pre-amalgamation, Corollary 1 guarantees every destination slot
        // exists: no map entry may be MAX, and lengths match the sources.
        let a = gen::grid2d(9, 7, 0.4, ValueModel::default());
        let (_s, bp) = build(&a, 0);
        let mut entries = 0usize;
        for k in 0..bp.nblocks() {
            for (li, l) in bp.l_blocks[k].iter().enumerate() {
                for (uj, u) in bp.u_blocks[k].iter().enumerate() {
                    let map = bp.scatter_map(k, li, uj);
                    let (i, j) = (l.i as usize, u.j as usize);
                    if i == j {
                        assert!(map.is_empty());
                    } else if i > j {
                        assert_eq!(map.len(), l.rows.len());
                        assert!(map.iter().all(|&p| p != u32::MAX));
                    } else {
                        assert_eq!(map.len(), u.cols.len());
                        assert!(map.iter().all(|&p| p != u32::MAX));
                    }
                    entries += map.len();
                }
            }
        }
        assert_eq!(entries, bp.scatter_map_entries());
    }

    #[test]
    fn amalgamation_increases_dense_fraction() {
        let a = gen::grid2d(12, 12, 0.3, ValueModel::default());
        let (_s0, bp0) = build(&a, 0);
        let (_s1, bp1) = build(&a, 6);
        // bigger supernodes → more full-width dense U blocks (weak check:
        // not smaller by much)
        assert!(bp1.part.nblocks() < bp0.part.nblocks());
        assert!(bp1.storage_entries() >= bp0.storage_entries());
    }
}
