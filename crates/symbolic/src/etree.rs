//! Block-level column elimination tree of the static factors.
//!
//! The task-DAG scheduler needs, for every column block `j`, the smallest
//! enclosing unit of work that can run without outside data: the subtree
//! of `j` in the elimination tree of the *block dependency graph*
//!
//! ```text
//!   G = { (k, j) : k < j,  U_kj ≠ 0  or  L_jk ≠ 0 }
//! ```
//!
//! `U_kj ≠ 0` is exactly "stage `k` updates column block `j`"
//! (`Update(k, j)` exists, and with it the `Swap`/`Trsm` chain), so every
//! cross-stage dependency of the 2D numeric driver is an edge of `G`. The
//! tree is computed with Liu's near-linear algorithm (path-compressed
//! virtual forest); its defining property — established by construction
//! and re-checked by the tests against a naive elimination oracle — is:
//!
//! > for every edge `(k, j)` of `G` with `k < j`, `j` is an **ancestor**
//! > of `k` in the tree.
//!
//! Hence two columns in disjoint subtrees share no dependency path, and a
//! subtree mapped wholly onto one processor factors with zero messages.
//! The L edges symmetrize the (generally unsymmetric) S\* structure; they
//! only coarsen the tree, never break the ancestor property.

use crate::blocks::BlockPattern;

pub use splu_order::etree::{depths, height, postorder, NO_PARENT};

/// Parent array of the block elimination tree (`NO_PARENT` marks roots).
///
/// Liu's algorithm over the symmetrized block dependency graph: process
/// columns in ascending order; for each lower neighbor `k` of `j`, splice
/// the root of `k`'s current virtual tree under `j`, compressing the
/// traversed path so later walks are amortized near-constant.
pub fn block_etree(bp: &BlockPattern) -> Vec<usize> {
    let nb = bp.nblocks();
    // Lower adjacency: adj[j] = { k < j : U_kj ≠ 0 or L_jk ≠ 0 }.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for k in 0..nb {
        for u in &bp.u_blocks[k] {
            adj[u.j as usize].push(k as u32);
        }
        for l in &bp.l_blocks[k] {
            adj[l.i as usize].push(k as u32);
        }
    }

    let mut parent = vec![NO_PARENT; nb];
    let mut anc = vec![NO_PARENT; nb];
    for (j, lower) in adj.iter_mut().enumerate() {
        lower.sort_unstable();
        lower.dedup();
        for &k in lower.iter() {
            // Walk k's virtual-root path, compressing onto j.
            let mut r = k as usize;
            while anc[r] != NO_PARENT && anc[r] != j {
                let next = anc[r];
                anc[r] = j;
                r = next;
            }
            if anc[r] == NO_PARENT {
                anc[r] = j;
                parent[r] = j;
            }
        }
    }
    parent
}

/// `true` iff `a` is an ancestor of `d` (or `a == d`) in `parent`.
pub fn is_ancestor(parent: &[usize], a: usize, d: usize) -> bool {
    let mut v = d;
    loop {
        if v == a {
            return true;
        }
        if parent[v] == NO_PARENT {
            return false;
        }
        v = parent[v];
    }
}

/// Subtree cost of every node: `weight[v] + Σ subtree costs of children`.
/// `weight` is any per-block work estimate (the scheduler passes task
/// flops); single upward pass, parents have larger indices than children
/// only along tree edges so ascending order suffices.
pub fn subtree_costs(parent: &[usize], weight: &[u64]) -> Vec<u64> {
    let mut cost = weight.to_vec();
    for v in 0..parent.len() {
        if parent[v] != NO_PARENT {
            // tree edges always point to a higher column block
            debug_assert!(parent[v] > v);
            cost[parent[v]] += cost[v];
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supernode::{amalgamate, partition_supernodes};
    use crate::symfact::static_symbolic_factorization;
    use splu_sparse::gen::{self, ValueModel};
    use std::collections::BTreeSet;

    fn pattern(a: &splu_sparse::CscMatrix, r: usize) -> BlockPattern {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, 25);
        let part = amalgamate(&s, &base, r, 25);
        BlockPattern::build(&s, &part)
    }

    /// Naive oracle: eliminate block vertices in order on the symmetrized
    /// dependency graph; the parent of `k` is its smallest surviving
    /// higher neighbor, and eliminating `k` connects that parent to the
    /// rest (textbook reachability fill). The etree of the filled graph
    /// must coincide with Liu's answer.
    fn naive_reachability_etree(bp: &BlockPattern) -> Vec<usize> {
        let nb = bp.nblocks();
        let mut higher: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nb];
        for k in 0..nb {
            for u in &bp.u_blocks[k] {
                higher[k].insert(u.j as usize);
            }
            for l in &bp.l_blocks[k] {
                higher[k].insert(l.i as usize);
            }
        }
        let mut parent = vec![NO_PARENT; nb];
        for k in 0..nb {
            if let Some(&p) = higher[k].iter().next() {
                parent[k] = p;
                let rest: Vec<usize> = higher[k].iter().copied().skip(1).collect();
                for x in rest {
                    higher[p].insert(x);
                }
            }
        }
        parent
    }

    #[test]
    fn liu_matches_naive_reachability_oracle() {
        for (mat, r) in [
            (gen::random_sparse(90, 3, 0.6, ValueModel::default()), 0),
            (gen::random_sparse(140, 4, 0.5, ValueModel::default()), 4),
            (gen::grid2d(9, 8, 0.4, ValueModel::default()), 4),
            (
                gen::power_law_circuit(150, 3, 0.9, ValueModel::default()),
                4,
            ),
        ] {
            let bp = pattern(&mat, r);
            assert_eq!(block_etree(&bp), naive_reachability_etree(&bp));
        }
    }

    #[test]
    fn every_dependency_edge_points_to_an_ancestor() {
        for (mat, r) in [
            (gen::random_sparse(120, 4, 0.5, ValueModel::default()), 4),
            (gen::grid2d(10, 10, 0.3, ValueModel::default()), 4),
            (
                gen::power_law_circuit(200, 4, 0.9, ValueModel::default()),
                4,
            ),
        ] {
            let bp = pattern(&mat, r);
            let parent = block_etree(&bp);
            for k in 0..bp.nblocks() {
                for u in &bp.u_blocks[k] {
                    assert!(
                        is_ancestor(&parent, u.j as usize, k),
                        "U edge ({k},{}) not ancestor-directed",
                        u.j
                    );
                }
                for l in &bp.l_blocks[k] {
                    assert!(
                        is_ancestor(&parent, l.i as usize, k),
                        "L edge ({},{k}) not ancestor-directed",
                        l.i
                    );
                }
            }
        }
    }

    #[test]
    fn parents_increase_and_postorder_is_a_permutation() {
        let bp = pattern(&gen::random_sparse(160, 4, 0.5, ValueModel::default()), 4);
        let parent = block_etree(&bp);
        for (v, &p) in parent.iter().enumerate() {
            assert!(p == NO_PARENT || p > v);
        }
        let post = postorder(&parent);
        let mut seen = vec![false; parent.len()];
        for &v in &post {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn subtree_costs_sum_child_weights() {
        // A hand-built comb: 0→2, 1→2, 2→4, 3→4.
        let parent = vec![2, 2, 4, 4, NO_PARENT];
        let w = vec![1, 2, 4, 8, 16];
        assert_eq!(subtree_costs(&parent, &w), vec![1, 2, 7, 8, 31]);
    }

    #[test]
    fn structural_pattern_gives_identical_tree() {
        let a = gen::random_sparse(130, 4, 0.5, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 25);
        let part = amalgamate(&s, &base, 4, 25);
        let full = BlockPattern::build(&s, &part);
        let structural = BlockPattern::build_structural(&s, &part);
        assert_eq!(structural.l_blocks, full.l_blocks);
        assert_eq!(structural.u_blocks, full.u_blocks);
        assert_eq!(structural.scatter_map_entries(), 0);
        assert_eq!(block_etree(&structural), block_etree(&full));
    }
}
