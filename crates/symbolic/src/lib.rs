//! `splu-symbolic` — static structure prediction for sparse LU with
//! partial pivoting (§3 of the paper).
//!
//! Partial pivoting interchanges rows based on numerical values, so the
//! exact structures of the L and U factors cannot be known before the
//! numerical factorization. The S\* approach sidesteps run-time symbolic
//! work entirely with three static steps, all implemented here:
//!
//! 1. **Static symbolic factorization** ([`symfact`]) — the George–Ng
//!    scheme: at each elimination step, every *candidate pivot row*'s
//!    structure is replaced by the union of all candidate structures, so
//!    the predicted pattern accommodates *any* pivot sequence that could
//!    occur (§3.1, Fig. 2).
//! 2. **2D L/U supernode partitioning** ([`supernode`]) — columns are
//!    grouped into supernodes from the static L structure; the same
//!    partition applied to the rows tiles the matrix into submatrices
//!    whose U blocks contain only *structurally dense subcolumns*
//!    (Theorem 1) and whose L blocks contain dense subrows — the key to
//!    doing the numerical updates with BLAS-3 (§3.2, Figs. 3–5).
//! 3. **Supernode amalgamation** ([`supernode::amalgamate`]) — consecutive
//!    supernodes whose structures differ by at most `r` entries are merged
//!    (no permutation needed), trading a few padded zeros for larger dense
//!    blocks (§3.3, Corollary 3).
//!
//! [`blocks`] materializes the resulting 2D block pattern (presence +
//! dense subrow/subcolumn masks per block) consumed by the numerical and
//! scheduling crates.

pub mod blocks;
pub mod etree;
pub mod supernode;
pub mod symfact;

pub use blocks::{BlockPattern, UBlockKind};
pub use etree::{block_etree, subtree_costs};
pub use supernode::{amalgamate, partition_supernodes, SupernodePartition};
pub use symfact::{static_symbolic_factorization, StaticStructure};
