//! Supernode partitioning and amalgamation (§3.2–3.3 of the paper).
//!
//! A supernode is a group of consecutive columns with nested L structure:
//! `P_{k+1} = P_k \ {k}`. After static symbolic factorization this test is
//! a direct comparison of adjacent static L columns. Theorem 1 then
//! guarantees that applying the same partition to the rows yields U blocks
//! made of structurally dense subcolumns.
//!
//! Supernodes in real sparse matrices average only 1.5–2 columns, which
//! makes tasks too fine-grained; [`amalgamate`] merges *consecutive*
//! supernodes whose structures differ by at most `r` rows (the
//! amalgamation factor; the paper finds r ∈ [4, 6] best, giving 10–60 %
//! sequential improvement). Merging only consecutive supernodes needs no
//! row/column permutation, so it cannot invalidate the static symbolic
//! factorization — the price is a few padded zero entries, making blocks
//! "almost dense" (Corollary 3).

use crate::symfact::StaticStructure;

/// A partition of the `n` columns (and rows) into `N` consecutive blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupernodePartition {
    /// Block boundaries: block `b` spans columns `starts[b]..starts[b+1]`;
    /// `starts.len() == nblocks + 1`, `starts[0] == 0`,
    /// `starts[nblocks] == n`.
    pub starts: Vec<usize>,
}

impl SupernodePartition {
    /// Number of blocks `N`.
    pub fn nblocks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Matrix order `n`.
    pub fn n(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// First column of block `b` (the paper's `S(b)`).
    pub fn start(&self, b: usize) -> usize {
        self.starts[b]
    }

    /// Width of block `b`.
    pub fn width(&self, b: usize) -> usize {
        self.starts[b + 1] - self.starts[b]
    }

    /// Map each global index to its block id.
    pub fn block_of_index(&self) -> Vec<u32> {
        let mut map = vec![0u32; self.n()];
        for b in 0..self.nblocks() {
            for k in self.starts[b]..self.starts[b + 1] {
                map[k] = b as u32;
            }
        }
        map
    }

    /// Average block width.
    pub fn avg_width(&self) -> f64 {
        if self.nblocks() == 0 {
            0.0
        } else {
            self.n() as f64 / self.nblocks() as f64
        }
    }

    fn validate(&self) {
        assert!(!self.starts.is_empty() && self.starts[0] == 0);
        for w in self.starts.windows(2) {
            assert!(w[0] < w[1], "empty block in partition");
        }
    }
}

/// Detect supernodes from the static L structure, capping widths at
/// `max_width` (the paper uses block size 25: bigger blocks reduce
/// available parallelism, smaller ones reduce BLAS-3 efficiency).
pub fn partition_supernodes(s: &StaticStructure, max_width: usize) -> SupernodePartition {
    assert!(max_width >= 1);
    let n = s.n();
    let mut starts = vec![0usize];
    let mut width = 1usize;
    for k in 1..n {
        let nested = is_nested(&s.lcols[k - 1], &s.lcols[k]);
        if nested && width < max_width {
            width += 1;
        } else {
            starts.push(k);
            width = 1;
        }
    }
    starts.push(n);
    let p = SupernodePartition { starts };
    p.validate();
    p
}

/// `lcols[k+1] == lcols[k] \ {k}` — the L-supernode nesting test.
fn is_nested(prev: &[u32], next: &[u32]) -> bool {
    prev.len() == next.len() + 1 && prev[1..] == *next
}

/// Amalgamate consecutive supernodes whose structures differ by at most
/// `r` entries (the amalgamation factor). `r = 0` returns the input
/// partition. The difference measure between adjacent supernodes `s`
/// (ending at column `e-1`) and `t` (starting at `e`) is the number of
/// rows in the *last* column of `s` (beyond the columns of `t` themselves)
/// that are **not** in the *first* column of `t` — the rows that would
/// become padded zeros in the merged supernode's lower panel.
/// The merged width is still capped at `max_width`.
///
/// This is the O(n) consecutive-only strategy of §3.3: no permutation is
/// introduced, so the correctness of the static symbolic factorization is
/// unaffected.
pub fn amalgamate(
    s: &StaticStructure,
    base: &SupernodePartition,
    r: usize,
    max_width: usize,
) -> SupernodePartition {
    if r == 0 {
        return base.clone();
    }
    let mut starts: Vec<usize> = Vec::with_capacity(base.starts.len());
    starts.push(0);
    let mut cur_start = 0usize;
    for b in 1..base.nblocks() {
        let boundary = base.starts[b];
        let merged_width = base.starts[b + 1] - cur_start;
        let diff = structure_difference(s, boundary);
        if diff <= r
            && merged_width <= max_width
            && etree_child_of_next(s, boundary, base.starts[b + 1])
        {
            // merge: skip this boundary
            continue;
        }
        starts.push(boundary);
        cur_start = boundary;
    }
    starts.push(s.n());
    let p = SupernodePartition { starts };
    p.validate();
    p
}

/// Is the supernode ending at `boundary - 1` the elimination-tree child
/// of the one starting at `boundary`? True iff the first subdiagonal row
/// of its last static L column lands inside the next supernode's column
/// span `[boundary, next_end)` — the column-etree parent relation lifted
/// to supernodes. Amalgamation merges only such pairs: two *structurally
/// disjoint* neighbours can also score a tiny [`structure_difference`]
/// (both columns near-empty), but merging them welds independent
/// elimination subtrees into one block and collapses the subtree
/// parallelism the task-DAG planner (`splu_sched::plan_taskdag`) lives
/// on — on a bordered block-diagonal matrix it chains every diagonal
/// block through the merged boundary blocks.
fn etree_child_of_next(s: &StaticStructure, boundary: usize, next_end: usize) -> bool {
    s.lcols[boundary - 1]
        .iter()
        .map(|&r| r as usize)
        .find(|&r| r >= boundary)
        .is_some_and(|r| r < next_end)
}

/// Number of rows in `lcols[boundary - 1] \ ({boundary - 1} ∪ lcols[boundary])`:
/// the padded zeros per column that merging across `boundary` would add to
/// the lower panel.
fn structure_difference(s: &StaticStructure, boundary: usize) -> usize {
    let prev = &s.lcols[boundary - 1];
    let next = &s.lcols[boundary];
    let mut diff = 0usize;
    let mut j = 0usize;
    for &rowu in prev.iter() {
        if (rowu as usize) < boundary {
            continue; // the column index itself / above-boundary rows
        }
        while j < next.len() && next[j] < rowu {
            // row only in `next`: also a padded zero for the earlier column
            diff += 1;
            j += 1;
        }
        if j < next.len() && next[j] == rowu {
            j += 1;
        } else {
            diff += 1;
        }
    }
    diff + (next.len() - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symfact::static_symbolic_factorization;
    use splu_sparse::gen::{self, ValueModel};
    use splu_sparse::CooMatrix;

    fn dense_structure(n: usize) -> StaticStructure {
        let a = gen::dense_random(n, ValueModel::default());
        static_symbolic_factorization(&a)
    }

    #[test]
    fn dense_matrix_is_one_supernode_up_to_cap() {
        let s = dense_structure(10);
        let p = partition_supernodes(&s, 100);
        assert_eq!(p.nblocks(), 1);
        assert_eq!(p.width(0), 10);
        // with a cap, splits into equal chunks
        let p4 = partition_supernodes(&s, 4);
        assert_eq!(p4.starts, vec![0, 4, 8, 10]);
    }

    #[test]
    fn tridiagonal_has_singleton_supernodes() {
        let n = 9;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
        }
        let s = static_symbolic_factorization(&c.to_csc());
        let p = partition_supernodes(&s, 25);
        // tridiagonal: P_k = {k, k+1}, P_{k+1} = {k+1, k+2} ≠ P_k \ {k}
        assert_eq!(p.nblocks(), n - 1);
        assert_eq!(p.width(0), 1);
        // ...except the last two columns which do nest: P_{n-1} = {n-1}
        assert_eq!(p.width(p.nblocks() - 1), 2);
    }

    #[test]
    fn partition_covers_all_columns() {
        let a = gen::grid2d(9, 9, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let p = partition_supernodes(&s, 25);
        assert_eq!(p.n(), 81);
        let map = p.block_of_index();
        assert_eq!(map.len(), 81);
        for b in 0..p.nblocks() {
            for k in p.start(b)..p.starts[b + 1] {
                assert_eq!(map[k] as usize, b);
            }
        }
    }

    #[test]
    fn nesting_within_supernodes_holds() {
        let a = gen::grid2d(8, 8, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let p = partition_supernodes(&s, 25);
        for b in 0..p.nblocks() {
            for k in p.start(b)..p.starts[b + 1] - 1 {
                assert!(
                    is_nested(&s.lcols[k], &s.lcols[k + 1]),
                    "columns {k},{} in block {b} must nest",
                    k + 1
                );
            }
        }
    }

    #[test]
    fn amalgamation_reduces_block_count() {
        let a = gen::grid2d(10, 10, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 25);
        let am = amalgamate(&s, &base, 6, 25);
        assert!(
            am.nblocks() < base.nblocks(),
            "amalgamation should merge some of {} blocks",
            base.nblocks()
        );
        assert!(am.avg_width() > base.avg_width());
        // r = 0 is the identity
        assert_eq!(amalgamate(&s, &base, 0, 25), base);
    }

    #[test]
    fn amalgamation_respects_width_cap() {
        let s = dense_structure(12);
        let base = partition_supernodes(&s, 3);
        let am = amalgamate(&s, &base, 100, 6);
        for b in 0..am.nblocks() {
            assert!(am.width(b) <= 6);
        }
    }

    #[test]
    fn amalgamation_monotone_in_r() {
        let a = gen::random_sparse(100, 4, 0.5, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let base = partition_supernodes(&s, 25);
        let mut prev = base.nblocks();
        for r in [1usize, 2, 4, 8, 16] {
            let am = amalgamate(&s, &base, r, 25);
            assert!(am.nblocks() <= prev, "r={r}");
            prev = am.nblocks();
        }
    }

    #[test]
    fn amalgamation_never_merges_independent_blocks() {
        // Two independent dense 3×3 diagonal blocks. The boundary between
        // them scores a tiny structure difference (the trailing column of
        // block 0 has no subdiagonal rows at all), so a difference-only
        // rule would merge them even at r = 1 — but they are separate
        // elimination-tree roots, and welding them would destroy the
        // subtree independence the task-DAG planner relies on.
        let mut c = CooMatrix::new(6, 6);
        for b in [0usize, 3] {
            for i in 0..3 {
                for j in 0..3 {
                    c.push(b + i, b + j, if i == j { 4.0 } else { 1.0 });
                }
            }
        }
        let s = static_symbolic_factorization(&c.to_csc());
        let base = partition_supernodes(&s, 25);
        assert_eq!(base.starts, vec![0, 3, 6]);
        for r in [1usize, 4, 100] {
            assert_eq!(
                amalgamate(&s, &base, r, 25).starts,
                vec![0, 3, 6],
                "r={r}: independent blocks must never amalgamate"
            );
        }
    }

    #[test]
    fn structure_difference_zero_for_nested() {
        // boundary between perfectly nested columns (a dense block split by
        // the width cap) has difference 0
        let s = dense_structure(8);
        assert_eq!(structure_difference(&s, 4), 0);
    }
}
