//! Static symbolic factorization (George & Ng's scheme, §3.1 of the paper).
//!
//! At step `k`, the set of *candidate pivot rows* is
//! `P_k = { i ≥ k : a_ik is structurally nonzero in A^(k-1) }`.
//! Any of these rows may be chosen by partial pivoting, so the structure of
//! every candidate row is replaced by the union of all candidate
//! structures (restricted to columns ≥ k). After `n` steps the accumulated
//! pattern accommodates the fill of *any* pivot sequence.
//!
//! The production implementation ([`static_symbolic_factorization`])
//! exploits the observation at the heart of Theorem 1: after step `k`, all
//! candidate rows share one structure. Rows are therefore kept in *groups*
//! with a shared structure object; step `k` merges the groups reachable
//! from column `k` (found through a column→group index) into one new
//! group. Every structure is built once and consumed once, so total work
//! and memory are `O(nnz(F))` — the size of the predicted factors — rather
//! than `O(n · nnz(F))` for the textbook row-by-row version. The textbook
//! version is kept as [`naive_symbolic_factorization`] and the two are
//! cross-checked in the test suite.

use splu_sparse::CscMatrix;

/// The predicted static structures of the L and U factors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticStructure {
    /// `lcols[k]`: sorted rows of static L column `k` (diagonal included):
    /// exactly the candidate pivot row set `P_k`.
    pub lcols: Vec<Vec<u32>>,
    /// `urows[k]`: sorted columns of static U row `k` (diagonal included):
    /// the union structure `U_k` at step `k`.
    pub urows: Vec<Vec<u32>>,
}

impl StaticStructure {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.lcols.len()
    }

    /// Total predicted factor entries, counting the diagonal once
    /// (the paper's "factor entries" statistic for S\* in Table 1).
    pub fn factor_nnz(&self) -> usize {
        let l: usize = self.lcols.iter().map(|c| c.len()).sum();
        let u: usize = self.urows.iter().map(|r| r.len()).sum();
        l + u - self.n() // diagonal counted in both
    }

    /// Predicted floating-point operations for an LU factorization that
    /// touches every static entry: `Σ_k nnzL_k + 2 · nnzL_k · nnzU_k`
    /// where `nnzL_k` excludes and `nnzU_k` excludes the diagonal.
    pub fn predicted_flops(&self) -> u64 {
        (0..self.n())
            .map(|k| {
                let l = (self.lcols[k].len() - 1) as u64;
                let u = (self.urows[k].len() - 1) as u64;
                l + 2 * l * u
            })
            .sum()
    }

    /// Whether `(i, j)` is in the static pattern (L ∪ U).
    pub fn contains(&self, i: usize, j: usize) -> bool {
        if i >= j {
            self.lcols[j].binary_search(&(i as u32)).is_ok()
        } else {
            self.urows[i].binary_search(&(j as u32)).is_ok()
        }
    }
}

/// Group-based static symbolic factorization.
///
/// # Panics
/// Panics if the matrix is not square or lacks a structurally zero-free
/// diagonal (run `splu_order::preprocess` first).
pub fn static_symbolic_factorization(a: &CscMatrix) -> StaticStructure {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "symbolic factorization needs square A"
    );
    assert!(
        a.has_zero_free_diagonal(),
        "static symbolic factorization requires a zero-free diagonal"
    );
    let n = a.ncols();
    let at = a.transpose(); // rows of A

    // Row groups. Each live group owns a sorted structure (columns) and a
    // list of unfinished member rows. `col_index[c]` lists group ids whose
    // structure contains column c (appended at group creation).
    struct Group {
        structure: Vec<u32>,
        rows: Vec<u32>,
        alive: bool,
    }
    let mut groups: Vec<Group> = (0..n)
        .map(|i| Group {
            structure: at.col(i).0.to_vec(),
            rows: vec![i as u32],
            alive: true,
        })
        .collect();
    let mut col_index: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (gid, g) in groups.iter().enumerate() {
        for &c in &g.structure {
            col_index[c as usize].push(gid as u32);
        }
    }
    let mut finished = vec![false; n];

    let mut lcols: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut urows: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut cand: Vec<u32> = Vec::new(); // candidate group ids (deduped)

    for k in 0..n {
        // Gather candidate groups through the column index. A group may be
        // listed multiple times across creations of its members, but a
        // group is consumed (killed) at its first candidacy, so each listed
        // id is processed O(1) times.
        cand.clear();
        for &gid in &col_index[k] {
            let g = &groups[gid as usize];
            if g.alive && !cand.contains(&gid) {
                cand.push(gid);
            }
        }
        debug_assert!(
            cand.iter()
                .any(|&gid| groups[gid as usize].rows.contains(&(k as u32))),
            "row {k} must be a candidate at step {k} (zero-free diagonal)"
        );

        // P_k = all unfinished rows of candidate groups.
        let mut pk: Vec<u32> = Vec::new();
        for &gid in &cand {
            pk.extend(groups[gid as usize].rows.iter().copied());
        }
        pk.sort_unstable();

        // U_k = union of candidate structures, restricted to columns ≥ k.
        let uk = union_ge(
            &cand
                .iter()
                .map(|&g| groups[g as usize].structure.as_slice())
                .collect::<Vec<_>>(),
            k as u32,
        );

        // Retire the candidate groups; move their unfinished rows (minus
        // row k, which is now finished) into a fresh group with structure
        // U_k.
        finished[k] = true;
        let new_rows: Vec<u32> = pk.iter().copied().filter(|&r| r != k as u32).collect();
        for &gid in &cand {
            let g = &mut groups[gid as usize];
            g.alive = false;
            g.rows = Vec::new();
            g.structure = Vec::new();
        }
        if !new_rows.is_empty() {
            let gid = groups.len() as u32;
            for &c in &uk {
                if c as usize > k {
                    col_index[c as usize].push(gid);
                }
            }
            groups.push(Group {
                structure: uk.clone(),
                rows: new_rows,
                alive: true,
            });
        }

        lcols.push(pk);
        urows.push(uk);
    }

    StaticStructure { lcols, urows }
}

/// k-way union of sorted lists, keeping only entries `≥ lo`.
fn union_ge(lists: &[&[u32]], lo: u32) -> Vec<u32> {
    match lists.len() {
        0 => vec![],
        1 => {
            let s = lists[0];
            let start = s.partition_point(|&c| c < lo);
            s[start..].to_vec()
        }
        _ => {
            // binary-merge reduction; candidate counts are small in practice
            let mut acc = {
                let s = lists[0];
                s[s.partition_point(|&c| c < lo)..].to_vec()
            };
            let mut buf: Vec<u32> = Vec::new();
            for s in &lists[1..] {
                let s = &s[s.partition_point(|&c| c < lo)..];
                buf.clear();
                buf.reserve(acc.len() + s.len());
                let (mut i, mut j) = (0, 0);
                while i < acc.len() && j < s.len() {
                    match acc[i].cmp(&s[j]) {
                        std::cmp::Ordering::Less => {
                            buf.push(acc[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            buf.push(s[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            buf.push(acc[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                buf.extend_from_slice(&acc[i..]);
                buf.extend_from_slice(&s[j..]);
                std::mem::swap(&mut acc, &mut buf);
            }
            acc
        }
    }
}

/// Textbook reference implementation: simulate the per-row structure
/// updates literally (`O(n · nnz(F))`). Used to validate the group-based
/// implementation; exported for tests and the figure-reproduction harness.
pub fn naive_symbolic_factorization(a: &CscMatrix) -> StaticStructure {
    assert_eq!(a.nrows(), a.ncols());
    assert!(a.has_zero_free_diagonal());
    let n = a.ncols();
    let at = a.transpose();
    let mut rows: Vec<Vec<u32>> = (0..n).map(|i| at.col(i).0.to_vec()).collect();

    let mut lcols = Vec::with_capacity(n);
    let mut urows = Vec::with_capacity(n);
    for k in 0..n {
        let ku = k as u32;
        let cand: Vec<u32> = (k..n)
            .filter(|&i| rows[i].binary_search(&ku).is_ok())
            .map(|i| i as u32)
            .collect();
        let uk = union_ge(
            &cand
                .iter()
                .map(|&i| rows[i as usize].as_slice())
                .collect::<Vec<_>>(),
            ku,
        );
        for &i in &cand {
            let iu = i as usize;
            // keep the (< k) prefix, replace the rest with U_k
            let cut = rows[iu].partition_point(|&c| c < ku);
            rows[iu].truncate(cut);
            rows[iu].extend_from_slice(&uk);
        }
        lcols.push(cand);
        urows.push(uk);
    }
    StaticStructure { lcols, urows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};
    use splu_sparse::{CooMatrix, CscMatrix, Perm};

    fn from_bool(rows: &[&[u8]]) -> CscMatrix {
        let n = rows.len();
        let mut c = CooMatrix::new(n, n);
        for (i, r) in rows.iter().enumerate() {
            for (j, &b) in r.iter().enumerate() {
                if b != 0 {
                    c.push(i, j, 1.0 + (i * n + j) as f64 * 0.1);
                }
            }
        }
        c.to_csc()
    }

    #[test]
    fn fig2_style_5x5_example() {
        // A 5×5 sparse matrix in the spirit of Fig. 2 of the paper; the
        // first steps generate fill through candidate-row unions, and the
        // structure stabilizes before the last steps.
        let a = from_bool(&[
            &[1, 0, 1, 0, 0],
            &[1, 1, 0, 0, 0],
            &[0, 0, 1, 1, 0],
            &[0, 1, 0, 1, 1],
            &[1, 0, 0, 0, 1],
        ]);
        let s = static_symbolic_factorization(&a);
        let r = naive_symbolic_factorization(&a);
        assert_eq!(s, r);
        // Step 1: candidates are rows {0, 1, 4} (nonzeros in column 0);
        // union of their structures = {0, 1, 2, 4}.
        assert_eq!(s.lcols[0], vec![0, 1, 4]);
        assert_eq!(s.urows[0], vec![0, 1, 2, 4]);
        // every original entry is contained in the prediction
        for (i, j, _) in a.iter() {
            assert!(s.contains(i, j), "original entry ({i},{j}) missing");
        }
    }

    #[test]
    fn group_and_naive_agree_on_random_matrices() {
        for seed in 0..8 {
            let a = gen::random_sparse(
                60,
                3,
                0.5,
                ValueModel {
                    diag_scale: 1.0,
                    seed,
                },
            );
            let s = static_symbolic_factorization(&a);
            let r = naive_symbolic_factorization(&a);
            assert_eq!(s, r, "seed {seed}");
        }
    }

    #[test]
    fn group_and_naive_agree_on_grids() {
        let a = gen::grid2d(7, 8, 0.4, ValueModel::default());
        assert_eq!(
            static_symbolic_factorization(&a),
            naive_symbolic_factorization(&a)
        );
    }

    #[test]
    fn dense_matrix_predicts_full_factors() {
        let a = gen::dense_random(10, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        for k in 0..10 {
            assert_eq!(s.lcols[k].len(), 10 - k);
            assert_eq!(s.urows[k].len(), 10 - k);
        }
        assert_eq!(s.factor_nnz(), 100);
    }

    /// Dense GEPP with the S\*-style *delayed trailing interchange*: at step
    /// `k` the pivot row is swapped with row `k` only in columns `k..n`
    /// (the already-computed L part stays in its slot, exactly as in the
    /// paper's `ScaleSwap`). Returns the working array holding packed L\U
    /// in slot coordinates.
    fn gepp_trailing_swap(a: &splu_kernels::DenseMat) -> splu_kernels::DenseMat {
        let n = a.nrows();
        let mut w = a.clone();
        for k in 0..n {
            // pivot search over column k, rows k..n
            let mut piv = k;
            for i in (k + 1)..n {
                if w[(i, k)].abs() > w[(piv, k)].abs() {
                    piv = i;
                }
            }
            assert!(w[(piv, k)] != 0.0, "singular at step {k}");
            if piv != k {
                for j in k..n {
                    let t = w[(k, j)];
                    w[(k, j)] = w[(piv, j)];
                    w[(piv, j)] = t;
                }
            }
            let d = w[(k, k)];
            for i in (k + 1)..n {
                w[(i, k)] /= d;
            }
            for j in (k + 1)..n {
                let ukj = w[(k, j)];
                if ukj != 0.0 {
                    for i in (k + 1)..n {
                        let lik = w[(i, k)];
                        w[(i, j)] -= lik * ukj;
                    }
                }
            }
        }
        w
    }

    #[test]
    fn structure_covers_actual_lu_under_any_pivoting() {
        // The defining property (George & Ng): for ANY pivot sequence, the
        // actual fill (in slot coordinates, with the S*-style delayed
        // trailing interchange) is contained in the static prediction. We
        // exercise it over several random value assignments of one pattern.
        let base = gen::random_sparse(40, 3, 0.4, ValueModel::default());
        let s = static_symbolic_factorization(&base);
        let n = 40;
        for seed in 0..6u64 {
            // reassign values randomly on the same pattern
            let mut c = CooMatrix::new(n, n);
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            };
            for (i, j, _) in base.iter() {
                let v = if i == j { 2.0 + next().abs() } else { next() };
                c.push(i, j, v);
            }
            let w = gepp_trailing_swap(&c.to_csc().to_dense());
            for k in 0..n {
                for i in (k + 1)..n {
                    assert!(
                        w[(i, k)].abs() < 1e-13 || s.contains(i, k),
                        "L entry ({i},{k}) not covered, seed {seed}"
                    );
                }
                for j in (k + 1)..n {
                    assert!(
                        w[(k, j)].abs() < 1e-13 || s.contains(k, j),
                        "U entry ({k},{j}) not covered, seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem1_candidate_rows_share_u_structure() {
        // After step k, all rows of P_k have identical structures ≥ k:
        // verified via the naive implementation's internals being equal to
        // U_k — here we check the group invariant indirectly: L-column
        // nesting within supernodes.
        let a = gen::grid2d(6, 6, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let n = s.n();
        for k in 0..n - 1 {
            // if P_{k+1} == P_k \ {k}, then U_{k+1} == U_k \ {k}
            let pk_minus: Vec<u32> = s.lcols[k]
                .iter()
                .copied()
                .filter(|&r| r != k as u32)
                .collect();
            if pk_minus == s.lcols[k + 1] {
                let uk_minus: Vec<u32> = s.urows[k]
                    .iter()
                    .copied()
                    .filter(|&c| c != k as u32)
                    .collect();
                assert_eq!(uk_minus, s.urows[k + 1], "supernode U nesting at {k}");
            }
        }
    }

    #[test]
    fn tridiagonal_has_no_extra_fill() {
        let n = 12;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i > 0 {
                c.push(i, i - 1, -1.0);
                c.push(i - 1, i, -1.0);
            }
        }
        let s = static_symbolic_factorization(&c.to_csc());
        // With partial pivoting, row k+1 (carrying an entry in column k+2)
        // may be swapped up, so the static U gains a second superdiagonal —
        // the classic GEPP band widening. L stays bidiagonal.
        for k in 0..n {
            assert!(s.lcols[k].len() <= 2, "L col {k}");
            assert!(s.urows[k].len() <= 3, "U row {k}");
            assert_eq!(s.lcols[k][0], k as u32);
        }
        assert_eq!(s.factor_nnz(), 4 * n - 4);
    }

    #[test]
    fn factor_nnz_and_flops_monotone_under_worse_ordering() {
        // reversing a good ordering of a grid should not reduce fill
        let a = gen::grid2d(8, 8, 0.0, ValueModel::default());
        let n = a.ncols();
        let s1 = static_symbolic_factorization(&a);
        let rev = Perm::from_new_of_old((0..n).map(|i| n - 1 - i).collect());
        let ar = a.permute(&rev, &rev);
        let s2 = static_symbolic_factorization(&ar);
        // reversal of a symmetric-pattern grid is symmetric: equal fill
        assert_eq!(s1.factor_nnz(), s2.factor_nnz());
        assert!(s1.predicted_flops() > 0);
    }

    #[test]
    #[should_panic]
    fn missing_diagonal_panics() {
        let a = gen::shift_rows(&gen::grid2d(4, 4, 0.0, ValueModel::default()), 1);
        static_symbolic_factorization(&a);
    }
}
