//! BLAS-2 matrix–vector kernels (column-major, explicit leading dimension).
//!
//! `DGEMV` is what SuperLU spends 78–98 % of its floating-point operations
//! in; S\* instead routes most work through `DGEMM` ([`crate::blas3`]), but
//! still needs BLAS-2 for single dense subcolumn updates and the panel
//! factorization's rank-1 updates ([`dger`]).

use crate::flops::{record, FlopClass};

/// `y = alpha * A * x + beta * y` where `A` is `m × n`, column-major with
/// leading dimension `lda`.
///
/// # Panics
/// Debug-asserts the slice lengths are consistent with `m`, `n`, `lda`.
#[allow(clippy::too_many_arguments)] // BLAS reference signature
pub fn dgemv(
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    debug_assert!(lda >= m.max(1));
    debug_assert!(a.len() >= if n == 0 { 0 } else { (n - 1) * lda + m });
    debug_assert!(x.len() >= n);
    debug_assert!(y.len() >= m);
    if beta != 1.0 {
        if beta == 0.0 {
            y[..m].fill(0.0);
        } else {
            for yi in &mut y[..m] {
                *yi *= beta;
            }
        }
    }
    if alpha == 0.0 || m == 0 {
        return;
    }
    for j in 0..n {
        let axj = alpha * x[j];
        if axj != 0.0 {
            let col = &a[j * lda..j * lda + m];
            for (yi, &aij) in y[..m].iter_mut().zip(col) {
                *yi += aij * axj;
            }
        }
    }
    record(FlopClass::Blas2, (2 * m * n) as u64);
}

/// Rank-1 update `A += alpha * x * yᵀ` where `A` is `m × n`, column-major
/// with leading dimension `lda`.
pub fn dger(m: usize, n: usize, alpha: f64, x: &[f64], y: &[f64], a: &mut [f64], lda: usize) {
    debug_assert!(lda >= m.max(1));
    debug_assert!(x.len() >= m);
    debug_assert!(y.len() >= n);
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }
    for j in 0..n {
        let ayj = alpha * y[j];
        if ayj != 0.0 {
            let col = &mut a[j * lda..j * lda + m];
            for (aij, &xi) in col.iter_mut().zip(x) {
                *aij += xi * ayj;
            }
        }
    }
    record(FlopClass::Blas2, (2 * m * n) as u64);
}

/// Solve `L x = b` in place (`x` enters as `b`), where `L` is the unit lower
/// triangle of the `n × n` panel `l` (column-major, leading dimension `lda`).
/// The strict upper part and diagonal of `l` are not referenced.
pub fn dtrsv_lower_unit(n: usize, l: &[f64], lda: usize, x: &mut [f64]) {
    debug_assert!(lda >= n.max(1));
    debug_assert!(x.len() >= n);
    for k in 0..n {
        let xk = x[k];
        if xk != 0.0 {
            let col = &l[k * lda..k * lda + n];
            for i in (k + 1)..n {
                x[i] -= col[i] * xk;
            }
        }
    }
    record(FlopClass::Blas2, (n * n) as u64);
}

/// Solve `U x = b` in place (`x` enters as `b`), where `U` is the non-unit
/// upper triangle of the `n × n` panel `u` (column-major, leading dimension
/// `lda`). The strict lower part of `u` is not referenced.
///
/// # Panics
/// Panics if a diagonal entry is exactly zero (singular system).
pub fn dtrsv_upper(n: usize, u: &[f64], lda: usize, x: &mut [f64]) {
    debug_assert!(lda >= n.max(1));
    debug_assert!(x.len() >= n);
    for k in (0..n).rev() {
        let diag = u[k * lda + k];
        assert!(diag != 0.0, "dtrsv_upper: zero diagonal at {k}");
        x[k] /= diag;
        let xk = x[k];
        if xk != 0.0 {
            let col = &u[k * lda..k * lda + k];
            for i in 0..k {
                x[i] -= col[i] * xk;
            }
        }
    }
    record(FlopClass::Blas2, (n * n) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMat;

    #[test]
    fn dgemv_matches_oracle() {
        let a = DenseMat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let x = vec![1.0, 0.5, -1.0];
        let mut y = vec![10.0, 20.0];
        // y = 2*A*x + 1*y
        dgemv(2, 3, 2.0, a.as_slice(), 2, &x, 1.0, &mut y);
        let ax = a.matvec(&x);
        assert_eq!(y, vec![10.0 + 2.0 * ax[0], 20.0 + 2.0 * ax[1]]);
    }

    #[test]
    fn dgemv_beta_zero_overwrites_garbage() {
        let a = DenseMat::identity(3);
        let x = vec![7.0, 8.0, 9.0];
        let mut y = vec![f64::NAN, f64::NAN, f64::NAN];
        dgemv(3, 3, 1.0, a.as_slice(), 3, &x, 0.0, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn dgemv_respects_lda_subpanel() {
        // 4x4 storage, operate on the top-left 2x2.
        let a = DenseMat::from_fn(4, 4, |i, j| (i + 10 * j) as f64);
        let x = vec![1.0, 1.0];
        let mut y = vec![0.0, 0.0];
        dgemv(2, 2, 1.0, a.as_slice(), 4, &x, 0.0, &mut y);
        assert_eq!(y, vec![a[(0, 0)] + a[(0, 1)], a[(1, 0)] + a[(1, 1)]]);
    }

    #[test]
    fn dger_rank1() {
        let mut a = DenseMat::zeros(2, 3);
        let lda = a.lda();
        dger(
            2,
            3,
            2.0,
            &[1.0, 2.0],
            &[3.0, 4.0, 5.0],
            a.as_mut_slice(),
            lda,
        );
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 2)], 20.0);
    }

    #[test]
    fn trsv_lower_unit_solves() {
        // L = [[1,0],[0.5,1]]; b = [2, 3] -> x = [2, 2]
        let l = DenseMat::from_rows(&[vec![1.0, 0.0], vec![0.5, 1.0]]);
        let mut x = vec![2.0, 3.0];
        dtrsv_lower_unit(2, l.as_slice(), 2, &mut x);
        assert_eq!(x, vec![2.0, 2.0]);
    }

    #[test]
    fn trsv_lower_unit_ignores_upper_and_diag() {
        // garbage in diagonal/upper must not matter
        let l = DenseMat::from_rows(&[vec![99.0, 42.0], vec![0.5, -7.0]]);
        let mut x = vec![2.0, 3.0];
        dtrsv_lower_unit(2, l.as_slice(), 2, &mut x);
        assert_eq!(x, vec![2.0, 2.0]);
    }

    #[test]
    fn trsv_upper_solves() {
        // U = [[2,1],[0,4]]; b = [4, 8] -> x2 = 2, x1 = (4-2)/2 = 1
        let u = DenseMat::from_rows(&[vec![2.0, 1.0], vec![0.0, 4.0]]);
        let mut x = vec![4.0, 8.0];
        dtrsv_upper(2, u.as_slice(), 2, &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn trsv_upper_zero_diag_panics() {
        let u = DenseMat::zeros(2, 2);
        let mut x = vec![1.0, 1.0];
        dtrsv_upper(2, u.as_slice(), 2, &mut x);
    }
}
