//! Flop accounting per BLAS level.
//!
//! The paper's performance analysis (§6.1) hinges on the split of the
//! numerical updates between BLAS-2 (`DGEMV`-class, cost `w2` seconds per
//! flop) and BLAS-3 (`DGEMM`-class, cost `w3 < w2` seconds per flop):
//!
//! ```text
//! T_S* = (1 - r) * w2 * OPS_S*  +  r * w3 * OPS_S*
//! ```
//!
//! where `r` is the fraction of updates performed by `DGEMM` (measured as
//! ≈ 0.65 in the paper). The benchmark harnesses use these counters to
//! report `r` for our implementation and to feed the discrete-event machine
//! model with per-class flop totals.
//!
//! Counters are process-global relaxed atomics: one increment per *kernel
//! call* (not per flop), so the overhead is negligible even in hot loops.
//! For multi-threaded runs each simulated processor usually keeps a private
//! [`FlopCounter`] and merges it at the end instead.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which BLAS level a kernel belongs to, for cost-model purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlopClass {
    /// Vector–vector operations (`DAXPY`, `DSCAL`, ...).
    Blas1,
    /// Matrix–vector operations (`DGEMV`, `DGER`, `DTRSV`).
    Blas2,
    /// Matrix–matrix operations (`DGEMM`, `DTRSM`).
    Blas3,
}

/// A set of per-class flop counters.
///
/// Use a local instance for per-processor accounting; the global instance
/// ([`global`]) is convenient for single-threaded measurement.
#[derive(Debug, Default)]
pub struct FlopCounter {
    blas1: AtomicU64,
    blas2: AtomicU64,
    blas3: AtomicU64,
}

impl FlopCounter {
    /// A new counter with all classes at zero.
    pub const fn new() -> Self {
        Self {
            blas1: AtomicU64::new(0),
            blas2: AtomicU64::new(0),
            blas3: AtomicU64::new(0),
        }
    }

    /// Record `n` flops of class `class`.
    #[inline]
    pub fn add(&self, class: FlopClass, n: u64) {
        let c = match class {
            FlopClass::Blas1 => &self.blas1,
            FlopClass::Blas2 => &self.blas2,
            FlopClass::Blas3 => &self.blas3,
        };
        c.fetch_add(n, Ordering::Relaxed);
    }

    /// Flops recorded for one class.
    pub fn get(&self, class: FlopClass) -> u64 {
        match class {
            FlopClass::Blas1 => self.blas1.load(Ordering::Relaxed),
            FlopClass::Blas2 => self.blas2.load(Ordering::Relaxed),
            FlopClass::Blas3 => self.blas3.load(Ordering::Relaxed),
        }
    }

    /// Total flops across all classes.
    pub fn total(&self) -> u64 {
        self.get(FlopClass::Blas1) + self.get(FlopClass::Blas2) + self.get(FlopClass::Blas3)
    }

    /// Fraction of flops performed at BLAS-3 level (the paper's `r`).
    ///
    /// Returns 0.0 when nothing has been recorded.
    pub fn blas3_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(FlopClass::Blas3) as f64 / t as f64
        }
    }

    /// Reset all classes to zero.
    pub fn reset(&self) {
        self.blas1.store(0, Ordering::Relaxed);
        self.blas2.store(0, Ordering::Relaxed);
        self.blas3.store(0, Ordering::Relaxed);
    }

    /// Merge another counter's totals into this one.
    pub fn merge(&self, other: &FlopCounter) {
        self.add(FlopClass::Blas1, other.get(FlopClass::Blas1));
        self.add(FlopClass::Blas2, other.get(FlopClass::Blas2));
        self.add(FlopClass::Blas3, other.get(FlopClass::Blas3));
    }

    /// A snapshot of (blas1, blas2, blas3) totals.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.get(FlopClass::Blas1),
            self.get(FlopClass::Blas2),
            self.get(FlopClass::Blas3),
        )
    }
}

impl Clone for FlopCounter {
    fn clone(&self) -> Self {
        let c = FlopCounter::new();
        c.merge(self);
        c
    }
}

static GLOBAL: FlopCounter = FlopCounter::new();

/// The process-global flop counter used by kernels when no explicit counter
/// is threaded through.
pub fn global() -> &'static FlopCounter {
    &GLOBAL
}

/// Record `n` flops of class `class` on the global counter, and (when
/// the `probe` feature is on) on the calling thread's flight-recorder
/// counter so a traced run attributes flops to the simulated processor
/// that performed them.
#[inline]
pub fn record(class: FlopClass, n: u64) {
    GLOBAL.add(class, n);
    let level = match class {
        FlopClass::Blas1 => splu_probe::flops::Level::L1,
        FlopClass::Blas2 => splu_probe::flops::Level::L2,
        FlopClass::Blas3 => splu_probe::flops::Level::L3,
    };
    splu_probe::flops::add(level, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_class() {
        let c = FlopCounter::new();
        c.add(FlopClass::Blas1, 3);
        c.add(FlopClass::Blas2, 5);
        c.add(FlopClass::Blas3, 7);
        c.add(FlopClass::Blas3, 1);
        assert_eq!(c.get(FlopClass::Blas1), 3);
        assert_eq!(c.get(FlopClass::Blas2), 5);
        assert_eq!(c.get(FlopClass::Blas3), 8);
        assert_eq!(c.total(), 16);
    }

    #[test]
    fn blas3_fraction_matches_ratio() {
        let c = FlopCounter::new();
        assert_eq!(c.blas3_fraction(), 0.0);
        c.add(FlopClass::Blas2, 25);
        c.add(FlopClass::Blas3, 75);
        assert!((c.blas3_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_and_merge() {
        let a = FlopCounter::new();
        let b = FlopCounter::new();
        a.add(FlopClass::Blas3, 10);
        b.add(FlopClass::Blas3, 20);
        b.add(FlopClass::Blas1, 1);
        a.merge(&b);
        assert_eq!(a.get(FlopClass::Blas3), 30);
        assert_eq!(a.get(FlopClass::Blas1), 1);
        a.reset();
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn snapshot_reports_all_classes() {
        let c = FlopCounter::new();
        c.add(FlopClass::Blas1, 1);
        c.add(FlopClass::Blas2, 2);
        c.add(FlopClass::Blas3, 3);
        assert_eq!(c.snapshot(), (1, 2, 3));
    }
}
