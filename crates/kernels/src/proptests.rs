//! Property-based tests for the dense kernels: every BLAS-style routine is
//! checked against a naive oracle over randomized shapes, leading
//! dimensions and values, and the GEPP factorization invariants are
//! verified on random matrices.

use crate::blas1::{dasum, daxpy, ddot, dnrm2, dscal, idamax};
use crate::blas2::{dgemv, dger, dtrsv_lower_unit, dtrsv_upper};
use crate::blas3::{dgemm, dtrsm_left_lower_unit};
use crate::dense_lu::{dense_lu, factorization_residual};
use crate::matrix::DenseMat;
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn vecf(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n..=n)
}

fn matf(m: usize, n: usize) -> impl Strategy<Value = DenseMat> {
    prop::collection::vec(-5.0f64..5.0, m * n..=m * n)
        .prop_map(move |v| DenseMat::from_column_major(m, n, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn daxpy_matches_oracle(alpha in -3.0f64..3.0, n in 0usize..40) {
        let run = (vecf(n), vecf(n));
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let (x, y0) = run.new_tree(&mut runner).unwrap().current();
        let mut y = y0.clone();
        daxpy(alpha, &x, &mut y);
        for i in 0..n {
            prop_assert!((y[i] - (y0[i] + alpha * x[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_and_norms_consistent(x in prop::collection::vec(-10.0f64..10.0, 0..40)) {
        let d = ddot(&x, &x);
        let n2 = dnrm2(&x);
        prop_assert!((d.sqrt() - n2).abs() < 1e-9 * (1.0 + n2));
        prop_assert!(dasum(&x) + 1e-12 >= n2); // ‖·‖₁ ≥ ‖·‖₂
        if let Some(p) = idamax(&x) {
            for &v in &x {
                prop_assert!(v.abs() <= x[p].abs() + 1e-15);
            }
        } else {
            prop_assert!(x.is_empty());
        }
    }

    #[test]
    fn dscal_then_inverse_roundtrips(x0 in prop::collection::vec(-10.0f64..10.0, 1..30)) {
        let mut x = x0.clone();
        dscal(4.0, &mut x);
        dscal(0.25, &mut x);
        for (a, b) in x.iter().zip(&x0) {
            prop_assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn dgemv_matches_dense_oracle(
        (m, n) in (1usize..12, 1usize..12),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let a = matf(m, n).new_tree(&mut runner).unwrap().current();
        let x = vecf(n).new_tree(&mut runner).unwrap().current();
        let y0 = vecf(m).new_tree(&mut runner).unwrap().current();
        let mut y = y0.clone();
        dgemv(m, n, alpha, a.as_slice(), m, &x, beta, &mut y);
        let ax = a.matvec(&x);
        for i in 0..m {
            let want = alpha * ax[i] + beta * y0[i];
            prop_assert!((y[i] - want).abs() < 1e-10, "at {i}: {} vs {want}", y[i]);
        }
    }

    #[test]
    fn dger_matches_dense_oracle((m, n) in (1usize..10, 1usize..10), alpha in -2.0f64..2.0) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let mut a = matf(m, n).new_tree(&mut runner).unwrap().current();
        let a0 = a.clone();
        let x = vecf(m).new_tree(&mut runner).unwrap().current();
        let y = vecf(n).new_tree(&mut runner).unwrap().current();
        let lda = a.lda();
        dger(m, n, alpha, &x, &y, a.as_mut_slice(), lda);
        for i in 0..m {
            for j in 0..n {
                let want = a0[(i, j)] + alpha * x[i] * y[j];
                prop_assert!((a[(i, j)] - want).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn dgemm_matches_dense_oracle((m, k, n) in (1usize..9, 1usize..9, 1usize..9)) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let a = matf(m, k).new_tree(&mut runner).unwrap().current();
        let b = matf(k, n).new_tree(&mut runner).unwrap().current();
        let mut c = DenseMat::zeros(m, n);
        let ldc = c.lda();
        dgemm(m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, 0.0, c.as_mut_slice(), ldc);
        let want = a.matmul(&b);
        prop_assert!(c.sub(&want).max_abs() < 1e-10);
    }

    #[test]
    fn trsv_solves_what_it_claims(n in 1usize..12) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let raw = matf(n, n).new_tree(&mut runner).unwrap().current();
        // build a well-conditioned unit-lower and upper pair
        let l = DenseMat::from_fn(n, n, |i, j| {
            if i == j { 1.0 } else if i > j { raw[(i, j)] * 0.1 } else { 0.0 }
        });
        let u = DenseMat::from_fn(n, n, |i, j| {
            if i == j { 2.0 + raw[(i, j)].abs() } else if i < j { raw[(i, j)] * 0.1 } else { 0.0 }
        });
        let xt = vecf(n).new_tree(&mut runner).unwrap().current();
        // L x = L·xt should recover xt
        let mut b = l.matvec(&xt);
        dtrsv_lower_unit(n, l.as_slice(), n, &mut b);
        for i in 0..n {
            prop_assert!((b[i] - xt[i]).abs() < 1e-8);
        }
        let mut b = u.matvec(&xt);
        dtrsv_upper(n, u.as_slice(), n, &mut b);
        for i in 0..n {
            prop_assert!((b[i] - xt[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn trsm_equals_columnwise_trsv((m, n) in (1usize..10, 1usize..6)) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let raw = matf(m, m).new_tree(&mut runner).unwrap().current();
        let l = DenseMat::from_fn(m, m, |i, j| if i > j { raw[(i, j)] * 0.2 } else { 0.0 });
        let b0 = matf(m, n).new_tree(&mut runner).unwrap().current();
        let mut b = b0.clone();
        let ldb = b.lda();
        dtrsm_left_lower_unit(m, n, l.as_slice(), m, b.as_mut_slice(), ldb);
        for j in 0..n {
            let mut col = b0.col(j).to_vec();
            dtrsv_lower_unit(m, l.as_slice(), m, &mut col);
            for i in 0..m {
                prop_assert!((b[(i, j)] - col[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gepp_residual_small_and_l_bounded(n in 1usize..20) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let a = matf(n, n).new_tree(&mut runner).unwrap().current();
        if let Some(f) = dense_lu(&a) {
            prop_assert!(factorization_residual(&a, &f) < 1e-10);
            let l = f.l();
            for i in 0..n {
                for j in 0..i {
                    prop_assert!(l[(i, j)].abs() <= 1.0 + 1e-14, "partial pivoting bound");
                }
            }
        }
    }
}
