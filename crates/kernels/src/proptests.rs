//! Randomized tests for the dense kernels: every BLAS-style routine is
//! checked against a naive oracle over randomized shapes, leading
//! dimensions and values, and the GEPP factorization invariants are
//! verified on random matrices.
//!
//! Deterministic by construction: a fixed-seed xorshift generator drives
//! all case generation, so failures reproduce exactly (no external
//! proptest dependency — the build environment is offline).

use crate::blas1::{dasum, daxpy, ddot, dnrm2, dscal, idamax};
use crate::blas2::{dgemv, dger, dtrsv_lower_unit, dtrsv_upper};
use crate::blas3::{dgemm, dtrsm_left_lower_unit};
use crate::dense_lu::{dense_lu, factorization_residual};
use crate::matrix::DenseMat;

/// Small deterministic generator (xorshift64*) for test-case synthesis.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// Uniform in `[lo, hi)` (`hi > lo`).
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    fn vecf(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.f64_in(-10.0, 10.0)).collect()
    }

    fn matf(&mut self, m: usize, n: usize) -> DenseMat {
        let v = (0..m * n).map(|_| self.f64_in(-5.0, 5.0)).collect();
        DenseMat::from_column_major(m, n, v)
    }
}

const CASES: usize = 48;

#[test]
fn daxpy_matches_oracle() {
    let mut rng = TestRng::new(0xA01);
    for _ in 0..CASES {
        let n = rng.usize_in(0, 40);
        let alpha = rng.f64_in(-3.0, 3.0);
        let x = rng.vecf(n);
        let y0 = rng.vecf(n);
        let mut y = y0.clone();
        daxpy(alpha, &x, &mut y);
        for i in 0..n {
            assert!((y[i] - (y0[i] + alpha * x[i])).abs() < 1e-12);
        }
    }
}

#[test]
fn dot_and_norms_consistent() {
    let mut rng = TestRng::new(0xA02);
    for _ in 0..CASES {
        let n = rng.usize_in(0, 40);
        let x = rng.vecf(n);
        let d = ddot(&x, &x);
        let n2 = dnrm2(&x);
        assert!((d.sqrt() - n2).abs() < 1e-9 * (1.0 + n2));
        assert!(dasum(&x) + 1e-12 >= n2); // ‖·‖₁ ≥ ‖·‖₂
        if let Some(p) = idamax(&x) {
            for &v in &x {
                assert!(v.abs() <= x[p].abs() + 1e-15);
            }
        } else {
            assert!(x.is_empty());
        }
    }
}

#[test]
fn dscal_then_inverse_roundtrips() {
    let mut rng = TestRng::new(0xA03);
    for _ in 0..CASES {
        let n = rng.usize_in(1, 30);
        let x0 = rng.vecf(n);
        let mut x = x0.clone();
        dscal(4.0, &mut x);
        dscal(0.25, &mut x);
        for (a, b) in x.iter().zip(&x0) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }
}

#[test]
fn dgemv_matches_dense_oracle() {
    let mut rng = TestRng::new(0xA04);
    for _ in 0..CASES {
        let (m, n) = (rng.usize_in(1, 12), rng.usize_in(1, 12));
        let alpha = rng.f64_in(-2.0, 2.0);
        let beta = rng.f64_in(-2.0, 2.0);
        let a = rng.matf(m, n);
        let x = rng.vecf(n);
        let y0 = rng.vecf(m);
        let mut y = y0.clone();
        dgemv(m, n, alpha, a.as_slice(), m, &x, beta, &mut y);
        let ax = a.matvec(&x);
        for i in 0..m {
            let want = alpha * ax[i] + beta * y0[i];
            assert!((y[i] - want).abs() < 1e-10, "at {i}: {} vs {want}", y[i]);
        }
    }
}

#[test]
fn dger_matches_dense_oracle() {
    let mut rng = TestRng::new(0xA05);
    for _ in 0..CASES {
        let (m, n) = (rng.usize_in(1, 10), rng.usize_in(1, 10));
        let alpha = rng.f64_in(-2.0, 2.0);
        let mut a = rng.matf(m, n);
        let a0 = a.clone();
        let x = rng.vecf(m);
        let y = rng.vecf(n);
        let lda = a.lda();
        dger(m, n, alpha, &x, &y, a.as_mut_slice(), lda);
        for i in 0..m {
            for j in 0..n {
                let want = a0[(i, j)] + alpha * x[i] * y[j];
                assert!((a[(i, j)] - want).abs() < 1e-11);
            }
        }
    }
}

#[test]
fn dgemm_matches_dense_oracle() {
    let mut rng = TestRng::new(0xA06);
    for _ in 0..CASES {
        let (m, k, n) = (rng.usize_in(1, 9), rng.usize_in(1, 9), rng.usize_in(1, 9));
        let a = rng.matf(m, k);
        let b = rng.matf(k, n);
        let mut c = DenseMat::zeros(m, n);
        let ldc = c.lda();
        dgemm(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c.as_mut_slice(),
            ldc,
        );
        let want = a.matmul(&b);
        assert!(c.sub(&want).max_abs() < 1e-10);
    }
}

#[test]
fn trsv_solves_what_it_claims() {
    let mut rng = TestRng::new(0xA07);
    for _ in 0..CASES {
        let n = rng.usize_in(1, 12);
        let raw = rng.matf(n, n);
        // build a well-conditioned unit-lower and upper pair
        let l = DenseMat::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                raw[(i, j)] * 0.1
            } else {
                0.0
            }
        });
        let u = DenseMat::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + raw[(i, j)].abs()
            } else if i < j {
                raw[(i, j)] * 0.1
            } else {
                0.0
            }
        });
        let xt = rng.vecf(n);
        // L x = L·xt should recover xt
        let mut b = l.matvec(&xt);
        dtrsv_lower_unit(n, l.as_slice(), n, &mut b);
        for i in 0..n {
            assert!((b[i] - xt[i]).abs() < 1e-8);
        }
        let mut b = u.matvec(&xt);
        dtrsv_upper(n, u.as_slice(), n, &mut b);
        for i in 0..n {
            assert!((b[i] - xt[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn trsm_equals_columnwise_trsv() {
    let mut rng = TestRng::new(0xA08);
    for _ in 0..CASES {
        let (m, n) = (rng.usize_in(1, 10), rng.usize_in(1, 6));
        let raw = rng.matf(m, m);
        let l = DenseMat::from_fn(m, m, |i, j| if i > j { raw[(i, j)] * 0.2 } else { 0.0 });
        let b0 = rng.matf(m, n);
        let mut b = b0.clone();
        let ldb = b.lda();
        dtrsm_left_lower_unit(m, n, l.as_slice(), m, b.as_mut_slice(), ldb);
        for j in 0..n {
            let mut col = b0.col(j).to_vec();
            dtrsv_lower_unit(m, l.as_slice(), m, &mut col);
            for i in 0..m {
                assert!((b[(i, j)] - col[i]).abs() < 1e-10);
            }
        }
    }
}

#[test]
fn gepp_residual_small_and_l_bounded() {
    let mut rng = TestRng::new(0xA09);
    for _ in 0..CASES {
        let n = rng.usize_in(1, 20);
        let a = rng.matf(n, n);
        if let Some(f) = dense_lu(&a) {
            assert!(factorization_residual(&a, &f) < 1e-10);
            let l = f.l();
            for i in 0..n {
                for j in 0..i {
                    assert!(l[(i, j)].abs() <= 1.0 + 1e-14, "partial pivoting bound");
                }
            }
        }
    }
}
