//! BLAS-3 matrix–matrix kernels (column-major, explicit leading dimension).
//!
//! [`dgemm`] is the kernel the whole S\* design funnels work into: the
//! submatrix update `A_ij -= L_ik * U_kj` (line 12 of `Update(k, j)`,
//! Fig. 8 of the paper) and the block triangular solve
//! `U_kj = L_kk⁻¹ U_kj` (line 5, implemented by [`dtrsm_left_lower_unit`]).
//!
//! Two implementations coexist:
//!
//! * [`dgemm_naive`] — a cache-friendly `j-k-i` loop with a four-way
//!   unrolled `k` loop (the original kernel, kept as the benchmark
//!   baseline and as the exact fallback for small shapes);
//! * the cache-blocked path used by [`dgemm`]/[`dgemm_with`] — GEBP-style
//!   MC×KC×NC blocking with `A` and `B` packed into contiguous micro-panels
//!   held in a reusable [`GemmScratch`], and a 4×4 register-tiled
//!   micro-kernel with an unrolled inner loop. Fringe tiles are handled
//!   exactly by zero-padding the packed panels and restricting the
//!   write-back to the valid sub-tile, so no shape needs a separate code
//!   path.
//!
//! Path selection depends only on the problem shape `(m, n, k)`, never on
//! the data, so every driver (sequential, 1D, 2D, pipelined) performs
//! bit-identical arithmetic for the same logical update — the parallel
//! equivalence tests rely on this.
//!
//! On typical hardware the blocked path comfortably beats the
//! [`crate::dgemv`] path per flop, which is the `w3 < w2` relation the
//! paper's cost model (§6.1) relies on; `results/BENCH_kernels.json`
//! records the measured blocked-vs-naive ratio on the host machine.

use crate::flops::{record, FlopClass};
use std::cell::RefCell;

/// Micro-kernel tile height (rows of `C` per register tile).
pub const MR: usize = 4;
/// Micro-kernel tile width (columns of `C` per register tile).
pub const NR: usize = 4;
/// Rows of `A` packed per cache block (fits the micro-panel in L2).
const MC: usize = 64;
/// Depth (`k` extent) packed per cache block.
const KC: usize = 192;
/// Columns of `B` packed per cache block.
const NC: usize = 256;

/// Shapes with any dimension below this stay on the exact axpy fallback —
/// packing overhead does not amortize on slivers.
const BLOCK_MIN_DIM: usize = 8;

/// Reusable pack buffers for the blocked [`dgemm_with`] path.
///
/// Holding one of these per processor (inside `FactorScratch` in
/// `splu-core`) makes the steady-state GEMM path allocation-free: the
/// buffers grow to the high-water mark of the shapes seen and are then
/// reused verbatim. [`GemmScratch::grow_events`] counts capacity growth so
/// callers can prove the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct GemmScratch {
    apack: Vec<f64>,
    bpack: Vec<f64>,
    grow_events: u64,
}

impl GemmScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times a pack buffer had to grow its capacity.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// High-water total footprint of the pack buffers, in bytes.
    pub fn peak_bytes(&self) -> usize {
        (self.apack.capacity() + self.bpack.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Grow-only length guarantee: returns `&mut v[..len]`, counting a grow
/// event when the capacity must actually increase.
fn ensure_len<'a>(v: &'a mut Vec<f64>, len: usize, grow_events: &mut u64) -> &'a mut [f64] {
    if v.len() < len {
        if v.capacity() < len {
            *grow_events += 1;
        }
        v.resize(len, 0.0);
    }
    &mut v[..len]
}

thread_local! {
    static TLS_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
}

/// `C = alpha * A * B + beta * C`.
///
/// `A` is `m × k` (leading dimension `lda`), `B` is `k × n` (`ldb`),
/// `C` is `m × n` (`ldc`); all column-major.
///
/// Uses a thread-local [`GemmScratch`]; hot paths that own a per-processor
/// arena should call [`dgemm_with`] instead.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    TLS_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => dgemm_with(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, &mut scratch),
        // Re-entrant call (cannot happen today): fall back to a fresh scratch.
        Err(_) => {
            let mut scratch = GemmScratch::new();
            dgemm_with(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, &mut scratch);
        }
    });
}

/// [`dgemm`] with an explicit pack-buffer arena (the allocation-free form).
#[allow(clippy::too_many_arguments)]
pub fn dgemm_with(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    debug_assert!(m == 0 || (lda >= m && ldc >= m));
    debug_assert!(k == 0 || ldb >= k);
    if m == 0 || n == 0 {
        return;
    }
    scale_beta(m, n, beta, c, ldc);
    if alpha == 0.0 || k == 0 {
        return;
    }
    if m >= BLOCK_MIN_DIM && n >= BLOCK_MIN_DIM && k >= BLOCK_MIN_DIM {
        gemm_blocked(m, n, k, alpha, a, lda, b, ldb, c, ldc, scratch);
    } else {
        gemm_axpy(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
    record(FlopClass::Blas3, (2 * m * n * k) as u64);
}

/// Whether [`dgemm_with`] routes shape `(m, n, k)` to the cache-blocked
/// path (`true`) or to the exact axpy fallback (`false`, same arithmetic
/// as [`dgemm_naive`]).
///
/// Within either path, the value of each `C` element depends only on its
/// own row of `A`, its own column of `B` and the path's `k`-reduction
/// order — never on `m`, `lda` or `ldc`. Callers exploit this to *stack*
/// several row segments into one tall call: splitting the rows at
/// arbitrary boundaries and issuing one call per maximal run of segments
/// that agree on this predicate is bitwise identical to one call per
/// segment (use [`dgemm_naive`] for the runs where it returns `false`).
pub fn gemm_uses_blocked_path(m: usize, n: usize, k: usize) -> bool {
    m >= BLOCK_MIN_DIM && n >= BLOCK_MIN_DIM && k >= BLOCK_MIN_DIM
}

/// The original kernel: `j-k-i` loops, four-way unrolled `k`, innermost
/// column access contiguous. Kept as the micro-benchmark baseline
/// (`results/BENCH_kernels.json` reports blocked/naive) and reused verbatim
/// as the exact fallback for shapes too small to amortize packing.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_naive(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(m == 0 || (lda >= m && ldc >= m));
    debug_assert!(k == 0 || ldb >= k);
    if m == 0 || n == 0 {
        return;
    }
    scale_beta(m, n, beta, c, ldc);
    if alpha == 0.0 || k == 0 {
        return;
    }
    gemm_axpy(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    record(FlopClass::Blas3, (2 * m * n * k) as u64);
}

/// `C *= beta` over the `m × n` window (beta == 0 overwrites, clearing NaN).
fn scale_beta(m: usize, n: usize, beta: f64, c: &mut [f64], ldc: usize) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for v in col {
                *v *= beta;
            }
        }
    }
}

/// Unblocked `C += alpha * A * B` (no beta handling, no flop recording).
#[allow(clippy::too_many_arguments)]
fn gemm_axpy(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    for j in 0..n {
        let bcol = &b[j * ldb..j * ldb + k];
        let ccol = &mut c[j * ldc..j * ldc + m];
        let mut p = 0usize;
        // Four-way unrolled over k: fuse four axpys into one pass over ccol.
        while p + 4 <= k {
            let (b0, b1, b2, b3) = (
                alpha * bcol[p],
                alpha * bcol[p + 1],
                alpha * bcol[p + 2],
                alpha * bcol[p + 3],
            );
            let a0 = &a[p * lda..p * lda + m];
            let a1 = &a[(p + 1) * lda..(p + 1) * lda + m];
            let a2 = &a[(p + 2) * lda..(p + 2) * lda + m];
            let a3 = &a[(p + 3) * lda..(p + 3) * lda + m];
            for i in 0..m {
                ccol[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
            }
            p += 4;
        }
        while p < k {
            let bkj = alpha * bcol[p];
            if bkj != 0.0 {
                let acol = &a[p * lda..p * lda + m];
                for i in 0..m {
                    ccol[i] += bkj * acol[i];
                }
            }
            p += 1;
        }
    }
}

/// Pack an `mc × kc` block of `A` into MR-row micro-panels: panel `t`
/// covers rows `[t*MR, t*MR+MR)` and stores, for each `p` in `0..kc`, the
/// MR row values contiguously. Rows past `mc` are zero-padded so the
/// micro-kernel never needs a fringe variant.
fn pack_a(mc: usize, kc: usize, a: &[f64], lda: usize, into: &mut [f64]) {
    let mut dst = 0usize;
    let mut ir = 0usize;
    while ir < mc {
        let mr = MR.min(mc - ir);
        if mr == MR {
            for p in 0..kc {
                let src = ir + p * lda;
                into[dst..dst + MR].copy_from_slice(&a[src..src + MR]);
                dst += MR;
            }
        } else {
            for p in 0..kc {
                let src = ir + p * lda;
                for i in 0..MR {
                    into[dst + i] = if i < mr { a[src + i] } else { 0.0 };
                }
                dst += MR;
            }
        }
        ir += MR;
    }
}

/// Pack a `kc × nc` block of `B` into NR-column micro-panels: panel `t`
/// covers columns `[t*NR, t*NR+NR)` and stores, for each `p` in `0..kc`,
/// the NR column values contiguously (zero-padded past `nc`).
fn pack_b(kc: usize, nc: usize, b: &[f64], ldb: usize, into: &mut [f64]) {
    let mut dst = 0usize;
    let mut jr = 0usize;
    while jr < nc {
        let nr = NR.min(nc - jr);
        for p in 0..kc {
            for j in 0..NR {
                into[dst + j] = if j < nr { b[p + (jr + j) * ldb] } else { 0.0 };
            }
            dst += NR;
        }
        jr += NR;
    }
}

/// 4×4 register-tiled micro-kernel: `acc[j][i] += sum_p a[p][i] * b[p][j]`
/// over one packed A micro-panel (`kc × MR`) and B micro-panel (`kc × NR`).
/// The inner tile is fully unrolled; sixteen independent accumulators stay
/// in registers across the whole `kc` loop.
#[inline(always)]
fn micro_4x4(a: &[f64], b: &[f64], acc: &mut [[f64; MR]; NR]) {
    for (ap, bp) in a.chunks_exact(MR).zip(b.chunks_exact(NR)) {
        let (a0, a1, a2, a3) = (ap[0], ap[1], ap[2], ap[3]);
        for (accj, &bj) in acc.iter_mut().zip(bp.iter()) {
            accj[0] += a0 * bj;
            accj[1] += a1 * bj;
            accj[2] += a2 * bj;
            accj[3] += a3 * bj;
        }
    }
}

/// AVX2+FMA variant of the micro-kernel, selected at runtime. The packed
/// layout is identical; the `k` loop is unrolled by two with independent
/// accumulator banks so eight FMA dependency chains are in flight (the
/// 4-chain version is FMA-latency-bound).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    pub fn has_fma() -> bool {
        use std::sync::OnceLock;
        static HAS: OnceLock<bool> = OnceLock::new();
        *HAS.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    /// # Safety
    /// Caller must ensure AVX2 and FMA are available (see [`has_fma`]) and
    /// that `a.len() == kc * MR`, `b.len() == kc * NR` for the same `kc`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_4x4_fma(a: &[f64], b: &[f64], acc: &mut [[f64; MR]; NR]) {
        debug_assert_eq!(a.len() / MR, b.len() / NR);
        let kc = a.len() / MR;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut c0a = _mm256_setzero_pd();
        let mut c1a = _mm256_setzero_pd();
        let mut c2a = _mm256_setzero_pd();
        let mut c3a = _mm256_setzero_pd();
        let mut c0b = _mm256_setzero_pd();
        let mut c1b = _mm256_setzero_pd();
        let mut c2b = _mm256_setzero_pd();
        let mut c3b = _mm256_setzero_pd();
        let mut p = 0usize;
        while p + 2 <= kc {
            let av0 = _mm256_loadu_pd(ap.add(p * MR));
            let bq0 = bp.add(p * NR);
            c0a = _mm256_fmadd_pd(av0, _mm256_broadcast_sd(&*bq0), c0a);
            c1a = _mm256_fmadd_pd(av0, _mm256_broadcast_sd(&*bq0.add(1)), c1a);
            c2a = _mm256_fmadd_pd(av0, _mm256_broadcast_sd(&*bq0.add(2)), c2a);
            c3a = _mm256_fmadd_pd(av0, _mm256_broadcast_sd(&*bq0.add(3)), c3a);
            let av1 = _mm256_loadu_pd(ap.add((p + 1) * MR));
            let bq1 = bp.add((p + 1) * NR);
            c0b = _mm256_fmadd_pd(av1, _mm256_broadcast_sd(&*bq1), c0b);
            c1b = _mm256_fmadd_pd(av1, _mm256_broadcast_sd(&*bq1.add(1)), c1b);
            c2b = _mm256_fmadd_pd(av1, _mm256_broadcast_sd(&*bq1.add(2)), c2b);
            c3b = _mm256_fmadd_pd(av1, _mm256_broadcast_sd(&*bq1.add(3)), c3b);
            p += 2;
        }
        if p < kc {
            let av = _mm256_loadu_pd(ap.add(p * MR));
            let bq = bp.add(p * NR);
            c0a = _mm256_fmadd_pd(av, _mm256_broadcast_sd(&*bq), c0a);
            c1a = _mm256_fmadd_pd(av, _mm256_broadcast_sd(&*bq.add(1)), c1a);
            c2a = _mm256_fmadd_pd(av, _mm256_broadcast_sd(&*bq.add(2)), c2a);
            c3a = _mm256_fmadd_pd(av, _mm256_broadcast_sd(&*bq.add(3)), c3a);
        }
        _mm256_storeu_pd(acc[0].as_mut_ptr(), _mm256_add_pd(c0a, c0b));
        _mm256_storeu_pd(acc[1].as_mut_ptr(), _mm256_add_pd(c1a, c1b));
        _mm256_storeu_pd(acc[2].as_mut_ptr(), _mm256_add_pd(c2a, c2b));
        _mm256_storeu_pd(acc[3].as_mut_ptr(), _mm256_add_pd(c3a, c3b));
    }
}

#[cfg(target_arch = "x86_64")]
fn has_fma() -> bool {
    x86::has_fma()
}

#[cfg(not(target_arch = "x86_64"))]
fn has_fma() -> bool {
    false
}

/// GEBP-blocked `C += alpha * A * B` (no beta handling, no flop
/// recording). Loop nest: NC columns of B → KC depth (pack B) → MC rows of
/// A (pack A) → NR×MR register tiles.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    let fma = has_fma();
    let mut jc = 0usize;
    while jc < n {
        let nc = NC.min(n - jc);
        let nc_tiles = nc.div_ceil(NR);
        let mut pc = 0usize;
        while pc < k {
            let kc = KC.min(k - pc);
            let bpack = ensure_len(
                &mut scratch.bpack,
                nc_tiles * kc * NR,
                &mut scratch.grow_events,
            );
            pack_b(kc, nc, &b[pc + jc * ldb..], ldb, bpack);
            let mut ic = 0usize;
            while ic < m {
                let mc = MC.min(m - ic);
                let mc_tiles = mc.div_ceil(MR);
                let apack = ensure_len(
                    &mut scratch.apack,
                    mc_tiles * kc * MR,
                    &mut scratch.grow_events,
                );
                pack_a(mc, kc, &a[ic + pc * lda..], lda, apack);
                let mut jr = 0usize;
                while jr < nc {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                    let mut ir = 0usize;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * kc * MR..][..kc * MR];
                        let mut acc = [[0.0f64; MR]; NR];
                        if fma {
                            // SAFETY: gated on runtime AVX2+FMA detection;
                            // ap/bp are full packed micro-panels of equal kc.
                            #[cfg(target_arch = "x86_64")]
                            unsafe {
                                x86::micro_4x4_fma(ap, bp, &mut acc)
                            };
                        } else {
                            micro_4x4(ap, bp, &mut acc);
                        }
                        // Write back only the valid mr × nr sub-tile.
                        for (j, accj) in acc.iter().enumerate().take(nr) {
                            let coff = (jc + jr + j) * ldc + ic + ir;
                            let ccol = &mut c[coff..coff + mr];
                            for (cv, &av) in ccol.iter_mut().zip(accj.iter()) {
                                *cv += alpha * av;
                            }
                        }
                        ir += MR;
                    }
                    jr += NR;
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// The sparse-LU update form `C -= A * B` (i.e. `dgemm` with `alpha = -1`,
/// `beta = 1`).
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS reference signature
pub fn dgemm_update(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    dgemm(m, n, k, -1.0, a, lda, b, ldb, 1.0, c, ldc);
}

/// [`dgemm_update`] with an explicit pack-buffer arena.
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS reference signature
pub fn dgemm_update_with(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    dgemm_with(m, n, k, -1.0, a, lda, b, ldb, 1.0, c, ldc, scratch);
}

/// Diagonal-block size for the blocked triangular solves: panels at most
/// this tall are solved directly; taller ones are split into TB-row
/// diagonal solves plus rank-TB GEMM updates of the remainder.
const TB: usize = 48;

/// Solve `L X = B` in place (`B` is overwritten with `X`), where `L` is the
/// unit lower triangle of the `m × m` panel `l` (column-major, leading
/// dimension `ldl`) and `B` is `m × n` (column-major, leading dimension
/// `ldb`). Only the strict lower part of `l` is referenced.
///
/// This is the BLAS-3 form of line 5 in `Update(k, j)` (Fig. 8): scaling a
/// whole U block by the inverse of the diagonal supernode's unit-lower
/// factor in one call. Right-hand sides are processed four columns at a
/// time so each loaded `L` column is applied to four solves, and panels
/// taller than [`TB`] are cache-blocked (diagonal solve + GEMM update).
pub fn dtrsm_left_lower_unit(m: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    debug_assert!(ldl >= m.max(1) && ldb >= m.max(1));
    // Factorization panels (m ≤ block size) take the direct path; only the
    // tall multi-RHS solve panels pay the strip copy of the blocked path.
    let mut xstrip: Vec<f64> = Vec::new();
    let mut pb = 0usize;
    while pb < m {
        let tb = TB.min(m - pb);
        // Solve the tb × tb unit-lower diagonal block against all RHS.
        let ldiag = &l[pb + pb * ldl..];
        let mut j = 0usize;
        while j < n {
            let jn = (n - j).min(4);
            if jn == 4 {
                trsm_lower_cols4(tb, ldiag, ldl, b, ldb, pb, j);
            } else {
                for jj in j..j + jn {
                    trsm_lower_col1(tb, ldiag, ldl, &mut b[jj * ldb + pb..jj * ldb + pb + tb]);
                }
            }
            j += jn;
        }
        // Eliminate the solved rows from the remainder: B2 -= L21 * X1.
        // X1 is copied out so the GEMM sources and destination rows of B
        // never alias.
        let rem = m - pb - tb;
        if rem > 0 {
            xstrip.resize(tb * n, 0.0);
            for jj in 0..n {
                xstrip[jj * tb..(jj + 1) * tb]
                    .copy_from_slice(&b[jj * ldb + pb..jj * ldb + pb + tb]);
            }
            gemm_axpy(
                rem,
                n,
                tb,
                -1.0,
                &l[pb + tb + pb * ldl..],
                ldl,
                &xstrip,
                tb,
                &mut b[pb + tb..],
                ldb,
            );
        }
        pb += tb;
    }
    record(FlopClass::Blas3, (m * m * n) as u64);
}

/// One forward-substitution column against the unit-lower block.
#[inline]
fn trsm_lower_col1(m: usize, l: &[f64], ldl: usize, bcol: &mut [f64]) {
    for p in 0..m {
        let xp = bcol[p];
        if xp != 0.0 {
            let lcol = &l[p * ldl + p + 1..p * ldl + m];
            for (bv, &lv) in bcol[p + 1..m].iter_mut().zip(lcol.iter()) {
                *bv -= lv * xp;
            }
        }
    }
}

/// Four forward-substitution columns in one pass: each `L` column is
/// loaded once and applied to four right-hand sides (identical per-column
/// arithmetic to [`trsm_lower_col1`]).
#[inline]
fn trsm_lower_cols4(
    m: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    row0: usize,
    j: usize,
) {
    for p in 0..m {
        let base = |jj: usize| (j + jj) * ldb + row0;
        let x = [
            b[base(0) + p],
            b[base(1) + p],
            b[base(2) + p],
            b[base(3) + p],
        ];
        if x == [0.0; 4] {
            continue;
        }
        let lcol = &l[p * ldl + p + 1..p * ldl + m];
        for (i, &lv) in lcol.iter().enumerate() {
            let r = p + 1 + i;
            b[base(0) + r] -= lv * x[0];
            b[base(1) + r] -= lv * x[1];
            b[base(2) + r] -= lv * x[2];
            b[base(3) + r] -= lv * x[3];
        }
    }
}

/// Solve `U X = B` in place (`B` is overwritten with `X`), where `U` is
/// the non-unit upper triangle of the `m × m` panel `u` (column-major,
/// leading dimension `ldu`) and `B` is `m × n` (column-major, leading
/// dimension `ldb`). Only the upper part of `u` (diagonal included) is
/// referenced.
///
/// This is the block back-substitution kernel of the batched multi-RHS
/// solve: one diagonal supernode applied to a whole panel of right-hand
/// sides. Blocked like [`dtrsm_left_lower_unit`], proceeding bottom-up.
///
/// # Panics
/// Panics if a diagonal entry of `U` is exactly zero.
pub fn dtrsm_left_upper(m: usize, n: usize, u: &[f64], ldu: usize, b: &mut [f64], ldb: usize) {
    debug_assert!(ldu >= m.max(1) && ldb >= m.max(1));
    let mut xstrip: Vec<f64> = Vec::new();
    let nblk = m.div_ceil(TB);
    for bi in (0..nblk).rev() {
        let pb = bi * TB;
        let tb = TB.min(m - pb);
        // Solve the tb × tb upper diagonal block against all RHS.
        let udiag = &u[pb + pb * ldu..];
        for j in 0..n {
            let bcol = &mut b[j * ldb + pb..j * ldb + pb + tb];
            for p in (0..tb).rev() {
                let d = udiag[p + p * ldu];
                assert!(d != 0.0, "zero U diagonal at local row {}", pb + p);
                let xp = bcol[p] / d;
                bcol[p] = xp;
                if xp != 0.0 {
                    let ucol = &udiag[p * ldu..p * ldu + p];
                    for (bv, &uv) in bcol[..p].iter_mut().zip(ucol.iter()) {
                        *bv -= uv * xp;
                    }
                }
            }
        }
        // Eliminate the solved rows from the rows above: B1 -= U12 * X2
        // (X2 copied out so the GEMM never aliases its destination).
        if pb > 0 {
            xstrip.resize(tb * n, 0.0);
            for jj in 0..n {
                xstrip[jj * tb..(jj + 1) * tb]
                    .copy_from_slice(&b[jj * ldb + pb..jj * ldb + pb + tb]);
            }
            gemm_axpy(pb, n, tb, -1.0, &u[pb * ldu..], ldu, &xstrip, tb, b, ldb);
        }
    }
    record(FlopClass::Blas3, (m * m * n) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas2::{dtrsv_lower_unit, dtrsv_upper};
    use crate::matrix::DenseMat;

    fn dgemm_full(a: &DenseMat, b: &DenseMat, alpha: f64, beta: f64, c: &mut DenseMat) {
        let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
        let (lda, ldb, ldc) = (a.lda(), b.lda(), c.lda());
        dgemm(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            lda,
            b.as_slice(),
            ldb,
            beta,
            c.as_mut_slice(),
            ldc,
        );
    }

    #[test]
    fn dgemm_matches_oracle_various_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 2, 4),
            (5, 5, 5),
            (7, 4, 2),
            (8, 9, 3),
            (13, 6, 11),
        ] {
            let a = DenseMat::from_fn(m, k, |i, j| (i as f64 + 1.0) * 0.7 - j as f64 * 0.3);
            let b = DenseMat::from_fn(k, n, |i, j| (j as f64 + 1.0) * 0.2 + i as f64 * 0.9);
            let mut c = DenseMat::from_fn(m, n, |i, j| (i + j) as f64);
            let oracle = {
                let ab = a.matmul(&b);
                DenseMat::from_fn(m, n, |i, j| 2.0 * ab[(i, j)] + 0.5 * c[(i, j)])
            };
            dgemm_full(&a, &b, 2.0, 0.5, &mut c);
            assert!(
                c.sub(&oracle).max_abs() < 1e-10,
                "mismatch at shape ({m},{k},{n})"
            );
        }
    }

    /// Shapes that exercise the blocked path, including fringe tiles not
    /// divisible by the 4×4 micro-kernel and blocks crossing MC/KC/NC.
    #[test]
    fn dgemm_blocked_matches_naive_various_shapes() {
        for &(m, k, n) in &[
            (8, 8, 8),
            (9, 11, 10),
            (13, 9, 17),
            (37, 53, 41),
            (65, 193, 12),
            (70, 30, 70),
            (130, 200, 9),
        ] {
            let a = DenseMat::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 23) as f64 * 0.4 - 3.0);
            let b = DenseMat::from_fn(k, n, |i, j| ((i * 13 + j * 29) % 19) as f64 * 0.3 - 2.0);
            let mut c = DenseMat::from_fn(m, n, |i, j| (i as f64) - 0.5 * (j as f64));
            let mut c2 = c.clone();
            let (lda, ldb, ldc) = (a.lda(), b.lda(), c.lda());
            dgemm(
                m,
                n,
                k,
                1.5,
                a.as_slice(),
                lda,
                b.as_slice(),
                ldb,
                0.5,
                c.as_mut_slice(),
                ldc,
            );
            dgemm_naive(
                m,
                n,
                k,
                1.5,
                a.as_slice(),
                lda,
                b.as_slice(),
                ldb,
                0.5,
                c2.as_mut_slice(),
                ldc,
            );
            let scale = (k as f64) * 10.0;
            assert!(
                c.sub(&c2).max_abs() < 1e-12 * scale,
                "blocked vs naive mismatch at shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn dgemm_with_reuses_scratch_without_growth() {
        let mut scratch = GemmScratch::new();
        let m = 40;
        let a = DenseMat::from_fn(m, m, |i, j| (i as f64 - j as f64) * 0.01);
        let b = DenseMat::from_fn(m, m, |i, j| (i as f64 + j as f64) * 0.02);
        let mut c = DenseMat::zeros(m, m);
        for round in 0..5 {
            dgemm_with(
                m,
                m,
                m,
                1.0,
                a.as_slice(),
                m,
                b.as_slice(),
                m,
                0.0,
                c.as_mut_slice(),
                m,
                &mut scratch,
            );
            if round == 0 {
                assert!(scratch.grow_events() > 0, "first call must size the packs");
                assert!(scratch.peak_bytes() > 0);
            }
        }
        // after the first call the packs are warm: no further growth
        let after_first = {
            let mut s2 = GemmScratch::new();
            dgemm_with(
                m,
                m,
                m,
                1.0,
                a.as_slice(),
                m,
                b.as_slice(),
                m,
                0.0,
                c.as_mut_slice(),
                m,
                &mut s2,
            );
            s2.grow_events()
        };
        assert_eq!(
            scratch.grow_events(),
            after_first,
            "steady-state dgemm_with must not grow the pack buffers"
        );
    }

    #[test]
    fn dgemm_edge_vectors_and_empty_k() {
        // m = 1 (row vector result), n = 1 (column), k = 0 (pure scaling)
        let a = DenseMat::from_fn(1, 6, |_, j| j as f64 + 1.0);
        let b = DenseMat::from_fn(6, 3, |i, j| (i + j) as f64 * 0.5);
        let mut c = DenseMat::from_fn(1, 3, |_, _| 7.0);
        dgemm_full(&a, &b, 1.0, 1.0, &mut c);
        for j in 0..3 {
            let want: f64 = (0..6)
                .map(|p| (p as f64 + 1.0) * ((p + j) as f64 * 0.5))
                .sum();
            assert!((c[(0, j)] - (7.0 + want)).abs() < 1e-12);
        }

        let a = DenseMat::from_fn(5, 4, |i, j| (i * 4 + j) as f64);
        let b = DenseMat::from_fn(4, 1, |i, _| i as f64 - 1.5);
        let mut c = DenseMat::zeros(5, 1);
        dgemm_full(&a, &b, 2.0, 0.0, &mut c);
        for i in 0..5 {
            let want: f64 = 2.0
                * (0..4)
                    .map(|p| ((i * 4 + p) as f64) * (p as f64 - 1.5))
                    .sum::<f64>();
            assert!((c[(i, 0)] - want).abs() < 1e-10);
        }

        // k = 0: C is only scaled, for both dgemm and dgemm_update
        let mut c = DenseMat::from_fn(3, 3, |i, j| (i + j) as f64 + 1.0);
        let c0 = c.clone();
        let ldc = c.lda();
        dgemm(3, 3, 0, 1.0, &[], 3, &[], 1, 0.5, c.as_mut_slice(), ldc);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c[(i, j)], 0.5 * c0[(i, j)]);
            }
        }
        let mut c = c0.clone();
        dgemm_update(3, 3, 0, &[], 3, &[], 1, c.as_mut_slice(), ldc);
        assert!(c.sub(&c0).max_abs() == 0.0, "k = 0 update is a no-op");
    }

    #[test]
    fn dgemm_beta_zero_clears_nan() {
        let a = DenseMat::identity(2);
        let b = DenseMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut c = DenseMat::from_fn(2, 2, |_, _| f64::NAN);
        dgemm_full(&a, &b, 1.0, 0.0, &mut c);
        assert!(c.sub(&b).max_abs() == 0.0);
    }

    #[test]
    fn dgemm_blocked_beta_zero_clears_nan() {
        let n = 16;
        let a = DenseMat::identity(n);
        let b = DenseMat::from_fn(n, n, |i, j| (i * n + j) as f64);
        let mut c = DenseMat::from_fn(n, n, |_, _| f64::NAN);
        dgemm_full(&a, &b, 1.0, 0.0, &mut c);
        assert!(c.sub(&b).max_abs() == 0.0);
    }

    #[test]
    fn dgemm_k_zero_only_scales() {
        let a = DenseMat::zeros(2, 0);
        let b = DenseMat::zeros(0, 2);
        let mut c = DenseMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        dgemm_full(&a, &b, 1.0, 2.0, &mut c);
        assert_eq!(c[(1, 1)], 8.0);
    }

    #[test]
    fn dgemm_update_subtracts() {
        let a = DenseMat::from_rows(&[vec![1.0], vec![2.0]]);
        let b = DenseMat::from_rows(&[vec![3.0, 4.0]]);
        let mut c = DenseMat::from_rows(&[vec![10.0, 10.0], vec![10.0, 10.0]]);
        let ldc = c.lda();
        dgemm_update(
            2,
            2,
            1,
            a.as_slice(),
            2,
            b.as_slice(),
            1,
            c.as_mut_slice(),
            ldc,
        );
        assert_eq!(c[(0, 0)], 7.0);
        assert_eq!(c[(1, 1)], 2.0);
    }

    #[test]
    fn dgemm_respects_leading_dimensions() {
        // Embed a 2x2 problem in 5x5 storage.
        let mut astore = vec![0.0; 25];
        let mut bstore = vec![0.0; 25];
        let mut cstore = vec![0.0; 25];
        // A = [[1,2],[3,4]] col-major with lda=5
        astore[0] = 1.0;
        astore[1] = 3.0;
        astore[5] = 2.0;
        astore[6] = 4.0;
        // B = I
        bstore[0] = 1.0;
        bstore[6] = 1.0;
        dgemm(2, 2, 2, 1.0, &astore, 5, &bstore, 5, 0.0, &mut cstore, 5);
        assert_eq!(cstore[0], 1.0);
        assert_eq!(cstore[1], 3.0);
        assert_eq!(cstore[5], 2.0);
        assert_eq!(cstore[6], 4.0);
        // cells outside the 2x2 target untouched
        assert_eq!(cstore[2], 0.0);
        assert_eq!(cstore[10], 0.0);
    }

    #[test]
    fn dgemm_blocked_respects_leading_dimensions() {
        // Embed a 12x12 problem (blocked path) in 20x20 storage and verify
        // cells outside the target window stay untouched.
        let (m, n, k, ld) = (12usize, 12usize, 12usize, 20usize);
        let mut astore = vec![0.0; ld * ld];
        let mut bstore = vec![0.0; ld * ld];
        let mut cstore = vec![-1.0; ld * ld];
        for j in 0..k {
            for i in 0..m {
                astore[i + j * ld] = (i * 3 + j) as f64 * 0.1;
            }
        }
        for j in 0..n {
            for i in 0..k {
                bstore[i + j * ld] = (i + j * 5) as f64 * 0.2;
            }
        }
        let mut want = vec![0.0; m * n];
        dgemm_naive(m, n, k, 1.0, &astore, ld, &bstore, ld, 0.0, &mut want, m);
        dgemm(m, n, k, 1.0, &astore, ld, &bstore, ld, 0.0, &mut cstore, ld);
        for j in 0..n {
            for i in 0..m {
                let got = cstore[i + j * ld];
                assert!((got - want[i + j * m]).abs() < 1e-9, "({i},{j})");
            }
        }
        // a row below the window and a column right of it are untouched
        for j in 0..n {
            assert_eq!(cstore[m + j * ld], -1.0);
        }
        assert_eq!(cstore[n * ld], -1.0);
    }

    #[test]
    fn trsm_matches_repeated_trsv() {
        let m = 6;
        let n = 4;
        let l = DenseMat::from_fn(m, m, |i, j| {
            if i > j {
                ((i * 7 + j * 3) % 5) as f64 * 0.25 - 0.5
            } else if i == j {
                1.0
            } else {
                f64::NAN // must not be referenced
            }
        });
        let b0 = DenseMat::from_fn(m, n, |i, j| (i as f64 - j as f64) * 0.5 + 1.0);
        let mut b = b0.clone();
        let ldb = b.lda();
        dtrsm_left_lower_unit(m, n, l.as_slice(), m, b.as_mut_slice(), ldb);
        for j in 0..n {
            let mut x = b0.col(j).to_vec();
            dtrsv_lower_unit(m, l.as_slice(), m, &mut x);
            for i in 0..m {
                assert!((b[(i, j)] - x[i]).abs() < 1e-12);
            }
        }
    }

    /// Exercise the TB-blocked path (m > TB) of both triangular solves.
    #[test]
    fn trsm_blocked_tall_panels_match_trsv() {
        let m = TB * 2 + 7;
        let n = 5;
        let l = DenseMat::from_fn(m, m, |i, j| {
            if i > j {
                (((i * 7 + j * 3) % 9) as f64 - 4.0) * 0.05
            } else if i == j {
                1.0
            } else {
                f64::NAN // must not be referenced
            }
        });
        let b0 = DenseMat::from_fn(m, n, |i, j| ((i + 2 * j) % 11) as f64 * 0.3 - 1.0);
        let mut b = b0.clone();
        let ldb = b.lda();
        dtrsm_left_lower_unit(m, n, l.as_slice(), m, b.as_mut_slice(), ldb);
        for j in 0..n {
            let mut x = b0.col(j).to_vec();
            dtrsv_lower_unit(m, l.as_slice(), m, &mut x);
            for i in 0..m {
                assert!((b[(i, j)] - x[i]).abs() < 1e-9, "L: ({i},{j})");
            }
        }

        let u = DenseMat::from_fn(m, m, |i, j| {
            if i < j {
                (((i * 5 + j * 11) % 7) as f64 - 3.0) * 0.04
            } else if i == j {
                1.5 + ((i % 4) as f64) * 0.25
            } else {
                f64::NAN // must not be referenced
            }
        });
        let mut b = b0.clone();
        dtrsm_left_upper(m, n, u.as_slice(), m, b.as_mut_slice(), ldb);
        for j in 0..n {
            let mut x = b0.col(j).to_vec();
            dtrsv_upper(m, u.as_slice(), m, &mut x);
            for i in 0..m {
                assert!((b[(i, j)] - x[i]).abs() < 1e-9, "U: ({i},{j})");
            }
        }
    }

    #[test]
    fn trsm_upper_matches_repeated_trsv_upper() {
        let m = 6;
        let n = 4;
        let u = DenseMat::from_fn(m, m, |i, j| {
            if i < j {
                ((i * 5 + j * 11) % 7) as f64 * 0.3 - 0.8
            } else if i == j {
                1.5 + (i as f64) * 0.25
            } else {
                f64::NAN // must not be referenced
            }
        });
        let b0 = DenseMat::from_fn(m, n, |i, j| (i as f64 + 2.0 * j as f64) * 0.4 - 1.0);
        let mut b = b0.clone();
        let ldb = b.lda();
        dtrsm_left_upper(m, n, u.as_slice(), m, b.as_mut_slice(), ldb);
        for j in 0..n {
            let mut x = b0.col(j).to_vec();
            dtrsv_upper(m, u.as_slice(), m, &mut x);
            for i in 0..m {
                assert!((b[(i, j)] - x[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flop_counter_records_blas3() {
        use crate::flops::{global, FlopClass};
        let before = global().get(FlopClass::Blas3);
        let a = DenseMat::identity(4);
        let b = DenseMat::identity(4);
        let mut c = DenseMat::zeros(4, 4);
        dgemm_full(&a, &b, 1.0, 0.0, &mut c);
        assert_eq!(global().get(FlopClass::Blas3) - before, 2 * 4 * 4 * 4);
    }

    /// Blocked trsm must not double-count the internal GEMM flops.
    #[test]
    fn flop_counter_trsm_blocked_counts_once() {
        use crate::flops::{global, FlopClass};
        let m = TB + 5;
        let n = 3;
        let l = DenseMat::from_fn(m, m, |i, j| {
            if i > j {
                0.01
            } else if i == j {
                1.0
            } else {
                0.0
            }
        });
        let mut b = DenseMat::from_fn(m, n, |i, j| (i + j) as f64);
        let ldb = b.lda();
        let before = global().get(FlopClass::Blas3);
        dtrsm_left_lower_unit(m, n, l.as_slice(), m, b.as_mut_slice(), ldb);
        assert_eq!(global().get(FlopClass::Blas3) - before, (m * m * n) as u64);
    }
}
