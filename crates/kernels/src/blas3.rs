//! BLAS-3 matrix–matrix kernels (column-major, explicit leading dimension).
//!
//! [`dgemm`] is the kernel the whole S\* design funnels work into: the
//! submatrix update `A_ij -= L_ik * U_kj` (line 12 of `Update(k, j)`,
//! Fig. 8 of the paper) and the block triangular solve
//! `U_kj = L_kk⁻¹ U_kj` (line 5, implemented by [`dtrsm_left_lower_unit`]).
//!
//! The implementation is a cache-friendly `j-k-i` loop with the innermost
//! column access contiguous (an `axpy` per `(k, j)` pair), with a four-way
//! unrolled `k` loop so the compiler can keep several accumulator streams in
//! flight. On typical hardware this comfortably beats the [`crate::dgemv`]
//! path per flop, which is the `w3 < w2` relation the paper's cost model
//! (§6.1) relies on; the `blas_rates` criterion bench measures the actual
//! ratio on the host machine.

use crate::flops::{record, FlopClass};

/// `C = alpha * A * B + beta * C`.
///
/// `A` is `m × k` (leading dimension `lda`), `B` is `k × n` (`ldb`),
/// `C` is `m × n` (`ldc`); all column-major.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(m == 0 || (lda >= m && ldc >= m));
    debug_assert!(k == 0 || ldb >= k);
    if m == 0 || n == 0 {
        return;
    }
    if beta != 1.0 {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta == 0.0 {
                col.fill(0.0);
            } else {
                for v in col {
                    *v *= beta;
                }
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }
    for j in 0..n {
        let bcol = &b[j * ldb..j * ldb + k];
        let ccol = &mut c[j * ldc..j * ldc + m];
        let mut p = 0usize;
        // Four-way unrolled over k: fuse four axpys into one pass over ccol.
        while p + 4 <= k {
            let (b0, b1, b2, b3) = (
                alpha * bcol[p],
                alpha * bcol[p + 1],
                alpha * bcol[p + 2],
                alpha * bcol[p + 3],
            );
            let a0 = &a[p * lda..p * lda + m];
            let a1 = &a[(p + 1) * lda..(p + 1) * lda + m];
            let a2 = &a[(p + 2) * lda..(p + 2) * lda + m];
            let a3 = &a[(p + 3) * lda..(p + 3) * lda + m];
            for i in 0..m {
                ccol[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
            }
            p += 4;
        }
        while p < k {
            let bkj = alpha * bcol[p];
            if bkj != 0.0 {
                let acol = &a[p * lda..p * lda + m];
                for i in 0..m {
                    ccol[i] += bkj * acol[i];
                }
            }
            p += 1;
        }
    }
    record(FlopClass::Blas3, (2 * m * n * k) as u64);
}

/// The sparse-LU update form `C -= A * B` (i.e. `dgemm` with `alpha = -1`,
/// `beta = 1`).
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS reference signature
pub fn dgemm_update(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    dgemm(m, n, k, -1.0, a, lda, b, ldb, 1.0, c, ldc);
}

/// Solve `L X = B` in place (`B` is overwritten with `X`), where `L` is the
/// unit lower triangle of the `m × m` panel `l` (column-major, leading
/// dimension `ldl`) and `B` is `m × n` (column-major, leading dimension
/// `ldb`). Only the strict lower part of `l` is referenced.
///
/// This is the BLAS-3 form of line 5 in `Update(k, j)` (Fig. 8): scaling a
/// whole U block by the inverse of the diagonal supernode's unit-lower
/// factor in one call.
pub fn dtrsm_left_lower_unit(m: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    debug_assert!(ldl >= m.max(1) && ldb >= m.max(1));
    for j in 0..n {
        let bcol = &mut b[j * ldb..j * ldb + m];
        for p in 0..m {
            let xp = bcol[p];
            if xp != 0.0 {
                let lcol = &l[p * ldl..p * ldl + m];
                for i in (p + 1)..m {
                    bcol[i] -= lcol[i] * xp;
                }
            }
        }
    }
    record(FlopClass::Blas3, (m * m * n) as u64);
}

/// Solve `U X = B` in place (`B` is overwritten with `X`), where `U` is
/// the non-unit upper triangle of the `m × m` panel `u` (column-major,
/// leading dimension `ldu`) and `B` is `m × n` (column-major, leading
/// dimension `ldb`). Only the upper part of `u` (diagonal included) is
/// referenced.
///
/// This is the block back-substitution kernel of the batched multi-RHS
/// solve: one diagonal supernode applied to a whole panel of right-hand
/// sides.
///
/// # Panics
/// Panics if a diagonal entry of `U` is exactly zero.
pub fn dtrsm_left_upper(m: usize, n: usize, u: &[f64], ldu: usize, b: &mut [f64], ldb: usize) {
    debug_assert!(ldu >= m.max(1) && ldb >= m.max(1));
    for j in 0..n {
        let bcol = &mut b[j * ldb..j * ldb + m];
        for p in (0..m).rev() {
            let d = u[p + p * ldu];
            assert!(d != 0.0, "zero U diagonal at local row {p}");
            let xp = bcol[p] / d;
            bcol[p] = xp;
            if xp != 0.0 {
                let ucol = &u[p * ldu..p * ldu + p];
                for (i, &uv) in ucol.iter().enumerate() {
                    bcol[i] -= uv * xp;
                }
            }
        }
    }
    record(FlopClass::Blas3, (m * m * n) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas2::{dtrsv_lower_unit, dtrsv_upper};
    use crate::matrix::DenseMat;

    fn dgemm_full(a: &DenseMat, b: &DenseMat, alpha: f64, beta: f64, c: &mut DenseMat) {
        let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
        let (lda, ldb, ldc) = (a.lda(), b.lda(), c.lda());
        dgemm(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            lda,
            b.as_slice(),
            ldb,
            beta,
            c.as_mut_slice(),
            ldc,
        );
    }

    #[test]
    fn dgemm_matches_oracle_various_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 2, 4),
            (5, 5, 5),
            (7, 4, 2),
            (8, 9, 3),
            (13, 6, 11),
        ] {
            let a = DenseMat::from_fn(m, k, |i, j| (i as f64 + 1.0) * 0.7 - j as f64 * 0.3);
            let b = DenseMat::from_fn(k, n, |i, j| (j as f64 + 1.0) * 0.2 + i as f64 * 0.9);
            let mut c = DenseMat::from_fn(m, n, |i, j| (i + j) as f64);
            let oracle = {
                let ab = a.matmul(&b);
                DenseMat::from_fn(m, n, |i, j| 2.0 * ab[(i, j)] + 0.5 * c[(i, j)])
            };
            dgemm_full(&a, &b, 2.0, 0.5, &mut c);
            assert!(
                c.sub(&oracle).max_abs() < 1e-10,
                "mismatch at shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn dgemm_beta_zero_clears_nan() {
        let a = DenseMat::identity(2);
        let b = DenseMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut c = DenseMat::from_fn(2, 2, |_, _| f64::NAN);
        dgemm_full(&a, &b, 1.0, 0.0, &mut c);
        assert!(c.sub(&b).max_abs() == 0.0);
    }

    #[test]
    fn dgemm_k_zero_only_scales() {
        let a = DenseMat::zeros(2, 0);
        let b = DenseMat::zeros(0, 2);
        let mut c = DenseMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        dgemm_full(&a, &b, 1.0, 2.0, &mut c);
        assert_eq!(c[(1, 1)], 8.0);
    }

    #[test]
    fn dgemm_update_subtracts() {
        let a = DenseMat::from_rows(&[vec![1.0], vec![2.0]]);
        let b = DenseMat::from_rows(&[vec![3.0, 4.0]]);
        let mut c = DenseMat::from_rows(&[vec![10.0, 10.0], vec![10.0, 10.0]]);
        let ldc = c.lda();
        dgemm_update(
            2,
            2,
            1,
            a.as_slice(),
            2,
            b.as_slice(),
            1,
            c.as_mut_slice(),
            ldc,
        );
        assert_eq!(c[(0, 0)], 7.0);
        assert_eq!(c[(1, 1)], 2.0);
    }

    #[test]
    fn dgemm_respects_leading_dimensions() {
        // Embed a 2x2 problem in 5x5 storage.
        let mut astore = vec![0.0; 25];
        let mut bstore = vec![0.0; 25];
        let mut cstore = vec![0.0; 25];
        // A = [[1,2],[3,4]] col-major with lda=5
        astore[0] = 1.0;
        astore[1] = 3.0;
        astore[5] = 2.0;
        astore[6] = 4.0;
        // B = I
        bstore[0] = 1.0;
        bstore[6] = 1.0;
        dgemm(2, 2, 2, 1.0, &astore, 5, &bstore, 5, 0.0, &mut cstore, 5);
        assert_eq!(cstore[0], 1.0);
        assert_eq!(cstore[1], 3.0);
        assert_eq!(cstore[5], 2.0);
        assert_eq!(cstore[6], 4.0);
        // cells outside the 2x2 target untouched
        assert_eq!(cstore[2], 0.0);
        assert_eq!(cstore[10], 0.0);
    }

    #[test]
    fn trsm_matches_repeated_trsv() {
        let m = 6;
        let n = 4;
        let l = DenseMat::from_fn(m, m, |i, j| {
            if i > j {
                ((i * 7 + j * 3) % 5) as f64 * 0.25 - 0.5
            } else if i == j {
                1.0
            } else {
                f64::NAN // must not be referenced
            }
        });
        let b0 = DenseMat::from_fn(m, n, |i, j| (i as f64 - j as f64) * 0.5 + 1.0);
        let mut b = b0.clone();
        let ldb = b.lda();
        dtrsm_left_lower_unit(m, n, l.as_slice(), m, b.as_mut_slice(), ldb);
        for j in 0..n {
            let mut x = b0.col(j).to_vec();
            dtrsv_lower_unit(m, l.as_slice(), m, &mut x);
            for i in 0..m {
                assert!((b[(i, j)] - x[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trsm_upper_matches_repeated_trsv_upper() {
        let m = 6;
        let n = 4;
        let u = DenseMat::from_fn(m, m, |i, j| {
            if i < j {
                ((i * 5 + j * 11) % 7) as f64 * 0.3 - 0.8
            } else if i == j {
                1.5 + (i as f64) * 0.25
            } else {
                f64::NAN // must not be referenced
            }
        });
        let b0 = DenseMat::from_fn(m, n, |i, j| (i as f64 + 2.0 * j as f64) * 0.4 - 1.0);
        let mut b = b0.clone();
        let ldb = b.lda();
        dtrsm_left_upper(m, n, u.as_slice(), m, b.as_mut_slice(), ldb);
        for j in 0..n {
            let mut x = b0.col(j).to_vec();
            dtrsv_upper(m, u.as_slice(), m, &mut x);
            for i in 0..m {
                assert!((b[(i, j)] - x[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flop_counter_records_blas3() {
        use crate::flops::{global, FlopClass};
        let before = global().get(FlopClass::Blas3);
        let a = DenseMat::identity(4);
        let b = DenseMat::identity(4);
        let mut c = DenseMat::zeros(4, 4);
        dgemm_full(&a, &b, 1.0, 0.0, &mut c);
        assert_eq!(global().get(FlopClass::Blas3) - before, 2 * 4 * 4 * 4);
    }
}
