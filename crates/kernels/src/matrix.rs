//! Column-major dense matrix container.

use std::fmt;

/// A dense matrix stored in column-major order, matching the layout the
/// BLAS-style kernels in this crate expect.
///
/// Element `(i, j)` lives at `data[i + j * nrows]`. The leading dimension is
/// always `nrows` for an owned `DenseMat`; kernels that need to address a
/// sub-panel take an explicit `lda` instead.
#[derive(Clone, PartialEq)]
pub struct DenseMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMat {
    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a column-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_column_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "column-major data length mismatch"
        );
        Self { nrows, ncols, data }
    }

    /// Build from a row-major nested structure (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = Self::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "ragged row in from_rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Build by evaluating `f(i, j)` at every position.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Leading dimension (equals `nrows` for owned matrices).
    #[inline]
    pub fn lda(&self) -> usize {
        self.nrows
    }

    /// The backing column-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing column-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Matrix–vector product `self * x` (unoptimized; for tests and oracles).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj != 0.0 {
                for i in 0..self.nrows {
                    y[i] += self[(i, j)] * xj;
                }
            }
        }
        y
    }

    /// Matrix–matrix product `self * rhs` (unoptimized; for tests/oracles).
    pub fn matmul(&self, rhs: &DenseMat) -> DenseMat {
        assert_eq!(self.ncols, rhs.nrows);
        let mut c = DenseMat::zeros(self.nrows, rhs.ncols);
        for j in 0..rhs.ncols {
            for k in 0..self.ncols {
                let b = rhs[(k, j)];
                if b != 0.0 {
                    for i in 0..self.nrows {
                        c[(i, j)] += self[(i, k)] * b;
                    }
                }
            }
        }
        c
    }

    /// The transpose.
    pub fn transpose(&self) -> DenseMat {
        DenseMat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Swap rows `r1` and `r2` in place.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.ncols {
            self.data.swap(r1 + j * self.nrows, r2 + j * self.nrows);
        }
    }

    /// Max-absolute-value (infinity-ish) norm over all entries.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &DenseMat) -> DenseMat {
        assert_eq!(self.nrows, rhs.nrows);
        assert_eq!(self.ncols, rhs.ncols);
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        DenseMat::from_column_major(self.nrows, self.ncols, data)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl fmt::Debug for DenseMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(12) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(12) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = DenseMat::zeros(3, 2);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        m[(2, 1)] = 5.0;
        assert_eq!(m[(2, 1)], 5.0);
        assert_eq!(m.as_slice()[2 + 3], 5.0); // col 1, ld 3
    }

    #[test]
    fn identity_matvec_is_identity() {
        let m = DenseMat::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn from_rows_matches_layout() {
        let m = DenseMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
        // column-major layout
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = DenseMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMat::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMat::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn swap_rows_moves_all_columns() {
        let mut a = DenseMat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        a.swap_rows(0, 1);
        assert_eq!(a[(0, 0)], 4.0);
        assert_eq!(a[(0, 2)], 6.0);
        assert_eq!(a[(1, 1)], 2.0);
    }

    #[test]
    fn norms() {
        let a = DenseMat::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        DenseMat::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
