//! BLAS-1 vector kernels.
//!
//! These are the element-wise workhorses of `Factor(k)`: pivot search
//! ([`idamax`]), column scaling ([`dscal`]), and the row interchange
//! ([`dswap`]) used by delayed pivoting.

use crate::flops::{record, FlopClass};

/// `y += alpha * x`.
#[inline]
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    record(FlopClass::Blas1, 2 * x.len() as u64);
}

/// `x *= alpha`.
#[inline]
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
    record(FlopClass::Blas1, x.len() as u64);
}

/// Dot product `xᵀ y`.
#[inline]
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    record(FlopClass::Blas1, 2 * x.len() as u64);
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Copy `x` into `y`.
#[inline]
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    y.copy_from_slice(x);
}

/// Swap the contents of `x` and `y`.
#[inline]
pub fn dswap(x: &mut [f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(a, b);
    }
}

/// Index of the element of maximum absolute value, with ties broken toward
/// the *smallest* index.
///
/// The deterministic tie-break makes the whole factorization pipeline
/// bitwise-reproducible, which the parallel correctness tests rely on.
/// Returns `None` for an empty slice.
#[inline]
pub fn idamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_abs = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > best_abs {
            best = i;
            best_abs = a;
        }
    }
    Some(best)
}

/// Euclidean norm `||x||₂` with basic overflow-avoiding scaling.
pub fn dnrm2(x: &[f64]) -> f64 {
    let scale = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if scale == 0.0 {
        return 0.0;
    }
    record(FlopClass::Blas1, 2 * x.len() as u64);
    let ssq: f64 = x.iter().map(|&v| (v / scale) * (v / scale)).sum();
    scale * ssq.sqrt()
}

/// Sum of absolute values `||x||₁`.
pub fn dasum(x: &[f64]) -> f64 {
    record(FlopClass::Blas1, x.len() as u64);
    x.iter().map(|v| v.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daxpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn daxpy_zero_alpha_is_noop() {
        let x = [1.0, 2.0];
        let mut y = [5.0, 6.0];
        daxpy(0.0, &x, &mut y);
        assert_eq!(y, [5.0, 6.0]);
    }

    #[test]
    fn dscal_basic() {
        let mut x = [1.0, -2.0, 4.0];
        dscal(0.5, &mut x);
        assert_eq!(x, [0.5, -1.0, 2.0]);
    }

    #[test]
    fn ddot_basic() {
        assert_eq!(ddot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(ddot(&[], &[]), 0.0);
    }

    #[test]
    fn dswap_exchanges() {
        let mut x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        dswap(&mut x, &mut y);
        assert_eq!(x, [3.0, 4.0]);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn idamax_picks_max_magnitude() {
        assert_eq!(idamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(idamax(&[0.0, 0.0]), Some(0));
        assert_eq!(idamax(&[]), None);
    }

    #[test]
    fn idamax_tie_break_smallest_index() {
        assert_eq!(idamax(&[2.0, -2.0, 2.0]), Some(0));
        assert_eq!(idamax(&[-1.0, 3.0, -3.0]), Some(1));
    }

    #[test]
    fn dnrm2_pythagorean() {
        assert!((dnrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dnrm2(&[0.0, 0.0]), 0.0);
        // overflow-avoidance: huge values
        let big = 1e200;
        assert!((dnrm2(&[big, big]) - big * std::f64::consts::SQRT_2).abs() / big < 1e-12);
    }

    #[test]
    fn dasum_basic() {
        assert_eq!(dasum(&[1.0, -2.0, 3.0]), 6.0);
    }
}
