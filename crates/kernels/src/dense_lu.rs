//! Dense Gaussian elimination with partial pivoting (GEPP).
//!
//! This is the algorithm of Fig. 1 of the paper, specialized to a dense
//! matrix. It serves two roles in the reproduction:
//!
//! 1. **Correctness oracle** — every sparse factorization in the workspace
//!    (the SuperLU-like baseline and all S\* variants) is checked against
//!    this routine on small and medium problems: same pivot sequence given
//!    the same tie-break rule, and `P A = L U` up to rounding.
//! 2. **`dense1000` workload** — Table 2 of the paper includes a dense
//!    1000×1000 matrix to show where the BLAS-3 advantage saturates.

use crate::blas1::idamax;
use crate::matrix::DenseMat;

/// The result of a dense LU factorization with partial pivoting:
/// `P A = L U`, with `L` unit lower triangular and `U` upper triangular,
/// both packed into `lu` (the unit diagonal of `L` is implicit).
#[derive(Debug, Clone)]
pub struct DenseLu {
    /// Packed `L\U` factors, column-major.
    pub lu: DenseMat,
    /// `perm[k]` is the row that was swapped into position `k` at step `k`
    /// (LAPACK-style ipiv, expressed as absolute row indices).
    pub ipiv: Vec<usize>,
    /// Row permutation as a function: `row_perm[i]` = original row now
    /// stored at position `i`.
    pub row_perm: Vec<usize>,
}

/// Factorize `a` with partial pivoting. Returns `None` if an exactly zero
/// pivot column is hit (matrix singular to working precision).
///
/// Ties in the pivot search are broken toward the smallest row index, the
/// same deterministic rule used by all sparse codes in this workspace.
pub fn dense_lu(a: &DenseMat) -> Option<DenseLu> {
    assert_eq!(a.nrows(), a.ncols(), "dense_lu needs a square matrix");
    let n = a.nrows();
    let mut lu = a.clone();
    let mut ipiv = vec![0usize; n];
    let mut row_perm: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Pivot search in column k, rows k..n (line 02 of Fig. 1).
        let col = lu.col(k);
        let rel = idamax(&col[k..])?;
        let piv = k + rel;
        if lu[(piv, k)] == 0.0 {
            return None; // singular (line 03)
        }
        ipiv[k] = piv;
        if piv != k {
            lu.swap_rows(k, piv); // line 04
            row_perm.swap(k, piv);
        }
        // Scale (lines 05-07) and rank-1 update (lines 08-12).
        let pivval = lu[(k, k)];
        for i in (k + 1)..n {
            lu[(i, k)] /= pivval;
        }
        for j in (k + 1)..n {
            let ukj = lu[(k, j)];
            if ukj != 0.0 {
                for i in (k + 1)..n {
                    let lik = lu[(i, k)];
                    lu[(i, j)] -= lik * ukj;
                }
            }
        }
    }
    Some(DenseLu { lu, ipiv, row_perm })
}

impl DenseLu {
    /// Order of the factorized matrix.
    pub fn n(&self) -> usize {
        self.lu.nrows()
    }

    /// Extract `L` (unit lower triangular) as a full matrix.
    pub fn l(&self) -> DenseMat {
        let n = self.n();
        DenseMat::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                self.lu[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Extract `U` (upper triangular) as a full matrix.
    pub fn u(&self) -> DenseMat {
        let n = self.n();
        DenseMat::from_fn(n, n, |i, j| if i <= j { self.lu[(i, j)] } else { 0.0 })
    }

    /// Apply the row permutation `P` to a vector: returns `P b`.
    pub fn apply_p(&self, b: &[f64]) -> Vec<f64> {
        self.row_perm.iter().map(|&i| b[i]).collect()
    }

    /// `P` as an explicit permutation matrix (for small-problem testing).
    pub fn p(&self) -> DenseMat {
        let n = self.n();
        let mut p = DenseMat::zeros(n, n);
        for (i, &orig) in self.row_perm.iter().enumerate() {
            p[(i, orig)] = 1.0;
        }
        p
    }

    /// Solve `A x = b` using the factorization: `L y = P b`, then `U x = y`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(b.len(), n);
        let mut x = self.apply_p(b);
        crate::blas2::dtrsv_lower_unit(n, self.lu.as_slice(), n, &mut x);
        crate::blas2::dtrsv_upper(n, self.lu.as_slice(), n, &mut x);
        x
    }
}

/// Factor-and-solve convenience: solves `A x = b` by dense GEPP.
pub fn dense_solve(a: &DenseMat, b: &[f64]) -> Option<Vec<f64>> {
    Some(dense_lu(a)?.solve(b))
}

/// Relative factorization residual `max|P A - L U| / max|A|`; a
/// backward-stability smoke metric used throughout the test suites.
pub fn factorization_residual(a: &DenseMat, f: &DenseLu) -> f64 {
    let pa = f.p().matmul(a);
    let lu = f.l().matmul(&f.u());
    let denom = a.max_abs().max(f64::MIN_POSITIVE);
    pa.sub(&lu).max_abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_matrix(n: usize, seed: u64) -> DenseMat {
        // Small xorshift so the kernel crate stays dependency-free.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        DenseMat::from_fn(n, n, |_, _| next())
    }

    #[test]
    fn lu_of_identity_is_identity() {
        let a = DenseMat::identity(5);
        let f = dense_lu(&a).unwrap();
        assert!(f.l().sub(&DenseMat::identity(5)).max_abs() == 0.0);
        assert!(f.u().sub(&DenseMat::identity(5)).max_abs() == 0.0);
        assert_eq!(f.row_perm, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pivoting_picks_largest_entry() {
        // First column is [1, 3, -9]: pivot must be row 2.
        let a = DenseMat::from_rows(&[
            vec![1.0, 2.0, 0.0],
            vec![3.0, 1.0, 1.0],
            vec![-9.0, 0.0, 2.0],
        ]);
        let f = dense_lu(&a).unwrap();
        assert_eq!(f.ipiv[0], 2);
        assert!(factorization_residual(&a, &f) < 1e-14);
    }

    #[test]
    fn random_matrices_factor_accurately() {
        for n in [1, 2, 3, 7, 20, 50] {
            let a = seeded_matrix(n, n as u64 + 1);
            let f = dense_lu(&a).unwrap();
            assert!(
                factorization_residual(&a, &f) < 1e-12,
                "residual too large at n={n}"
            );
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let n = 30;
        let a = seeded_matrix(n, 42);
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64) * 0.1 - 1.0).collect();
        let b = a.matvec(&xtrue);
        let x = dense_solve(&a, &b).unwrap();
        let err = x
            .iter()
            .zip(&xtrue)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(err < 1e-9, "solve error {err}");
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = DenseMat::zeros(3, 3);
        assert!(dense_lu(&a).is_none());
        // Rank-1 singular matrix
        let a = DenseMat::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![3.0, 6.0, 9.0],
        ]);
        assert!(dense_lu(&a).is_none());
    }

    #[test]
    fn l_is_unit_lower_u_is_upper() {
        let a = seeded_matrix(12, 7);
        let f = dense_lu(&a).unwrap();
        let (l, u) = (f.l(), f.u());
        for i in 0..12 {
            assert_eq!(l[(i, i)], 1.0);
            for j in (i + 1)..12 {
                assert_eq!(l[(i, j)], 0.0);
                assert_eq!(u[(j, i)], 0.0);
            }
            // |L| <= 1 from partial pivoting
            for j in 0..i {
                assert!(l[(i, j)].abs() <= 1.0 + 1e-15);
            }
        }
    }

    #[test]
    fn permutation_matrix_is_consistent_with_apply_p() {
        let a = seeded_matrix(9, 3);
        let f = dense_lu(&a).unwrap();
        let b: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let pb1 = f.apply_p(&b);
        let pb2 = f.p().matvec(&b);
        assert_eq!(pb1, pb2);
    }
}
