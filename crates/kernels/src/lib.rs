//! `splu-kernels` — dense linear-algebra kernels for the S\* sparse LU system.
//!
//! The S\* approach (Fu, Jiao & Yang, SC'96 / TPDS'98) turns a sparse LU
//! factorization with partial pivoting into a sequence of *dense* block
//! operations: after static symbolic factorization and 2D L/U supernode
//! partitioning, most of the numerical work is matrix–matrix multiplication
//! (BLAS-3 `DGEMM`), with the remainder in matrix–vector products, rank-1
//! updates and triangular solves (BLAS-1/2). The paper's central bet is that
//! a BLAS-3 flop is cheaper than a BLAS-2 flop (`w3 < w2`), so extra padded
//! flops are worth paying to aggregate work into `DGEMM`.
//!
//! This crate provides those kernels in pure Rust, together with:
//!
//! * a column-major dense matrix container ([`DenseMat`]),
//! * a dense Gaussian-elimination-with-partial-pivoting reference
//!   factorization ([`dense_lu`]) used as the correctness oracle for the
//!   sparse codes (it implements Fig. 1 of the paper for the dense case),
//! * flop accounting per BLAS level ([`flops`]), used by the benchmark
//!   harnesses to measure the BLAS-3 fraction of the numerical updates
//!   (the paper reports "more than 64 percent of numerical updates is
//!   performed by the BLAS-3 routine DGEMM").
//!
//! All kernels use column-major storage with an explicit leading dimension
//! (`lda`), mirroring the Fortran BLAS interface, so they can operate
//! directly on sub-panels of the block storage used by `splu-core`.

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod dense_lu;
pub mod flops;
pub mod matrix;

pub use blas1::{dasum, daxpy, dcopy, ddot, dnrm2, dscal, dswap, idamax};
pub use blas2::{dgemv, dger, dtrsv_lower_unit, dtrsv_upper};
pub use blas3::{
    dgemm, dgemm_naive, dgemm_update, dgemm_update_with, dgemm_with, dtrsm_left_lower_unit,
    dtrsm_left_upper, gemm_uses_blocked_path, GemmScratch,
};
pub use dense_lu::{dense_lu, dense_solve, DenseLu};
pub use flops::{FlopClass, FlopCounter};
pub use matrix::DenseMat;

#[cfg(test)]
mod proptests;
