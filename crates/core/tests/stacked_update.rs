//! Bitwise-identity suite for the stacked supernodal update path.
//!
//! The update stage packs a processor's destination row segments into one
//! tall GEMM and scatters the product through the `BlockPattern`'s
//! precomputed maps. That reorganization must not change a single bit of
//! the factors: every driver (1D, 2D in both synchronization modes, on
//! every tested grid) is compared entry-for-entry with `f64::to_bits`
//! against the sequential driver on shrunk instances of the full
//! synthetic suite. A warmed-refactorization test additionally proves
//! the path performs zero heap allocations and zero symbolic merges.

use splu_core::par1d::{factor_par1d, Strategy1d};
use splu_core::par2d::{factor_par2d, factor_par2d_opts, factor_par2d_sched, Sched2d, Sync2d};
use splu_core::seq::factor_sequential;
use splu_core::{BlockMatrix, FactorOptions, FactorScratch, SparseLuSolver};
use splu_machine::Grid;
use splu_sparse::suite;

/// Shrunk suite instances: small enough for debug-mode test runs while
/// still exercising multi-block panels with padded (absent-destination)
/// segments on every matrix class.
fn suite_cases() -> Vec<(&'static str, splu_sparse::CscMatrix)> {
    suite::SMALL
        .iter()
        .map(|&name| {
            let spec = suite::by_name(name).unwrap();
            (name, spec.build_scaled(0.03))
        })
        .collect()
}

fn assert_bitwise_equal(
    seq: &BlockMatrix,
    seq_piv: &[Vec<u32>],
    other: &BlockMatrix,
    other_piv: &[Vec<u32>],
    label: &str,
) {
    assert_eq!(seq_piv, other_piv, "{label}: pivot sequences differ");
    let n = seq.pattern.part.n();
    for j in 0..n {
        for i in 0..n {
            let s = seq.get_entry(i, j);
            let o = other.get_entry(i, j);
            assert_eq!(
                s.to_bits(),
                o.to_bits(),
                "{label}: entry ({i},{j}) differs: seq {s:e} vs {o:e}"
            );
        }
    }
}

/// Every parallel driver reproduces the sequential factors bitwise on
/// every suite matrix: par1d on 2 processors, par2d on the (1,2), (2,2)
/// and (3,2) grids in both synchronization modes and across the whole
/// lookahead-window range `W ∈ {0, 1, 2, 4}` (0 is the in-order
/// schedule; larger windows must only reorder *independent* work — the
/// per-destination ascending-stage order, and with it every bit of the
/// factors, is invariant).
#[test]
fn all_drivers_bitwise_identical_across_suite() {
    for (name, a) in suite_cases() {
        let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
        let mut seq = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
        let (seq_piv, seq_stats) = factor_sequential(&mut seq).unwrap();
        assert_eq!(
            seq_stats.scatter_map_reuse_hits, seq_stats.update_tasks as u64,
            "{name}: sequential update performed a fresh merge"
        );

        let p1 = factor_par1d(
            &solver.permuted,
            solver.pattern.clone(),
            2,
            Strategy1d::ComputeAhead,
        );
        assert_bitwise_equal(
            &seq,
            &seq_piv,
            &p1.blocks,
            &p1.pivots,
            &format!("{name}/par1d"),
        );

        for (pr, pc) in [(1, 2), (2, 2), (3, 2)] {
            for mode in [Sync2d::Async, Sync2d::Barrier] {
                for w in [0usize, 1, 2, 4] {
                    let p2 = factor_par2d_opts(
                        &solver.permuted,
                        solver.pattern.clone(),
                        Grid::new(pr, pc),
                        mode,
                        1.0,
                        w,
                    );
                    assert_bitwise_equal(
                        &seq,
                        &seq_piv,
                        &p2.blocks,
                        &p2.pivots,
                        &format!("{name}/par2d {pr}x{pc} {mode:?} W={w}"),
                    );
                }
            }
        }

        // Task-DAG engine: subtree columns execute entirely on their
        // owner rank while separator columns fall back to the cyclic
        // lookahead protocol — the factors must still match sequential
        // bit-for-bit on every grid and in both synchronization modes.
        for (pr, pc) in [(2, 2), (3, 2)] {
            for mode in [Sync2d::Async, Sync2d::Barrier] {
                let p2 = factor_par2d_sched(
                    &solver.permuted,
                    solver.pattern.clone(),
                    Grid::new(pr, pc),
                    mode,
                    1.0,
                    Sched2d::TaskDag,
                );
                assert_bitwise_equal(
                    &seq,
                    &seq_piv,
                    &p2.blocks,
                    &p2.pivots,
                    &format!("{name}/par2d-taskdag {pr}x{pc} {mode:?}"),
                );
            }
        }
    }
}

/// Per-stage retirement keeps the 2D panel caches bounded: the resident
/// high-water mark must undercut the cumulative inserted volume (what an
/// evict-never cache would approach), and the caches must drain fully.
#[test]
fn par2d_panel_caches_are_bounded_and_drained() {
    let spec = suite::by_name("sherman5").unwrap();
    let a = spec.build_scaled(0.06);
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let p2 = factor_par2d(
        &solver.permuted,
        solver.pattern.clone(),
        Grid::new(2, 2),
        Sync2d::Async,
    );
    let peak: u64 = p2.panel_cache_peak_bytes.iter().sum();
    let inserted: u64 = p2.panel_cache_inserted_bytes.iter().sum();
    assert!(inserted > 0, "no panels ever crossed the grid");
    assert!(
        peak < inserted,
        "stage retirement never dropped a byte: peak {peak} >= inserted {inserted}"
    );
    for (r, (&p, &i)) in p2
        .panel_cache_peak_bytes
        .iter()
        .zip(&p2.panel_cache_inserted_bytes)
        .enumerate()
    {
        assert!(p <= i, "rank {r}: peak {p} exceeds inserted {i}");
    }
}

/// Warmed refactorization over a suite matrix: after one warm-up run the
/// scratch arena never grows, and every update task reads a precomputed
/// scatter map (zero symbolic merges at numeric time).
#[test]
fn warmed_suite_refactor_is_allocation_and_merge_free() {
    let spec = suite::by_name("jpwh991").unwrap();
    let a = spec.build_scaled(0.06);
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let mut scratch = FactorScratch::new();
    let warm = solver.refactor_with(&a, &mut scratch).unwrap();
    let lu = solver.refactor_with(&a, &mut scratch).unwrap();
    assert_eq!(lu.stats.scratch_grow_events, 0, "warmed refactor allocated");
    assert_eq!(lu.stats.scratch_peak_bytes, warm.stats.scratch_peak_bytes);
    assert!(lu.stats.update_tasks > 0);
    assert_eq!(
        lu.stats.scatter_map_reuse_hits, lu.stats.update_tasks as u64,
        "an update task fell back to a fresh symbolic merge"
    );
}
