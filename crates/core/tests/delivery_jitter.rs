//! Adversarial message-ordering suite: both parallel drivers must
//! produce bitwise-identical factors when the runtime's delivery-jitter
//! test mode scrambles receive interleaving (`run_machine_jittered`).
//!
//! The drivers' correctness argument is that arithmetic order is fixed
//! by the schedule (1D: the per-processor pipelined order; 2D: the
//! lookahead executor's per-destination ascending-stage chains), never
//! by message arrival. Jitter attacks exactly that assumption: it
//! shuffles each drained mailbox batch and pops a random message among
//! same-tag duplicates, all from a seeded deterministic stream, so a
//! violation reproduces instead of flaking.

use splu_core::par1d::{factor_par1d_jittered, Strategy1d};
use splu_core::par2d::{factor_par2d_jittered, factor_par2d_sched_jittered, Sched2d, Sync2d};
use splu_core::seq::factor_sequential;
use splu_core::{BlockMatrix, FactorOptions, SparseLuSolver};
use splu_machine::Grid;
use splu_sparse::suite;

fn assert_bitwise_equal(
    seq: &BlockMatrix,
    seq_piv: &[Vec<u32>],
    other: &BlockMatrix,
    other_piv: &[Vec<u32>],
    label: &str,
) {
    assert_eq!(seq_piv, other_piv, "{label}: pivot sequences differ");
    let n = seq.pattern.part.n();
    for j in 0..n {
        for i in 0..n {
            let s = seq.get_entry(i, j);
            let o = other.get_entry(i, j);
            assert_eq!(
                s.to_bits(),
                o.to_bits(),
                "{label}: entry ({i},{j}) differs: seq {s:e} vs {o:e}"
            );
        }
    }
}

#[test]
fn factors_bitwise_identical_under_delivery_jitter() {
    let spec = suite::by_name("sherman5").unwrap();
    let a = spec.build_scaled(0.05);
    let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
    let mut seq = BlockMatrix::from_csc(&solver.permuted, solver.pattern.clone());
    let (seq_piv, _) = factor_sequential(&mut seq).unwrap();

    for seed in [1u64, 0xDEAD_BEEF] {
        let p1 = factor_par1d_jittered(
            &solver.permuted,
            solver.pattern.clone(),
            3,
            Strategy1d::ComputeAhead,
            1.0,
            seed,
        );
        assert_bitwise_equal(
            &seq,
            &seq_piv,
            &p1.blocks,
            &p1.pivots,
            &format!("par1d seed={seed:#x}"),
        );

        for (pr, pc) in [(2, 2), (3, 2)] {
            for mode in [Sync2d::Async, Sync2d::Barrier] {
                for w in [0usize, 1, 2] {
                    let p2 = factor_par2d_jittered(
                        &solver.permuted,
                        solver.pattern.clone(),
                        Grid::new(pr, pc),
                        mode,
                        1.0,
                        w,
                        seed,
                    );
                    assert_bitwise_equal(
                        &seq,
                        &seq_piv,
                        &p2.blocks,
                        &p2.pivots,
                        &format!("par2d {pr}x{pc} {mode:?} W={w} seed={seed:#x}"),
                    );
                }

                // Task-DAG engine under the same jitter stream: subtree
                // columns run owner-locally (no messages to scramble)
                // but the subtree→separator border multicasts and the
                // cyclic separator stages are fully exposed to jitter.
                let p2 = factor_par2d_sched_jittered(
                    &solver.permuted,
                    solver.pattern.clone(),
                    Grid::new(pr, pc),
                    mode,
                    1.0,
                    Sched2d::TaskDag,
                    seed,
                );
                assert_bitwise_equal(
                    &seq,
                    &seq_piv,
                    &p2.blocks,
                    &p2.pivots,
                    &format!("par2d-taskdag {pr}x{pc} {mode:?} seed={seed:#x}"),
                );
            }
        }
    }
}
