//! One-call driver: the full S\* pipeline.
//!
//! ```text
//! A ──transversal──▶ zero-free diagonal
//!   ──min-degree(AᵀA)──▶ fill-reducing column order      (splu-order)
//!   ──static symbolic factorization──▶ L/U upper bounds  (splu-symbolic)
//!   ──2D L/U supernode partition + amalgamation──▶ blocks
//!   ──Factor/Update──▶ numeric factors                   (this crate)
//!   ──forward/backward solve──▶ x
//! ```

use crate::error::SolverError;
use crate::scratch::FactorScratch;
use crate::seq::{factor_sequential_probed, factor_sequential_scratched, FactorStats};
use crate::solve::{
    solve_factored_in_place, solve_factored_multi_in_place, solve_factored_transpose_in_place,
    MultiSolveScratch,
};
use crate::storage::BlockMatrix;
use splu_order::ColumnOrdering;
use splu_sparse::{CscMatrix, Perm};
use splu_symbolic::{
    amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern, StaticStructure,
};
use std::sync::Arc;

/// Tuning knobs for the factorization pipeline.
#[derive(Debug, Clone, Copy)]
pub struct FactorOptions {
    /// Maximum supernode/block width (the paper uses 25).
    pub block_size: usize,
    /// Amalgamation factor `r` (the paper finds 4–6 best; 0 disables).
    pub amalgamation: usize,
    /// Column ordering strategy (the paper: minimum degree on `AᵀA`).
    pub ordering: ColumnOrdering,
    /// Pivot threshold: `1.0` = classic partial pivoting (always take the
    /// column maximum); `t < 1.0` keeps the diagonal candidate when it is
    /// within factor `t` of the maximum, reducing row movement. Every
    /// choice is structurally safe — the static prediction covers all
    /// pivot sequences.
    pub pivot_threshold: f64,
    /// Row/column equilibration: scale `A → R A C` so every row and
    /// column has unit maximum magnitude before ordering and
    /// factorization. Improves pivoting behaviour on badly scaled
    /// systems; solutions are automatically unscaled.
    pub equilibrate: bool,
    /// Lookahead window `W` of the 2D executor: stage `k + 1`'s panel
    /// factorization may start while up to `W` earlier stages still have
    /// trailing updates in flight. `0` reproduces the strictly in-order
    /// schedule of Fig. 12; factors are bitwise identical for every `W`.
    pub lookahead: usize,
}

impl Default for FactorOptions {
    fn default() -> Self {
        Self {
            block_size: 25,
            amalgamation: 4,
            ordering: ColumnOrdering::MinDegreeAtA,
            pivot_threshold: 1.0,
            equilibrate: false,
            lookahead: crate::par2d::DEFAULT_LOOKAHEAD,
        }
    }
}

/// A fully prepared (but not yet factored) solver: preprocessing and all
/// symbolic work done once; `factor` can then be applied to any matrix
/// with the same pattern.
pub struct SparseLuSolver {
    /// The permuted (and, if requested, equilibrated) matrix that is
    /// actually factored.
    pub permuted: CscMatrix,
    /// Row scales `R` (empty when equilibration is off).
    pub row_scale: Vec<f64>,
    /// Column scales `C` (empty when equilibration is off).
    pub col_scale: Vec<f64>,
    /// Row permutation applied before factorization (transversal ∘ ordering).
    pub row_perm: Perm,
    /// Column permutation (the fill-reducing ordering).
    pub col_perm: Perm,
    /// Static symbolic factorization result.
    pub structure: StaticStructure,
    /// The 2D block pattern after partitioning + amalgamation.
    pub pattern: Arc<BlockPattern>,
    /// Options used.
    pub options: FactorOptions,
    /// Pattern fingerprint of the *original* matrix this analysis was
    /// built from; [`SparseLuSolver::refactor`] only accepts matrices
    /// with the same fingerprint.
    pub fingerprint: u64,
}

/// The numeric factorization, ready to solve right-hand sides.
pub struct FactorizedLu {
    /// Factored block storage.
    pub blocks: BlockMatrix,
    /// Per-block pivot sequences.
    pub pivots: Vec<Vec<u32>>,
    /// Run statistics.
    pub stats: FactorStats,
    row_perm: Perm,
    col_perm: Perm,
    row_scale: Vec<f64>,
    col_scale: Vec<f64>,
}

/// Reusable buffers for repeated solves against one factorization: the
/// permuted/scaled copy of the right-hand side(s) plus the blocked-kernel
/// scratch. Warm after the first solve — no allocation per call, which is
/// what iterative refinement and the solver-service workers want.
#[derive(Default)]
pub struct SolveWorkspace {
    /// Permuted right-hand side / solution buffer (`n` or `n × nrhs`).
    y: Vec<f64>,
    /// Gather/product buffers of the blocked multi-RHS kernels.
    scratch: MultiSolveScratch,
}

impl SparseLuSolver {
    /// Run preprocessing and symbolic analysis for `a`.
    ///
    /// # Panics
    /// Panics if `a` is not square or is structurally singular.
    pub fn analyze(a: &CscMatrix, options: FactorOptions) -> Self {
        let (a_scaled, row_scale, col_scale) = if options.equilibrate {
            equilibrate(a)
        } else {
            (a.clone(), Vec::new(), Vec::new())
        };
        let (permuted, row_perm, col_perm) = splu_order::preprocess(&a_scaled, options.ordering);
        let structure = static_symbolic_factorization(&permuted);
        let base = partition_supernodes(&structure, options.block_size);
        let part = amalgamate(&structure, &base, options.amalgamation, options.block_size);
        let pattern = Arc::new(BlockPattern::build(&structure, &part));
        Self {
            permuted,
            row_scale,
            col_scale,
            row_perm,
            col_perm,
            structure,
            pattern,
            options,
            fingerprint: a.pattern_fingerprint(),
        }
    }

    /// Numeric factorization of the analyzed matrix.
    pub fn factor(&self) -> Result<FactorizedLu, SolverError> {
        self.factor_with(&mut FactorScratch::new())
    }

    /// Arena-reusing [`SparseLuSolver::factor`]: the factorization's
    /// temporaries live in `scratch` and are reused across calls. Once
    /// warm, the hot loop allocates nothing —
    /// [`FactorStats::scratch_grow_events`] is 0 for the repeat calls.
    pub fn factor_with(&self, scratch: &mut FactorScratch) -> Result<FactorizedLu, SolverError> {
        let mut blocks = BlockMatrix::from_csc(&self.permuted, self.pattern.clone());
        let (pivots, stats) = factor_sequential_scratched(
            &mut blocks,
            self.options.pivot_threshold,
            &splu_probe::Probe::disabled(),
            scratch,
        )?;
        Ok(FactorizedLu {
            blocks,
            pivots,
            stats,
            row_perm: self.row_perm.clone(),
            col_perm: self.col_perm.clone(),
            row_scale: self.row_scale.clone(),
            col_scale: self.col_scale.clone(),
        })
    }

    /// Like [`SparseLuSolver::factor`], but recording a flight-recorder
    /// timeline of the sequential elimination into `collector` as
    /// processor 0 (`panel-factor`/`update` spans per stage, pivot-search
    /// and static-fill counters, per-BLAS-level flop counts).
    pub fn factor_traced(
        &self,
        collector: &splu_probe::Collector,
    ) -> Result<FactorizedLu, SolverError> {
        let mut probe = collector.probe(0);
        probe.attach_thread();
        probe.count(
            "fill_entries",
            self.pattern
                .storage_entries()
                .saturating_sub(self.permuted.nnz()) as u64,
        );
        let mut blocks = BlockMatrix::from_csc(&self.permuted, self.pattern.clone());
        let (pivots, stats) =
            factor_sequential_probed(&mut blocks, self.options.pivot_threshold, &probe)?;
        Ok(FactorizedLu {
            blocks,
            pivots,
            stats,
            row_perm: self.row_perm.clone(),
            col_perm: self.col_perm.clone(),
            row_scale: self.row_scale.clone(),
            col_scale: self.col_scale.clone(),
        })
    }

    /// Numeric refactorization of a *different* matrix with the *same*
    /// sparsity pattern, reusing every symbolic product of this analysis
    /// (permutations, static structure, block pattern) — the
    /// analyze-once / factorize-many lifecycle. Equilibration scales,
    /// being value-dependent, are recomputed per matrix; the structural
    /// permutations remain valid because transversal and ordering depend
    /// only on the pattern.
    pub fn refactor(&self, a: &CscMatrix) -> Result<FactorizedLu, SolverError> {
        self.refactor_with(a, &mut FactorScratch::new())
    }

    /// Arena-reusing [`SparseLuSolver::refactor`] — the
    /// factorize-many lifecycle with an allocation-free numeric phase:
    /// pass the same `scratch` on every call and, once warm, the
    /// elimination loop performs zero heap allocations
    /// ([`FactorStats::scratch_grow_events`] = 0).
    pub fn refactor_with(
        &self,
        a: &CscMatrix,
        scratch: &mut FactorScratch,
    ) -> Result<FactorizedLu, SolverError> {
        let got = a.pattern_fingerprint();
        if got != self.fingerprint {
            return Err(SolverError::PatternMismatch {
                expected: self.fingerprint,
                got,
            });
        }
        let (a_scaled, row_scale, col_scale) = if self.options.equilibrate {
            equilibrate(a)
        } else {
            (a.clone(), Vec::new(), Vec::new())
        };
        let permuted = a_scaled.permute(&self.row_perm, &self.col_perm);
        let mut blocks = BlockMatrix::from_csc(&permuted, self.pattern.clone());
        let (pivots, stats) = factor_sequential_scratched(
            &mut blocks,
            self.options.pivot_threshold,
            &splu_probe::Probe::disabled(),
            scratch,
        )?;
        Ok(FactorizedLu {
            blocks,
            pivots,
            stats,
            row_perm: self.row_perm.clone(),
            col_perm: self.col_perm.clone(),
            row_scale,
            col_scale,
        })
    }

    /// Predicted factor entries (the S\* static bound; Table 1).
    pub fn static_factor_nnz(&self) -> usize {
        self.structure.factor_nnz()
    }

    /// Analyze with *automatic ordering selection*: run the symbolic
    /// pipeline under both minimum-degree targets (`AᵀA` and `Aᵀ+A`) and
    /// keep whichever predicts fewer static factor entries. This is the
    /// paper's `memplus` observation turned into a policy: for matrices
    /// with a nearly dense row, the `AᵀA` ordering makes the static
    /// overestimation excessive, while `Aᵀ+A` stays reasonable.
    pub fn analyze_auto(a: &CscMatrix, base: FactorOptions) -> Self {
        let ata = Self::analyze(
            a,
            FactorOptions {
                ordering: ColumnOrdering::MinDegreeAtA,
                ..base
            },
        );
        let atpa = Self::analyze(
            a,
            FactorOptions {
                ordering: ColumnOrdering::MinDegreeAtPlusA,
                ..base
            },
        );
        if atpa.static_factor_nnz() < ata.static_factor_nnz() {
            atpa
        } else {
            ata
        }
    }
}

impl FactorizedLu {
    /// Solve `A x = b` for the *original* matrix `A` (permutations are
    /// applied internally).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; b.len()];
        let mut ws = SolveWorkspace::default();
        self.solve_with(b, &mut x, &mut ws).expect("rhs length");
        x
    }

    /// Workspace-reusing [`FactorizedLu::solve`]: writes the solution into
    /// `x`, allocating nothing once `ws` is warm. The building block for
    /// iterative refinement and the solver-service workers.
    pub fn solve_with(
        &self,
        b: &[f64],
        x: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolverError> {
        let n = self.blocks.n;
        if b.len() != n {
            return Err(SolverError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        if x.len() != n {
            return Err(SolverError::DimensionMismatch {
                expected: n,
                got: x.len(),
            });
        }
        // B = P (R A C) Qᵀ was factored; solve B z = P (R b), then
        // x = C · Qᵀ z. The scalar (BLAS-2) sweep: bitwise identical to
        // the historical single-RHS path and cheaper than panel
        // gather/scatter for one column.
        ws.y.clear();
        ws.y.resize(n, 0.0);
        for (i, y) in ws.y.iter_mut().enumerate() {
            let o = self.row_perm.old_of_new(i);
            *y = if self.row_scale.is_empty() {
                b[o]
            } else {
                b[o] * self.row_scale[o]
            };
        }
        solve_factored_in_place(&self.blocks, &self.pivots, &mut ws.y);
        for (j, xv) in x.iter_mut().enumerate() {
            let v = ws.y[self.col_perm.new_of_old(j)];
            *xv = if self.col_scale.is_empty() {
                v
            } else {
                v * self.col_scale[j]
            };
        }
        Ok(())
    }

    /// Batched solve of `nrhs` systems: `b` holds the right-hand sides
    /// column-major (`b[c * n + i]` = component `i` of RHS `c`); returns
    /// the solutions in the same layout. One blocked forward/backward
    /// sweep over the factors serves all columns (BLAS-3 style).
    pub fn solve_many(&self, b: &[f64], nrhs: usize) -> Result<Vec<f64>, SolverError> {
        let mut x = vec![0.0; b.len()];
        let mut ws = SolveWorkspace::default();
        self.solve_many_with(b, nrhs, &mut x, &mut ws)?;
        Ok(x)
    }

    /// Workspace-reusing [`FactorizedLu::solve_many`]: solutions go into
    /// `x` (same column-major layout as `b`), no allocation once warm.
    pub fn solve_many_with(
        &self,
        b: &[f64],
        nrhs: usize,
        x: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolverError> {
        let n = self.blocks.n;
        if b.len() != n * nrhs {
            return Err(SolverError::DimensionMismatch {
                expected: n * nrhs,
                got: b.len(),
            });
        }
        if x.len() != n * nrhs {
            return Err(SolverError::DimensionMismatch {
                expected: n * nrhs,
                got: x.len(),
            });
        }
        // B = P (R A C) Qᵀ was factored; solve B z = P (R b), then
        // x = C · Qᵀ z — per RHS column.
        ws.y.clear();
        ws.y.resize(n * nrhs, 0.0);
        for c in 0..nrhs {
            let bcol = &b[c * n..(c + 1) * n];
            let ycol = &mut ws.y[c * n..(c + 1) * n];
            for (i, y) in ycol.iter_mut().enumerate() {
                let o = self.row_perm.old_of_new(i);
                *y = if self.row_scale.is_empty() {
                    bcol[o]
                } else {
                    bcol[o] * self.row_scale[o]
                };
            }
        }
        solve_factored_multi_in_place(&self.blocks, &self.pivots, &mut ws.y, nrhs, &mut ws.scratch);
        for c in 0..nrhs {
            let zcol = &ws.y[c * n..(c + 1) * n];
            let xcol = &mut x[c * n..(c + 1) * n];
            for (j, xv) in xcol.iter_mut().enumerate() {
                let v = zcol[self.col_perm.new_of_old(j)];
                *xv = if self.col_scale.is_empty() {
                    v
                } else {
                    v * self.col_scale[j]
                };
            }
        }
        Ok(())
    }

    /// Matrix order `n`.
    pub fn n(&self) -> usize {
        self.blocks.n
    }

    /// Bytes of numeric storage this factorization holds (panel values,
    /// pivot sequences, permutations, scales) — the quantity the solver
    /// service's byte-budgeted cache accounts against.
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut entries = 0usize;
        for cb in &self.blocks.cols {
            entries += cb.diag.len() + cb.lpanel.len();
            for ub in &cb.ublocks {
                entries += ub.panel.len();
            }
        }
        entries * size_of::<f64>()
            + self
                .pivots
                .iter()
                .map(|p| p.len() * size_of::<u32>())
                .sum::<usize>()
            + (self.row_scale.len() + self.col_scale.len()) * size_of::<f64>()
            + 2 * self.blocks.n * size_of::<usize>()
    }
}

impl FactorizedLu {
    /// Solve `Aᵀ x = b` for the *original* matrix `A` using the same
    /// factorization (permutations and scalings applied internally).
    pub fn solve_transpose(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; b.len()];
        let mut ws = SolveWorkspace::default();
        self.solve_transpose_with(b, &mut x, &mut ws)
            .expect("rhs length");
        x
    }

    /// Workspace-reusing [`FactorizedLu::solve_transpose`]: writes the
    /// solution into `x`, allocating nothing once `ws` is warm.
    pub fn solve_transpose_with(
        &self,
        b: &[f64],
        x: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolverError> {
        let n = self.blocks.n;
        if b.len() != n {
            return Err(SolverError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        if x.len() != n {
            return Err(SolverError::DimensionMismatch {
                expected: n,
                got: x.len(),
            });
        }
        // B = P (R A C) Qᵀ  ⟹  Aᵀ x = b ⟺ Bᵀ (P R⁻¹... see below):
        // A'ᵀ u = C b with u = R⁻¹ x; A'ᵀ = Qᵀ Bᵀ P, so Bᵀ (P u) = Q (C b).
        // (Q c)[j'] = c[old col of j'] with c = C b.
        ws.y.clear();
        ws.y.resize(n, 0.0);
        for (j, y) in ws.y.iter_mut().enumerate() {
            let o = self.col_perm.old_of_new(j);
            *y = if self.col_scale.is_empty() {
                b[o]
            } else {
                b[o] * self.col_scale[o]
            };
        }
        solve_factored_transpose_in_place(&self.blocks, &self.pivots, &mut ws.y);
        // u = Pᵀ v: u[i] = v[new position of row i]; x = R u
        for (i, xv) in x.iter_mut().enumerate() {
            let u = ws.y[self.row_perm.new_of_old(i)];
            *xv = if self.row_scale.is_empty() {
                u
            } else {
                u * self.row_scale[i]
            };
        }
        Ok(())
    }

    /// Estimate the 1-norm condition number `κ₁(A) = ‖A‖₁ ‖A⁻¹‖₁` with
    /// Higham's iterative estimator (a few solves with `A` and `Aᵀ`).
    /// `a` must be the matrix this factorization came from.
    pub fn condest(&self, a: &CscMatrix) -> f64 {
        let n = self.blocks.n;
        if n == 0 {
            return 0.0;
        }
        // ‖A‖₁ = max column abs sum
        let mut colsum = vec![0.0f64; n];
        for (_, j, v) in a.iter() {
            colsum[j] += v.abs();
        }
        let norm_a = colsum.iter().fold(0.0f64, |m, &v| m.max(v));

        // Higham/Hager ‖A⁻¹‖₁ estimator
        let mut x = vec![1.0 / n as f64; n];
        let mut est = 0.0f64;
        for _ in 0..5 {
            let y = self.solve(&x); // y = A⁻¹ x
            let y1: f64 = y.iter().map(|v| v.abs()).sum();
            let xi: Vec<f64> = y
                .iter()
                .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
                .collect();
            let z = self.solve_transpose(&xi); // z = A⁻ᵀ ξ
            let (mut jmax, mut zmax) = (0usize, -1.0f64);
            for (j, &v) in z.iter().enumerate() {
                if v.abs() > zmax {
                    zmax = v.abs();
                    jmax = j;
                }
            }
            let ztx: f64 = z.iter().zip(&x).map(|(p, q)| p * q).sum();
            est = est.max(y1);
            if zmax <= ztx.abs() {
                break;
            }
            x = vec![0.0; n];
            x[jmax] = 1.0;
        }
        norm_a * est
    }
}

/// Scale `A → R A C` so every row and then every column has unit maximum
/// magnitude. Returns the scaled matrix and the diagonal scale vectors.
pub fn equilibrate(a: &CscMatrix) -> (CscMatrix, Vec<f64>, Vec<f64>) {
    let n = a.ncols();
    let mut rmax = vec![0.0f64; a.nrows()];
    for (i, _, v) in a.iter() {
        rmax[i] = rmax[i].max(v.abs());
    }
    let r: Vec<f64> = rmax
        .iter()
        .map(|&m| if m > 0.0 { 1.0 / m } else { 1.0 })
        .collect();
    let mut cmax = vec![0.0f64; n];
    for (i, j, v) in a.iter() {
        cmax[j] = cmax[j].max((v * r[i]).abs());
    }
    let c: Vec<f64> = cmax
        .iter()
        .map(|&m| if m > 0.0 { 1.0 / m } else { 1.0 })
        .collect();
    let mut coo = splu_sparse::CooMatrix::with_capacity(a.nrows(), n, a.nnz());
    for (i, j, v) in a.iter() {
        coo.push(i, j, v * r[i] * c[j]);
    }
    (coo.to_csc(), r, c)
}

/// Convenience: analyze + factor + solve in one call.
pub fn lu_solve(a: &CscMatrix, b: &[f64], options: FactorOptions) -> Result<Vec<f64>, SolverError> {
    let solver = SparseLuSolver::analyze(a, options);
    Ok(solver.factor()?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};

    fn check(a: &CscMatrix, options: FactorOptions, tol: f64) {
        let n = a.ncols();
        let xt: Vec<f64> = (0..n)
            .map(|i| ((i * 13 % 17) as f64) * 0.25 - 2.0)
            .collect();
        let b = a.matvec(&xt);
        let x = lu_solve(a, &b, options).unwrap();
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < tol, "solve error {err}");
    }

    #[test]
    fn full_pipeline_on_grid() {
        let a = gen::grid2d(10, 10, 0.5, ValueModel::default());
        check(&a, FactorOptions::default(), 1e-7);
    }

    #[test]
    fn full_pipeline_on_random() {
        let a = gen::random_sparse(150, 4, 0.5, ValueModel::default());
        check(&a, FactorOptions::default(), 1e-6);
    }

    #[test]
    fn full_pipeline_with_shifted_diagonal() {
        // exercises the transversal
        let a = gen::shift_rows(&gen::grid2d(8, 8, 0.3, ValueModel::default()), 5);
        check(&a, FactorOptions::default(), 1e-7);
    }

    #[test]
    fn orderings_all_work() {
        let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
        for ordering in [
            ColumnOrdering::Natural,
            ColumnOrdering::MinDegreeAtA,
            ColumnOrdering::ReverseCuthillMcKee,
        ] {
            check(
                &a,
                FactorOptions {
                    ordering,
                    ..FactorOptions::default()
                },
                1e-7,
            );
        }
    }

    #[test]
    fn mindeg_reduces_static_fill_vs_natural() {
        let a = gen::grid2d(12, 12, 0.3, ValueModel::default());
        let s_nat = SparseLuSolver::analyze(
            &a,
            FactorOptions {
                ordering: ColumnOrdering::Natural,
                ..FactorOptions::default()
            },
        );
        let s_md = SparseLuSolver::analyze(&a, FactorOptions::default());
        assert!(
            s_md.static_factor_nnz() < s_nat.static_factor_nnz(),
            "min degree {} vs natural {}",
            s_md.static_factor_nnz(),
            s_nat.static_factor_nnz()
        );
    }

    #[test]
    fn refactor_same_pattern_reuses_analysis() {
        let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
        let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
        // same pattern, fresh values: refactor must solve the new system
        let a2 = gen::perturb_values(&a, 99);
        let lu2 = solver.refactor(&a2).unwrap();
        let n = a2.ncols();
        let xt: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.5 - 2.0).collect();
        let b = a2.matvec(&xt);
        let x = lu2.solve(&b);
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-7, "refactor solve error {err}");
        // a different pattern is rejected with a typed error
        let other = gen::grid2d(7, 9, 0.4, ValueModel::default());
        assert!(matches!(
            solver.refactor(&other),
            Err(SolverError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn warmed_refactor_is_allocation_free() {
        let a = gen::grid2d(10, 10, 0.4, ValueModel::default());
        let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
        let mut scratch = FactorScratch::new();
        // first factorization warms the arena up to the pattern's
        // high-water shapes
        let lu1 = solver.refactor_with(&a, &mut scratch).unwrap();
        assert!(lu1.stats.scratch_peak_bytes > 0);
        // every subsequent refactorization with the same arena must not
        // grow any buffer — the numeric hot path is allocation-free
        for seed in [3, 17] {
            let a2 = gen::perturb_values(&a, seed);
            let lu2 = solver.refactor_with(&a2, &mut scratch).unwrap();
            assert_eq!(
                lu2.stats.scratch_grow_events, 0,
                "warmed refactorization grew scratch buffers"
            );
            assert_eq!(lu2.stats.scratch_peak_bytes, lu1.stats.scratch_peak_bytes);
            // every numeric update reuses a precomputed scatter map —
            // nothing is merged (or allocated) symbolically at refactor time
            assert_eq!(
                lu2.stats.scatter_map_reuse_hits,
                lu2.stats.update_tasks as u64
            );
            let n = a2.ncols();
            let xt: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
            let b = a2.matvec(&xt);
            let x = lu2.solve(&b);
            let err = x
                .iter()
                .zip(&xt)
                .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
            assert!(err < 1e-7, "scratched refactor solve error {err}");
        }
    }

    #[test]
    fn refactor_with_equilibration_rescales_per_matrix() {
        let a = gen::grid2d(7, 7, 0.5, ValueModel::default());
        let opts = FactorOptions {
            equilibrate: true,
            ..FactorOptions::default()
        };
        let solver = SparseLuSolver::analyze(&a, opts);
        let a2 = gen::perturb_values(&a, 5);
        let lu2 = solver.refactor(&a2).unwrap();
        let n = a2.ncols();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).cos()).collect();
        let b = a2.matvec(&xt);
        let x = lu2.solve(&b);
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-7, "equilibrated refactor error {err}");
    }

    #[test]
    fn solve_many_matches_repeated_single_solves() {
        let a = gen::random_sparse(80, 4, 0.5, ValueModel::default());
        let opts = FactorOptions {
            equilibrate: true, // exercise the scaling path too
            ..FactorOptions::default()
        };
        let lu = SparseLuSolver::analyze(&a, opts).factor().unwrap();
        let n = a.ncols();
        let nrhs = 4;
        let b: Vec<f64> = (0..n * nrhs)
            .map(|i| ((i % 17) as f64) * 0.3 - 2.1)
            .collect();
        let xs = lu.solve_many(&b, nrhs).unwrap();
        for c in 0..nrhs {
            let x1 = lu.solve(&b[c * n..(c + 1) * n]);
            for i in 0..n {
                let d = (xs[c * n + i] - x1[i]).abs();
                assert!(d < 1e-8, "rhs {c} row {i}: diverge by {d}");
            }
        }
    }

    #[test]
    fn solve_reports_dimension_mismatch() {
        let a = gen::grid2d(5, 5, 0.4, ValueModel::default());
        let lu = SparseLuSolver::analyze(&a, FactorOptions::default())
            .factor()
            .unwrap();
        let mut ws = SolveWorkspace::default();
        let short = vec![1.0; 7];
        let mut x = vec![0.0; a.ncols()];
        assert!(matches!(
            lu.solve_with(&short, &mut x, &mut ws),
            Err(SolverError::DimensionMismatch {
                expected: 25,
                got: 7
            })
        ));
        assert!(lu.solve_many_with(&short, 2, &mut x, &mut ws).is_err());
        assert!(lu.storage_bytes() > 0);
    }

    #[test]
    fn factor_reusable_for_multiple_rhs() {
        let a = gen::grid2d(7, 7, 0.4, ValueModel::default());
        let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
        let f = solver.factor().unwrap();
        for s in 0..3 {
            let n = a.ncols();
            let xt: Vec<f64> = (0..n).map(|i| ((i + s) as f64).cos()).collect();
            let b = a.matvec(&xt);
            let x = f.solve(&b);
            let err = x
                .iter()
                .zip(&xt)
                .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
            assert!(err < 1e-8);
        }
    }
}
