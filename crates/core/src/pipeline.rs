//! One-call driver: the full S\* pipeline.
//!
//! ```text
//! A ──transversal──▶ zero-free diagonal
//!   ──min-degree(AᵀA)──▶ fill-reducing column order      (splu-order)
//!   ──static symbolic factorization──▶ L/U upper bounds  (splu-symbolic)
//!   ──2D L/U supernode partition + amalgamation──▶ blocks
//!   ──Factor/Update──▶ numeric factors                   (this crate)
//!   ──forward/backward solve──▶ x
//! ```

use crate::seq::{
    factor_sequential_opts, factor_sequential_probed, FactorStats, NumericalSingularity,
};
use crate::solve::{solve_factored, solve_factored_transpose};
use crate::storage::BlockMatrix;
use splu_order::ColumnOrdering;
use splu_sparse::{CscMatrix, Perm};
use splu_symbolic::{
    amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern, StaticStructure,
};
use std::sync::Arc;

/// Tuning knobs for the factorization pipeline.
#[derive(Debug, Clone, Copy)]
pub struct FactorOptions {
    /// Maximum supernode/block width (the paper uses 25).
    pub block_size: usize,
    /// Amalgamation factor `r` (the paper finds 4–6 best; 0 disables).
    pub amalgamation: usize,
    /// Column ordering strategy (the paper: minimum degree on `AᵀA`).
    pub ordering: ColumnOrdering,
    /// Pivot threshold: `1.0` = classic partial pivoting (always take the
    /// column maximum); `t < 1.0` keeps the diagonal candidate when it is
    /// within factor `t` of the maximum, reducing row movement. Every
    /// choice is structurally safe — the static prediction covers all
    /// pivot sequences.
    pub pivot_threshold: f64,
    /// Row/column equilibration: scale `A → R A C` so every row and
    /// column has unit maximum magnitude before ordering and
    /// factorization. Improves pivoting behaviour on badly scaled
    /// systems; solutions are automatically unscaled.
    pub equilibrate: bool,
}

impl Default for FactorOptions {
    fn default() -> Self {
        Self {
            block_size: 25,
            amalgamation: 4,
            ordering: ColumnOrdering::MinDegreeAtA,
            pivot_threshold: 1.0,
            equilibrate: false,
        }
    }
}

/// A fully prepared (but not yet factored) solver: preprocessing and all
/// symbolic work done once; `factor` can then be applied to any matrix
/// with the same pattern.
pub struct SparseLuSolver {
    /// The permuted (and, if requested, equilibrated) matrix that is
    /// actually factored.
    pub permuted: CscMatrix,
    /// Row scales `R` (empty when equilibration is off).
    pub row_scale: Vec<f64>,
    /// Column scales `C` (empty when equilibration is off).
    pub col_scale: Vec<f64>,
    /// Row permutation applied before factorization (transversal ∘ ordering).
    pub row_perm: Perm,
    /// Column permutation (the fill-reducing ordering).
    pub col_perm: Perm,
    /// Static symbolic factorization result.
    pub structure: StaticStructure,
    /// The 2D block pattern after partitioning + amalgamation.
    pub pattern: Arc<BlockPattern>,
    /// Options used.
    pub options: FactorOptions,
}

/// The numeric factorization, ready to solve right-hand sides.
pub struct FactorizedLu {
    /// Factored block storage.
    pub blocks: BlockMatrix,
    /// Per-block pivot sequences.
    pub pivots: Vec<Vec<u32>>,
    /// Run statistics.
    pub stats: FactorStats,
    row_perm: Perm,
    col_perm: Perm,
    row_scale: Vec<f64>,
    col_scale: Vec<f64>,
}

impl SparseLuSolver {
    /// Run preprocessing and symbolic analysis for `a`.
    ///
    /// # Panics
    /// Panics if `a` is not square or is structurally singular.
    pub fn analyze(a: &CscMatrix, options: FactorOptions) -> Self {
        let (a_scaled, row_scale, col_scale) = if options.equilibrate {
            equilibrate(a)
        } else {
            (a.clone(), Vec::new(), Vec::new())
        };
        let (permuted, row_perm, col_perm) = splu_order::preprocess(&a_scaled, options.ordering);
        let structure = static_symbolic_factorization(&permuted);
        let base = partition_supernodes(&structure, options.block_size);
        let part = amalgamate(&structure, &base, options.amalgamation, options.block_size);
        let pattern = Arc::new(BlockPattern::build(&structure, &part));
        Self {
            permuted,
            row_scale,
            col_scale,
            row_perm,
            col_perm,
            structure,
            pattern,
            options,
        }
    }

    /// Numeric factorization of the analyzed matrix.
    pub fn factor(&self) -> Result<FactorizedLu, NumericalSingularity> {
        let mut blocks = BlockMatrix::from_csc(&self.permuted, self.pattern.clone());
        let (pivots, stats) = factor_sequential_opts(&mut blocks, self.options.pivot_threshold)?;
        Ok(FactorizedLu {
            blocks,
            pivots,
            stats,
            row_perm: self.row_perm.clone(),
            col_perm: self.col_perm.clone(),
            row_scale: self.row_scale.clone(),
            col_scale: self.col_scale.clone(),
        })
    }

    /// Like [`SparseLuSolver::factor`], but recording a flight-recorder
    /// timeline of the sequential elimination into `collector` as
    /// processor 0 (`panel-factor`/`update` spans per stage, pivot-search
    /// and static-fill counters, per-BLAS-level flop counts).
    pub fn factor_traced(
        &self,
        collector: &splu_probe::Collector,
    ) -> Result<FactorizedLu, NumericalSingularity> {
        let mut probe = collector.probe(0);
        probe.attach_thread();
        probe.count(
            "fill_entries",
            self.pattern
                .storage_entries()
                .saturating_sub(self.permuted.nnz()) as u64,
        );
        let mut blocks = BlockMatrix::from_csc(&self.permuted, self.pattern.clone());
        let (pivots, stats) =
            factor_sequential_probed(&mut blocks, self.options.pivot_threshold, &probe)?;
        Ok(FactorizedLu {
            blocks,
            pivots,
            stats,
            row_perm: self.row_perm.clone(),
            col_perm: self.col_perm.clone(),
            row_scale: self.row_scale.clone(),
            col_scale: self.col_scale.clone(),
        })
    }

    /// Predicted factor entries (the S\* static bound; Table 1).
    pub fn static_factor_nnz(&self) -> usize {
        self.structure.factor_nnz()
    }

    /// Analyze with *automatic ordering selection*: run the symbolic
    /// pipeline under both minimum-degree targets (`AᵀA` and `Aᵀ+A`) and
    /// keep whichever predicts fewer static factor entries. This is the
    /// paper's `memplus` observation turned into a policy: for matrices
    /// with a nearly dense row, the `AᵀA` ordering makes the static
    /// overestimation excessive, while `Aᵀ+A` stays reasonable.
    pub fn analyze_auto(a: &CscMatrix, base: FactorOptions) -> Self {
        let ata = Self::analyze(
            a,
            FactorOptions {
                ordering: ColumnOrdering::MinDegreeAtA,
                ..base
            },
        );
        let atpa = Self::analyze(
            a,
            FactorOptions {
                ordering: ColumnOrdering::MinDegreeAtPlusA,
                ..base
            },
        );
        if atpa.static_factor_nnz() < ata.static_factor_nnz() {
            atpa
        } else {
            ata
        }
    }
}

impl FactorizedLu {
    /// Solve `A x = b` for the *original* matrix `A` (permutations are
    /// applied internally).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = b.len();
        assert_eq!(n, self.blocks.n);
        // B = P (R A C) Qᵀ was factored; solve B z = P (R b), then
        // x = C · Qᵀ z.
        let rb: Vec<f64> = if self.row_scale.is_empty() {
            b.to_vec()
        } else {
            b.iter().zip(&self.row_scale).map(|(v, r)| v * r).collect()
        };
        let pb: Vec<f64> = (0..n).map(|i| rb[self.row_perm.old_of_new(i)]).collect();
        let z = solve_factored(&self.blocks, &self.pivots, &pb);
        (0..n)
            .map(|j| {
                let v = z[self.col_perm.new_of_old(j)];
                if self.col_scale.is_empty() {
                    v
                } else {
                    v * self.col_scale[j]
                }
            })
            .collect()
    }
}

impl FactorizedLu {
    /// Solve `Aᵀ x = b` for the *original* matrix `A` using the same
    /// factorization (permutations and scalings applied internally).
    pub fn solve_transpose(&self, b: &[f64]) -> Vec<f64> {
        let n = b.len();
        assert_eq!(n, self.blocks.n);
        // B = P (R A C) Qᵀ  ⟹  Aᵀ x = b ⟺ Bᵀ (P R⁻¹... see below):
        // A'ᵀ u = C b with u = R⁻¹ x; A'ᵀ = Qᵀ Bᵀ P, so Bᵀ (P u) = Q (C b).
        let cb: Vec<f64> = if self.col_scale.is_empty() {
            b.to_vec()
        } else {
            b.iter().zip(&self.col_scale).map(|(v, c)| v * c).collect()
        };
        // (Q c)[j'] = c[old col of j']
        let qc: Vec<f64> = (0..n).map(|j| cb[self.col_perm.old_of_new(j)]).collect();
        let v = solve_factored_transpose(&self.blocks, &self.pivots, &qc);
        // u = Pᵀ v: u[i] = v[new position of row i]
        (0..n)
            .map(|i| {
                let u = v[self.row_perm.new_of_old(i)];
                if self.row_scale.is_empty() {
                    u
                } else {
                    u * self.row_scale[i]
                }
            })
            .collect()
    }

    /// Estimate the 1-norm condition number `κ₁(A) = ‖A‖₁ ‖A⁻¹‖₁` with
    /// Higham's iterative estimator (a few solves with `A` and `Aᵀ`).
    /// `a` must be the matrix this factorization came from.
    pub fn condest(&self, a: &CscMatrix) -> f64 {
        let n = self.blocks.n;
        if n == 0 {
            return 0.0;
        }
        // ‖A‖₁ = max column abs sum
        let mut colsum = vec![0.0f64; n];
        for (_, j, v) in a.iter() {
            colsum[j] += v.abs();
        }
        let norm_a = colsum.iter().fold(0.0f64, |m, &v| m.max(v));

        // Higham/Hager ‖A⁻¹‖₁ estimator
        let mut x = vec![1.0 / n as f64; n];
        let mut est = 0.0f64;
        for _ in 0..5 {
            let y = self.solve(&x); // y = A⁻¹ x
            let y1: f64 = y.iter().map(|v| v.abs()).sum();
            let xi: Vec<f64> = y
                .iter()
                .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
                .collect();
            let z = self.solve_transpose(&xi); // z = A⁻ᵀ ξ
            let (mut jmax, mut zmax) = (0usize, -1.0f64);
            for (j, &v) in z.iter().enumerate() {
                if v.abs() > zmax {
                    zmax = v.abs();
                    jmax = j;
                }
            }
            let ztx: f64 = z.iter().zip(&x).map(|(p, q)| p * q).sum();
            est = est.max(y1);
            if zmax <= ztx.abs() {
                break;
            }
            x = vec![0.0; n];
            x[jmax] = 1.0;
        }
        norm_a * est
    }
}

/// Scale `A → R A C` so every row and then every column has unit maximum
/// magnitude. Returns the scaled matrix and the diagonal scale vectors.
pub fn equilibrate(a: &CscMatrix) -> (CscMatrix, Vec<f64>, Vec<f64>) {
    let n = a.ncols();
    let mut rmax = vec![0.0f64; a.nrows()];
    for (i, _, v) in a.iter() {
        rmax[i] = rmax[i].max(v.abs());
    }
    let r: Vec<f64> = rmax
        .iter()
        .map(|&m| if m > 0.0 { 1.0 / m } else { 1.0 })
        .collect();
    let mut cmax = vec![0.0f64; n];
    for (i, j, v) in a.iter() {
        cmax[j] = cmax[j].max((v * r[i]).abs());
    }
    let c: Vec<f64> = cmax
        .iter()
        .map(|&m| if m > 0.0 { 1.0 / m } else { 1.0 })
        .collect();
    let mut coo = splu_sparse::CooMatrix::with_capacity(a.nrows(), n, a.nnz());
    for (i, j, v) in a.iter() {
        coo.push(i, j, v * r[i] * c[j]);
    }
    (coo.to_csc(), r, c)
}

/// Convenience: analyze + factor + solve in one call.
pub fn lu_solve(
    a: &CscMatrix,
    b: &[f64],
    options: FactorOptions,
) -> Result<Vec<f64>, NumericalSingularity> {
    let solver = SparseLuSolver::analyze(a, options);
    Ok(solver.factor()?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};

    fn check(a: &CscMatrix, options: FactorOptions, tol: f64) {
        let n = a.ncols();
        let xt: Vec<f64> = (0..n)
            .map(|i| ((i * 13 % 17) as f64) * 0.25 - 2.0)
            .collect();
        let b = a.matvec(&xt);
        let x = lu_solve(a, &b, options).unwrap();
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < tol, "solve error {err}");
    }

    #[test]
    fn full_pipeline_on_grid() {
        let a = gen::grid2d(10, 10, 0.5, ValueModel::default());
        check(&a, FactorOptions::default(), 1e-7);
    }

    #[test]
    fn full_pipeline_on_random() {
        let a = gen::random_sparse(150, 4, 0.5, ValueModel::default());
        check(&a, FactorOptions::default(), 1e-6);
    }

    #[test]
    fn full_pipeline_with_shifted_diagonal() {
        // exercises the transversal
        let a = gen::shift_rows(&gen::grid2d(8, 8, 0.3, ValueModel::default()), 5);
        check(&a, FactorOptions::default(), 1e-7);
    }

    #[test]
    fn orderings_all_work() {
        let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
        for ordering in [
            ColumnOrdering::Natural,
            ColumnOrdering::MinDegreeAtA,
            ColumnOrdering::ReverseCuthillMcKee,
        ] {
            check(
                &a,
                FactorOptions {
                    ordering,
                    ..FactorOptions::default()
                },
                1e-7,
            );
        }
    }

    #[test]
    fn mindeg_reduces_static_fill_vs_natural() {
        let a = gen::grid2d(12, 12, 0.3, ValueModel::default());
        let s_nat = SparseLuSolver::analyze(
            &a,
            FactorOptions {
                ordering: ColumnOrdering::Natural,
                ..FactorOptions::default()
            },
        );
        let s_md = SparseLuSolver::analyze(&a, FactorOptions::default());
        assert!(
            s_md.static_factor_nnz() < s_nat.static_factor_nnz(),
            "min degree {} vs natural {}",
            s_md.static_factor_nnz(),
            s_nat.static_factor_nnz()
        );
    }

    #[test]
    fn factor_reusable_for_multiple_rhs() {
        let a = gen::grid2d(7, 7, 0.4, ValueModel::default());
        let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
        let f = solver.factor().unwrap();
        for s in 0..3 {
            let n = a.ncols();
            let xt: Vec<f64> = (0..n).map(|i| ((i + s) as f64).cos()).collect();
            let b = a.matvec(&xt);
            let x = f.solve(&b);
            let err = x
                .iter()
                .zip(&xt)
                .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
            assert!(err < 1e-8);
        }
    }
}
