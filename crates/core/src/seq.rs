//! Sequential S\* factorization: the partitioned algorithm of Figs. 6–8.
//!
//! ```text
//! for k = 1 to N
//!     Factor(k)                       // panel factorization + pivoting
//!     for j = k+1 to N with U_kj ≠ 0
//!         Update(k, j)                // swap, DTRSM, DGEMM
//! ```
//!
//! `Factor(k)` works on the packed (diag + L) panel of column block `k`
//! with BLAS-1/2 (pivot search, scaling, rank-1 updates) and records the
//! pivot sequence; the row interchanges for the rest of the matrix are
//! *delayed* and applied per column block at the start of `Update(k, j)` —
//! equivalent to aggregating many small messages into one in the parallel
//! codes.

use crate::error::SolverError;
use crate::scratch::{prep_cap_f64, prep_zeroed_f64, FactorScratch};
use crate::storage::BlockMatrix;
use splu_kernels::{dgemm_naive, dgemm_with, dger, dtrsm_left_lower_unit, gemm_uses_blocked_path};
use splu_probe::Probe;

/// Statistics of a numeric factorization run.
#[derive(Debug, Clone, Default)]
pub struct FactorStats {
    /// Number of `Factor(k)` tasks executed.
    pub factor_tasks: usize,
    /// Number of `Update(k, j)` tasks executed.
    pub update_tasks: usize,
    /// Rows actually interchanged (pivot ≠ diagonal).
    pub row_interchanges: usize,
    /// Flops spent in full-block DGEMM updates.
    pub gemm_flops: u64,
    /// Flops spent in panel factorization + TRSM + scatter paths.
    pub other_flops: u64,
    /// Peak scratch-arena bytes (max over processors in parallel runs).
    pub scratch_peak_bytes: u64,
    /// Scratch-arena capacity growth events (summed over processors);
    /// zero on a warmed-up refactorization — the allocation-free proof.
    pub scratch_grow_events: u64,
    /// Update-stage GEMM kernel invocations (stacked path runs, not
    /// per-destination-segment calls).
    pub update_gemm_calls: u64,
    /// Rows of the tallest single update-stage GEMM call (max over
    /// processors in parallel runs).
    pub update_gemm_rows_max: u64,
    /// Update tasks whose scatter positions came from the precomputed
    /// symbolic maps instead of a fresh merge. The maps ship with every
    /// `BlockPattern`, so this equals [`FactorStats::update_tasks`] minus
    /// the tasks that had no work at all (empty panel, or a 2D rank
    /// owning no destination segment) — a warmed refactorization performs
    /// zero symbolic merges.
    pub scatter_map_reuse_hits: u64,
    /// Wall seconds inside update-stage GEMM calls.
    pub update_gemm_secs: f64,
    /// Wall seconds inside update-stage scatter-subtract loops.
    pub update_scatter_secs: f64,
    /// Wall seconds blocked receiving update operands (parallel drivers;
    /// zero for the sequential code).
    pub update_wait_secs: f64,
    /// Wall seconds *critical-path* (non-deferred) update tasks spent
    /// blocked on panel operands in the 2D lookahead executor — the wait
    /// the lookahead window exists to hide (zero elsewhere).
    pub panel_wait_secs: f64,
    /// 2D update tasks whose operands were already delivered when the
    /// task ran (no blocking receive) — the lookahead executor's hits.
    pub lookahead_hits: u64,
    /// 2D update tasks deferred behind at least one later panel
    /// factorization by the lookahead window (zero at `W = 0`).
    pub deferred_updates: u64,
    /// Tasks (`Factor` + `Update`) executed entirely inside a
    /// proportional-mapped elimination-tree subtree by its owning
    /// processor — zero messages (task-DAG schedule only).
    pub subtree_local_tasks: u64,
    /// Steal attempts made while balancing the subtree → processor
    /// mapping (the plan's deterministic work-stealing pass).
    pub steal_attempts: u64,
    /// Steal attempts that found a victim with surplus subtrees.
    pub steal_hits: u64,
}

impl FactorStats {
    /// Fold one processor's stats into an aggregate: counters and seconds
    /// sum, high-water fields take the max (used by the parallel drivers'
    /// host-side merges).
    pub fn absorb(&mut self, other: &FactorStats) {
        self.factor_tasks += other.factor_tasks;
        self.update_tasks += other.update_tasks;
        self.row_interchanges += other.row_interchanges;
        self.gemm_flops += other.gemm_flops;
        self.other_flops += other.other_flops;
        self.scratch_grow_events += other.scratch_grow_events;
        self.scratch_peak_bytes = self.scratch_peak_bytes.max(other.scratch_peak_bytes);
        self.update_gemm_calls += other.update_gemm_calls;
        self.update_gemm_rows_max = self.update_gemm_rows_max.max(other.update_gemm_rows_max);
        self.scatter_map_reuse_hits += other.scatter_map_reuse_hits;
        self.update_gemm_secs += other.update_gemm_secs;
        self.update_scatter_secs += other.update_scatter_secs;
        self.update_wait_secs += other.update_wait_secs;
        self.panel_wait_secs += other.panel_wait_secs;
        self.lookahead_hits += other.lookahead_hits;
        self.deferred_updates += other.deferred_updates;
        self.subtree_local_tasks += other.subtree_local_tasks;
        self.steal_attempts += other.steal_attempts;
        self.steal_hits += other.steal_hits;
    }

    /// Emit the update-stage telemetry counters into `probe` (called once
    /// per processor at the end of a driver run).
    pub(crate) fn emit_update_probe(&self, probe: &Probe) {
        probe.count("update_gemm_calls", self.update_gemm_calls);
        probe.gauge_max("update_gemm_rows_max", self.update_gemm_rows_max);
        probe.count("scatter_map_reuse_hits", self.scatter_map_reuse_hits);
        probe.count("lookahead_hits", self.lookahead_hits);
        probe.count("deferred_updates", self.deferred_updates);
        probe.count("subtree_local_tasks", self.subtree_local_tasks);
    }

    /// Fraction of update flops performed by DGEMM (the paper's `r`).
    pub fn blas3_fraction(&self) -> f64 {
        let t = self.gemm_flops + self.other_flops;
        if t == 0 {
            0.0
        } else {
            self.gemm_flops as f64 / t as f64
        }
    }
}

/// Factorize `m` in place with classic partial pivoting. On success
/// returns the per-block pivot sequences (`pivots[k][t]` = global row
/// interchanged with row `S(k) + t` at that step) and run statistics.
pub fn factor_sequential(m: &mut BlockMatrix) -> Result<(Vec<Vec<u32>>, FactorStats), SolverError> {
    factor_sequential_opts(m, 1.0)
}

/// Factorize with *threshold* pivoting: the diagonal candidate is kept
/// whenever its magnitude is within `threshold` of the column maximum
/// (`threshold = 1.0` is classic partial pivoting; smaller values reduce
/// row movement — any candidate row is structurally safe, since the
/// static prediction covers every pivot sequence).
pub fn factor_sequential_opts(
    m: &mut BlockMatrix,
    threshold: f64,
) -> Result<(Vec<Vec<u32>>, FactorStats), SolverError> {
    factor_sequential_probed(m, threshold, &Probe::disabled())
}

/// Like [`factor_sequential_opts`], recording one `panel-factor` span per
/// `Factor(k)` and one `update` span per `Update(k, j)` into `probe`
/// (stage `k` as the span detail), plus the `pivot_search_rows` counter.
pub fn factor_sequential_probed(
    m: &mut BlockMatrix,
    threshold: f64,
    probe: &Probe,
) -> Result<(Vec<Vec<u32>>, FactorStats), SolverError> {
    let mut scratch = FactorScratch::new();
    factor_sequential_scratched(m, threshold, probe, &mut scratch)
}

/// Like [`factor_sequential_probed`], but running out of a caller-owned
/// [`FactorScratch`] arena. Passing the same arena to repeated
/// factorizations makes the steady-state hot path allocation-free: the
/// returned [`FactorStats::scratch_grow_events`] is the number of buffer
/// growths *during this call* and must be zero once warmed up.
pub fn factor_sequential_scratched(
    m: &mut BlockMatrix,
    threshold: f64,
    probe: &Probe,
    scratch: &mut FactorScratch,
) -> Result<(Vec<Vec<u32>>, FactorStats), SolverError> {
    assert!(threshold > 0.0 && threshold <= 1.0);
    let nb = m.pattern.nblocks();
    let mut stats = FactorStats::default();
    let mut pivots: Vec<Vec<u32>> = Vec::with_capacity(nb);
    let grow0 = scratch.grow_events();
    for k in 0..nb {
        let span_start = probe.now();
        let piv = factor_block_opts(m, k, threshold, &mut stats, scratch)?;
        {
            // Pivot search at step t scans diag rows t..w plus the whole
            // packed L panel: sum over t gives w(w+1)/2 + w·|L rows|.
            let w = m.cols[k].w as u64;
            let nl = m.cols[k].lrows.len() as u64;
            probe.count("pivot_search_rows", w * (w + 1) / 2 + w * nl);
        }
        probe.span_at("panel-factor", k as u32, span_start);
        pivots.push(piv);
        // target list lives in the arena; taken out for the borrow, put back
        let mut targets = std::mem::take(&mut scratch.idx);
        let cap0 = targets.capacity();
        targets.clear();
        targets.extend(m.pattern.update_targets(k).map(|j| j as u32));
        if targets.capacity() > cap0 {
            scratch.grow_events += 1;
        }
        for &j in &targets {
            let span_start = probe.now();
            update_block(m, k, j as usize, &pivots[k], &mut stats, scratch);
            probe.span_at("update", k as u32, span_start);
        }
        scratch.idx = targets;
    }
    stats.scratch_grow_events = scratch.grow_events() - grow0;
    stats.scratch_peak_bytes = scratch.peak_bytes();
    probe.count("scratch_grow_events", stats.scratch_grow_events);
    stats.emit_update_probe(probe);
    Ok((pivots, stats))
}

/// `Factor(k)` (Fig. 7) with classic partial pivoting.
pub fn factor_block(
    m: &mut BlockMatrix,
    k: usize,
    stats: &mut FactorStats,
) -> Result<Vec<u32>, SolverError> {
    factor_block_opts(m, k, 1.0, stats, &mut FactorScratch::new())
}

/// `Factor(k)` (Fig. 7): factorize the panel of column block `k` with
/// (threshold) partial pivoting; interchanges are applied to column block
/// `k` itself immediately and recorded for delayed application elsewhere.
pub fn factor_block_opts(
    m: &mut BlockMatrix,
    k: usize,
    threshold: f64,
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
) -> Result<Vec<u32>, SolverError> {
    stats.factor_tasks += 1;
    let cb = &mut m.cols[k];
    let w = cb.w as usize;
    let lo = cb.lo as usize;
    let nl = cb.lrows.len();
    let mut piv_seq: Vec<u32> = Vec::with_capacity(w);

    for t in 0..w {
        // ---- pivot search over column t: diag rows t..w + all L rows ----
        let mut best_abs = cb.diag[t + t * w].abs();
        #[allow(unused_mut)]
        let mut best: (bool, usize) = (true, t); // (in_diag, row)
        for r in (t + 1)..w {
            let a = cb.diag[r + t * w].abs();
            if a > best_abs {
                best_abs = a;
                best = (true, r);
            }
        }
        for r in 0..nl {
            let a = cb.lpanel[r + t * nl].abs();
            if a > best_abs {
                best_abs = a;
                best = (false, r);
            }
        }
        if best_abs == 0.0 {
            return Err(SolverError::ZeroPivot { step: lo + t });
        }
        // threshold pivoting: keep the diagonal when close enough to the max
        let diag_abs = cb.diag[t + t * w].abs();
        if diag_abs > 0.0 && diag_abs >= threshold * best_abs {
            best = (true, t);
        }
        // ---- interchange within column block k (full rows) ----
        let piv_global = match best {
            (true, r) => lo + r,
            (false, r) => cb.lrows[r] as usize,
        };
        piv_seq.push(piv_global as u32);
        if piv_global != lo + t {
            stats.row_interchanges += 1;
            match best {
                (true, r) => {
                    for c in 0..w {
                        cb.diag.swap(t + c * w, r + c * w);
                    }
                }
                (false, r) => {
                    for c in 0..w {
                        std::mem::swap(&mut cb.diag[t + c * w], &mut cb.lpanel[r + c * nl]);
                    }
                }
            }
        }
        // ---- scale column t below the pivot ----
        let pv = cb.diag[t + t * w];
        for r in (t + 1)..w {
            cb.diag[r + t * w] /= pv;
        }
        for r in 0..nl {
            cb.lpanel[r + t * nl] /= pv;
        }
        stats.other_flops += (w - t - 1 + nl) as u64;
        // ---- rank-1 update of the remaining columns ----
        if t + 1 < w {
            let ncols = w - t - 1;
            // diag part: rows t+1..w, cols t+1..w; the pivot row/column
            // strips are staged in the arena (no per-step allocation)
            prep_cap_f64(&mut scratch.urow, ncols, &mut scratch.grow_events);
            prep_cap_f64(&mut scratch.lcol, ncols, &mut scratch.grow_events);
            scratch.urow.extend((t + 1..w).map(|c| cb.diag[t + c * w]));
            scratch.lcol.extend((t + 1..w).map(|r| cb.diag[r + t * w]));
            let (urow, lcol) = (&scratch.urow[..], &scratch.lcol[..]);
            {
                // A[t+1.., t+1..] -= lcol * urow
                let mrows = w - t - 1;
                // operate on subpanel of diag with offset
                // column c (global local col) starts at (t+1) + c*w
                for (ci, c) in (t + 1..w).enumerate() {
                    let u = urow[ci];
                    if u != 0.0 {
                        let col = &mut cb.diag[(t + 1) + c * w..w + c * w];
                        for (ri, e) in col.iter_mut().enumerate() {
                            *e -= lcol[ri] * u;
                        }
                    }
                }
                stats.other_flops += (2 * mrows * ncols) as u64;
            }
            if nl > 0 {
                // L panel part: all nl rows, cols t+1..w:
                // lpanel[:, c] -= lpanel[:, t] * diag[t, c]
                let (head, tail) = cb.lpanel.split_at_mut((t + 1) * nl);
                let lt = &head[t * nl..(t + 1) * nl];
                dger(nl, ncols, -1.0, lt, urow, tail, nl);
                stats.other_flops += (2 * nl * ncols) as u64;
            }
        }
    }
    Ok(piv_seq)
}

/// A read-only view of a factored column block's panel — either borrowed
/// from local storage or reconstructed from a received message (the
/// parallel codes' delayed-pivoting aggregated message carries exactly
/// this: diag panel ++ L panel, plus the pivot sequence).
pub struct PanelRef<'a> {
    /// `w × w` diagonal panel (unit-lower L in the strict lower part).
    pub diag: &'a [f64],
    /// Packed L panel (`lrows.len() × w`, ld = lrows.len()).
    pub lpanel: &'a [f64],
    /// Global rows of the packed panel.
    pub lrows: &'a [u32],
    /// Segments of the packed panel per row block.
    pub lsegs: &'a [crate::storage::LSeg],
    /// Block width.
    pub w: usize,
}

/// `Update(k, j)` using the locally stored panel of block `k`.
pub fn update_block(
    m: &mut BlockMatrix,
    k: usize,
    j: usize,
    piv_seq: &[u32],
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
) {
    // borrow dance: temporarily move column k's storage out so we can
    // mutate column j while reading column k; the placeholder block lives
    // in the arena so the swap allocates nothing
    let dummy = std::mem::take(&mut scratch.dummy);
    let ck = std::mem::replace(&mut m.cols[k], dummy);
    let panel = PanelRef {
        diag: &ck.diag,
        lpanel: &ck.lpanel,
        lrows: &ck.lrows,
        lsegs: &ck.lsegs,
        w: ck.w as usize,
    };
    update_block_with_panel(m, k, j, &panel, piv_seq, stats, scratch);
    scratch.dummy = std::mem::replace(&mut m.cols[k], ck);
}

/// `Update(k, j)` (Fig. 8): apply the delayed interchanges of block `k` to
/// column block `j`, triangular-solve `U_kj := L_kk⁻¹ U_kj`, then
/// `A_ij -= L_ik · U_kj` for every nonzero `L_ik`. The factored panel of
/// block `k` is supplied explicitly (local or received).
pub fn update_block_with_panel(
    m: &mut BlockMatrix,
    k: usize,
    j: usize,
    panel: &PanelRef<'_>,
    piv_seq: &[u32],
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
) {
    stats.update_tasks += 1;
    debug_assert!(k < j);
    let lo_k = m.pattern.part.start(k);

    // ---- 1. delayed row interchanges ----
    for (t, &piv) in piv_seq.iter().enumerate() {
        let row = lo_k + t;
        if piv as usize != row {
            m.swap_rows(j, row, piv as usize);
        }
    }

    // ---- 2. U_kj := L_kk⁻¹ U_kj (unit-lower triangular solve) ----
    let wk = panel.w;
    debug_assert_eq!(wk, m.pattern.part.width(k));
    // locate U block (k) in column block j
    let Some(ub_idx) = m.cols[j]
        .ublocks
        .binary_search_by_key(&(k as u32), |u| u.k)
        .ok()
    else {
        // U_kj may be numerically absent only if the pattern says so;
        // callers only invoke update_block for present blocks.
        panic!("update_block({k},{j}) called without a U block");
    };
    {
        let ub = &mut m.cols[j].ublocks[ub_idx];
        let ncols = ub.cols.len();
        dtrsm_left_lower_unit(wk, ncols, panel.diag, wk, &mut ub.panel, wk);
        stats.other_flops += (wk * wk * ncols) as u64;
    }

    // ---- 3. A_ij -= L_ik · U_kj, stacked over all L segments ----
    // The source U panel is staged in the arena once: destinations can be
    // other U blocks of the same column block, and the borrow checker
    // cannot see they never alias U_kj itself.
    let (u_cols, wk_h) = {
        let ub = &m.cols[j].ublocks[ub_idx];
        prep_cap_f64(&mut scratch.panel, ub.panel.len(), &mut scratch.grow_events);
        scratch.panel.extend_from_slice(&ub.panel);
        (ub.cols.clone(), ub.h as usize)
    };
    let nuc = u_cols.len();
    let nl = panel.lrows.len();
    if nuc == 0 || nl == 0 {
        return;
    }

    let lo_j = m.pattern.part.start(j);
    let wj = m.pattern.part.width(j);
    // The pattern (shared Arc) supplies the precomputed scatter maps; a
    // local handle frees `m` for the destination borrows below.
    let pattern = m.pattern.clone();
    let uj = pattern.u_blocks[k]
        .binary_search_by_key(&(j as u32), |u| u.j)
        .expect("U block in pattern");
    stats.scatter_map_reuse_hits += 1;

    // One tall product: temp = L_panel (nl × wk) · U_kj (wk × nuc), ld =
    // nl. The whole packed panel is already contiguous, so no repacking
    // is needed — only the kernel calls are batched. For bitwise identity
    // with the per-segment seed path, each maximal run of segments that
    // agree on the kernel's shape dispatch becomes one call: results are
    // row-count-independent *within* a path (see `gemm_uses_blocked_path`)
    // but differ across the blocked/axpy boundary.
    prep_zeroed_f64(&mut scratch.temp, nl * nuc, &mut scratch.grow_events);
    let t_gemm = std::time::Instant::now();
    let nseg = panel.lsegs.len();
    let mut s0 = 0usize;
    while s0 < nseg {
        let blocked = gemm_uses_blocked_path(panel.lsegs[s0].len as usize, nuc, wk_h);
        let mut s1 = s0 + 1;
        while s1 < nseg
            && gemm_uses_blocked_path(panel.lsegs[s1].len as usize, nuc, wk_h) == blocked
        {
            s1 += 1;
        }
        let row0 = panel.lsegs[s0].start as usize;
        let last = &panel.lsegs[s1 - 1];
        let mrun = (last.start + last.len) as usize - row0;
        let a = &panel.lpanel[row0..];
        let c = &mut scratch.temp[row0..];
        if blocked {
            dgemm_with(
                mrun,
                nuc,
                wk_h,
                1.0,
                a,
                nl,
                &scratch.panel,
                wk_h,
                0.0,
                c,
                nl,
                &mut scratch.gemm,
            );
        } else {
            dgemm_naive(
                mrun,
                nuc,
                wk_h,
                1.0,
                a,
                nl,
                &scratch.panel,
                wk_h,
                0.0,
                c,
                nl,
            );
        }
        stats.update_gemm_calls += 1;
        stats.update_gemm_rows_max = stats.update_gemm_rows_max.max(mrun as u64);
        s0 = s1;
    }
    stats.gemm_flops += (2 * nl * nuc * wk_h) as u64;
    stats.update_gemm_secs += t_gemm.elapsed().as_secs_f64();

    // ---- map-driven scatter-subtract, one destination per segment ----
    let t_scatter = std::time::Instant::now();
    for (li, seg) in panel.lsegs.iter().enumerate() {
        let i = seg.iblock as usize;
        let rows = &panel.lrows[seg.start as usize..(seg.start + seg.len) as usize];
        let mrows = rows.len();
        let off = seg.start as usize;
        let tcol_at = |cpos: usize| off + cpos * nl;

        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Equal => {
                // destination: diagonal panel of j; dest row = g - lo_j,
                // dest col = global col - lo_j (contiguous, no map)
                let cj = &mut m.cols[j];
                for (cpos, &gc) in u_cols.iter().enumerate() {
                    let dc = gc as usize - lo_j;
                    let tcol = &scratch.temp[tcol_at(cpos)..tcol_at(cpos) + mrows];
                    for (rpos, &g) in rows.iter().enumerate() {
                        let dr = g as usize - lo_j;
                        cj.diag[dr + dc * wj] -= tcol[rpos];
                    }
                }
            }
            Greater => {
                // destination: packed L panel of column j. With
                // amalgamation, a padded source row may have no slot in
                // the destination mask — its contribution is provably
                // exactly zero (padding never turns nonzero), so it is
                // skipped (and checked in debug builds). The precomputed
                // map holds block-local positions; the destination
                // segment's start offset lifts them into the packed panel.
                let map = pattern.scatter_map(k, li, uj);
                let cj = &mut m.cols[j];
                let ldd = cj.lrows.len();
                let Ok(ds) = cj.lsegs.binary_search_by_key(&(i as u32), |s| s.iblock) else {
                    debug_assert!(map.iter().all(|&p| p == u32::MAX));
                    debug_assert!(
                        (0..nuc).all(|c| scratch.temp[tcol_at(c)..tcol_at(c) + mrows]
                            .iter()
                            .all(|&v| v == 0.0))
                    );
                    continue;
                };
                let dstart = cj.lsegs[ds].start as usize;
                for (cpos, &gc) in u_cols.iter().enumerate() {
                    let dc = gc as usize - lo_j;
                    let tcol = &scratch.temp[tcol_at(cpos)..tcol_at(cpos) + mrows];
                    let dcol = &mut cj.lpanel[dc * ldd..(dc + 1) * ldd];
                    for (rpos, &dp) in map.iter().enumerate() {
                        if dp != u32::MAX {
                            dcol[dstart + dp as usize] -= tcol[rpos];
                        } else {
                            debug_assert_eq!(tcol[rpos], 0.0, "nonzero into missing L row");
                        }
                    }
                }
            }
            Less => {
                // destination: U block (i, j) — full height, masked cols.
                // The whole block (or individual columns) may be absent
                // for pure-padding contributions, which are exactly zero.
                let map = pattern.scatter_map(k, li, uj);
                let cj = &mut m.cols[j];
                let Ok(db) = cj.ublocks.binary_search_by_key(&(i as u32), |u| u.k) else {
                    debug_assert!(map.iter().all(|&p| p == u32::MAX));
                    debug_assert!(
                        (0..nuc).all(|c| scratch.temp[tcol_at(c)..tcol_at(c) + mrows]
                            .iter()
                            .all(|&v| v == 0.0)),
                        "nonzero update into absent U block ({i},{j})"
                    );
                    continue;
                };
                let dest = &mut cj.ublocks[db];
                let ldd = dest.h as usize;
                let lo_i = dest.lo_k as usize;
                for (cpos, &dcp) in map.iter().enumerate() {
                    let tcol = &scratch.temp[tcol_at(cpos)..tcol_at(cpos) + mrows];
                    if dcp == u32::MAX {
                        debug_assert!(tcol.iter().all(|&v| v == 0.0), "nonzero into missing U col");
                        continue;
                    }
                    let dcol = &mut dest.panel[dcp as usize * ldd..(dcp as usize + 1) * ldd];
                    for (rpos, &g) in rows.iter().enumerate() {
                        dcol[g as usize - lo_i] -= tcol[rpos];
                    }
                }
            }
        }
    }
    stats.update_scatter_secs += t_scatter.elapsed().as_secs_f64();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::BlockMatrix;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{
        amalgamate, partition_supernodes, static_symbolic_factorization, BlockPattern,
    };
    use std::sync::Arc;

    pub(crate) fn build(a: &splu_sparse::CscMatrix, r: usize, bsize: usize) -> BlockMatrix {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, bsize);
        let part = amalgamate(&s, &base, r, bsize);
        let bp = Arc::new(BlockPattern::build(&s, &part));
        BlockMatrix::from_csc(a, bp)
    }

    /// Reference: dense GEPP with block-delayed interchanges — at step `k`
    /// the pivot row is swapped over columns `S(b)..n` where `b` is `k`'s
    /// block (full rows within the current column block, per Fig. 7 line
    /// 04; delayed/trailing for the rest). Produces the same working array
    /// the block code produces (same pivot rule).
    fn gepp_trailing(
        a: &splu_kernels::DenseMat,
        starts: &[usize],
    ) -> (splu_kernels::DenseMat, Vec<u32>) {
        let n = a.nrows();
        let block_start_of = {
            let mut v = vec![0usize; n];
            for b in 0..starts.len() - 1 {
                for k in starts[b]..starts[b + 1] {
                    v[k] = starts[b];
                }
            }
            v
        };
        let mut w = a.clone();
        let mut piv = Vec::with_capacity(n);
        for k in 0..n {
            let mut p = k;
            for i in (k + 1)..n {
                if w[(i, k)].abs() > w[(p, k)].abs() {
                    p = i;
                }
            }
            piv.push(p as u32);
            if p != k {
                for j in block_start_of[k]..n {
                    let t = w[(k, j)];
                    w[(k, j)] = w[(p, j)];
                    w[(p, j)] = t;
                }
            }
            let d = w[(k, k)];
            for i in (k + 1)..n {
                w[(i, k)] /= d;
            }
            for j in (k + 1)..n {
                let u = w[(k, j)];
                if u != 0.0 {
                    for i in (k + 1)..n {
                        let l = w[(i, k)];
                        w[(i, j)] -= l * u;
                    }
                }
            }
        }
        (w, piv)
    }

    fn check_against_dense(a: &splu_sparse::CscMatrix, r: usize, bsize: usize) {
        let n = a.ncols();
        let mut m = build(a, r, bsize);
        let starts = m.pattern.part.starts.clone();
        let (pivots, _stats) = factor_sequential(&mut m).expect("factorization");
        let (wref, pivref) = gepp_trailing(&a.to_dense(), &starts);
        // same pivot sequence
        let flat: Vec<u32> = pivots.iter().flatten().copied().collect();
        assert_eq!(flat.len(), n);
        for k in 0..n {
            assert_eq!(flat[k], pivref[k], "pivot at step {k}");
        }
        // same factors (within roundoff)
        let scale = wref.max_abs().max(1.0);
        for i in 0..n {
            for j in 0..n {
                let got = m.get_entry(i, j);
                let want = wref[(i, j)];
                assert!(
                    (got - want).abs() <= 1e-11 * scale,
                    "entry ({i},{j}): got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn dense_small_matches_reference() {
        let a = gen::dense_random(17, ValueModel::default());
        check_against_dense(&a, 0, 5);
    }

    #[test]
    fn sparse_random_matches_reference() {
        for seed in 0..4 {
            let a = gen::random_sparse(
                50,
                3,
                0.5,
                ValueModel {
                    diag_scale: 1.0,
                    seed,
                },
            );
            check_against_dense(&a, 0, 8);
        }
    }

    #[test]
    fn grid_matches_reference_with_amalgamation() {
        let a = gen::grid2d(7, 7, 0.4, ValueModel::default());
        check_against_dense(&a, 4, 10);
        check_against_dense(&a, 8, 25);
    }

    #[test]
    fn block_size_one_matches_reference() {
        let a = gen::random_sparse(30, 3, 0.6, ValueModel::default());
        check_against_dense(&a, 0, 1);
    }

    #[test]
    fn stats_are_populated() {
        let a = gen::grid2d(6, 6, 0.3, ValueModel::default());
        let mut m = build(&a, 4, 8);
        let (_piv, stats) = factor_sequential(&mut m).unwrap();
        assert_eq!(stats.factor_tasks, m.pattern.nblocks());
        assert!(stats.update_tasks > 0);
        assert!(stats.gemm_flops > 0);
        assert!(stats.blas3_fraction() > 0.0 && stats.blas3_fraction() <= 1.0);
    }

    #[test]
    fn singular_matrix_detected() {
        use splu_sparse::CooMatrix;
        // exactly-singular 2x2 with zero-free diagonal pattern
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        c.push(1, 1, 1.0);
        let a = c.to_csc();
        let mut m = build(&a, 0, 2);
        assert!(matches!(
            factor_sequential(&mut m),
            Err(SolverError::ZeroPivot { step: 1 })
        ));
    }
}
