//! Typed errors for the numeric factorization and solve drivers.
//!
//! The static symbolic phase guarantees *structural* safety for every
//! pivot sequence, so the only numeric failure the elimination can hit is
//! a column whose remaining candidates are all exactly zero. The service
//! layer (`splu-solver`) additionally validates request shapes and
//! pattern identity; all of those conditions surface as [`SolverError`]
//! values rather than panics, so a singular or malformed request degrades
//! gracefully instead of poisoning a worker.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Error surfaced by the factorization drivers and the solve entry
/// points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverError {
    /// No nonzero pivot candidate at elimination step `step` (global
    /// column index in the permuted matrix): the matrix is numerically
    /// singular.
    ZeroPivot {
        /// Elimination step (= global column) where the breakdown hit.
        step: usize,
    },
    /// A right-hand side or solution buffer has the wrong length.
    DimensionMismatch {
        /// Length the factorization requires.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// A matrix handed to refactorization does not share the analyzed
    /// sparsity pattern (fingerprints shown).
    PatternMismatch {
        /// Fingerprint of the analyzed pattern.
        expected: u64,
        /// Fingerprint of the offending matrix.
        got: u64,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::ZeroPivot { step } => {
                write!(f, "no nonzero pivot in column {step} (matrix is singular)")
            }
            SolverError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} values, got {got}"
                )
            }
            SolverError::PatternMismatch { expected, got } => write!(
                f,
                "sparsity pattern mismatch: analysis has fingerprint \
                 {expected:#018x}, matrix has {got:#018x}"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

/// Run `f`, converting a panic whose payload is a [`SolverError`] back
/// into `Err`. Any other panic is propagated unchanged.
///
/// The SPMD drivers run inside [`splu_machine::run_machine`]-style thread
/// pools where a worker cannot return early without deadlocking its
/// peers; they report numeric breakdown by panicking with a
/// `SolverError` payload (which also triggers the runtime's poison
/// broadcast, waking blocked peers). This helper is the host-side half of
/// that protocol.
pub fn catch_solver_panic<R>(f: impl FnOnce() -> R) -> Result<R, SolverError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<SolverError>() {
            Ok(e) => Err(*e),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_condition() {
        assert!(SolverError::ZeroPivot { step: 7 }
            .to_string()
            .contains("column 7"));
        assert!(SolverError::DimensionMismatch {
            expected: 10,
            got: 3
        }
        .to_string()
        .contains("expected 10"));
        assert!(SolverError::PatternMismatch {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("fingerprint"));
    }

    #[test]
    fn catch_solver_panic_roundtrips_the_error() {
        let r: Result<(), _> =
            catch_solver_panic(|| std::panic::panic_any(SolverError::ZeroPivot { step: 3 }));
        assert_eq!(r, Err(SolverError::ZeroPivot { step: 3 }));
        assert_eq!(catch_solver_panic(|| 41 + 1), Ok(42));
    }

    #[test]
    fn unrelated_panics_pass_through() {
        let caught = std::panic::catch_unwind(|| {
            let _ = catch_solver_panic(|| panic!("unrelated"));
        });
        assert!(caught.is_err());
    }
}
