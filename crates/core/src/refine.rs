//! Iterative refinement and solution-quality diagnostics.
//!
//! The paper stops at the factorization (§2: "the triangular solvers are
//! much less time consuming"); a production solver also wants the
//! standard GEPP accuracy machinery:
//!
//! * [`refine`] — fixed-precision iterative refinement: with a backward-
//!   stable factorization, one or two steps of `r = b − A x`,
//!   `A δ = r`, `x ← x + δ` typically drive the componentwise residual
//!   to machine-epsilon level;
//! * [`SolveQuality`] — residual norms and the pivot-growth factor
//!   `max|U| / max|A|`, the classical stability indicator for partial
//!   pivoting.

use crate::pipeline::{FactorizedLu, SolveWorkspace};
use splu_sparse::CscMatrix;

/// Quality metrics of a computed solution.
#[derive(Debug, Clone, Copy)]
pub struct SolveQuality {
    /// `‖b − A x‖∞`.
    pub residual_inf: f64,
    /// `‖b − A x‖∞ / (‖A‖∞ ‖x‖∞ + ‖b‖∞)` — the normwise relative
    /// backward error (≈ machine epsilon for a stable solve).
    pub backward_error: f64,
    /// Refinement steps performed.
    pub steps: usize,
}

/// Compute `b − A x` (test oracle; the refinement loop itself uses
/// [`residual_into`]).
#[cfg(test)]
fn residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> Vec<f64> {
    let mut r = vec![0.0; b.len()];
    residual_into(a, x, b, &mut r);
    r
}

/// `r ← b − A x` without allocating.
fn residual_into(a: &CscMatrix, x: &[f64], b: &[f64], r: &mut [f64]) {
    a.matvec_into(x, r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Solve `A x = b` with iterative refinement: repeat
/// `x ← x + A⁻¹(b − A x)` until the backward error stops improving or
/// `max_steps` is reached. Returns the refined solution and its quality.
pub fn refine(
    lu: &FactorizedLu,
    a: &CscMatrix,
    b: &[f64],
    max_steps: usize,
) -> (Vec<f64>, SolveQuality) {
    // All buffers are allocated once up front; the refinement loop itself
    // is allocation-free (workspace-reusing solves, in-place residuals).
    let n = b.len();
    let mut ws = SolveWorkspace::default();
    let mut x = vec![0.0; n];
    lu.solve_with(b, &mut x, &mut ws).expect("rhs length");
    let norm_a = a.norm_inf();
    let norm_b = inf_norm(b);
    let mut steps = 0usize;
    let mut r = vec![0.0; n];
    residual_into(a, &x, b, &mut r);
    let mut best = inf_norm(&r);
    let mut dx = vec![0.0; n];
    let mut xn = vec![0.0; n];
    let mut rn = vec![0.0; n];
    for _ in 0..max_steps {
        if best == 0.0 {
            break;
        }
        lu.solve_with(&r, &mut dx, &mut ws).expect("rhs length");
        for i in 0..n {
            xn[i] = x[i] + dx[i];
        }
        residual_into(a, &xn, b, &mut rn);
        let rn_norm = inf_norm(&rn);
        if rn_norm >= best {
            break; // converged (or stagnated) — keep the previous iterate
        }
        std::mem::swap(&mut x, &mut xn);
        std::mem::swap(&mut r, &mut rn);
        best = rn_norm;
        steps += 1;
    }
    let denom = norm_a * inf_norm(&x) + norm_b;
    let quality = SolveQuality {
        residual_inf: best,
        backward_error: if denom > 0.0 { best / denom } else { 0.0 },
        steps,
    };
    (x, quality)
}

/// Pivot growth factor `max_ij |U_ij| / max_ij |A_ij|` of a factorization
/// — bounded by `2^{n-1}` for partial pivoting in theory, small in
/// practice; values ≫ 1 flag potential instability.
pub fn pivot_growth(lu: &FactorizedLu, a: &CscMatrix) -> f64 {
    let n = a.ncols();
    let mut max_u = 0.0f64;
    // U entries live in the diagonal blocks' upper parts and the U panels.
    for cb in &lu.blocks.cols {
        let w = cb.w as usize;
        for c in 0..w {
            for r in 0..=c {
                max_u = max_u.max(cb.diag[r + c * w].abs());
            }
        }
        for ub in &cb.ublocks {
            max_u = ub.panel.iter().fold(max_u, |m, &v| m.max(v.abs()));
        }
    }
    let _ = n;
    max_u / a.max_abs().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FactorOptions, SparseLuSolver};
    use splu_sparse::gen::{self, ValueModel};

    fn setup(n: usize) -> (CscMatrix, FactorizedLu) {
        let a = gen::grid2d(n, n, 0.5, ValueModel::default());
        let solver = SparseLuSolver::analyze(&a, FactorOptions::default());
        let lu = solver.factor().unwrap();
        (a, lu)
    }

    #[test]
    fn refinement_never_worsens_and_reaches_eps_level() {
        let (a, lu) = setup(12);
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.matvec(&xt);
        let plain = lu.solve(&b);
        let r_plain = inf_norm(&residual(&a, &plain, &b));
        let (x, q) = refine(&lu, &a, &b, 3);
        assert!(q.residual_inf <= r_plain * (1.0 + 1e-12));
        assert!(
            q.backward_error < 1e-14,
            "backward error {}",
            q.backward_error
        );
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-9);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let (a, lu) = setup(8);
        let b = vec![0.0; a.ncols()];
        let (x, q) = refine(&lu, &a, &b, 2);
        assert!(inf_norm(&x) == 0.0);
        assert_eq!(q.residual_inf, 0.0);
    }

    #[test]
    fn pivot_growth_is_moderate_on_wellconditioned_input() {
        let (a, lu) = setup(10);
        let g = pivot_growth(&lu, &a);
        // max|U|/max|A| can dip slightly below 1 when the largest |A|
        // entry is eliminated early; anything near-zero or huge is a bug
        assert!(g > 0.1, "growth {g} suspiciously small");
        assert!(g < 1e3, "growth {g} suspiciously large");
    }

    #[test]
    fn quality_reports_steps_taken() {
        let (a, lu) = setup(10);
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let (_, q) = refine(&lu, &a, &b, 5);
        assert!(q.steps <= 5);
    }
}
