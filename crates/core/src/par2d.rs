//! 2D block-cyclic asynchronous sparse LU (§4.3, §5.2, Figs. 12–15).
//!
//! Processors form a `p_r × p_c` grid; block `A_ij` lives on
//! `P_{i mod p_r, j mod p_c}`. A single `Factor(k)` is parallelized over
//! the `p_r` processors of one grid column (distributed pivot search with
//! subrow exchange), and a single update stage over all processors.
//!
//! Execution is a **critical-path lookahead executor**: every rank of a
//! grid column replays the deterministic operation list built by
//! [`splu_sched::lookahead_schedule`] — the paper's Fig. 10/11 priority
//! policy on the real thread machine. With window `W`, stage `k`'s
//! updates into the next pivot block column run first, `Factor(k+1)` and
//! its row/column multicasts issue immediately, and up to `W` stages of
//! trailing updates drain *behind* the factor frontier. `W = 0`
//! reproduces the strict in-order Fig. 12 loop (the ablation baseline).
//! Per-destination-column next-expected-stage counters (`applied`)
//! double-check at run time that every block still absorbs its update
//! contributions in ascending stage order, so the factors stay
//! **bitwise identical** to the sequential code for every window: the
//! distributed pivot search reproduces the sequential tie-break exactly,
//! and per-entry arithmetic happens in the same order.
//!
//! In [`Sync2d::Async`] mode there is no global synchronization at all:
//! processors pipeline across elimination stages, bounded by the overlap
//! degrees of Theorem 2 at `W = 0` (`p_c` across the machine,
//! `min(p_r − 1, p_c)` within a processor column) and by the
//! window-generalized `p_c + W` / `min(p_r − 1, p_c) + W` for `W ≥ 1`.
//! [`Sync2d::Barrier`] adds the paper's ablation: a global barrier per
//! *retired* stage (Table 7 compares the two) — with `W ≥ 1` the window
//! still pipelines between consecutive barriers.

use crate::scratch::{prep_cap_f64, prep_zeroed_f64, FactorScratch};
use crate::seq::FactorStats;
use crate::storage::BlockMatrix;
use splu_kernels::{dgemm_naive, dgemm_with, dtrsm_left_lower_unit, gemm_uses_blocked_path};
use splu_machine::{run_machine, run_machine_jittered, run_machine_traced, Grid, Message, ProcCtx};
use splu_probe::Collector;
use splu_sched::{
    lookahead_schedule, plan_taskdag, taskdag_schedule, Op2d, TaskDagPlan, TaskGraph,
};
use splu_symbolic::{block_etree, BlockPattern};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Default lookahead window `W` of the 2D executor: one panel
/// factorization ahead of the drain frontier (Fig. 10's compute-ahead
/// depth). `0` is the in-order ablation baseline.
pub const DEFAULT_LOOKAHEAD: usize = 1;

/// Which deterministic operation schedule drives the 2D executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sched2d {
    /// The stage-pipelined lookahead schedule
    /// ([`splu_sched::lookahead_schedule`]) under an all-cyclic block
    /// mapping — the paper's Fig. 12–15 protocol with window `W`.
    Stages {
        /// Lookahead window `W` (`0` = strict in-order schedule).
        window: usize,
    },
    /// The elimination-tree task-DAG schedule
    /// ([`splu_sched::taskdag_schedule`]): proportional-mapped etree
    /// subtrees execute fully locally on their owning processor with
    /// zero messages, while separator panels fall back to the
    /// block-cyclic batched-multicast protocol. Subtree → processor
    /// placement is balanced by [`splu_sched::plan_taskdag`]'s
    /// deterministic work-stealing pass.
    TaskDag,
}

/// Synchronization mode for the 2D code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sync2d {
    /// Fully asynchronous pipelined execution (the paper's main 2D code).
    Async,
    /// Global barrier after every elimination stage (Table 7's baseline).
    Barrier,
}

/// One recorded `Update2D` execution interval (for Theorem 2's overlap
/// analysis), in global logical-clock ticks.
#[derive(Debug, Clone, Copy)]
pub struct UpdateInterval {
    /// Source stage `k`.
    pub stage: u32,
    /// Grid column of the executing processor.
    pub proc_col: u32,
    /// Logical start tick.
    pub start: u64,
    /// Logical end tick.
    pub end: u64,
}

/// Result of a 2D factorization.
pub struct Par2dResult {
    /// Reassembled factored storage (host side).
    pub blocks: BlockMatrix,
    /// Per-block pivot sequences.
    pub pivots: Vec<Vec<u32>>,
    /// Merged statistics.
    pub stats: FactorStats,
    /// Wall-clock seconds of the parallel section.
    pub elapsed: f64,
    /// (messages, bytes) sent in total.
    pub comm: (u64, u64),
    /// Per-processor peak parked-message bytes (§5.2 buffer-space).
    pub peak_buffer_bytes: Vec<u64>,
    /// Per-processor peak resident bytes of the lookahead panel caches
    /// (received `L`/`U` multicast panels held for reuse). With per-stage
    /// retirement this stays bounded by one stage's working set.
    pub panel_cache_peak_bytes: Vec<u64>,
    /// Per-processor cumulative bytes ever inserted into the panel
    /// caches — what the peak would approach if entries were never
    /// evicted (the pre-retirement behavior).
    pub panel_cache_inserted_bytes: Vec<u64>,
    /// Update execution intervals for overlap analysis.
    pub intervals: Vec<UpdateInterval>,
}

impl Par2dResult {
    /// Measured stage-overlapping degree across all processors:
    /// `max{k2 − k1 : Update2D(k1,*) and Update2D(k2,*) ran concurrently}`
    /// (Theorem 2 bounds this by `p_c`).
    pub fn overlap_degree(&self) -> u32 {
        overlap_degree(&self.intervals, None)
    }

    /// Measured overlap degree within one processor-grid column
    /// (Theorem 2 bounds this by `min(p_r − 1, p_c)`).
    pub fn overlap_degree_within_col(&self, col: u32) -> u32 {
        overlap_degree(&self.intervals, Some(col))
    }

    /// *Sustained* pipeline depth: the tick-weighted 95th percentile of
    /// the number of distinct elimination stages with an update in
    /// flight. Unlike [`Par2dResult::overlap_degree`], which a single
    /// straggler pair can inflate to its maximum, this reports the depth
    /// the executor actually holds for 95% of the busy time.
    pub fn sustained_depth_p95(&self) -> u32 {
        // sweep the interval set: each logical tick is unique (a global
        // counter), so events never tie
        let mut events: Vec<(u64, u32, i32)> = Vec::new();
        for iv in &self.intervals {
            if iv.start < iv.end {
                events.push((iv.start, iv.stage, 1));
                events.push((iv.end, iv.stage, -1));
            }
        }
        if events.is_empty() {
            return 0;
        }
        events.sort_unstable_by_key(|e| e.0);
        let mut active: HashMap<u32, u32> = HashMap::new();
        let mut samples: Vec<(u32, u64)> = Vec::new(); // (depth, ticks held)
        let mut prev_tick = events[0].0;
        for (tick, stage, delta) in events {
            if tick > prev_tick && !active.is_empty() {
                samples.push((active.len() as u32, tick - prev_tick));
            }
            prev_tick = tick;
            if delta > 0 {
                *active.entry(stage).or_insert(0) += 1;
            } else {
                let c = active.get_mut(&stage).expect("end without start");
                *c -= 1;
                if *c == 0 {
                    active.remove(&stage);
                }
            }
        }
        samples.sort_unstable_by_key(|s| s.0);
        let total: u64 = samples.iter().map(|s| s.1).sum();
        let mut acc = 0u64;
        for (depth, ticks) in samples {
            acc += ticks;
            // smallest depth covering ≥ 95% of busy ticks
            if acc * 100 >= total * 95 {
                return depth;
            }
        }
        0
    }
}

fn overlap_degree(iv: &[UpdateInterval], col: Option<u32>) -> u32 {
    let mut best = 0u32;
    for (a, x) in iv.iter().enumerate() {
        if col.is_some_and(|c| x.proc_col != c) {
            continue;
        }
        for y in &iv[a + 1..] {
            if col.is_some_and(|c| y.proc_col != c) {
                continue;
            }
            if x.start < y.end && y.start < x.end {
                best = best.max(x.stage.abs_diff(y.stage));
            }
        }
    }
    best
}

// ---- message tags ----
const K_CAND: u64 = 1;
const K_PIVROW: u64 = 2;
const K_LPANEL: u64 = 3;
const K_UROW: u64 = 4;
const K_SWAP: u64 = 5;

fn tag(kind: u64, k: usize, x: usize, y: usize) -> u64 {
    debug_assert!(k < 1 << 20 && x < 1 << 20 && y < 1 << 20);
    (kind << 60) | ((k as u64) << 40) | ((x as u64) << 20) | y as u64
}

const NONE_ROW: u32 = u32::MAX;

/// Per-processor block storage for the 2D mapping.
///
/// Ownership is **plan-aware**: a block `(i, j)` of a proportional-mapped
/// subtree column `j` lives wholly on the subtree's owning processor
/// (column-granular ownership — the whole panel column, diagonal, `L`
/// segments *and* `U` blocks above the diagonal), so subtree stages run
/// without any communication. Every other (separator) column keeps the
/// classic 2D block-cyclic map `(i mod p_r, j mod p_c)`. Under the
/// all-cyclic [`TaskDagPlan::cyclic`] plan this reduces exactly to the
/// seed's mapping.
struct Store2d {
    pattern: Arc<BlockPattern>,
    grid: Grid,
    rank: usize,
    rno: usize,
    cno: usize,
    plan: Arc<TaskDagPlan>,
    /// Per-stage bitmask of processor-grid columns holding separator
    /// destinations of a subtree stage — the stage-row multicast group
    /// (all-zero under a cyclic plan).
    sep_dest_cols: Arc<Vec<u64>>,
    /// Global index → block id (cached; rebuilding it per access is O(n)).
    block_of: Vec<u32>,
    /// Owned blocks: `(i, j) → column-major panel`. Diagonal blocks are
    /// `w × w`; L blocks `mask_rows × w`; U blocks `w_i × mask_cols`.
    blocks: HashMap<(u32, u32), Vec<f64>>,
}

impl Store2d {
    fn new(
        a: &splu_sparse::CscMatrix,
        pattern: Arc<BlockPattern>,
        grid: Grid,
        rank: usize,
        plan: Arc<TaskDagPlan>,
        sep_dest_cols: Arc<Vec<u64>>,
    ) -> Self {
        let (rno, cno) = grid.coords_of(rank);
        let block_of = pattern.part.block_of_index();
        let mut st = Self {
            pattern,
            grid,
            rank,
            rno,
            cno,
            plan,
            sep_dest_cols,
            block_of,
            blocks: HashMap::new(),
        };
        let nb = st.pattern.nblocks();
        // allocate owned blocks (plan-aware: subtree columns are owned
        // whole; separator columns block-cyclically). A local Arc handle
        // keeps the pattern borrow off `st` while `blocks` is mutated.
        let pattern = st.pattern.clone();
        for j in 0..nb {
            if st.owns_block(j, j) {
                let w = pattern.part.width(j);
                st.blocks.insert((j as u32, j as u32), vec![0.0; w * w]);
            }
            for l in &pattern.l_blocks[j] {
                if st.owns_block(l.i as usize, j) {
                    let w = pattern.part.width(j);
                    st.blocks
                        .insert((l.i, j as u32), vec![0.0; l.rows.len() * w]);
                }
            }
        }
        for k in 0..nb {
            let h = pattern.part.width(k);
            for u in &pattern.u_blocks[k] {
                if st.owns_block(k, u.j as usize) {
                    st.blocks
                        .insert((k as u32, u.j), vec![0.0; h * u.cols.len()]);
                }
            }
        }
        // scatter owned entries of A
        for (i, j, v) in a.iter() {
            let (ib, jb) = (st.block_of[i] as usize, st.block_of[j] as usize);
            if !st.owns_block(ib, jb) {
                continue;
            }
            st.write_entry(ib, jb, i, j, v);
        }
        st
    }

    /// Whether this processor owns block `(i, j)`: the subtree owner for
    /// a subtree column, the cyclic `(i mod p_r, j mod p_c)` processor
    /// otherwise.
    fn owns_block(&self, i: usize, j: usize) -> bool {
        if self.plan.is_subtree(j) {
            self.plan.col_owner[j] as usize == self.rank
        } else {
            i % self.grid.pr == self.rno && j % self.grid.pc == self.cno
        }
    }

    /// Whether this processor holds column `k`'s panel (diagonal + `L`
    /// segments) locally: the subtree owner, or any rank of the factoring
    /// grid column under the cyclic map.
    fn owns_col_panel(&self, k: usize) -> bool {
        if self.plan.is_subtree(k) {
            self.plan.col_owner[k] as usize == self.rank
        } else {
            k % self.grid.pc == self.cno
        }
    }

    /// The processor-grid column that executes column `j`'s operations.
    fn grid_col(&self, j: usize) -> usize {
        self.plan.grid_col(j, self.grid.pc)
    }

    fn lo(&self, b: usize) -> usize {
        self.pattern.part.start(b)
    }

    fn width(&self, b: usize) -> usize {
        self.pattern.part.width(b)
    }

    /// L block's present rows (global ids) from the pattern.
    fn l_rows(&self, i: usize, j: usize) -> &[u32] {
        &self.pattern.l_block(i, j).expect("L block in pattern").rows
    }

    /// U block's present cols (global ids) from the pattern.
    fn u_cols(&self, k: usize, j: usize) -> &[u32] {
        &self.pattern.u_block(k, j).expect("U block in pattern").cols
    }

    fn write_entry(&mut self, ib: usize, jb: usize, i: usize, j: usize, v: f64) {
        use std::cmp::Ordering::*;
        let w = self.width(jb);
        match ib.cmp(&jb) {
            Equal => {
                let (li, lj) = (i - self.lo(ib), j - self.lo(jb));
                self.blocks.get_mut(&(ib as u32, jb as u32)).unwrap()[li + lj * w] = v;
            }
            Greater => {
                let rows = self.pattern.l_block(ib, jb).unwrap().rows.clone();
                let p = rows.binary_search(&(i as u32)).expect("row in L mask");
                let lj = j - self.lo(jb);
                self.blocks.get_mut(&(ib as u32, jb as u32)).unwrap()[p + lj * rows.len()] = v;
            }
            Less => {
                let cols = self.pattern.u_block(ib, jb).unwrap().cols.clone();
                let p = cols.binary_search(&(j as u32)).expect("col in U mask");
                let h = self.width(ib);
                let li = i - self.lo(ib);
                self.blocks.get_mut(&(ib as u32, jb as u32)).unwrap()[li + p * h] = v;
            }
        }
    }

    /// Read global row `g`'s subrow within column block `j` into `out`
    /// (a zeroed full-width buffer; only mask positions are written).
    /// Writes nothing if the block is structurally absent.
    fn read_row_into(&self, ib: usize, j: usize, g: usize, out: &mut [f64]) {
        use std::cmp::Ordering::*;
        let w = self.width(j);
        let lo_j = self.lo(j);
        match ib.cmp(&j) {
            Equal => {
                if let Some(p) = self.blocks.get(&(ib as u32, j as u32)) {
                    let li = g - self.lo(ib);
                    for c in 0..w {
                        out[c] = p[li + c * w];
                    }
                }
            }
            Greater => {
                if let Some(p) = self.blocks.get(&(ib as u32, j as u32)) {
                    let rows = self.l_rows(ib, j);
                    let rp = rows.binary_search(&(g as u32)).expect("row in mask");
                    for c in 0..w {
                        out[c] = p[rp + c * rows.len()];
                    }
                }
            }
            Less => {
                if let Some(p) = self.blocks.get(&(ib as u32, j as u32)) {
                    let cols = self.u_cols(ib, j);
                    let h = self.width(ib);
                    let li = g - self.lo(ib);
                    for (cp, &gc) in cols.iter().enumerate() {
                        out[gc as usize - lo_j] = p[li + cp * h];
                    }
                }
            }
        }
    }

    /// Write a full-width subrow into global row `g` of column block `j`
    /// (only mask positions are written; in debug builds, non-mask values
    /// must be zero per the padding invariant).
    fn write_row_full(&mut self, j: usize, g: usize, vals: &[f64]) {
        use std::cmp::Ordering::*;
        let w = self.width(j);
        let lo_j = self.lo(j);
        debug_assert_eq!(vals.len(), w);
        let ib = self.block_of[g] as usize;
        // local handle on the shared pattern so mask lookups don't hold a
        // borrow of `self` across the `get_mut` (no copies of the masks)
        let pattern = self.pattern.clone();
        match ib.cmp(&j) {
            Equal => {
                let li = g - self.lo(ib);
                if let Some(p) = self.blocks.get_mut(&(ib as u32, j as u32)) {
                    for c in 0..w {
                        p[li + c * w] = vals[c];
                    }
                }
            }
            Greater => {
                let rows = &pattern.l_block(ib, j).expect("L block in pattern").rows;
                if let Some(p) = self.blocks.get_mut(&(ib as u32, j as u32)) {
                    let rp = rows.binary_search(&(g as u32)).expect("row in mask");
                    for c in 0..w {
                        p[rp + c * rows.len()] = vals[c];
                    }
                }
            }
            Less => {
                let cols = &pattern.u_block(ib, j).expect("U block in pattern").cols;
                let h = self.width(ib);
                let li = g - self.lo(ib);
                if let Some(p) = self.blocks.get_mut(&(ib as u32, j as u32)) {
                    let mut mask_pos = 0usize;
                    for (c, &v) in vals.iter().enumerate() {
                        let gc = (lo_j + c) as u32;
                        if mask_pos < cols.len() && cols[mask_pos] == gc {
                            p[li + mask_pos * h] = v;
                            mask_pos += 1;
                        } else {
                            debug_assert!(v == 0.0, "nonzero outside U mask at col {gc}");
                        }
                    }
                } else {
                    debug_assert!(
                        vals.iter().all(|&v| v == 0.0),
                        "nonzero subrow into absent block ({ib},{j})"
                    );
                }
            }
        }
    }

    /// Whether this processor owns any storage for row `g` in column
    /// block `j` (i.e. owns block `(block_of(g), j)` and it exists).
    fn owns_row(&self, j: usize, g: usize) -> Option<usize> {
        let ib = self.block_of[g] as usize;
        if !self.owns_block(ib, j) {
            return None;
        }
        Some(ib)
    }

    fn block_exists(&self, ib: usize, j: usize) -> bool {
        use std::cmp::Ordering::*;
        match ib.cmp(&j) {
            Equal => true,
            Greater => self.pattern.l_block(ib, j).is_some(),
            Less => self.pattern.u_block(ib, j).is_some(),
        }
    }
}

/// A view into a shared multicast payload: `(payload, offset, len)`.
type PanelSlice = (Arc<Vec<f64>>, usize, usize);

/// Caches of received *batched* multicast payloads.
///
/// Stage `k`'s row multicast arrives as **one** message per sender (pivot
/// sequence + diagonal + every `L_ik` segment that sender owns); its
/// payload is registered here as per-`(k, i)` slices sharing one `Arc`.
/// TRSM'd `U_kj` row blocks likewise arrive batched — one column
/// multicast per schedule run, stored whole under `(k, batch_id)` with a
/// per-`(k, j)` layout map recorded when the run's `Trsm` ops replay.
///
/// Every entry of stage `k` is inserted *and* last consumed before the
/// executor's `Retire(k)`, which retires the whole stage: resident bytes
/// stay bounded by the in-flight window's working set instead of growing
/// monotonically over the whole factorization (the pre-retirement
/// behavior, still visible as [`PanelCaches::inserted_bytes`]).
struct PanelCaches {
    lpanels: HashMap<(usize, usize), PanelSlice>,
    /// `(k, j)` → `(batch_id, offset, len)` into the batch multicast.
    urow_layout: HashMap<(usize, usize), (usize, usize, usize)>,
    /// `(k, batch_id)` → the run's concatenated `U` row blocks.
    urow_batches: HashMap<(usize, usize), Arc<Vec<f64>>>,
    /// Bytes accounted to each in-flight stage, repaid at retirement.
    stage_bytes: HashMap<usize, u64>,
    resident_bytes: u64,
    peak_bytes: u64,
    inserted_bytes: u64,
}

impl PanelCaches {
    fn new() -> Self {
        Self {
            lpanels: HashMap::new(),
            urow_layout: HashMap::new(),
            urow_batches: HashMap::new(),
            stage_bytes: HashMap::new(),
            resident_bytes: 0,
            peak_bytes: 0,
            inserted_bytes: 0,
        }
    }

    fn account_insert(&mut self, k: usize, nbytes: u64) {
        self.inserted_bytes += nbytes;
        self.resident_bytes += nbytes;
        *self.stage_bytes.entry(k).or_default() += nbytes;
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
    }

    fn insert_urow_batch(&mut self, k: usize, batch_id: usize, m: &Message) {
        debug_assert!(!self.urow_batches.contains_key(&(k, batch_id)));
        self.account_insert(k, m.nbytes());
        self.urow_batches.insert((k, batch_id), m.floats.clone());
    }

    /// Retire every stage-`k` entry (its last consumer has completed).
    /// Payload `Arc`s drop here; a sole-holder drop frees the buffer.
    fn retire_stage(&mut self, k: usize) {
        self.lpanels.retain(|key, _| key.0 != k);
        self.urow_layout.retain(|key, _| key.0 != k);
        self.urow_batches.retain(|key, _| key.0 != k);
        if let Some(b) = self.stage_bytes.remove(&k) {
            self.resident_bytes -= b;
        }
    }

    fn is_empty(&self) -> bool {
        self.lpanels.is_empty() && self.urow_layout.is_empty() && self.urow_batches.is_empty()
    }
}

/// Factor `a` (already preprocessed) on a `grid` of thread-processors
/// with classic partial pivoting under the default **task-DAG** engine:
/// elimination-tree subtrees run fully locally on their proportional
/// owners; separator panels use the batched-multicast cyclic protocol.
pub fn factor_par2d(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
) -> Par2dResult {
    factor_par2d_sched(a, pattern, grid, mode, 1.0, Sched2d::TaskDag)
}

/// 2D factorization with threshold pivoting (`threshold = 1.0` is classic
/// partial pivoting; see [`crate::seq::factor_sequential_opts`]) and an
/// explicit lookahead window (`lookahead = 0` is the in-order schedule).
/// This always runs the stage-pipelined [`Sched2d::Stages`] engine — the
/// window sweep and Theorem 2 instrumentation live here.
pub fn factor_par2d_opts(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    lookahead: usize,
) -> Par2dResult {
    factor_par2d_sched(
        a,
        pattern,
        grid,
        mode,
        threshold,
        Sched2d::Stages { window: lookahead },
    )
}

/// 2D factorization under an explicit execution engine ([`Sched2d`]).
pub fn factor_par2d_sched(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    sched: Sched2d,
) -> Par2dResult {
    factor_par2d_impl(a, pattern, grid, mode, threshold, sched, None, None)
}

/// Panic-free [`factor_par2d_opts`]: a numerically singular input
/// surfaces as `Err(SolverError::ZeroPivot)` instead of poisoning the
/// processor grid and unwinding through the caller. Any non-numeric
/// panic still propagates unchanged.
pub fn factor_par2d_checked(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    lookahead: usize,
) -> Result<Par2dResult, crate::error::SolverError> {
    crate::error::catch_solver_panic(|| {
        factor_par2d_opts(a, pattern, grid, mode, threshold, lookahead)
    })
}

/// [`factor_par2d_sched`] under the runtime's delivery-jitter test mode
/// (see [`factor_par2d_jittered`]); the task-DAG engine must also come
/// out bitwise identical under scrambled message delivery.
pub fn factor_par2d_sched_jittered(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    sched: Sched2d,
    seed: u64,
) -> Par2dResult {
    factor_par2d_impl(a, pattern, grid, mode, threshold, sched, None, Some(seed))
}

/// Like [`factor_par2d_opts`], but every simulated processor records a
/// flight-recorder timeline into `collector`: one span per paper-named
/// stage (`panel-factor`, `scale-swap` with nested `row-swap`, `update`),
/// pivot-search/fill/lookahead counters, and the runtime's communication
/// marks.
pub fn factor_par2d_traced(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    lookahead: usize,
    collector: &Collector,
) -> Par2dResult {
    factor_par2d_impl(
        a,
        pattern,
        grid,
        mode,
        threshold,
        Sched2d::Stages { window: lookahead },
        Some(collector),
        None,
    )
}

/// [`factor_par2d_opts`] under the runtime's delivery-jitter test mode:
/// message receive interleaving is scrambled by a deterministic stream
/// seeded with `seed`. The factors must still come out bitwise identical
/// — the executor orders arithmetic by its schedule, never by arrival.
pub fn factor_par2d_jittered(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    lookahead: usize,
    seed: u64,
) -> Par2dResult {
    factor_par2d_impl(
        a,
        pattern,
        grid,
        mode,
        threshold,
        Sched2d::Stages { window: lookahead },
        None,
        Some(seed),
    )
}

#[allow(clippy::too_many_arguments)]
fn factor_par2d_impl(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    sched: Sched2d,
    collector: Option<&Collector>,
    jitter_seed: Option<u64>,
) -> Par2dResult {
    assert!(threshold > 0.0 && threshold <= 1.0);
    let nb = pattern.nblocks();
    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(grid.nprocs());

    // One deterministic operation list per grid column, shared by the
    // column's p_r ranks (identical replay is what keeps the intra-column
    // blocking exchanges deadlock-free).
    let graph = TaskGraph::build(&pattern);
    let (plan, schedules, sep_dest_cols, stage_slots) = match sched {
        Sched2d::Stages { window } => {
            let plan = Arc::new(TaskDagPlan::cyclic(nb, grid.nprocs()));
            let schedules: Vec<Arc<Vec<Op2d>>> = (0..grid.pc)
                .map(|c| Arc::new(lookahead_schedule(&graph, grid.pc, c, window)))
                .collect();
            // At most `W + 1` stages ever have live TRSM work, so `W + 1`
            // staging slots are collision-free (capped by the stage count
            // for absurd `W`)
            let slots = window.min(nb.saturating_sub(1)) + 1;
            (plan, schedules, Arc::new(vec![0u64; nb]), slots)
        }
        Sched2d::TaskDag => {
            let parent = block_etree(&pattern);
            let plan = Arc::new(plan_taskdag(&graph, &parent, grid.nprocs()));
            assert!(
                grid.pc <= 64,
                "subtree multicast masks hold at most 64 grid columns"
            );
            // stage-row multicast groups of subtree stages: the grid
            // columns holding their separator destinations
            let mut mask = vec![0u64; nb];
            for (t, task) in graph.tasks.iter().enumerate() {
                if let splu_sched::TaskKind::Update(k, j) = *task {
                    let (k, j) = (k as usize, j as usize);
                    debug_assert_eq!(graph.owner_block[t] as usize, j);
                    if plan.is_subtree(k) && !plan.is_subtree(j) {
                        mask[k] |= 1 << (j % grid.pc);
                    }
                }
            }
            let schedules: Vec<Arc<Vec<Op2d>>> = (0..grid.pc)
                .map(|c| Arc::new(taskdag_schedule(&graph, &plan, grid.pc, c)))
                .collect();
            // the destination-driven schedule interleaves stages freely,
            // so give every stage its own collision-free staging slot
            (plan, schedules, Arc::new(mask), nb.max(1))
        }
    };

    let t0 = std::time::Instant::now();
    type RankOut = (
        Vec<((u32, u32), Vec<f64>)>,
        Vec<(usize, Vec<u32>)>,
        FactorStats,
        u64,
        Vec<UpdateInterval>,
        (u64, u64),
    );
    let spmd = |mut ctx: ProcCtx| {
        let mut st = Store2d::new(
            a,
            pattern.clone(),
            grid,
            ctx.rank,
            plan.clone(),
            sep_dest_cols.clone(),
        );
        let (_rno, cno) = (st.rno, st.cno);
        let mut stats = FactorStats::default();
        let mut pivseqs: Vec<Option<Arc<Vec<u32>>>> = vec![None; nb];
        let mut intervals: Vec<UpdateInterval> = Vec::new();
        // bounded caches of received panels, retired per stage
        let mut caches = PanelCaches::new();
        let mut scratch = FactorScratch::new();

        if ctx.rank == 0 {
            // static fill predicted by the symbolic phase (Table 1's
            // overestimation statistic), recorded once per run
            ctx.probe().count(
                "fill_entries",
                (pattern.storage_entries() as u64).saturating_sub(a.nnz() as u64),
            );
            // placement-balancing steal statistics are a property of the
            // plan (identical on every rank): record them once
            ctx.probe().count("steal_attempts", plan.steal_attempts);
            ctx.probe().count("steal_hits", plan.steal_hits);
        }

        // ---- the schedule executor: replay this grid column's op list ----
        scratch.ensure_stage_slots(stage_slots);
        // a subtree column's operations sit in its owner's grid-column
        // list but execute on the owner alone; the column's other ranks
        // skip them (separator columns involve every rank as before)
        let my_rank = ctx.rank;
        let plan_ref = st.plan.clone();
        let participates =
            move |j: usize| !plan_ref.is_subtree(j) || plan_ref.col_owner[j] as usize == my_rank;
        // steal-aware idle accounting: once the last of this rank's
        // subtree-local tasks retires, its blocked receives are steal
        // idle — time it would spend stealing if any subtree had work
        // left — and the runtime attributes them separately
        let my_subtree_tasks: u64 = match sched {
            Sched2d::TaskDag => graph
                .tasks
                .iter()
                .map(|t| match *t {
                    splu_sched::TaskKind::Factor(k) => k as usize,
                    splu_sched::TaskKind::Update(_, j) => j as usize,
                })
                .filter(|&b| plan.is_subtree(b) && plan.col_owner[b] as usize == my_rank)
                .count() as u64,
            // the stage engine has no subtree phase: never flips
            Sched2d::Stages { .. } => u64::MAX,
        };
        if my_subtree_tasks == 0 {
            ctx.set_steal_phase(true);
        }
        // defense-in-depth next-expected-stage counters: column `j` must
        // absorb its update sources in ascending stage order for the
        // factors to be bitwise identical to the sequential driver
        let mut applied: Vec<u32> = vec![0; nb];
        let mut max_depth = 0u32;
        let ops = schedules[cno].as_slice();
        let mut swap_js: Vec<usize> = Vec::new();
        let mut trsm_js: Vec<usize> = Vec::new();
        let mut i = 0usize;
        while i < ops.len() {
            match ops[i] {
                Op2d::Factor { k, nsrcs } => {
                    let k = k as usize;
                    if !participates(k) {
                        i += 1;
                        continue;
                    }
                    debug_assert_eq!(applied[k], nsrcs, "Factor({k}) before its sources");
                    let piv = factor2d(&mut ctx, &mut st, k, threshold, &mut stats, &mut scratch);
                    pivseqs[k] = Some(Arc::new(piv));
                    if stats.subtree_local_tasks >= my_subtree_tasks {
                        ctx.set_steal_phase(true);
                    }
                }
                Op2d::Swap { k, .. } => {
                    // coalesce the maximal run of stage-`k` swaps (the
                    // schedule emits a draining stage's swaps
                    // back-to-back) into one batched exchange. Every rank
                    // of the grid column derives the identical run before
                    // the participation check, so batch ids agree.
                    swap_js.clear();
                    while let Some(Op2d::Swap { k: k2, j, seq }) = ops.get(i).copied() {
                        if k2 != k {
                            break;
                        }
                        if participates(j as usize) {
                            debug_assert_eq!(
                                applied[j as usize], seq,
                                "Swap({k},{j}) out of order"
                            );
                        }
                        swap_js.push(j as usize);
                        i += 1;
                    }
                    // a run never mixes subtree and separator destinations
                    // (task-DAG runs are single-destination; stage runs are
                    // all-cyclic), so participation is per-run
                    debug_assert!(swap_js
                        .iter()
                        .all(|&j| participates(j) == participates(swap_js[0])));
                    if !participates(swap_js[0]) {
                        continue;
                    }
                    let k = k as usize;
                    ensure_stage_row(&mut ctx, &st, &mut caches, &mut pivseqs, k, false);
                    let piv = pivseqs[k].clone().unwrap();
                    swap_columns(&mut ctx, &mut st, k, &swap_js, &piv, &mut scratch);
                    continue; // `i` already advanced past the run
                }
                Op2d::Trsm { k, .. } => {
                    // coalesce the run of stage-`k` TRSMs the same way:
                    // the owner row computes them all and multicasts ONE
                    // concatenated payload per run; every other rank
                    // records the batch layout for its update tasks
                    trsm_js.clear();
                    while let Some(Op2d::Trsm { k: k2, j }) = ops.get(i).copied() {
                        if k2 != k {
                            break;
                        }
                        trsm_js.push(j as usize);
                        i += 1;
                    }
                    debug_assert!(trsm_js
                        .iter()
                        .all(|&j| participates(j) == participates(trsm_js[0])));
                    if !participates(trsm_js[0]) {
                        continue;
                    }
                    trsm_columns(
                        &mut ctx,
                        &mut st,
                        k as usize,
                        &trsm_js,
                        &mut caches,
                        &mut pivseqs,
                        &mut stats,
                        &mut scratch,
                    );
                    continue; // `i` already advanced past the run
                }
                Op2d::Update {
                    k,
                    j,
                    seq,
                    deferred,
                    depth,
                } => {
                    let (k, j) = (k as usize, j as usize);
                    if !participates(j) {
                        i += 1;
                        continue;
                    }
                    debug_assert_eq!(applied[j], seq, "Update({k},{j}) out of stage order");
                    max_depth = max_depth.max(depth);
                    update2d(
                        &mut ctx,
                        &mut st,
                        k,
                        j,
                        deferred,
                        &mut caches,
                        &mut pivseqs,
                        &mut stats,
                        &mut scratch,
                        &clock,
                        &mut intervals,
                    );
                    applied[j] += 1;
                    if stats.subtree_local_tasks >= my_subtree_tasks {
                        ctx.set_steal_phase(true);
                    }
                }
                Op2d::Retire { k } => {
                    let k = k as usize;
                    // a rank with no stage-k swaps still received the
                    // stage-row multicast: consume it here so the
                    // pending map drains stage by stage. Under the
                    // task-DAG plan only the stage's multicast group
                    // receives one (subtree stages message no one else).
                    if expects_stage_row(&st, &pivseqs, k) {
                        ensure_stage_row(&mut ctx, &st, &mut caches, &mut pivseqs, k, false);
                    }
                    // stage k's last consumer has run on this rank: drop
                    // its cached panels so resident bytes never span more
                    // than the in-flight window
                    caches.retire_stage(k);
                    if mode == Sync2d::Barrier {
                        barrier.wait();
                    }
                }
            }
            i += 1;
        }
        debug_assert!(caches.is_empty(), "panel caches must drain by the end");
        stats.scratch_grow_events = scratch.grow_events();
        stats.scratch_peak_bytes = scratch.peak_bytes();
        ctx.probe()
            .count("scratch_grow_events", stats.scratch_grow_events);
        ctx.probe()
            .gauge_max("panel_cache_bytes_hw", caches.peak_bytes);
        ctx.probe().gauge_max("pipeline_depth_hw", max_depth as u64);
        stats.emit_update_probe(ctx.probe());

        let blocks: Vec<((u32, u32), Vec<f64>)> = st.blocks.into_iter().collect();
        let pivs: Vec<(usize, Vec<u32>)> = pivseqs
            .into_iter()
            .enumerate()
            .filter_map(|(k, p)| p.map(|p| (k, p.as_ref().clone())))
            .collect();
        let cache_bytes = (caches.peak_bytes, caches.inserted_bytes);
        (
            blocks,
            pivs,
            stats,
            ctx.max_pending_bytes,
            intervals,
            cache_bytes,
        )
    };
    let (outs, comm): (Vec<RankOut>, _) = match (collector, jitter_seed) {
        (Some(c), _) => run_machine_traced(grid.nprocs(), c, spmd),
        (None, Some(seed)) => run_machine_jittered(grid.nprocs(), seed, spmd),
        (None, None) => run_machine(grid.nprocs(), spmd),
    };
    let elapsed = t0.elapsed().as_secs_f64();

    // ---- host-side reassembly into packed ColBlock storage ----
    let mut blocks = BlockMatrix::from_csc_filtered(a, pattern.clone(), |_| true);
    // zero it first: we overwrite every stored panel from rank data
    for cb in &mut blocks.cols {
        cb.diag.fill(0.0);
        cb.lpanel.fill(0.0);
        for ub in &mut cb.ublocks {
            ub.panel.fill(0.0);
        }
    }
    let mut pivots: Vec<Vec<u32>> = vec![Vec::new(); nb];
    let mut merged = FactorStats::default();
    let mut peaks = Vec::new();
    let mut cache_peaks = Vec::new();
    let mut cache_inserted = Vec::new();
    let mut all_intervals = Vec::new();
    for (bks, pivs, stats, peak, ivs, (cpeak, cins)) in outs {
        for ((i, j), panel) in bks {
            let (i, j) = (i as usize, j as usize);
            let cb = &mut blocks.cols[j];
            use std::cmp::Ordering::*;
            match i.cmp(&j) {
                Equal => cb.diag.copy_from_slice(&panel),
                Greater => {
                    // locate the segment
                    let seg = cb
                        .lsegs
                        .iter()
                        .find(|s| s.iblock as usize == i)
                        .expect("segment");
                    let (s0, sl) = (seg.start as usize, seg.len as usize);
                    let ld = cb.lrows.len();
                    let w = cb.w as usize;
                    for c in 0..w {
                        cb.lpanel[s0 + c * ld..s0 + sl + c * ld]
                            .copy_from_slice(&panel[c * sl..(c + 1) * sl]);
                    }
                }
                Less => {
                    let ub_idx = cb
                        .ublocks
                        .binary_search_by_key(&(i as u32), |u| u.k)
                        .expect("ublock");
                    cb.ublocks[ub_idx].panel.copy_from_slice(&panel);
                }
            }
        }
        for (k, p) in pivs {
            if pivots[k].is_empty() {
                pivots[k] = p;
            }
        }
        merged.absorb(&stats);
        peaks.push(peak);
        cache_peaks.push(cpeak);
        cache_inserted.push(cins);
        all_intervals.extend(ivs);
    }
    // steal statistics live on the (rank-shared) plan, not per rank
    merged.steal_attempts = plan.steal_attempts;
    merged.steal_hits = plan.steal_hits;
    Par2dResult {
        blocks,
        pivots,
        stats: merged,
        elapsed,
        comm,
        peak_buffer_bytes: peaks,
        panel_cache_peak_bytes: cache_peaks,
        panel_cache_inserted_bytes: cache_inserted,
        intervals: all_intervals,
    }
}

/// `Factor(k)` for the 2D code (Fig. 13): cooperative panel factorization
/// by the processors of grid column `k mod p_c`. Returns the pivot
/// sequence (identical on every participating processor).
fn factor2d(
    ctx: &mut ProcCtx,
    st: &mut Store2d,
    k: usize,
    threshold: f64,
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
) -> Vec<u32> {
    let grid = st.grid;
    let (rno, cno) = (st.rno, st.cno);
    // a subtree stage factors entirely on its owner — every candidate row
    // of the panel column is local, so the search degenerates to the
    // sequential one (bitwise-identical tie-breaks included) and the only
    // communication is the optional stage-row multicast to the grid
    // columns holding separator destinations
    let local = st.plan.is_subtree(k);
    debug_assert!(if local {
        st.plan.col_owner[k] as usize == ctx.rank
    } else {
        cno == k % grid.pc
    });
    let span_start = ctx.probe().now();
    // statistics are counted once per task, on the diagonal owner, so the
    // merged numbers match the sequential code
    if local || rno == k % grid.pr {
        stats.factor_tasks += 1;
    }
    if local {
        stats.subtree_local_tasks += 1;
    }
    let w = st.width(k);
    let lo = st.lo(k);
    let diag_rno = k % grid.pr;
    let i_am_diag = local || rno == diag_rno;
    let mut piv_seq: Vec<u32> = Vec::with_capacity(w);
    let mut searched_rows: u64 = 0;

    // owned L blocks of column k (sorted by block id, hence by global row);
    // the id list is staged in the arena's index buffer for the duration
    let mut my_lblocks = std::mem::take(&mut scratch.idx);
    {
        let cap0 = my_lblocks.capacity();
        my_lblocks.clear();
        my_lblocks.extend(
            st.pattern.l_blocks[k]
                .iter()
                .filter(|l| local || (l.i as usize) % grid.pr == rno)
                .map(|l| l.i),
        );
        if my_lblocks.capacity() > cap0 {
            scratch.grow_events += 1;
        }
    }

    for t in 0..w {
        // ---- local candidate: (abs, is_diag, global row) ----
        let mut cand_row = NONE_ROW;
        let mut cand_abs = -1.0f64;
        let mut cand_diag = false;
        if i_am_diag {
            let p = &st.blocks[&(k as u32, k as u32)];
            searched_rows += (w - t) as u64;
            for r in t..w {
                let a = p[r + t * w].abs();
                if a > cand_abs {
                    cand_abs = a;
                    cand_row = (lo + r) as u32;
                    cand_diag = true;
                }
            }
        }
        for &i in &my_lblocks {
            let i = i as usize;
            let rows = st.l_rows(i, k);
            let p = &st.blocks[&(i as u32, k as u32)];
            searched_rows += rows.len() as u64;
            for (rp, &g) in rows.iter().enumerate() {
                let a = p[rp + t * rows.len()].abs();
                if a > cand_abs {
                    cand_abs = a;
                    cand_row = g;
                    cand_diag = false;
                }
            }
        }

        // the pivot subrow lands in scratch.rowbuf2, the displaced diag
        // row `m` in scratch.rowbuf — no per-step row allocations
        let piv_global = if i_am_diag {
            // collect remote candidates, keeping the best message alive
            // (its payload *is* the candidate subrow)
            let mut best_row = cand_row;
            let mut best_abs = cand_abs.max(0.0);
            let mut best_diag = cand_diag;
            let mut best_msg: Option<Message> = None;
            let peers = if local { 0 } else { grid.pr - 1 };
            for _ in 0..peers {
                let m = ctx.recv(tag(K_CAND, k, t, 0));
                let row = m.ints[0];
                if row == NONE_ROW {
                    ctx.recycle(m);
                    continue;
                }
                let a = m.floats[t].abs();
                // comparator: (abs desc, diag pref desc, global row asc);
                // remote candidates are never diag rows.
                let better = a > best_abs
                    || (a == best_abs && !best_diag && (best_row == NONE_ROW || row < best_row));
                if better {
                    best_row = row;
                    best_abs = a;
                    best_diag = false;
                    if let Some(old) = best_msg.replace(m) {
                        ctx.recycle(old);
                    }
                } else {
                    ctx.recycle(m);
                }
            }
            if best_row == NONE_ROW || best_abs <= 0.0 {
                // Typed panic payload: the runtime poison-broadcast wakes
                // blocked peers and the host recovers the `SolverError`
                // via `catch_solver_panic` (see `factor_par2d_checked`).
                std::panic::panic_any(crate::error::SolverError::ZeroPivot { step: lo + t });
            }
            // threshold pivoting: keep the diagonal row when close enough
            // to the maximum (the diagonal row lives on this processor)
            let diag_abs = st.blocks[&(k as u32, k as u32)][t + t * w].abs();
            if diag_abs > 0.0 && diag_abs >= threshold * best_abs {
                best_row = (lo + t) as u32;
                if let Some(m) = best_msg.take() {
                    ctx.recycle(m);
                }
            }
            // old row m (diag row t)
            prep_zeroed_f64(&mut scratch.rowbuf, w, &mut scratch.grow_events);
            st.read_row_into(k, k, lo + t, &mut scratch.rowbuf);
            prep_zeroed_f64(&mut scratch.rowbuf2, w, &mut scratch.grow_events);
            match &best_msg {
                Some(m) => scratch.rowbuf2.copy_from_slice(&m.floats[..w]),
                None => {
                    let ib = st.block_of[best_row as usize] as usize;
                    st.read_row_into(ib, k, best_row as usize, &mut scratch.rowbuf2);
                }
            }
            if let Some(m) = best_msg.take() {
                ctx.recycle(m);
            }
            if !local {
                // broadcast pivot decision + both subrows down the column
                let mut floats = ctx.floats_buf();
                floats.extend_from_slice(&scratch.rowbuf2);
                floats.extend_from_slice(&scratch.rowbuf);
                let mut ints = ctx.ints_buf();
                ints.push(best_row);
                ctx.multicast(
                    grid.my_col(ctx.rank),
                    Message::new(tag(K_PIVROW, k, t, 0), ints, floats),
                );
            }
            best_row as usize
        } else {
            // ship local candidate subrow to the diag owner
            let mut floats = ctx.floats_buf();
            if cand_row != NONE_ROW {
                floats.resize(w, 0.0);
                let ib = st.block_of[cand_row as usize] as usize;
                st.read_row_into(ib, k, cand_row as usize, &mut floats);
            }
            let mut ints = ctx.ints_buf();
            ints.push(cand_row);
            ctx.send(
                grid.rank_of(diag_rno, cno),
                Message::new(tag(K_CAND, k, t, 0), ints, floats),
            );
            let m = ctx.recv(tag(K_PIVROW, k, t, 0));
            let piv = m.ints[0] as usize;
            prep_cap_f64(&mut scratch.rowbuf2, w, &mut scratch.grow_events);
            scratch.rowbuf2.extend_from_slice(&m.floats[..w]);
            prep_cap_f64(&mut scratch.rowbuf, w, &mut scratch.grow_events);
            scratch.rowbuf.extend_from_slice(&m.floats[w..2 * w]);
            ctx.recycle(m);
            piv
        };
        let (piv_subrow, old_m_subrow) = (&scratch.rowbuf2, &scratch.rowbuf);

        // ---- apply the interchange to owned storage ----
        let row_m = lo + t;
        if piv_global != row_m {
            if i_am_diag {
                stats.row_interchanges += 1;
            }
            if i_am_diag {
                st.write_row_full(k, row_m, piv_subrow);
            }
            if st.owns_row(k, piv_global).is_some() {
                st.write_row_full(k, piv_global, old_m_subrow);
            }
        }
        piv_seq.push(piv_global as u32);

        // ---- scale + rank-1 update of owned rows ----
        let pv = piv_subrow[t];
        if i_am_diag {
            let p = st.blocks.get_mut(&(k as u32, k as u32)).unwrap();
            for r in (t + 1)..w {
                p[r + t * w] /= pv;
            }
            for c in (t + 1)..w {
                let u = piv_subrow[c];
                if u != 0.0 {
                    for r in (t + 1)..w {
                        let l = p[r + t * w];
                        p[r + c * w] -= l * u;
                    }
                }
            }
            stats.other_flops += ((w - t - 1) + 2 * (w - t - 1) * (w - t - 1)) as u64;
        }
        for &i in &my_lblocks {
            let i = i as usize;
            let nrows = st.l_rows(i, k).len();
            let p = st.blocks.get_mut(&(i as u32, k as u32)).unwrap();
            for r in 0..nrows {
                p[r + t * nrows] /= pv;
            }
            for c in (t + 1)..w {
                let u = piv_subrow[c];
                if u != 0.0 {
                    for r in 0..nrows {
                        let l = p[r + t * nrows];
                        p[r + c * nrows] -= l * u;
                    }
                }
            }
            stats.other_flops += (nrows + 2 * nrows * (w - t - 1)) as u64;
        }
    }

    // ---- ONE row multicast per stage: pivot sequence + diagonal +
    // every owned L block, concatenated. The receivers (same block
    // rows, other grid columns; for a subtree stage, the grid columns
    // of its separator destinations) recover the layout from the shared
    // pattern, so no per-segment messages — and no per-segment
    // message-passing overhead — are needed (`ensure_stage_row`).
    let bcast_mask = if local { st.sep_dest_cols[k] } else { 0 };
    if !local || bcast_mask != 0 {
        let mut ints = ctx.ints_buf();
        ints.extend_from_slice(&piv_seq);
        let mut p = ctx.floats_buf();
        if i_am_diag {
            p.extend_from_slice(&st.blocks[&(k as u32, k as u32)]);
        }
        for &i in &my_lblocks {
            p.extend_from_slice(&st.blocks[&(i, k as u32)]);
        }
        let msg = Message::new(tag(K_LPANEL, k, 0, 0), ints, p);
        if local {
            // an interior subtree stage sends nothing at all; a border
            // stage multicasts once to every rank of the separator
            // destinations' grid columns
            let me = ctx.rank;
            let dests: Vec<usize> = (0..grid.pc)
                .filter(|&c| (bcast_mask >> c) & 1 == 1)
                .flat_map(|c| (0..grid.pr).map(move |r| grid.rank_of(r, c)))
                .filter(|&r| r != me)
                .collect();
            ctx.multicast(dests, msg);
        } else {
            ctx.multicast(grid.my_row(ctx.rank), msg);
        }
    }
    scratch.idx = my_lblocks;
    ctx.probe().count("pivot_search_rows", searched_rows);
    ctx.probe().span_at("panel-factor", k as u32, span_start);
    piv_seq
}

/// Consume stage `k`'s row multicast if this rank has not yet: ranks of
/// the factoring grid column produced everything locally in [`factor2d`]
/// (the `pivseqs[k]` guard); every other rank receives ONE message from
/// the factoring rank of its grid row carrying the pivot sequence plus
/// the concatenated diagonal / `L` segment panels, whose layout both
/// sides derive from the shared pattern. The slices are registered in
/// `caches` under the same `(k, i)` keys the update tasks look up. The
/// executor calls this lazily at the first `Swap(k, ·)`, [`update2d`]
/// try-first (`try_first` reports whether the wait blocked), and
/// `Retire(k)` force-consumes so the pending map drains stage by stage.
fn ensure_stage_row(
    ctx: &mut ProcCtx,
    st: &Store2d,
    caches: &mut PanelCaches,
    pivseqs: &mut [Option<Arc<Vec<u32>>>],
    k: usize,
    try_first: bool,
) -> bool {
    if pivseqs[k].is_some() {
        return false;
    }
    let t = tag(K_LPANEL, k, 0, 0);
    let mut blocked = !try_first;
    let m = if try_first {
        ctx.try_recv(t).unwrap_or_else(|| {
            blocked = true;
            ctx.recv(t)
        })
    } else {
        ctx.recv(t)
    };
    pivseqs[k] = Some(m.ints.clone());
    caches.account_insert(k, m.nbytes());
    let fl = m.floats.clone();
    let grid = st.grid;
    let wk = st.width(k);
    let mut off = 0usize;
    if st.plan.is_subtree(k) {
        // a subtree stage's owner held the whole panel column, so its one
        // multicast carries the diagonal plus EVERY `L` segment
        caches.lpanels.insert((k, k), (fl.clone(), off, wk * wk));
        off += wk * wk;
        for l in &st.pattern.l_blocks[k] {
            let len = l.rows.len() * wk;
            caches
                .lpanels
                .insert((k, l.i as usize), (fl.clone(), off, len));
            off += len;
        }
    } else {
        // cyclic stage: the sender shares this rank's grid row, so the
        // payload holds exactly this row's diagonal / `L` segments
        if st.rno == k % grid.pr {
            caches.lpanels.insert((k, k), (fl.clone(), off, wk * wk));
            off += wk * wk;
        }
        for l in &st.pattern.l_blocks[k] {
            if (l.i as usize) % grid.pr == st.rno {
                let len = l.rows.len() * wk;
                caches
                    .lpanels
                    .insert((k, l.i as usize), (fl.clone(), off, len));
                off += len;
            }
        }
    }
    debug_assert_eq!(off, fl.len(), "stage-row payload layout mismatch");
    ctx.recycle(m);
    blocked
}

/// Whether this rank receives (or already produced) stage `k`'s row
/// multicast. Cyclic stages reach every rank: the factoring grid column
/// produces locally and every other column receives one message per grid
/// row. A subtree stage's owner multicasts only to the grid columns of
/// its separator destinations (none at all for an interior subtree
/// stage), so every other rank must not block waiting for one.
fn expects_stage_row(st: &Store2d, pivseqs: &[Option<Arc<Vec<u32>>>], k: usize) -> bool {
    if pivseqs[k].is_some() {
        return true; // produced locally — ensure_stage_row is a no-op
    }
    if st.plan.is_subtree(k) {
        (st.sep_dest_cols[k] >> st.cno) & 1 == 1
    } else {
        true
    }
}

/// Stage-`k` delayed row interchanges across a batch of owned column
/// blocks (Fig. 14's ScaleSwap, stage-batched): every rank of the grid
/// column walks the same `(t)` order; an interchange whose two rows live
/// on different block-row owners exchanges **one** message covering
/// every column of the batch rather than one per column — the schedule
/// emits a draining stage's swaps back-to-back exactly so they coalesce
/// here, collapsing the per-column lockstep points into one per pivot.
/// Both sides pack/unpack in batch-column order with existence flags
/// computed from the shared pattern, so the layouts agree by
/// construction.
fn swap_columns(
    ctx: &mut ProcCtx,
    st: &mut Store2d,
    k: usize,
    js: &[usize],
    piv: &Arc<Vec<u32>>,
    scratch: &mut FactorScratch,
) {
    let grid = st.grid;
    let cno = st.cno;
    debug_assert!(js.iter().all(|&j| st.grid_col(j) == cno));
    let lo = st.lo(k);
    let swap_start = ctx.probe().now();
    // the batch's first column disambiguates the message tag: a column
    // belongs to exactly one stage-`k` batch, and every rank of the grid
    // column replays the same schedule, so both sides derive the same id
    let batch_id = js[0];
    for (t, &pg) in piv.iter().enumerate() {
        let row_m = lo + t;
        let pg = pg as usize;
        if pg == row_m {
            continue;
        }
        let ib_m = k; // row m lives in row block k
        let ib_r = st.block_of[pg] as usize;
        // block ownership is uniform across the batch: a run never mixes
        // subtree and separator destination columns
        let own_m = st.owns_block(ib_m, js[0]);
        let own_r = st.owns_block(ib_r, js[0]);
        if own_m && own_r {
            for &j in js {
                let wj = st.width(j);
                let m_exists = st.block_exists(ib_m, j);
                let r_exists = st.block_exists(ib_r, j);
                // local swap via full-width rows staged in the arena
                prep_zeroed_f64(&mut scratch.rowbuf, wj, &mut scratch.grow_events);
                if m_exists {
                    st.read_row_into(ib_m, j, row_m, &mut scratch.rowbuf);
                }
                prep_zeroed_f64(&mut scratch.rowbuf2, wj, &mut scratch.grow_events);
                if r_exists {
                    st.read_row_into(ib_r, j, pg, &mut scratch.rowbuf2);
                }
                if m_exists {
                    st.write_row_full(j, row_m, &scratch.rowbuf2);
                } else {
                    debug_assert!(scratch.rowbuf2.iter().all(|&v| v == 0.0));
                }
                if r_exists {
                    st.write_row_full(j, pg, &scratch.rowbuf);
                } else {
                    debug_assert!(scratch.rowbuf.iter().all(|&v| v == 0.0));
                }
            }
            continue;
        }
        if !own_m && !own_r {
            continue;
        }
        // one side of a pairwise exchange: I hold exactly one of the rows
        let (my_ib, my_row, peer_ib) = if own_m {
            (ib_m, row_m, ib_r)
        } else {
            (ib_r, pg, ib_m)
        };
        let partner = grid.rank_of(peer_ib % grid.pr, cno);
        if js.iter().any(|&j| st.block_exists(my_ib, j)) {
            // pack my row's pieces for every batch column that has it
            let mut buf = ctx.floats_buf();
            for &j in js {
                if st.block_exists(my_ib, j) {
                    let wj = st.width(j);
                    prep_zeroed_f64(&mut scratch.rowbuf, wj, &mut scratch.grow_events);
                    st.read_row_into(my_ib, j, my_row, &mut scratch.rowbuf);
                    buf.extend_from_slice(&scratch.rowbuf);
                }
            }
            let ints = ctx.ints_buf();
            ctx.send(
                partner,
                Message::new(tag(K_SWAP, k, t, batch_id), ints, buf),
            );
        }
        if js.iter().any(|&j| st.block_exists(peer_ib, j)) {
            let m = ctx.recv(tag(K_SWAP, k, t, batch_id));
            let mut off = 0usize;
            for &j in js {
                if !st.block_exists(peer_ib, j) {
                    continue;
                }
                let wj = st.width(j);
                let piece = &m.floats[off..off + wj];
                if st.block_exists(my_ib, j) {
                    st.write_row_full(j, my_row, piece);
                } else {
                    debug_assert!(piece.iter().all(|&v| v == 0.0));
                }
                off += wj;
            }
            debug_assert_eq!(off, m.floats.len(), "swap batch layout mismatch");
            ctx.recycle(m);
        }
        // a column where only my row exists: the peer holds nothing, so
        // the interchange must be a no-op — my row is structurally zero
        #[cfg(debug_assertions)]
        for &j in js {
            if st.block_exists(my_ib, j) && !st.block_exists(peer_ib, j) {
                prep_zeroed_f64(&mut scratch.rowbuf, st.width(j), &mut scratch.grow_events);
                st.read_row_into(my_ib, j, my_row, &mut scratch.rowbuf);
                debug_assert!(scratch.rowbuf.iter().all(|&v| v == 0.0));
            }
        }
    }
    ctx.probe().span_at("row-swap", k as u32, swap_start);
}

/// TRSM `U_kj ← L_kk⁻¹ U_kj` over a schedule run of columns, plus ONE
/// column multicast of the run's concatenated results (the batched
/// scale phase of Fig. 14). The rank owning block row `k` computes and
/// sends; every other rank records where each `(k, j)` lands in the
/// batch payload — both sides replay the same schedule, so the run
/// membership, its order, and the derived `batch_id` (the run's first
/// column) agree by construction. `L_kk` is staged once per stage into
/// the arena's per-in-flight-stage slot, so chains of several
/// interleaved stages don't clobber each other's diagonal panel.
#[allow(clippy::too_many_arguments)]
fn trsm_columns(
    ctx: &mut ProcCtx,
    st: &mut Store2d,
    k: usize,
    js: &[usize],
    caches: &mut PanelCaches,
    pivseqs: &mut [Option<Arc<Vec<u32>>>],
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
) {
    let grid = st.grid;
    let w = st.width(k);
    let batch_id = js[0];
    // ownership of `(k, j)` is uniform across the batch (runs never mix
    // subtree and separator destinations)
    if !st.owns_block(k, js[0]) {
        let mut off = 0usize;
        for &j in js {
            let len = w * st.u_cols(k, j).len();
            caches.urow_layout.insert((k, j), (batch_id, off, len));
            off += len;
        }
        return;
    }
    let span_start = ctx.probe().now();
    let diag_key = (k as u32, k as u32);
    let lkk: &[f64] = if st.blocks.contains_key(&diag_key) {
        let blocks = &st.blocks;
        scratch.stage_panel(k, w * w, |buf| buf.extend_from_slice(&blocks[&diag_key]))
    } else {
        // my diagonal copy rides my stage-row multicast (offset 0)
        ensure_stage_row(ctx, st, caches, pivseqs, k, false);
        let (fl, off, len) = &caches.lpanels[&(k, k)];
        let (fl, off, len) = (fl.clone(), *off, *len);
        scratch.stage_panel(k, w * w, |buf| buf.extend_from_slice(&fl[off..off + len]))
    };
    // a subtree destination's updates all run on this owner: the TRSM'd
    // row block stays local and no column multicast is sent
    let publish = !st.plan.is_subtree(js[0]);
    let mut fl = if publish {
        ctx.floats_buf()
    } else {
        Vec::new()
    };
    for &j in js {
        let ncols = st.u_cols(k, j).len();
        let p = st.blocks.get_mut(&(k as u32, j as u32)).unwrap();
        dtrsm_left_lower_unit(w, ncols, lkk, w, p, w);
        stats.other_flops += (w * w * ncols) as u64;
        if publish {
            fl.extend_from_slice(p);
        }
    }
    if publish {
        let ints = ctx.ints_buf();
        let msg = Message::new(tag(K_UROW, k, batch_id, 0), ints, fl);
        ctx.multicast(grid.my_col(ctx.rank), msg);
    }
    ctx.probe().span_at("scale-swap", k as u32, span_start);
}

/// `Update2D(k, j)` (Fig. 15): update owned blocks `A_ij` using `L_ik`
/// (row multicast) and `U_kj` (column multicast). All of this processor's
/// destination segments are packed into one stacked `L` panel so the
/// per-block GEMM loop collapses into one tall call per kernel-dispatch
/// run, followed by a scatter driven by the pattern's precomputed maps.
///
/// `deferred` marks updates the lookahead executor pushed behind a later
/// panel factorization (depth > 1). Operand acquisition is try-first:
/// when every remote operand already sits in the mailbox the task counts
/// as a `lookahead_hit`; a blocking wait on a *critical-path* (non-
/// deferred) update is charged to `panel_wait_secs`, the stall the
/// lookahead window exists to hide.
#[allow(clippy::too_many_arguments)]
fn update2d(
    ctx: &mut ProcCtx,
    st: &mut Store2d,
    k: usize,
    j: usize,
    deferred: bool,
    caches: &mut PanelCaches,
    pivseqs: &mut [Option<Arc<Vec<u32>>>],
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
    clock: &AtomicU64,
    intervals: &mut Vec<UpdateInterval>,
) {
    let grid = st.grid;
    let (rno, cno) = (st.rno, st.cno);
    debug_assert_eq!(cno, st.grid_col(j));
    stats.update_tasks += 1;
    // a subtree destination's update runs wholly on the subtree owner —
    // and, when the source stage is from the same subtree (always true:
    // updates into a subtree column never cross subtrees), without any
    // messages at all
    let sub_j = st.plan.is_subtree(j);
    if sub_j {
        stats.subtree_local_tasks += 1;
    }

    // my destination row blocks: L rows of column k in row blocks ≡ rno
    // (every row block, for a subtree destination — this rank owns the
    // whole panel column). The segment metadata is borrowed straight from
    // the shared pattern (via a local Arc handle), so no per-task copies
    // are made; `li` is the segment's position in `l_blocks[k]`, the
    // scatter-map key.
    let pattern = st.pattern.clone();
    let my_segs = || {
        pattern.l_blocks[k]
            .iter()
            .enumerate()
            .filter(|(_, l)| sub_j || (l.i as usize) % grid.pr == rno)
    };
    if my_segs().next().is_none() {
        let start = clock.fetch_add(1, Ordering::Relaxed);
        let end = clock.fetch_add(1, Ordering::Relaxed);
        intervals.push(UpdateInterval {
            stage: k as u32,
            proc_col: cno as u32,
            start,
            end,
        });
        return;
    }

    // gather remote inputs before opening the interval: Theorem 2 bounds
    // the stages simultaneously *in processing*, so the recorded interval
    // must cover the update's compute, not the blocking waits for its
    // operands (which would stretch it across arbitrarily many ticks on
    // an oversubscribed host). Try-first so a fully-arrived operand set
    // counts as a lookahead hit rather than a stall.
    let t_wait = std::time::Instant::now();
    let mut blocked = false;
    if !st.owns_block(k, j) {
        // the layout entry was recorded when the run's Trsm ops replayed
        let (bid, _, _) = caches.urow_layout[&(k, j)];
        if !caches.urow_batches.contains_key(&(k, bid)) {
            let t = tag(K_UROW, k, bid, 0);
            let m = ctx.try_recv(t).unwrap_or_else(|| {
                blocked = true;
                ctx.recv(t)
            });
            caches.insert_urow_batch(k, bid, &m);
            ctx.recycle(m);
        }
    }
    if !st.owns_col_panel(k) {
        blocked |= ensure_stage_row(ctx, st, caches, pivseqs, k, true);
    }
    let waited = t_wait.elapsed().as_secs_f64();
    stats.update_wait_secs += waited;
    if blocked {
        if !deferred {
            stats.panel_wait_secs += waited;
        }
    } else {
        stats.lookahead_hits += 1;
    }
    if deferred {
        stats.deferred_updates += 1;
    }
    let span_start = ctx.probe().now();
    let start = clock.fetch_add(1, Ordering::Relaxed);

    // U_kj: local if I own it, else a slice of the batched column
    // multicast from (k mod pr, cno) — read in place, no per-task copy.
    let wk = st.width(k);
    let uj = pattern.u_blocks[k]
        .binary_search_by_key(&(j as u32), |u| u.j)
        .expect("U block in pattern");
    let u_cols = &pattern.u_blocks[k][uj].cols;
    let nuc = u_cols.len();
    stats.scatter_map_reuse_hits += 1;
    let u_batch; // keeps the batch payload alive through the GEMM loop
    let usrc: &[f64] = if st.owns_block(k, j) {
        &st.blocks[&(k as u32, j as u32)]
    } else {
        // zero-copy: GEMM reads straight out of the batch multicast
        let (bid, off, len) = caches.urow_layout[&(k, j)];
        u_batch = caches.urow_batches[&(k, bid)].clone();
        &u_batch[off..off + len]
    };

    let lo_j = st.lo(j);
    let wj = st.width(j);
    let seg_len = |li: u32| pattern.l_blocks[k][li as usize].rows.len();

    // owned segment ids staged in the arena's index buffer for the
    // indexed run-coalescing passes below
    let mut segids = std::mem::take(&mut scratch.idx);
    {
        let cap0 = segids.capacity();
        segids.clear();
        segids.extend(my_segs().map(|(li, _)| li as u32));
        if segids.capacity() > cap0 {
            scratch.grow_events += 1;
        }
    }
    let mtot: usize = segids.iter().map(|&li| seg_len(li)).sum();

    // ---- pack the owned L segments into one stacked panel (ld = mtot) ----
    // The seed copied every segment into the arena once per GEMM anyway;
    // interleaving the copies into one tall panel costs the same traffic.
    let t_gemm = std::time::Instant::now();
    prep_zeroed_f64(&mut scratch.panel2, mtot * wk, &mut scratch.grow_events);
    {
        let mut off = 0usize;
        for &li in &segids {
            let i = pattern.l_blocks[k][li as usize].i as usize;
            let mrows = seg_len(li);
            let src: &[f64] = if st.owns_col_panel(k) {
                &st.blocks[&(i as u32, k as u32)]
            } else {
                let (fl, off, len) = &caches.lpanels[&(k, i)];
                &fl[*off..*off + *len]
            };
            for c in 0..wk {
                scratch.panel2[off + c * mtot..off + c * mtot + mrows]
                    .copy_from_slice(&src[c * mrows..(c + 1) * mrows]);
            }
            off += mrows;
        }
        debug_assert_eq!(off, mtot);
    }

    // ---- stacked GEMM: temp = L_stack (mtot × wk) · U_kj (wk × nuc) ----
    // One call per maximal run of segments agreeing on the kernel's shape
    // dispatch keeps the arithmetic bitwise identical to the seed's
    // per-segment calls (see `gemm_uses_blocked_path`).
    prep_zeroed_f64(&mut scratch.temp, mtot * nuc, &mut scratch.grow_events);
    let mut s0 = 0usize;
    let mut row0 = 0usize;
    while s0 < segids.len() {
        let blocked = gemm_uses_blocked_path(seg_len(segids[s0]), nuc, wk);
        let mut s1 = s0 + 1;
        let mut mrun = seg_len(segids[s0]);
        while s1 < segids.len() && gemm_uses_blocked_path(seg_len(segids[s1]), nuc, wk) == blocked {
            mrun += seg_len(segids[s1]);
            s1 += 1;
        }
        let a = &scratch.panel2[row0..];
        let c = &mut scratch.temp[row0..];
        if blocked {
            dgemm_with(
                mrun,
                nuc,
                wk,
                1.0,
                a,
                mtot,
                usrc,
                wk,
                0.0,
                c,
                mtot,
                &mut scratch.gemm,
            );
        } else {
            dgemm_naive(mrun, nuc, wk, 1.0, a, mtot, usrc, wk, 0.0, c, mtot);
        }
        stats.update_gemm_calls += 1;
        stats.update_gemm_rows_max = stats.update_gemm_rows_max.max(mrun as u64);
        row0 += mrun;
        s0 = s1;
    }
    stats.gemm_flops += (2 * mtot * nuc * wk) as u64;
    stats.update_gemm_secs += t_gemm.elapsed().as_secs_f64();

    // ---- map-driven scatter-subtract, one destination per segment ----
    let t_scatter = std::time::Instant::now();
    let temp = &scratch.temp;
    let mut off = 0usize;
    for &li in &segids {
        let l = &pattern.l_blocks[k][li as usize];
        let i = l.i as usize;
        let rows = &l.rows;
        let mrows = rows.len();
        let tcol_at = |cp: usize| off + cp * mtot;

        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Equal => {
                let dest = st.blocks.get_mut(&(i as u32, j as u32)).unwrap();
                for (cp, &gc) in u_cols.iter().enumerate() {
                    let dc = gc as usize - lo_j;
                    for (rp, &g) in rows.iter().enumerate() {
                        dest[(g as usize - lo_j) + dc * wj] -= temp[tcol_at(cp) + rp];
                    }
                }
            }
            Greater => {
                // a padded source row may be absent from the destination
                // mask; its contribution is exactly zero and is skipped.
                // The precomputed map holds the destination positions the
                // seed recomputed by merging on every task.
                let map = pattern.scatter_map(k, li as usize, uj);
                let Some(lb) = pattern.l_block(i, j) else {
                    debug_assert!(map.iter().all(|&p| p == u32::MAX));
                    debug_assert!((0..nuc).all(|cp| temp[tcol_at(cp)..tcol_at(cp) + mrows]
                        .iter()
                        .all(|&v| v == 0.0)));
                    off += mrows;
                    continue;
                };
                let ldd = lb.rows.len();
                let dest = st.blocks.get_mut(&(i as u32, j as u32)).unwrap();
                for (cp, &gc) in u_cols.iter().enumerate() {
                    let dc = gc as usize - lo_j;
                    for (rp, &dr) in map.iter().enumerate() {
                        if dr != u32::MAX {
                            dest[dr as usize + dc * ldd] -= temp[tcol_at(cp) + rp];
                        } else {
                            debug_assert_eq!(temp[tcol_at(cp) + rp], 0.0);
                        }
                    }
                }
            }
            Less => {
                let map = pattern.scatter_map(k, li as usize, uj);
                let Some(_ub) = pattern.u_block(i, j) else {
                    debug_assert!(map.iter().all(|&p| p == u32::MAX));
                    debug_assert!((0..nuc).all(|cp| temp[tcol_at(cp)..tcol_at(cp) + mrows]
                        .iter()
                        .all(|&v| v == 0.0)));
                    off += mrows;
                    continue;
                };
                let h = st.width(i);
                let lo_i = st.lo(i);
                let dest = st.blocks.get_mut(&(i as u32, j as u32)).unwrap();
                for (cp, &dc) in map.iter().enumerate() {
                    if dc == u32::MAX {
                        debug_assert!(temp[tcol_at(cp)..tcol_at(cp) + mrows]
                            .iter()
                            .all(|&v| v == 0.0));
                        continue;
                    }
                    for (rp, &g) in rows.iter().enumerate() {
                        dest[(g as usize - lo_i) + dc as usize * h] -= temp[tcol_at(cp) + rp];
                    }
                }
            }
        }
        off += mrows;
    }
    stats.update_scatter_secs += t_scatter.elapsed().as_secs_f64();
    scratch.idx = segids;
    ctx.probe().span_at("update", k as u32, span_start);
    let end = clock.fetch_add(1, Ordering::Relaxed);
    intervals.push(UpdateInterval {
        stage: k as u32,
        proc_col: cno as u32,
        start,
        end,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::factor_sequential;
    use crate::solve::solve_factored;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{amalgamate, partition_supernodes, static_symbolic_factorization};

    fn pattern_for(a: &splu_sparse::CscMatrix, r: usize, bsize: usize) -> Arc<BlockPattern> {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, bsize);
        let part = amalgamate(&s, &base, r, bsize);
        Arc::new(BlockPattern::build(&s, &part))
    }

    fn check_matches_sequential(a: &splu_sparse::CscMatrix, grid: Grid, mode: Sync2d) {
        let pattern = pattern_for(a, 4, 6);
        let mut seq = BlockMatrix::from_csc(a, pattern.clone());
        let (piv_seq, _) = factor_sequential(&mut seq).unwrap();
        let par = factor_par2d(a, pattern, grid, mode);
        assert_eq!(par.pivots, piv_seq, "pivot sequences must match");
        let n = a.ncols();
        for i in 0..n {
            for j in 0..n {
                let s = seq.get_entry(i, j);
                let p = par.blocks.get_entry(i, j);
                assert!(
                    s == p,
                    "entry ({i},{j}): sequential {s} vs 2D {p} (grid {}x{})",
                    grid.pr,
                    grid.pc
                );
            }
        }
    }

    #[test]
    fn matches_sequential_1x1() {
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        check_matches_sequential(&a, Grid::new(1, 1), Sync2d::Async);
    }

    #[test]
    fn matches_sequential_various_grids_async() {
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        for (pr, pc) in [(1, 2), (2, 1), (2, 2), (2, 3), (3, 2)] {
            check_matches_sequential(&a, Grid::new(pr, pc), Sync2d::Async);
        }
    }

    #[test]
    fn matches_sequential_barrier_mode() {
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        check_matches_sequential(&a, Grid::new(2, 2), Sync2d::Barrier);
    }

    #[test]
    fn random_matrix_2d_solve() {
        let a = gen::random_sparse(80, 4, 0.5, ValueModel::default());
        let pattern = pattern_for(&a, 4, 8);
        let par = factor_par2d(&a, pattern, Grid::new(2, 2), Sync2d::Async);
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
        let b = a.matvec(&xt);
        let x = solve_factored(&par.blocks, &par.pivots, &b);
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-7, "solve error {err}");
    }

    #[test]
    fn overlap_degree_respects_theorem2_bound() {
        // the paper's bound holds for the in-order schedule (W = 0)
        let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
        let pattern = pattern_for(&a, 4, 4);
        let grid = Grid::new(2, 3);
        let par = factor_par2d_opts(&a, pattern, grid, Sync2d::Async, 1.0, 0);
        let d = par.overlap_degree();
        assert!(
            d as usize <= grid.pc,
            "overlap degree {d} exceeds Theorem 2 bound p_c = {}",
            grid.pc
        );
    }

    #[test]
    fn overlap_degree_respects_window_generalized_bound() {
        // with lookahead the Theorem 2 bound relaxes to p_c + W: the
        // window admits at most W extra unretired stages per column
        let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
        let grid = Grid::new(2, 3);
        for w in [1usize, 2, 4] {
            let pattern = pattern_for(&a, 4, 4);
            let par = factor_par2d_opts(&a, pattern, grid, Sync2d::Async, 1.0, w);
            let d = par.overlap_degree();
            assert!(
                d as usize <= grid.pc + w,
                "overlap degree {d} exceeds generalized bound p_c + W = {}",
                grid.pc + w
            );
        }
    }

    #[test]
    fn barrier_mode_has_zero_stage_overlap() {
        // W = 0 barrier mode: a barrier after every stage ⇒ no overlap
        let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
        let pattern = pattern_for(&a, 4, 4);
        let par = factor_par2d_opts(&a, pattern, Grid::new(2, 2), Sync2d::Barrier, 1.0, 0);
        assert_eq!(par.overlap_degree(), 0);
    }

    #[test]
    fn barrier_mode_overlap_bounded_by_window() {
        // the per-retired-stage barrier lets at most W stages overlap
        let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
        for w in [1usize, 2, 4] {
            let pattern = pattern_for(&a, 4, 4);
            let par = factor_par2d_opts(&a, pattern, Grid::new(2, 2), Sync2d::Barrier, 1.0, w);
            let d = par.overlap_degree();
            assert!(
                d as usize <= w,
                "barrier-mode overlap degree {d} exceeds window {w}"
            );
        }
    }

    #[test]
    fn sustained_depth_never_exceeds_max_overlap() {
        let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
        let pattern = pattern_for(&a, 4, 4);
        let par = factor_par2d_opts(&a, pattern, Grid::new(2, 2), Sync2d::Async, 1.0, 2);
        let p95 = par.sustained_depth_p95();
        assert!(p95 >= 1, "a busy run has at least one in-flight stage");
        // d concurrent distinct stages span a stage range of ≥ d − 1
        assert!(
            p95 <= par.overlap_degree() + 1,
            "p95 depth {p95} exceeds max concurrent stages {}",
            par.overlap_degree() + 1
        );
    }

    #[test]
    fn stats_match_sequential_counts() {
        // cooperative Factor2d must not multi-count tasks/interchanges
        // across the p_r processors of a grid column
        let a = gen::grid2d(7, 7, 0.4, ValueModel::default());
        let pattern = pattern_for(&a, 4, 6);
        let mut seq = BlockMatrix::from_csc(&a, pattern.clone());
        let (_, seq_stats) = factor_sequential(&mut seq).unwrap();
        let par = factor_par2d(&a, pattern, Grid::new(2, 2), Sync2d::Async);
        assert_eq!(par.stats.factor_tasks, seq_stats.factor_tasks);
        assert_eq!(par.stats.row_interchanges, seq_stats.row_interchanges);
    }

    #[test]
    fn communication_volume_counted() {
        let a = gen::grid2d(7, 7, 0.3, ValueModel::default());
        let pattern = pattern_for(&a, 4, 6);
        let par = factor_par2d(&a, pattern, Grid::new(2, 2), Sync2d::Async);
        assert!(par.comm.0 > 0);
        assert_eq!(par.peak_buffer_bytes.len(), 4);
    }
}
