//! 2D block-cyclic asynchronous sparse LU (§4.3, §5.2, Figs. 12–15).
//!
//! Processors form a `p_r × p_c` grid; block `A_ij` lives on
//! `P_{i mod p_r, j mod p_c}`. A single `Factor(k)` is parallelized over
//! the `p_r` processors of one grid column (distributed pivot search with
//! subrow exchange), and a single update stage over all processors. The
//! SPMD control flow follows Fig. 12:
//!
//! ```text
//! if my column owns block 0 { Factor2D(0) }
//! for k in 0..N {
//!     ScaleSwap(k)                       // pivseq recv, delayed swaps,
//!                                        // TRSM U_k,* + column multicast
//!     if I own column k+1 { Update2D(k, k+1); Factor2D(k+1) }
//!     for j in k+2.. owned { Update2D(k, j) }
//! }
//! ```
//!
//! In [`Sync2d::Async`] mode there is no global synchronization at all:
//! processors pipeline across elimination stages, bounded by the overlap
//! degrees of Theorem 2 (`p_c` across the machine, `min(p_r − 1, p_c)`
//! within a processor column). [`Sync2d::Barrier`] adds the paper's
//! ablation: a global barrier per stage (Table 7 compares the two).
//!
//! The factors are **bitwise identical** to the sequential code: the
//! distributed pivot search reproduces the sequential tie-break exactly,
//! and per-entry update contributions accumulate in the same stage order.

use crate::scratch::{prep_cap_f64, prep_zeroed_f64, FactorScratch};
use crate::seq::FactorStats;
use crate::storage::BlockMatrix;
use splu_kernels::{dgemm_naive, dgemm_with, dtrsm_left_lower_unit, gemm_uses_blocked_path};
use splu_machine::{run_machine, run_machine_traced, Grid, Message, ProcCtx};
use splu_probe::Collector;
use splu_symbolic::BlockPattern;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Synchronization mode for the 2D code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sync2d {
    /// Fully asynchronous pipelined execution (the paper's main 2D code).
    Async,
    /// Global barrier after every elimination stage (Table 7's baseline).
    Barrier,
}

/// One recorded `Update2D` execution interval (for Theorem 2's overlap
/// analysis), in global logical-clock ticks.
#[derive(Debug, Clone, Copy)]
pub struct UpdateInterval {
    /// Source stage `k`.
    pub stage: u32,
    /// Grid column of the executing processor.
    pub proc_col: u32,
    /// Logical start tick.
    pub start: u64,
    /// Logical end tick.
    pub end: u64,
}

/// Result of a 2D factorization.
pub struct Par2dResult {
    /// Reassembled factored storage (host side).
    pub blocks: BlockMatrix,
    /// Per-block pivot sequences.
    pub pivots: Vec<Vec<u32>>,
    /// Merged statistics.
    pub stats: FactorStats,
    /// Wall-clock seconds of the parallel section.
    pub elapsed: f64,
    /// (messages, bytes) sent in total.
    pub comm: (u64, u64),
    /// Per-processor peak parked-message bytes (§5.2 buffer-space).
    pub peak_buffer_bytes: Vec<u64>,
    /// Per-processor peak resident bytes of the lookahead panel caches
    /// (received `L`/`U` multicast panels held for reuse). With per-stage
    /// retirement this stays bounded by one stage's working set.
    pub panel_cache_peak_bytes: Vec<u64>,
    /// Per-processor cumulative bytes ever inserted into the panel
    /// caches — what the peak would approach if entries were never
    /// evicted (the pre-retirement behavior).
    pub panel_cache_inserted_bytes: Vec<u64>,
    /// Update execution intervals for overlap analysis.
    pub intervals: Vec<UpdateInterval>,
}

impl Par2dResult {
    /// Measured stage-overlapping degree across all processors:
    /// `max{k2 − k1 : Update2D(k1,*) and Update2D(k2,*) ran concurrently}`
    /// (Theorem 2 bounds this by `p_c`).
    pub fn overlap_degree(&self) -> u32 {
        overlap_degree(&self.intervals, None)
    }

    /// Measured overlap degree within one processor-grid column
    /// (Theorem 2 bounds this by `min(p_r − 1, p_c)`).
    pub fn overlap_degree_within_col(&self, col: u32) -> u32 {
        overlap_degree(&self.intervals, Some(col))
    }
}

fn overlap_degree(iv: &[UpdateInterval], col: Option<u32>) -> u32 {
    let mut best = 0u32;
    for (a, x) in iv.iter().enumerate() {
        if col.is_some_and(|c| x.proc_col != c) {
            continue;
        }
        for y in &iv[a + 1..] {
            if col.is_some_and(|c| y.proc_col != c) {
                continue;
            }
            if x.start < y.end && y.start < x.end {
                best = best.max(x.stage.abs_diff(y.stage));
            }
        }
    }
    best
}

// ---- message tags ----
const K_CAND: u64 = 1;
const K_PIVROW: u64 = 2;
const K_PIVSEQ: u64 = 3;
const K_LPANEL: u64 = 4;
const K_UROW: u64 = 5;
const K_SWAP: u64 = 6;

fn tag(kind: u64, k: usize, x: usize, y: usize) -> u64 {
    debug_assert!(k < 1 << 20 && x < 1 << 20 && y < 1 << 20);
    (kind << 60) | ((k as u64) << 40) | ((x as u64) << 20) | y as u64
}

const NONE_ROW: u32 = u32::MAX;

/// Per-processor block storage for the 2D mapping.
struct Store2d {
    pattern: Arc<BlockPattern>,
    grid: Grid,
    rno: usize,
    cno: usize,
    /// Global index → block id (cached; rebuilding it per access is O(n)).
    block_of: Vec<u32>,
    /// Owned blocks: `(i, j) → column-major panel`. Diagonal blocks are
    /// `w × w`; L blocks `mask_rows × w`; U blocks `w_i × mask_cols`.
    blocks: HashMap<(u32, u32), Vec<f64>>,
}

impl Store2d {
    fn new(
        a: &splu_sparse::CscMatrix,
        pattern: Arc<BlockPattern>,
        grid: Grid,
        rank: usize,
    ) -> Self {
        let (rno, cno) = grid.coords_of(rank);
        let block_of = pattern.part.block_of_index();
        let mut st = Self {
            pattern,
            grid,
            rno,
            cno,
            block_of,
            blocks: HashMap::new(),
        };
        let nb = st.pattern.nblocks();
        // allocate owned blocks
        for j in 0..nb {
            if j % grid.pc != cno {
                continue;
            }
            if j % grid.pr == rno {
                let w = st.pattern.part.width(j);
                st.blocks.insert((j as u32, j as u32), vec![0.0; w * w]);
            }
            for l in &st.pattern.l_blocks[j] {
                if (l.i as usize) % grid.pr == rno {
                    let w = st.pattern.part.width(j);
                    st.blocks
                        .insert((l.i, j as u32), vec![0.0; l.rows.len() * w]);
                }
            }
        }
        for k in 0..nb {
            if k % grid.pr != rno {
                continue;
            }
            let h = st.pattern.part.width(k);
            for u in &st.pattern.u_blocks[k] {
                if (u.j as usize) % grid.pc == cno {
                    st.blocks
                        .insert((k as u32, u.j), vec![0.0; h * u.cols.len()]);
                }
            }
        }
        // scatter owned entries of A
        for (i, j, v) in a.iter() {
            let (ib, jb) = (st.block_of[i] as usize, st.block_of[j] as usize);
            if jb % grid.pc != cno || ib % grid.pr != rno {
                continue;
            }
            st.write_entry(ib, jb, i, j, v);
        }
        st
    }

    fn lo(&self, b: usize) -> usize {
        self.pattern.part.start(b)
    }

    fn width(&self, b: usize) -> usize {
        self.pattern.part.width(b)
    }

    /// L block's present rows (global ids) from the pattern.
    fn l_rows(&self, i: usize, j: usize) -> &[u32] {
        &self.pattern.l_block(i, j).expect("L block in pattern").rows
    }

    /// U block's present cols (global ids) from the pattern.
    fn u_cols(&self, k: usize, j: usize) -> &[u32] {
        &self.pattern.u_block(k, j).expect("U block in pattern").cols
    }

    fn write_entry(&mut self, ib: usize, jb: usize, i: usize, j: usize, v: f64) {
        use std::cmp::Ordering::*;
        let w = self.width(jb);
        match ib.cmp(&jb) {
            Equal => {
                let (li, lj) = (i - self.lo(ib), j - self.lo(jb));
                self.blocks.get_mut(&(ib as u32, jb as u32)).unwrap()[li + lj * w] = v;
            }
            Greater => {
                let rows = self.pattern.l_block(ib, jb).unwrap().rows.clone();
                let p = rows.binary_search(&(i as u32)).expect("row in L mask");
                let lj = j - self.lo(jb);
                self.blocks.get_mut(&(ib as u32, jb as u32)).unwrap()[p + lj * rows.len()] = v;
            }
            Less => {
                let cols = self.pattern.u_block(ib, jb).unwrap().cols.clone();
                let p = cols.binary_search(&(j as u32)).expect("col in U mask");
                let h = self.width(ib);
                let li = i - self.lo(ib);
                self.blocks.get_mut(&(ib as u32, jb as u32)).unwrap()[li + p * h] = v;
            }
        }
    }

    /// Read global row `g`'s subrow within column block `j` into `out`
    /// (a zeroed full-width buffer; only mask positions are written).
    /// Writes nothing if the block is structurally absent.
    fn read_row_into(&self, ib: usize, j: usize, g: usize, out: &mut [f64]) {
        use std::cmp::Ordering::*;
        let w = self.width(j);
        let lo_j = self.lo(j);
        match ib.cmp(&j) {
            Equal => {
                if let Some(p) = self.blocks.get(&(ib as u32, j as u32)) {
                    let li = g - self.lo(ib);
                    for c in 0..w {
                        out[c] = p[li + c * w];
                    }
                }
            }
            Greater => {
                if let Some(p) = self.blocks.get(&(ib as u32, j as u32)) {
                    let rows = self.l_rows(ib, j);
                    let rp = rows.binary_search(&(g as u32)).expect("row in mask");
                    for c in 0..w {
                        out[c] = p[rp + c * rows.len()];
                    }
                }
            }
            Less => {
                if let Some(p) = self.blocks.get(&(ib as u32, j as u32)) {
                    let cols = self.u_cols(ib, j);
                    let h = self.width(ib);
                    let li = g - self.lo(ib);
                    for (cp, &gc) in cols.iter().enumerate() {
                        out[gc as usize - lo_j] = p[li + cp * h];
                    }
                }
            }
        }
    }

    /// Write a full-width subrow into global row `g` of column block `j`
    /// (only mask positions are written; in debug builds, non-mask values
    /// must be zero per the padding invariant).
    fn write_row_full(&mut self, j: usize, g: usize, vals: &[f64]) {
        use std::cmp::Ordering::*;
        let w = self.width(j);
        let lo_j = self.lo(j);
        debug_assert_eq!(vals.len(), w);
        let ib = self.block_of[g] as usize;
        // local handle on the shared pattern so mask lookups don't hold a
        // borrow of `self` across the `get_mut` (no copies of the masks)
        let pattern = self.pattern.clone();
        match ib.cmp(&j) {
            Equal => {
                let li = g - self.lo(ib);
                if let Some(p) = self.blocks.get_mut(&(ib as u32, j as u32)) {
                    for c in 0..w {
                        p[li + c * w] = vals[c];
                    }
                }
            }
            Greater => {
                let rows = &pattern.l_block(ib, j).expect("L block in pattern").rows;
                if let Some(p) = self.blocks.get_mut(&(ib as u32, j as u32)) {
                    let rp = rows.binary_search(&(g as u32)).expect("row in mask");
                    for c in 0..w {
                        p[rp + c * rows.len()] = vals[c];
                    }
                }
            }
            Less => {
                let cols = &pattern.u_block(ib, j).expect("U block in pattern").cols;
                let h = self.width(ib);
                let li = g - self.lo(ib);
                if let Some(p) = self.blocks.get_mut(&(ib as u32, j as u32)) {
                    let mut mask_pos = 0usize;
                    for (c, &v) in vals.iter().enumerate() {
                        let gc = (lo_j + c) as u32;
                        if mask_pos < cols.len() && cols[mask_pos] == gc {
                            p[li + mask_pos * h] = v;
                            mask_pos += 1;
                        } else {
                            debug_assert!(v == 0.0, "nonzero outside U mask at col {gc}");
                        }
                    }
                } else {
                    debug_assert!(
                        vals.iter().all(|&v| v == 0.0),
                        "nonzero subrow into absent block ({ib},{j})"
                    );
                }
            }
        }
    }

    /// Whether this processor owns any storage for row `g` in column
    /// block `j` (i.e. owns block `(block_of(g), j)` and it exists).
    fn owns_row(&self, j: usize, g: usize) -> Option<usize> {
        let ib = self.block_of[g] as usize;
        if ib % self.grid.pr != self.rno || j % self.grid.pc != self.cno {
            return None;
        }
        Some(ib)
    }

    fn block_exists(&self, ib: usize, j: usize) -> bool {
        use std::cmp::Ordering::*;
        match ib.cmp(&j) {
            Equal => true,
            Greater => self.pattern.l_block(ib, j).is_some(),
            Less => self.pattern.u_block(ib, j).is_some(),
        }
    }
}

/// Caches of received multicast panels: `L_ik` row panels keyed `(k, i)`,
/// TRSM'd `U_kj` row blocks keyed `(k, j)`, with resident-byte accounting.
///
/// Every entry of stage `k` is inserted *and* last consumed within the
/// spmd loop's iteration `k` (`scale_swap` consumes `(k, k)`; the stage's
/// update tasks consume the rest), so the loop retires whole stages: a
/// `U` row is recycled right after its single consuming task and the
/// surviving `L` panels at stage end. Resident bytes are thereby bounded
/// by one stage's working set instead of growing monotonically over the
/// whole factorization (the pre-retirement behavior, still visible as
/// [`PanelCaches::inserted_bytes`]).
struct PanelCaches {
    lpanels: HashMap<(usize, usize), Message>,
    urows: HashMap<(usize, usize), Message>,
    resident_bytes: u64,
    peak_bytes: u64,
    inserted_bytes: u64,
}

impl PanelCaches {
    fn new() -> Self {
        Self {
            lpanels: HashMap::new(),
            urows: HashMap::new(),
            resident_bytes: 0,
            peak_bytes: 0,
            inserted_bytes: 0,
        }
    }

    fn account_insert(&mut self, nbytes: u64) {
        self.inserted_bytes += nbytes;
        self.resident_bytes += nbytes;
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes);
    }

    /// The cached `L` panel `(k, i)`, receiving it first if absent.
    fn lpanel(&mut self, key: (usize, usize), recv: impl FnOnce() -> Message) -> &Message {
        if !self.lpanels.contains_key(&key) {
            let m = recv();
            self.account_insert(m.nbytes());
            self.lpanels.insert(key, m);
        }
        &self.lpanels[&key]
    }

    /// The cached `U` row `(k, j)`, receiving it first if absent.
    fn urow(&mut self, key: (usize, usize), recv: impl FnOnce() -> Message) -> &Message {
        if !self.urows.contains_key(&key) {
            let m = recv();
            self.account_insert(m.nbytes());
            self.urows.insert(key, m);
        }
        &self.urows[&key]
    }

    /// Remove the `U` row `(k, j)` — it has exactly one consuming task
    /// per processor, which has just run.
    fn take_urow(&mut self, key: (usize, usize)) -> Option<Message> {
        let m = self.urows.remove(&key);
        if let Some(m) = &m {
            self.resident_bytes -= m.nbytes();
        }
        m
    }

    /// Retire every stage-`k` entry (its last consumer has completed),
    /// recycling the payloads into the runtime's pool.
    fn retire_stage(&mut self, k: usize, ctx: &mut ProcCtx) {
        retire_from(&mut self.lpanels, k, &mut self.resident_bytes, ctx);
        retire_from(&mut self.urows, k, &mut self.resident_bytes, ctx);
    }

    fn is_empty(&self) -> bool {
        self.lpanels.is_empty() && self.urows.is_empty()
    }
}

fn retire_from(
    map: &mut HashMap<(usize, usize), Message>,
    k: usize,
    resident: &mut u64,
    ctx: &mut ProcCtx,
) {
    while let Some(key) = map.keys().find(|key| key.0 == k).copied() {
        let m = map.remove(&key).unwrap();
        *resident -= m.nbytes();
        ctx.recycle(m);
    }
}

/// Factor `a` (already preprocessed) on a `grid` of thread-processors
/// with classic partial pivoting.
pub fn factor_par2d(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
) -> Par2dResult {
    factor_par2d_opts(a, pattern, grid, mode, 1.0)
}

/// 2D factorization with threshold pivoting (`threshold = 1.0` is classic
/// partial pivoting; see [`crate::seq::factor_sequential_opts`]).
pub fn factor_par2d_opts(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
) -> Par2dResult {
    factor_par2d_impl(a, pattern, grid, mode, threshold, None)
}

/// Panic-free [`factor_par2d_opts`]: a numerically singular input
/// surfaces as `Err(SolverError::ZeroPivot)` instead of poisoning the
/// processor grid and unwinding through the caller. Any non-numeric
/// panic still propagates unchanged.
pub fn factor_par2d_checked(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
) -> Result<Par2dResult, crate::error::SolverError> {
    crate::error::catch_solver_panic(|| factor_par2d_opts(a, pattern, grid, mode, threshold))
}

/// Like [`factor_par2d_opts`], but every simulated processor records a
/// flight-recorder timeline into `collector`: one span per paper-named
/// stage (`panel-factor`, `scale-swap` with nested `row-swap`, `update`),
/// pivot-search/fill counters, and the runtime's communication marks.
pub fn factor_par2d_traced(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    collector: &Collector,
) -> Par2dResult {
    factor_par2d_impl(a, pattern, grid, mode, threshold, Some(collector))
}

fn factor_par2d_impl(
    a: &splu_sparse::CscMatrix,
    pattern: Arc<BlockPattern>,
    grid: Grid,
    mode: Sync2d,
    threshold: f64,
    collector: Option<&Collector>,
) -> Par2dResult {
    assert!(threshold > 0.0 && threshold <= 1.0);
    let nb = pattern.nblocks();
    let clock = AtomicU64::new(0);
    let barrier = Barrier::new(grid.nprocs());

    let t0 = std::time::Instant::now();
    type RankOut = (
        Vec<((u32, u32), Vec<f64>)>,
        Vec<(usize, Vec<u32>)>,
        FactorStats,
        u64,
        Vec<UpdateInterval>,
        (u64, u64),
    );
    let spmd = |mut ctx: ProcCtx| {
        let mut st = Store2d::new(a, pattern.clone(), grid, ctx.rank);
        let (_rno, cno) = (st.rno, st.cno);
        let mut stats = FactorStats::default();
        let mut pivseqs: Vec<Option<Arc<Vec<u32>>>> = vec![None; nb];
        let mut intervals: Vec<UpdateInterval> = Vec::new();
        // bounded caches of received panels, retired per stage
        let mut caches = PanelCaches::new();
        let mut scratch = FactorScratch::new();

        if ctx.rank == 0 {
            // static fill predicted by the symbolic phase (Table 1's
            // overestimation statistic), recorded once per run
            ctx.probe().count(
                "fill_entries",
                (pattern.storage_entries() as u64).saturating_sub(a.nnz() as u64),
            );
        }

        if nb > 0 && cno == 0 {
            let piv = factor2d(&mut ctx, &mut st, 0, threshold, &mut stats, &mut scratch);
            pivseqs[0] = Some(Arc::new(piv));
        }
        for k in 0..nb {
            scale_swap(
                &mut ctx,
                &mut st,
                k,
                &mut pivseqs,
                &mut caches,
                &mut stats,
                &mut scratch,
            );
            let next = k + 1;
            if next < nb && next % grid.pc == cno {
                if pattern.u_block(k, next).is_some() {
                    update2d(
                        &mut ctx,
                        &mut st,
                        k,
                        next,
                        &mut caches,
                        &mut stats,
                        &mut scratch,
                        &clock,
                        &mut intervals,
                    );
                }
                let piv = factor2d(&mut ctx, &mut st, next, threshold, &mut stats, &mut scratch);
                pivseqs[next] = Some(Arc::new(piv));
            }
            for u in &pattern.u_blocks[k] {
                let j = u.j as usize;
                if j >= k + 2 && j % grid.pc == cno {
                    update2d(
                        &mut ctx,
                        &mut st,
                        k,
                        j,
                        &mut caches,
                        &mut stats,
                        &mut scratch,
                        &clock,
                        &mut intervals,
                    );
                }
            }
            // stage k's last consumer has run on this rank: drop its
            // cached panels so resident bytes never span stages
            caches.retire_stage(k, &mut ctx);
            if mode == Sync2d::Barrier {
                barrier.wait();
            }
        }
        debug_assert!(caches.is_empty(), "panel caches must drain by the end");
        stats.scratch_grow_events = scratch.grow_events();
        stats.scratch_peak_bytes = scratch.peak_bytes();
        ctx.probe()
            .count("scratch_grow_events", stats.scratch_grow_events);
        ctx.probe()
            .gauge_max("panel_cache_bytes_hw", caches.peak_bytes);
        stats.emit_update_probe(ctx.probe());

        let blocks: Vec<((u32, u32), Vec<f64>)> = st.blocks.into_iter().collect();
        let pivs: Vec<(usize, Vec<u32>)> = pivseqs
            .into_iter()
            .enumerate()
            .filter_map(|(k, p)| p.map(|p| (k, p.as_ref().clone())))
            .collect();
        let cache_bytes = (caches.peak_bytes, caches.inserted_bytes);
        (
            blocks,
            pivs,
            stats,
            ctx.max_pending_bytes,
            intervals,
            cache_bytes,
        )
    };
    let (outs, comm): (Vec<RankOut>, _) = match collector {
        Some(c) => run_machine_traced(grid.nprocs(), c, spmd),
        None => run_machine(grid.nprocs(), spmd),
    };
    let elapsed = t0.elapsed().as_secs_f64();

    // ---- host-side reassembly into packed ColBlock storage ----
    let mut blocks = BlockMatrix::from_csc_filtered(a, pattern.clone(), |_| true);
    // zero it first: we overwrite every stored panel from rank data
    for cb in &mut blocks.cols {
        cb.diag.fill(0.0);
        cb.lpanel.fill(0.0);
        for ub in &mut cb.ublocks {
            ub.panel.fill(0.0);
        }
    }
    let mut pivots: Vec<Vec<u32>> = vec![Vec::new(); nb];
    let mut merged = FactorStats::default();
    let mut peaks = Vec::new();
    let mut cache_peaks = Vec::new();
    let mut cache_inserted = Vec::new();
    let mut all_intervals = Vec::new();
    for (bks, pivs, stats, peak, ivs, (cpeak, cins)) in outs {
        for ((i, j), panel) in bks {
            let (i, j) = (i as usize, j as usize);
            let cb = &mut blocks.cols[j];
            use std::cmp::Ordering::*;
            match i.cmp(&j) {
                Equal => cb.diag.copy_from_slice(&panel),
                Greater => {
                    // locate the segment
                    let seg = cb
                        .lsegs
                        .iter()
                        .find(|s| s.iblock as usize == i)
                        .expect("segment");
                    let (s0, sl) = (seg.start as usize, seg.len as usize);
                    let ld = cb.lrows.len();
                    let w = cb.w as usize;
                    for c in 0..w {
                        cb.lpanel[s0 + c * ld..s0 + sl + c * ld]
                            .copy_from_slice(&panel[c * sl..(c + 1) * sl]);
                    }
                }
                Less => {
                    let ub_idx = cb
                        .ublocks
                        .binary_search_by_key(&(i as u32), |u| u.k)
                        .expect("ublock");
                    cb.ublocks[ub_idx].panel.copy_from_slice(&panel);
                }
            }
        }
        for (k, p) in pivs {
            if pivots[k].is_empty() {
                pivots[k] = p;
            }
        }
        merged.absorb(&stats);
        peaks.push(peak);
        cache_peaks.push(cpeak);
        cache_inserted.push(cins);
        all_intervals.extend(ivs);
    }
    Par2dResult {
        blocks,
        pivots,
        stats: merged,
        elapsed,
        comm,
        peak_buffer_bytes: peaks,
        panel_cache_peak_bytes: cache_peaks,
        panel_cache_inserted_bytes: cache_inserted,
        intervals: all_intervals,
    }
}

/// `Factor(k)` for the 2D code (Fig. 13): cooperative panel factorization
/// by the processors of grid column `k mod p_c`. Returns the pivot
/// sequence (identical on every participating processor).
fn factor2d(
    ctx: &mut ProcCtx,
    st: &mut Store2d,
    k: usize,
    threshold: f64,
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
) -> Vec<u32> {
    let grid = st.grid;
    let (rno, cno) = (st.rno, st.cno);
    debug_assert_eq!(cno, k % grid.pc);
    let span_start = ctx.probe().now();
    // statistics are counted once per task, on the diagonal owner, so the
    // merged numbers match the sequential code
    if rno == k % grid.pr {
        stats.factor_tasks += 1;
    }
    let w = st.width(k);
    let lo = st.lo(k);
    let diag_rno = k % grid.pr;
    let i_am_diag = rno == diag_rno;
    let mut piv_seq: Vec<u32> = Vec::with_capacity(w);
    let mut searched_rows: u64 = 0;

    // owned L blocks of column k (sorted by block id, hence by global row);
    // the id list is staged in the arena's index buffer for the duration
    let mut my_lblocks = std::mem::take(&mut scratch.idx);
    {
        let cap0 = my_lblocks.capacity();
        my_lblocks.clear();
        my_lblocks.extend(
            st.pattern.l_blocks[k]
                .iter()
                .filter(|l| (l.i as usize) % grid.pr == rno)
                .map(|l| l.i),
        );
        if my_lblocks.capacity() > cap0 {
            scratch.grow_events += 1;
        }
    }

    for t in 0..w {
        // ---- local candidate: (abs, is_diag, global row) ----
        let mut cand_row = NONE_ROW;
        let mut cand_abs = -1.0f64;
        let mut cand_diag = false;
        if i_am_diag {
            let p = &st.blocks[&(k as u32, k as u32)];
            searched_rows += (w - t) as u64;
            for r in t..w {
                let a = p[r + t * w].abs();
                if a > cand_abs {
                    cand_abs = a;
                    cand_row = (lo + r) as u32;
                    cand_diag = true;
                }
            }
        }
        for &i in &my_lblocks {
            let i = i as usize;
            let rows = st.l_rows(i, k);
            let p = &st.blocks[&(i as u32, k as u32)];
            searched_rows += rows.len() as u64;
            for (rp, &g) in rows.iter().enumerate() {
                let a = p[rp + t * rows.len()].abs();
                if a > cand_abs {
                    cand_abs = a;
                    cand_row = g;
                    cand_diag = false;
                }
            }
        }

        // the pivot subrow lands in scratch.rowbuf2, the displaced diag
        // row `m` in scratch.rowbuf — no per-step row allocations
        let piv_global = if i_am_diag {
            // collect remote candidates, keeping the best message alive
            // (its payload *is* the candidate subrow)
            let mut best_row = cand_row;
            let mut best_abs = cand_abs.max(0.0);
            let mut best_diag = cand_diag;
            let mut best_msg: Option<Message> = None;
            for _ in 0..grid.pr - 1 {
                let m = ctx.recv(tag(K_CAND, k, t, 0));
                let row = m.ints[0];
                if row == NONE_ROW {
                    ctx.recycle(m);
                    continue;
                }
                let a = m.floats[t].abs();
                // comparator: (abs desc, diag pref desc, global row asc);
                // remote candidates are never diag rows.
                let better = a > best_abs
                    || (a == best_abs && !best_diag && (best_row == NONE_ROW || row < best_row));
                if better {
                    best_row = row;
                    best_abs = a;
                    best_diag = false;
                    if let Some(old) = best_msg.replace(m) {
                        ctx.recycle(old);
                    }
                } else {
                    ctx.recycle(m);
                }
            }
            if best_row == NONE_ROW || best_abs <= 0.0 {
                // Typed panic payload: the runtime poison-broadcast wakes
                // blocked peers and the host recovers the `SolverError`
                // via `catch_solver_panic` (see `factor_par2d_checked`).
                std::panic::panic_any(crate::error::SolverError::ZeroPivot { step: lo + t });
            }
            // threshold pivoting: keep the diagonal row when close enough
            // to the maximum (the diagonal row lives on this processor)
            let diag_abs = st.blocks[&(k as u32, k as u32)][t + t * w].abs();
            if diag_abs > 0.0 && diag_abs >= threshold * best_abs {
                best_row = (lo + t) as u32;
                if let Some(m) = best_msg.take() {
                    ctx.recycle(m);
                }
            }
            // old row m (diag row t)
            prep_zeroed_f64(&mut scratch.rowbuf, w, &mut scratch.grow_events);
            st.read_row_into(k, k, lo + t, &mut scratch.rowbuf);
            prep_zeroed_f64(&mut scratch.rowbuf2, w, &mut scratch.grow_events);
            match &best_msg {
                Some(m) => scratch.rowbuf2.copy_from_slice(&m.floats[..w]),
                None => {
                    let ib = st.block_of[best_row as usize] as usize;
                    st.read_row_into(ib, k, best_row as usize, &mut scratch.rowbuf2);
                }
            }
            if let Some(m) = best_msg.take() {
                ctx.recycle(m);
            }
            // broadcast pivot decision + both subrows down the column
            let mut floats = ctx.floats_buf();
            floats.extend_from_slice(&scratch.rowbuf2);
            floats.extend_from_slice(&scratch.rowbuf);
            let mut ints = ctx.ints_buf();
            ints.push(best_row);
            ctx.multicast(
                grid.my_col(ctx.rank),
                Message::new(tag(K_PIVROW, k, t, 0), ints, floats),
            );
            best_row as usize
        } else {
            // ship local candidate subrow to the diag owner
            let mut floats = ctx.floats_buf();
            if cand_row != NONE_ROW {
                floats.resize(w, 0.0);
                let ib = st.block_of[cand_row as usize] as usize;
                st.read_row_into(ib, k, cand_row as usize, &mut floats);
            }
            let mut ints = ctx.ints_buf();
            ints.push(cand_row);
            ctx.send(
                grid.rank_of(diag_rno, cno),
                Message::new(tag(K_CAND, k, t, 0), ints, floats),
            );
            let m = ctx.recv(tag(K_PIVROW, k, t, 0));
            let piv = m.ints[0] as usize;
            prep_cap_f64(&mut scratch.rowbuf2, w, &mut scratch.grow_events);
            scratch.rowbuf2.extend_from_slice(&m.floats[..w]);
            prep_cap_f64(&mut scratch.rowbuf, w, &mut scratch.grow_events);
            scratch.rowbuf.extend_from_slice(&m.floats[w..2 * w]);
            ctx.recycle(m);
            piv
        };
        let (piv_subrow, old_m_subrow) = (&scratch.rowbuf2, &scratch.rowbuf);

        // ---- apply the interchange to owned storage ----
        let row_m = lo + t;
        if piv_global != row_m {
            if i_am_diag {
                stats.row_interchanges += 1;
            }
            if i_am_diag {
                st.write_row_full(k, row_m, piv_subrow);
            }
            if st.owns_row(k, piv_global).is_some() {
                st.write_row_full(k, piv_global, old_m_subrow);
            }
        }
        piv_seq.push(piv_global as u32);

        // ---- scale + rank-1 update of owned rows ----
        let pv = piv_subrow[t];
        if i_am_diag {
            let p = st.blocks.get_mut(&(k as u32, k as u32)).unwrap();
            for r in (t + 1)..w {
                p[r + t * w] /= pv;
            }
            for c in (t + 1)..w {
                let u = piv_subrow[c];
                if u != 0.0 {
                    for r in (t + 1)..w {
                        let l = p[r + t * w];
                        p[r + c * w] -= l * u;
                    }
                }
            }
            stats.other_flops += ((w - t - 1) + 2 * (w - t - 1) * (w - t - 1)) as u64;
        }
        for &i in &my_lblocks {
            let i = i as usize;
            let nrows = st.l_rows(i, k).len();
            let p = st.blocks.get_mut(&(i as u32, k as u32)).unwrap();
            for r in 0..nrows {
                p[r + t * nrows] /= pv;
            }
            for c in (t + 1)..w {
                let u = piv_subrow[c];
                if u != 0.0 {
                    for r in 0..nrows {
                        let l = p[r + t * nrows];
                        p[r + c * nrows] -= l * u;
                    }
                }
            }
            stats.other_flops += (nrows + 2 * nrows * (w - t - 1)) as u64;
        }
    }

    // ---- multicast pivot sequence + owned L blocks along my grid row ----
    // payload buffers come from the runtime's recycling pool
    let row_dests: Vec<usize> = grid.my_row(ctx.rank).collect();
    {
        let mut ints = ctx.ints_buf();
        ints.extend_from_slice(&piv_seq);
        let floats = ctx.floats_buf();
        let msg = Message::new(tag(K_PIVSEQ, k, 0, 0), ints, floats);
        ctx.multicast(row_dests.iter().copied(), msg);
    }
    if i_am_diag {
        let mut p = ctx.floats_buf();
        p.extend_from_slice(&st.blocks[&(k as u32, k as u32)]);
        let ints = ctx.ints_buf();
        let msg = Message::new(tag(K_LPANEL, k, k, 0), ints, p);
        ctx.multicast(row_dests.iter().copied(), msg);
    }
    for &i in &my_lblocks {
        let i = i as usize;
        let mut p = ctx.floats_buf();
        p.extend_from_slice(&st.blocks[&(i as u32, k as u32)]);
        let ints = ctx.ints_buf();
        let msg = Message::new(tag(K_LPANEL, k, i, 0), ints, p);
        ctx.multicast(row_dests.iter().copied(), msg);
    }
    scratch.idx = my_lblocks;
    ctx.probe().count("pivot_search_rows", searched_rows);
    ctx.probe().span_at("panel-factor", k as u32, span_start);
    piv_seq
}

/// `ScaleSwap(k)` (Fig. 14): receive the pivot sequence, apply the delayed
/// row interchanges to owned trailing blocks, TRSM the owned `U_k,*`
/// blocks and multicast them down the grid columns.
fn scale_swap(
    ctx: &mut ProcCtx,
    st: &mut Store2d,
    k: usize,
    pivseqs: &mut [Option<Arc<Vec<u32>>>],
    caches: &mut PanelCaches,
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
) {
    let grid = st.grid;
    let (rno, cno) = (st.rno, st.cno);
    let lo = st.lo(k);
    let w = st.width(k);
    let span_start = ctx.probe().now();

    // (02) pivot sequence
    if pivseqs[k].is_none() {
        let m = ctx.recv(tag(K_PIVSEQ, k, 0, 0));
        pivseqs[k] = Some(m.ints.clone());
        ctx.recycle(m);
    }
    let piv = pivseqs[k].clone().unwrap();

    // (03-06) delayed interchanges on owned trailing column blocks j > k
    // in my processor column; lexicographic (j, t) order on all procs.
    // The id list is staged in the arena's index buffer.
    let mut my_js = std::mem::take(&mut scratch.idx);
    {
        let cap0 = my_js.capacity();
        my_js.clear();
        my_js.extend(
            st.pattern.u_blocks[k]
                .iter()
                .map(|u| u.j)
                .filter(|&j| j as usize % grid.pc == cno),
        );
        if my_js.capacity() > cap0 {
            scratch.grow_events += 1;
        }
    }
    let swap_start = ctx.probe().now();
    for &j in &my_js {
        let j = j as usize;
        for (t, &pg) in piv.iter().enumerate() {
            let row_m = lo + t;
            let pg = pg as usize;
            if pg == row_m {
                continue;
            }
            let ib_m = k; // row m lives in row block k
            let ib_r = st.block_of[pg] as usize;
            let own_m = ib_m % grid.pr == rno;
            let own_r = ib_r % grid.pr == rno;
            let m_exists = st.block_exists(ib_m, j);
            let r_exists = st.block_exists(ib_r, j);
            let wj = st.width(j);
            match (own_m, own_r) {
                (true, true) => {
                    // local swap via full-width rows staged in the arena
                    prep_zeroed_f64(&mut scratch.rowbuf, wj, &mut scratch.grow_events);
                    if m_exists {
                        st.read_row_into(ib_m, j, row_m, &mut scratch.rowbuf);
                    }
                    prep_zeroed_f64(&mut scratch.rowbuf2, wj, &mut scratch.grow_events);
                    if r_exists {
                        st.read_row_into(ib_r, j, pg, &mut scratch.rowbuf2);
                    }
                    if m_exists {
                        st.write_row_full(j, row_m, &scratch.rowbuf2);
                    } else {
                        debug_assert!(scratch.rowbuf2.iter().all(|&v| v == 0.0));
                    }
                    if r_exists {
                        st.write_row_full(j, pg, &scratch.rowbuf);
                    } else {
                        debug_assert!(scratch.rowbuf.iter().all(|&v| v == 0.0));
                    }
                }
                (true, false) => {
                    let partner = grid.rank_of(ib_r % grid.pr, cno);
                    if m_exists {
                        let mut a = ctx.floats_buf();
                        a.resize(wj, 0.0);
                        st.read_row_into(ib_m, j, row_m, &mut a);
                        let ints = ctx.ints_buf();
                        let msg = Message::new(tag(K_SWAP, k, t, j), ints, a);
                        ctx.send(partner, msg);
                    }
                    if r_exists {
                        let m = ctx.recv(tag(K_SWAP, k, t, j));
                        if m_exists {
                            st.write_row_full(j, row_m, &m.floats);
                        } else {
                            debug_assert!(m.floats.iter().all(|&v| v == 0.0));
                        }
                        ctx.recycle(m);
                    } else if m_exists {
                        // partner has nothing; my row must be zero
                        prep_zeroed_f64(&mut scratch.rowbuf, wj, &mut scratch.grow_events);
                        st.read_row_into(ib_m, j, row_m, &mut scratch.rowbuf);
                        debug_assert!(scratch.rowbuf.iter().all(|&v| v == 0.0));
                    }
                }
                (false, true) => {
                    let partner = grid.rank_of(ib_m % grid.pr, cno);
                    if r_exists {
                        let mut b = ctx.floats_buf();
                        b.resize(wj, 0.0);
                        st.read_row_into(ib_r, j, pg, &mut b);
                        let ints = ctx.ints_buf();
                        let msg = Message::new(tag(K_SWAP, k, t, j), ints, b);
                        ctx.send(partner, msg);
                    }
                    if m_exists {
                        let m = ctx.recv(tag(K_SWAP, k, t, j));
                        if r_exists {
                            st.write_row_full(j, pg, &m.floats);
                        } else {
                            debug_assert!(m.floats.iter().all(|&v| v == 0.0));
                        }
                        ctx.recycle(m);
                    } else if r_exists {
                        prep_zeroed_f64(&mut scratch.rowbuf, wj, &mut scratch.grow_events);
                        st.read_row_into(ib_r, j, pg, &mut scratch.rowbuf);
                        debug_assert!(scratch.rowbuf.iter().all(|&v| v == 0.0));
                    }
                }
                (false, false) => {}
            }
        }
    }
    ctx.probe().span_at("row-swap", k as u32, swap_start);

    // (07-10) TRSM owned U_kj blocks with L_kk, multicast down the column
    if rno == k % grid.pr && !my_js.is_empty() {
        // need L_kk — staged in the arena's panel buffer (it stays live
        // across the per-j `get_mut` borrows below)
        let diag_key = (k as u32, k as u32);
        prep_cap_f64(&mut scratch.panel, w * w, &mut scratch.grow_events);
        if st.blocks.contains_key(&diag_key) {
            scratch.panel.extend_from_slice(&st.blocks[&diag_key]);
        } else {
            let m = caches.lpanel((k, k), || ctx.recv(tag(K_LPANEL, k, k, 0)));
            scratch.panel.extend_from_slice(&m.floats);
        }
        for &j in &my_js {
            let j = j as usize;
            let ncols = st.u_cols(k, j).len();
            {
                let p = st.blocks.get_mut(&(k as u32, j as u32)).unwrap();
                dtrsm_left_lower_unit(w, ncols, &scratch.panel, w, p, w);
            }
            stats.other_flops += (w * w * ncols) as u64;
            // multicast down my grid column (pooled payload)
            let mut fl = ctx.floats_buf();
            fl.extend_from_slice(&st.blocks[&(k as u32, j as u32)]);
            let ints = ctx.ints_buf();
            let msg = Message::new(tag(K_UROW, k, j, 0), ints, fl);
            ctx.multicast(grid.my_col(ctx.rank), msg);
        }
    }
    scratch.idx = my_js;
    ctx.probe().span_at("scale-swap", k as u32, span_start);
}

/// `Update2D(k, j)` (Fig. 15): update owned blocks `A_ij` using `L_ik`
/// (row multicast) and `U_kj` (column multicast). All of this processor's
/// destination segments are packed into one stacked `L` panel so the
/// per-block GEMM loop collapses into one tall call per kernel-dispatch
/// run, followed by a scatter driven by the pattern's precomputed maps.
#[allow(clippy::too_many_arguments)]
fn update2d(
    ctx: &mut ProcCtx,
    st: &mut Store2d,
    k: usize,
    j: usize,
    caches: &mut PanelCaches,
    stats: &mut FactorStats,
    scratch: &mut FactorScratch,
    clock: &AtomicU64,
    intervals: &mut Vec<UpdateInterval>,
) {
    let grid = st.grid;
    let (rno, cno) = (st.rno, st.cno);
    debug_assert_eq!(cno, j % grid.pc);
    stats.update_tasks += 1;

    // my destination row blocks: L rows of column k in row blocks ≡ rno.
    // The segment metadata is borrowed straight from the shared pattern
    // (via a local Arc handle), so no per-task copies are made; `li` is
    // the segment's position in `l_blocks[k]`, the scatter-map key.
    let pattern = st.pattern.clone();
    let my_segs = || {
        pattern.l_blocks[k]
            .iter()
            .enumerate()
            .filter(|(_, l)| (l.i as usize) % grid.pr == rno)
    };
    if my_segs().next().is_none() {
        let start = clock.fetch_add(1, Ordering::Relaxed);
        let end = clock.fetch_add(1, Ordering::Relaxed);
        intervals.push(UpdateInterval {
            stage: k as u32,
            proc_col: cno as u32,
            start,
            end,
        });
        return;
    }

    // gather remote inputs before opening the interval: Theorem 2 bounds
    // the stages simultaneously *in processing*, so the recorded interval
    // must cover the update's compute, not the blocking waits for its
    // operands (which would stretch it across arbitrarily many ticks on
    // an oversubscribed host)
    let t_wait = std::time::Instant::now();
    if rno != k % grid.pr {
        caches.urow((k, j), || ctx.recv(tag(K_UROW, k, j, 0)));
    }
    if cno != k % grid.pc {
        for (_, l) in my_segs() {
            let i = l.i as usize;
            caches.lpanel((k, i), || ctx.recv(tag(K_LPANEL, k, i, 0)));
        }
    }
    stats.update_wait_secs += t_wait.elapsed().as_secs_f64();
    let span_start = ctx.probe().now();
    let start = clock.fetch_add(1, Ordering::Relaxed);

    // U_kj: local if I own it, else column multicast from (k mod pr, cno).
    // Staged in the arena's panel buffer so it stays live across the
    // destination `get_mut` borrows (no per-task clone).
    let wk = st.width(k);
    let uj = pattern.u_blocks[k]
        .binary_search_by_key(&(j as u32), |u| u.j)
        .expect("U block in pattern");
    let u_cols = &pattern.u_blocks[k][uj].cols;
    let nuc = u_cols.len();
    stats.scatter_map_reuse_hits += 1;
    {
        let src: &[f64] = if rno == k % grid.pr {
            &st.blocks[&(k as u32, j as u32)]
        } else {
            &caches.urows[&(k, j)].floats
        };
        prep_cap_f64(&mut scratch.panel, src.len(), &mut scratch.grow_events);
        scratch.panel.extend_from_slice(src);
    }
    // the staged copy outlives the cache entry, and each U row has
    // exactly one consuming task per processor: retire it immediately
    if let Some(m) = caches.take_urow((k, j)) {
        ctx.recycle(m);
    }

    let lo_j = st.lo(j);
    let wj = st.width(j);
    let seg_len = |li: u32| pattern.l_blocks[k][li as usize].rows.len();

    // owned segment ids staged in the arena's index buffer for the
    // indexed run-coalescing passes below
    let mut segids = std::mem::take(&mut scratch.idx);
    {
        let cap0 = segids.capacity();
        segids.clear();
        segids.extend(my_segs().map(|(li, _)| li as u32));
        if segids.capacity() > cap0 {
            scratch.grow_events += 1;
        }
    }
    let mtot: usize = segids.iter().map(|&li| seg_len(li)).sum();

    // ---- pack the owned L segments into one stacked panel (ld = mtot) ----
    // The seed copied every segment into the arena once per GEMM anyway;
    // interleaving the copies into one tall panel costs the same traffic.
    let t_gemm = std::time::Instant::now();
    prep_zeroed_f64(&mut scratch.panel2, mtot * wk, &mut scratch.grow_events);
    {
        let mut off = 0usize;
        for &li in &segids {
            let i = pattern.l_blocks[k][li as usize].i as usize;
            let mrows = seg_len(li);
            let src: &[f64] = if cno == k % grid.pc {
                &st.blocks[&(i as u32, k as u32)]
            } else {
                &caches.lpanels[&(k, i)].floats
            };
            for c in 0..wk {
                scratch.panel2[off + c * mtot..off + c * mtot + mrows]
                    .copy_from_slice(&src[c * mrows..(c + 1) * mrows]);
            }
            off += mrows;
        }
        debug_assert_eq!(off, mtot);
    }

    // ---- stacked GEMM: temp = L_stack (mtot × wk) · U_kj (wk × nuc) ----
    // One call per maximal run of segments agreeing on the kernel's shape
    // dispatch keeps the arithmetic bitwise identical to the seed's
    // per-segment calls (see `gemm_uses_blocked_path`).
    prep_zeroed_f64(&mut scratch.temp, mtot * nuc, &mut scratch.grow_events);
    let mut s0 = 0usize;
    let mut row0 = 0usize;
    while s0 < segids.len() {
        let blocked = gemm_uses_blocked_path(seg_len(segids[s0]), nuc, wk);
        let mut s1 = s0 + 1;
        let mut mrun = seg_len(segids[s0]);
        while s1 < segids.len() && gemm_uses_blocked_path(seg_len(segids[s1]), nuc, wk) == blocked {
            mrun += seg_len(segids[s1]);
            s1 += 1;
        }
        let a = &scratch.panel2[row0..];
        let c = &mut scratch.temp[row0..];
        if blocked {
            dgemm_with(
                mrun,
                nuc,
                wk,
                1.0,
                a,
                mtot,
                &scratch.panel,
                wk,
                0.0,
                c,
                mtot,
                &mut scratch.gemm,
            );
        } else {
            dgemm_naive(
                mrun,
                nuc,
                wk,
                1.0,
                a,
                mtot,
                &scratch.panel,
                wk,
                0.0,
                c,
                mtot,
            );
        }
        stats.update_gemm_calls += 1;
        stats.update_gemm_rows_max = stats.update_gemm_rows_max.max(mrun as u64);
        row0 += mrun;
        s0 = s1;
    }
    stats.gemm_flops += (2 * mtot * nuc * wk) as u64;
    stats.update_gemm_secs += t_gemm.elapsed().as_secs_f64();

    // ---- map-driven scatter-subtract, one destination per segment ----
    let t_scatter = std::time::Instant::now();
    let temp = &scratch.temp;
    let mut off = 0usize;
    for &li in &segids {
        let l = &pattern.l_blocks[k][li as usize];
        let i = l.i as usize;
        let rows = &l.rows;
        let mrows = rows.len();
        let tcol_at = |cp: usize| off + cp * mtot;

        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Equal => {
                let dest = st.blocks.get_mut(&(i as u32, j as u32)).unwrap();
                for (cp, &gc) in u_cols.iter().enumerate() {
                    let dc = gc as usize - lo_j;
                    for (rp, &g) in rows.iter().enumerate() {
                        dest[(g as usize - lo_j) + dc * wj] -= temp[tcol_at(cp) + rp];
                    }
                }
            }
            Greater => {
                // a padded source row may be absent from the destination
                // mask; its contribution is exactly zero and is skipped.
                // The precomputed map holds the destination positions the
                // seed recomputed by merging on every task.
                let map = pattern.scatter_map(k, li as usize, uj);
                let Some(lb) = pattern.l_block(i, j) else {
                    debug_assert!(map.iter().all(|&p| p == u32::MAX));
                    debug_assert!((0..nuc).all(|cp| temp[tcol_at(cp)..tcol_at(cp) + mrows]
                        .iter()
                        .all(|&v| v == 0.0)));
                    off += mrows;
                    continue;
                };
                let ldd = lb.rows.len();
                let dest = st.blocks.get_mut(&(i as u32, j as u32)).unwrap();
                for (cp, &gc) in u_cols.iter().enumerate() {
                    let dc = gc as usize - lo_j;
                    for (rp, &dr) in map.iter().enumerate() {
                        if dr != u32::MAX {
                            dest[dr as usize + dc * ldd] -= temp[tcol_at(cp) + rp];
                        } else {
                            debug_assert_eq!(temp[tcol_at(cp) + rp], 0.0);
                        }
                    }
                }
            }
            Less => {
                let map = pattern.scatter_map(k, li as usize, uj);
                let Some(_ub) = pattern.u_block(i, j) else {
                    debug_assert!(map.iter().all(|&p| p == u32::MAX));
                    debug_assert!((0..nuc).all(|cp| temp[tcol_at(cp)..tcol_at(cp) + mrows]
                        .iter()
                        .all(|&v| v == 0.0)));
                    off += mrows;
                    continue;
                };
                let h = st.width(i);
                let lo_i = st.lo(i);
                let dest = st.blocks.get_mut(&(i as u32, j as u32)).unwrap();
                for (cp, &dc) in map.iter().enumerate() {
                    if dc == u32::MAX {
                        debug_assert!(temp[tcol_at(cp)..tcol_at(cp) + mrows]
                            .iter()
                            .all(|&v| v == 0.0));
                        continue;
                    }
                    for (rp, &g) in rows.iter().enumerate() {
                        dest[(g as usize - lo_i) + dc as usize * h] -= temp[tcol_at(cp) + rp];
                    }
                }
            }
        }
        off += mrows;
    }
    stats.update_scatter_secs += t_scatter.elapsed().as_secs_f64();
    scratch.idx = segids;
    ctx.probe().span_at("update", k as u32, span_start);
    let end = clock.fetch_add(1, Ordering::Relaxed);
    intervals.push(UpdateInterval {
        stage: k as u32,
        proc_col: cno as u32,
        start,
        end,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::factor_sequential;
    use crate::solve::solve_factored;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{amalgamate, partition_supernodes, static_symbolic_factorization};

    fn pattern_for(a: &splu_sparse::CscMatrix, r: usize, bsize: usize) -> Arc<BlockPattern> {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, bsize);
        let part = amalgamate(&s, &base, r, bsize);
        Arc::new(BlockPattern::build(&s, &part))
    }

    fn check_matches_sequential(a: &splu_sparse::CscMatrix, grid: Grid, mode: Sync2d) {
        let pattern = pattern_for(a, 4, 6);
        let mut seq = BlockMatrix::from_csc(a, pattern.clone());
        let (piv_seq, _) = factor_sequential(&mut seq).unwrap();
        let par = factor_par2d(a, pattern, grid, mode);
        assert_eq!(par.pivots, piv_seq, "pivot sequences must match");
        let n = a.ncols();
        for i in 0..n {
            for j in 0..n {
                let s = seq.get_entry(i, j);
                let p = par.blocks.get_entry(i, j);
                assert!(
                    s == p,
                    "entry ({i},{j}): sequential {s} vs 2D {p} (grid {}x{})",
                    grid.pr,
                    grid.pc
                );
            }
        }
    }

    #[test]
    fn matches_sequential_1x1() {
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        check_matches_sequential(&a, Grid::new(1, 1), Sync2d::Async);
    }

    #[test]
    fn matches_sequential_various_grids_async() {
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        for (pr, pc) in [(1, 2), (2, 1), (2, 2), (2, 3), (3, 2)] {
            check_matches_sequential(&a, Grid::new(pr, pc), Sync2d::Async);
        }
    }

    #[test]
    fn matches_sequential_barrier_mode() {
        let a = gen::grid2d(6, 6, 0.4, ValueModel::default());
        check_matches_sequential(&a, Grid::new(2, 2), Sync2d::Barrier);
    }

    #[test]
    fn random_matrix_2d_solve() {
        let a = gen::random_sparse(80, 4, 0.5, ValueModel::default());
        let pattern = pattern_for(&a, 4, 8);
        let par = factor_par2d(&a, pattern, Grid::new(2, 2), Sync2d::Async);
        let n = a.ncols();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
        let b = a.matvec(&xt);
        let x = solve_factored(&par.blocks, &par.pivots, &b);
        let err = x
            .iter()
            .zip(&xt)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()));
        assert!(err < 1e-7, "solve error {err}");
    }

    #[test]
    fn overlap_degree_respects_theorem2_bound() {
        let a = gen::grid2d(9, 9, 0.4, ValueModel::default());
        let pattern = pattern_for(&a, 4, 4);
        let grid = Grid::new(2, 3);
        let par = factor_par2d(&a, pattern, grid, Sync2d::Async);
        let d = par.overlap_degree();
        assert!(
            d as usize <= grid.pc,
            "overlap degree {d} exceeds Theorem 2 bound p_c = {}",
            grid.pc
        );
    }

    #[test]
    fn barrier_mode_has_zero_stage_overlap() {
        let a = gen::grid2d(8, 8, 0.4, ValueModel::default());
        let pattern = pattern_for(&a, 4, 4);
        let par = factor_par2d(&a, pattern, Grid::new(2, 2), Sync2d::Barrier);
        assert_eq!(par.overlap_degree(), 0);
    }

    #[test]
    fn stats_match_sequential_counts() {
        // cooperative Factor2d must not multi-count tasks/interchanges
        // across the p_r processors of a grid column
        let a = gen::grid2d(7, 7, 0.4, ValueModel::default());
        let pattern = pattern_for(&a, 4, 6);
        let mut seq = BlockMatrix::from_csc(&a, pattern.clone());
        let (_, seq_stats) = factor_sequential(&mut seq).unwrap();
        let par = factor_par2d(&a, pattern, Grid::new(2, 2), Sync2d::Async);
        assert_eq!(par.stats.factor_tasks, seq_stats.factor_tasks);
        assert_eq!(par.stats.row_interchanges, seq_stats.row_interchanges);
    }

    #[test]
    fn communication_volume_counted() {
        let a = gen::grid2d(7, 7, 0.3, ValueModel::default());
        let pattern = pattern_for(&a, 4, 6);
        let par = factor_par2d(&a, pattern, Grid::new(2, 2), Sync2d::Async);
        assert!(par.comm.0 > 0);
        assert_eq!(par.peak_buffer_bytes.len(), 4);
    }
}
