//! Dense-block storage of the 2D-partitioned matrix.
//!
//! Each column block `J` owns:
//!
//! * the `w × w` **diagonal panel** (L's unit-lower part and U's upper part
//!   packed together, unit diagonal implicit in L),
//! * one **packed L panel**: all present subrows of all L blocks below the
//!   diagonal, concatenated in increasing global-row order (each L block is
//!   a contiguous segment) — `Factor(k)` treats diag + L panel as one tall
//!   dense panel,
//! * one **masked U panel** per U block `(K, J)` above the diagonal:
//!   `width(K)` rows × (present subcolumns), per Theorem 1.
//!
//! Entries inside panels but outside the static pattern are *padding*:
//! they start at exactly `0.0` and — a consequence of the static-structure
//! closure property — remain exactly `0.0` through the whole factorization
//! (every update contribution into them is a product with a structural
//! zero). The pivot search can therefore safely scan whole packed panels,
//! and the structure-safe row interchange ([`BlockMatrix::swap_rows`])
//! asserts this invariant in debug builds.

use splu_symbolic::{BlockPattern, UBlockKind};
use std::sync::Arc;

/// An L-panel segment: one L block's contiguous slice of the packed panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LSeg {
    /// Row-block index `I` (`> J`).
    pub iblock: u32,
    /// Start offset within the packed panel rows.
    pub start: u32,
    /// Number of subrows.
    pub len: u32,
}

/// One stored U block `(k, j)`: `h × cols.len()` column-major panel.
#[derive(Debug, Clone)]
pub struct UBlockStore {
    /// Row-block index `k` (`< j`).
    pub k: u32,
    /// First global row of block `k`.
    pub lo_k: u32,
    /// Height = width of row block `k`.
    pub h: u32,
    /// Present global column indices (sorted).
    pub cols: Arc<Vec<u32>>,
    /// Dense or column-sparse (all columns present or not).
    pub kind: UBlockKind,
    /// Column-major values, leading dimension `h`.
    pub panel: Vec<f64>,
}

/// One column block's storage.
#[derive(Debug, Clone, Default)]
pub struct ColBlock {
    /// First global column.
    pub lo: u32,
    /// Width.
    pub w: u32,
    /// `w × w` diagonal panel, column-major.
    pub diag: Vec<f64>,
    /// Sorted global rows present in the packed L panel.
    pub lrows: Arc<Vec<u32>>,
    /// Packed L panel, `lrows.len() × w`, column-major (ld = lrows.len()).
    pub lpanel: Vec<f64>,
    /// L block segments within the packed panel.
    pub lsegs: Vec<LSeg>,
    /// U blocks above the diagonal, sorted by `k`.
    pub ublocks: Vec<UBlockStore>,
}

/// Where a global row lives inside a given column block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowLoc {
    /// Local row of the diagonal panel.
    Diag(u32),
    /// Packed row of the L panel.
    L(u32),
    /// `(ublock index, local row)` of a U panel.
    U(u32, u32),
    /// No storage for this row in this column block.
    Absent,
}

/// The block matrix under (or after) factorization.
#[derive(Debug, Clone)]
pub struct BlockMatrix {
    /// The block pattern this storage realizes.
    pub pattern: Arc<BlockPattern>,
    /// Per-column-block storage.
    pub cols: Vec<ColBlock>,
    /// Global index → block id.
    pub block_of: Arc<Vec<u32>>,
    /// Matrix order.
    pub n: usize,
}

impl BlockMatrix {
    /// Allocate the block storage for `pattern` and scatter the entries of
    /// `a` into it (everything else is zero padding).
    pub fn from_csc(a: &splu_sparse::CscMatrix, pattern: Arc<BlockPattern>) -> Self {
        Self::from_csc_filtered(a, pattern, |_| true)
    }

    /// Distributed variant: allocate panel storage only for column blocks
    /// where `owned(j)` holds (the 1D data mapping — §4.2: "all
    /// submatrices of the same column block reside in the same
    /// processor"). Metadata (row lists, masks, segments) is kept for
    /// *every* block so received panels can be interpreted; unowned panels
    /// are zero-length.
    pub fn from_csc_filtered(
        a: &splu_sparse::CscMatrix,
        pattern: Arc<BlockPattern>,
        owned: impl Fn(usize) -> bool,
    ) -> Self {
        let n = a.ncols();
        assert_eq!(pattern.part.n(), n);
        let block_of = Arc::new(pattern.part.block_of_index());
        let nb = pattern.nblocks();

        // Pre-assemble U block patterns per column block (they are stored
        // by row block in BlockPattern).
        // (owner row block k, column indices, kind) of each U block, by column
        type USrc = (u32, Arc<Vec<u32>>, UBlockKind);
        let mut u_by_col: Vec<Vec<USrc>> = vec![Vec::new(); nb];
        for k in 0..nb {
            for u in &pattern.u_blocks[k] {
                u_by_col[u.j as usize].push((k as u32, Arc::new(u.cols.clone()), u.kind));
            }
        }

        let mut cols: Vec<ColBlock> = Vec::with_capacity(nb);
        for j in 0..nb {
            let lo = pattern.part.start(j);
            let w = pattern.part.width(j);
            let mut lrows: Vec<u32> = Vec::new();
            let mut lsegs: Vec<LSeg> = Vec::new();
            for lb in &pattern.l_blocks[j] {
                lsegs.push(LSeg {
                    iblock: lb.i,
                    start: lrows.len() as u32,
                    len: lb.rows.len() as u32,
                });
                lrows.extend_from_slice(&lb.rows);
            }
            let is_owned = owned(j);
            let ublocks = u_by_col[j]
                .iter()
                .map(|(k, colsv, kind)| {
                    let lo_k = pattern.part.start(*k as usize) as u32;
                    let h = pattern.part.width(*k as usize) as u32;
                    UBlockStore {
                        k: *k,
                        lo_k,
                        h,
                        cols: colsv.clone(),
                        kind: *kind,
                        panel: if is_owned {
                            vec![0.0; (h as usize) * colsv.len()]
                        } else {
                            Vec::new()
                        },
                    }
                })
                .collect();
            cols.push(ColBlock {
                lo: lo as u32,
                w: w as u32,
                diag: if is_owned {
                    vec![0.0; w * w]
                } else {
                    Vec::new()
                },
                lrows: Arc::new(lrows.clone()),
                lpanel: if is_owned {
                    vec![0.0; lrows.len() * w]
                } else {
                    Vec::new()
                },
                lsegs,
                ublocks,
            });
        }

        let mut m = Self {
            pattern,
            cols,
            block_of,
            n,
        };
        // scatter A (owned columns only)
        for (i, j, v) in a.iter() {
            if owned(m.block_of(j)) {
                m.set_entry(i, j, v);
            }
        }
        m
    }

    /// Block id of a global index.
    #[inline]
    pub fn block_of(&self, g: usize) -> usize {
        self.block_of[g] as usize
    }

    /// Locate global row `g` within column block `j`.
    pub fn row_loc(&self, j: usize, g: usize) -> RowLoc {
        let cb = &self.cols[j];
        let ib = self.block_of(g);
        match ib.cmp(&j) {
            std::cmp::Ordering::Equal => RowLoc::Diag((g as u32) - cb.lo),
            std::cmp::Ordering::Greater => match cb.lrows.binary_search(&(g as u32)) {
                Ok(p) => RowLoc::L(p as u32),
                Err(_) => RowLoc::Absent,
            },
            std::cmp::Ordering::Less => {
                match cb.ublocks.binary_search_by_key(&(ib as u32), |u| u.k) {
                    Ok(b) => RowLoc::U(b as u32, (g as u32) - cb.ublocks[b].lo_k),
                    Err(_) => RowLoc::Absent,
                }
            }
        }
    }

    /// Write one entry (used when scattering the input matrix).
    ///
    /// # Panics
    /// Panics if `(i, j)` has no storage (outside the static pattern).
    pub fn set_entry(&mut self, i: usize, j: usize, v: f64) {
        let jb = self.block_of(j);
        let loc = self.row_loc(jb, i);
        let cb = &mut self.cols[jb];
        let lc = j - cb.lo as usize;
        match loc {
            RowLoc::Diag(r) => {
                let ld = cb.w as usize;
                cb.diag[r as usize + lc * ld] = v;
            }
            RowLoc::L(r) => {
                let ld = cb.lrows.len();
                cb.lpanel[r as usize + lc * ld] = v;
            }
            RowLoc::U(b, r) => {
                let ub = &mut cb.ublocks[b as usize];
                let cpos = ub
                    .cols
                    .binary_search(&(j as u32))
                    .unwrap_or_else(|_| panic!("entry ({i},{j}) outside U mask"));
                let ld = ub.h as usize;
                ub.panel[r as usize + cpos * ld] = v;
            }
            RowLoc::Absent => panic!("entry ({i},{j}) outside the static block pattern"),
        }
    }

    /// Read one entry (0.0 if no storage). For tests and the solver.
    pub fn get_entry(&self, i: usize, j: usize) -> f64 {
        let jb = self.block_of(j);
        let cb = &self.cols[jb];
        let lc = j - cb.lo as usize;
        match self.row_loc(jb, i) {
            RowLoc::Diag(r) => cb.diag[r as usize + lc * cb.w as usize],
            RowLoc::L(r) => cb.lpanel[r as usize + lc * cb.lrows.len()],
            RowLoc::U(b, r) => {
                let ub = &cb.ublocks[b as usize];
                match ub.cols.binary_search(&(j as u32)) {
                    Ok(cpos) => ub.panel[r as usize + cpos * ub.h as usize],
                    Err(_) => 0.0,
                }
            }
            RowLoc::Absent => 0.0,
        }
    }

    /// Structure-safe interchange of global rows `r1` and `r2` within
    /// column block `j` only (the delayed-pivoting primitive; the caller
    /// applies it to each column block right of the pivot block, and to
    /// the pivot block itself during `Factor`).
    ///
    /// Positions present on one side but not the other are asserted (debug)
    /// to hold exact zeros, per the padding invariant.
    pub fn swap_rows(&mut self, j: usize, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let loc1 = self.row_loc(j, r1);
        let loc2 = self.row_loc(j, r2);
        let cb = &mut self.cols[j];
        swap_rows_in(cb, loc1, loc2);
    }
}

/// Full-width row view: (base pointer offset, leading dimension) for
/// Diag/L locations.
fn full_row(cb: &ColBlock, loc: RowLoc) -> Option<(bool, usize, usize)> {
    match loc {
        RowLoc::Diag(r) => Some((true, r as usize, cb.w as usize)),
        RowLoc::L(r) => Some((false, r as usize, cb.lrows.len())),
        _ => None,
    }
}

fn swap_rows_in(cb: &mut ColBlock, loc1: RowLoc, loc2: RowLoc) {
    use RowLoc::*;
    match (loc1, loc2) {
        (Absent, Absent) => {}
        (Absent, other) | (other, Absent) => {
            // the stored side must be all zeros
            debug_assert!(
                row_is_zero(cb, other),
                "swap with absent row but stored side nonzero"
            );
        }
        (U(b1, r1), U(b2, r2)) if b1 == b2 => {
            let ub = &mut cb.ublocks[b1 as usize];
            let ld = ub.h as usize;
            for c in 0..ub.cols.len() {
                ub.panel.swap(r1 as usize + c * ld, r2 as usize + c * ld);
            }
        }
        (U(b1, r1), U(b2, r2)) => {
            // Rows in two different U panels (pivot row in block k, other
            // candidate in a later row block I with k < I < j): swap over
            // the mask intersection; exclusive mask positions must be zero.
            let cols1 = cb.ublocks[b1 as usize].cols.clone();
            let cols2 = cb.ublocks[b2 as usize].cols.clone();
            let ld1 = cb.ublocks[b1 as usize].h as usize;
            let ld2 = cb.ublocks[b2 as usize].h as usize;
            let (mut p1, mut p2) = (0usize, 0usize);
            while p1 < cols1.len() || p2 < cols2.len() {
                let c1 = cols1.get(p1).copied();
                let c2 = cols2.get(p2).copied();
                match (c1, c2) {
                    (Some(a1), Some(a2)) if a1 == a2 => {
                        let i1 = r1 as usize + p1 * ld1;
                        let i2 = r2 as usize + p2 * ld2;
                        let v1 = cb.ublocks[b1 as usize].panel[i1];
                        let v2 = cb.ublocks[b2 as usize].panel[i2];
                        cb.ublocks[b1 as usize].panel[i1] = v2;
                        cb.ublocks[b2 as usize].panel[i2] = v1;
                        p1 += 1;
                        p2 += 1;
                    }
                    (Some(a1), Some(a2)) if a1 < a2 => {
                        debug_assert!(
                            cb.ublocks[b1 as usize].panel[r1 as usize + p1 * ld1] == 0.0,
                            "swap row nonzero at exclusive mask col {a1}"
                        );
                        p1 += 1;
                    }
                    (Some(_), Some(_)) | (None, Some(_)) => {
                        debug_assert!(
                            cb.ublocks[b2 as usize].panel[r2 as usize + p2 * ld2] == 0.0,
                            "swap row nonzero at exclusive mask col"
                        );
                        p2 += 1;
                    }
                    (Some(_), None) => {
                        debug_assert!(
                            cb.ublocks[b1 as usize].panel[r1 as usize + p1 * ld1] == 0.0,
                            "swap row nonzero at exclusive mask col"
                        );
                        p1 += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        (a, b) => {
            // at least one full-width side
            let f1 = full_row(cb, a);
            let f2 = full_row(cb, b);
            match (f1, f2) {
                (Some((d1, r1, ld1)), Some((d2, r2, ld2))) => {
                    let w = cb.w as usize;
                    for c in 0..w {
                        let i1 = r1 + c * ld1;
                        let i2 = r2 + c * ld2;
                        if d1 == d2 {
                            let p = if d1 { &mut cb.diag } else { &mut cb.lpanel };
                            p.swap(i1, i2);
                        } else {
                            let (dslot, lslot) = if d1 { (i1, i2) } else { (i2, i1) };
                            std::mem::swap(&mut cb.diag[dslot], &mut cb.lpanel[lslot]);
                        }
                    }
                }
                (Some((dg, rf, ldf)), None) | (None, Some((dg, rf, ldf))) => {
                    // full-width vs U-masked row
                    let uloc = if f1.is_none() { a } else { b };
                    let U(bu, ru) = uloc else { unreachable!() };
                    let lo = cb.lo as usize;
                    // swap masked columns; non-mask columns of the
                    // full-width row must be zero
                    let (ub_cols, ld_u) = {
                        let ub = &cb.ublocks[bu as usize];
                        (ub.cols.clone(), ub.h as usize)
                    };
                    let mut mask_pos = 0usize;
                    for c in 0..cb.w as usize {
                        let gc = (lo + c) as u32;
                        let fidx = rf + c * ldf;
                        if mask_pos < ub_cols.len() && ub_cols[mask_pos] == gc {
                            let uidx = ru as usize + mask_pos * ld_u;
                            let fv = if dg { cb.diag[fidx] } else { cb.lpanel[fidx] };
                            let uv = cb.ublocks[bu as usize].panel[uidx];
                            if dg {
                                cb.diag[fidx] = uv;
                            } else {
                                cb.lpanel[fidx] = uv;
                            }
                            cb.ublocks[bu as usize].panel[uidx] = fv;
                            mask_pos += 1;
                        } else {
                            debug_assert!(
                                (if dg { cb.diag[fidx] } else { cb.lpanel[fidx] }) == 0.0,
                                "full-width row nonzero outside U mask at col {gc}"
                            );
                        }
                    }
                }
                (None, None) => unreachable!("U/U handled above"),
            }
        }
    }
}

fn row_is_zero(cb: &ColBlock, loc: RowLoc) -> bool {
    match loc {
        RowLoc::Absent => true,
        RowLoc::Diag(r) => {
            (0..cb.w as usize).all(|c| cb.diag[r as usize + c * cb.w as usize] == 0.0)
        }
        RowLoc::L(r) => {
            (0..cb.w as usize).all(|c| cb.lpanel[r as usize + c * cb.lrows.len()] == 0.0)
        }
        RowLoc::U(b, r) => {
            let ub = &cb.ublocks[b as usize];
            (0..ub.cols.len()).all(|c| ub.panel[r as usize + c * ub.h as usize] == 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::gen::{self, ValueModel};
    use splu_symbolic::{amalgamate, partition_supernodes, static_symbolic_factorization};

    fn build(a: &splu_sparse::CscMatrix, r: usize, bsize: usize) -> BlockMatrix {
        let s = static_symbolic_factorization(a);
        let base = partition_supernodes(&s, bsize);
        let part = amalgamate(&s, &base, r, bsize);
        let bp = Arc::new(BlockPattern::build(&s, &part));
        BlockMatrix::from_csc(a, bp)
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let a = gen::random_sparse(70, 4, 0.5, ValueModel::default());
        let m = build(&a, 4, 8);
        for (i, j, v) in a.iter() {
            assert_eq!(m.get_entry(i, j), v, "entry ({i},{j})");
        }
        // a padded position reads zero
        let mut padded_checked = false;
        for i in 0..70 {
            for j in 0..70 {
                if !a.is_stored(i, j) && m.get_entry(i, j) == 0.0 {
                    padded_checked = true;
                }
            }
        }
        assert!(padded_checked);
    }

    #[test]
    fn row_loc_consistency() {
        let a = gen::grid2d(7, 7, 0.3, ValueModel::default());
        let m = build(&a, 4, 6);
        for j in 0..m.pattern.nblocks() {
            let lo = m.pattern.part.start(j);
            let hi = m.pattern.part.starts[j + 1];
            // diagonal rows resolve to Diag
            for g in lo..hi {
                assert_eq!(m.row_loc(j, g), RowLoc::Diag((g - lo) as u32));
            }
            // every packed L row resolves back to L
            for (p, &g) in m.cols[j].lrows.iter().enumerate() {
                assert_eq!(m.row_loc(j, g as usize), RowLoc::L(p as u32));
            }
        }
    }

    #[test]
    fn lsegs_partition_lrows() {
        let a = gen::random_sparse(90, 4, 0.4, ValueModel::default());
        let m = build(&a, 4, 10);
        for cb in &m.cols {
            let mut expect = 0u32;
            for seg in &cb.lsegs {
                assert_eq!(seg.start, expect);
                expect += seg.len;
                // all rows of the segment belong to seg.iblock
                for p in seg.start..seg.start + seg.len {
                    assert_eq!(m.block_of(cb.lrows[p as usize] as usize) as u32, seg.iblock);
                }
            }
            assert_eq!(expect as usize, cb.lrows.len());
        }
    }

    #[test]
    fn swap_full_width_rows() {
        let a = gen::dense_random(12, ValueModel::default());
        let mut m = build(&a, 0, 4);
        let before: Vec<f64> = (0..12).map(|c| m.get_entry(1, c)).collect();
        let before2: Vec<f64> = (0..12).map(|c| m.get_entry(6, c)).collect();
        // swap rows 1 and 6 in every column block
        for j in 0..m.pattern.nblocks() {
            m.swap_rows(j, 1, 6);
        }
        for c in 0..12 {
            assert_eq!(m.get_entry(6, c), before[c]);
            assert_eq!(m.get_entry(1, c), before2[c]);
        }
    }

    #[test]
    fn swap_is_involution_for_candidate_pairs() {
        let a = gen::grid2d(6, 6, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let mut m = build(&a, 4, 5);
        let orig = m.clone();
        // rows 0 and s.lcols[0][1] are both candidates at step 0, so their
        // static structures agree for all columns — a legal pivot pair.
        let r1 = 0usize;
        let r2 = s.lcols[0][1] as usize;
        for jj in 0..m.pattern.nblocks() {
            m.swap_rows(jj, r1, r2);
            m.swap_rows(jj, r1, r2);
        }
        for i in 0..36 {
            for c in 0..36 {
                assert_eq!(m.get_entry(i, c), orig.get_entry(i, c));
            }
        }
    }

    #[test]
    fn swap_moves_candidate_row_values() {
        let a = gen::grid2d(5, 5, 0.3, ValueModel::default());
        let s = static_symbolic_factorization(&a);
        let mut m = build(&a, 4, 5);
        let r1 = 0usize;
        let r2 = s.lcols[0][1] as usize;
        let row1: Vec<f64> = (0..25).map(|c| m.get_entry(r1, c)).collect();
        let row2: Vec<f64> = (0..25).map(|c| m.get_entry(r2, c)).collect();
        for jj in 0..m.pattern.nblocks() {
            m.swap_rows(jj, r1, r2);
        }
        for c in 0..25 {
            assert_eq!(m.get_entry(r1, c), row2[c], "col {c}");
            assert_eq!(m.get_entry(r2, c), row1[c], "col {c}");
        }
    }
}
